//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use simra::decoder::RowDecoder;
use simra::dram::timing::IssueGrid;
use simra::dram::{ApaTiming, BitRow, Geometry};
use simra::pud::metrics::BoxStats;
use simra::pud::rowgroup::tile_groups;

proptest! {
    /// BitRow set/get round-trips at any index.
    #[test]
    fn bitrow_set_get_roundtrip(len in 1usize..500, bits in proptest::collection::vec(any::<bool>(), 1..500)) {
        let len = len.min(bits.len());
        let mut row = BitRow::zeros(len);
        for (i, b) in bits.iter().take(len).enumerate() {
            row.set(i, *b);
        }
        for (i, b) in bits.iter().take(len).enumerate() {
            prop_assert_eq!(row.get(i), *b);
        }
        prop_assert_eq!(row.count_ones(), bits.iter().take(len).filter(|b| **b).count());
    }

    /// Complement is an involution and flips every bit.
    #[test]
    fn bitrow_complement_involution(len in 1usize..300, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let row = BitRow::random(&mut rng, len);
        let comp = row.complement();
        prop_assert_eq!(row.hamming(&comp), len);
        prop_assert_eq!(comp.complement(), row);
    }

    /// Hamming distance is a metric: symmetric, zero iff equal,
    /// triangle inequality.
    #[test]
    fn bitrow_hamming_is_a_metric(len in 1usize..200, s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>()) {
        use rand::SeedableRng;
        let mut r1 = rand::rngs::StdRng::seed_from_u64(s1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(s2);
        let mut r3 = rand::rngs::StdRng::seed_from_u64(s3);
        let a = BitRow::random(&mut r1, len);
        let b = BitRow::random(&mut r2, len);
        let c = BitRow::random(&mut r3, len);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert_eq!(a.hamming(&a), 0);
        prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
        prop_assert_eq!(a.matches(&b) + a.hamming(&b), len);
    }

    /// Any APA pair activates a power-of-two number of rows ≤ 32, always
    /// including both targets, for every tested subarray size.
    #[test]
    fn apa_counts_are_powers_of_two(rows_pow in 6u32..11, a in 0u32..2048, b in 0u32..2048) {
        let rows = 1u32 << rows_pow;
        let (a, b) = (a % rows, b % rows);
        let dec = RowDecoder::for_subarray_rows(rows);
        let set = dec.simultaneous_rows(a, b);
        prop_assert!(set.len().is_power_of_two());
        prop_assert!(set.len() <= 32);
        prop_assert!(set.contains(&a) && set.contains(&b));
        prop_assert_eq!(set.len(), dec.activation_count(a, b) as usize);
        // Sorted and deduplicated.
        let mut sorted = set.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted, set);
    }

    /// APA row sets are symmetric in (R_F, R_S).
    #[test]
    fn apa_sets_are_symmetric(a in 0u32..512, b in 0u32..512) {
        let dec = RowDecoder::for_subarray_rows(512);
        prop_assert_eq!(dec.simultaneous_rows(a, b), dec.simultaneous_rows(b, a));
    }

    /// The group-closure property of the predecoder-latch model: every
    /// pair of rows inside an activated set activates a subset of it.
    #[test]
    fn apa_sets_are_closed_under_pairing(a in 0u32..512, b in 0u32..512) {
        let dec = RowDecoder::for_subarray_rows(512);
        let set = dec.simultaneous_rows(a, b);
        let inner = dec.simultaneous_rows(set[0], *set.last().unwrap());
        prop_assert!(inner.iter().all(|r| set.contains(r)));
    }

    /// Subarray tiling is a perfect partition for any modelled size.
    #[test]
    fn tiling_partitions_any_subarray(rows in prop::sample::select(vec![64u32, 128, 256, 512, 640, 1024])) {
        let geometry = Geometry { rows_per_subarray: rows, ..Geometry::default() };
        let groups = tile_groups(
            &geometry,
            simra::dram::BankId::new(0),
            simra::dram::SubarrayId::new(0),
        );
        let mut covered = vec![0u32; rows as usize];
        for g in &groups {
            for &r in &g.local_rows {
                covered[r as usize] += 1;
            }
        }
        prop_assert!(covered.iter().all(|c| *c == 1));
    }

    /// Issue-grid snapping always lands on a positive multiple of 1.5 ns
    /// within half a step of the request.
    #[test]
    fn issue_grid_snapping(ns in 0.0f64..100.0) {
        let g = IssueGrid::from_ns(ns);
        let snapped = g.as_ns();
        prop_assert!(snapped >= 1.5 - 1e-12);
        let steps = snapped / 1.5;
        prop_assert!((steps - steps.round()).abs() < 1e-9);
        if ns >= 1.5 {
            prop_assert!((snapped - ns).abs() <= 0.75 + 1e-9);
        }
    }

    /// ApaTiming::act_to_act is the sum of its parts and grid-consistent.
    #[test]
    fn apa_timing_sums(t1 in 1.0f64..40.0, t2 in 1.0f64..40.0) {
        let t = ApaTiming::from_ns(t1, t2);
        let sum = t.t1.as_ns() + t.t2.as_ns();
        prop_assert!((t.act_to_act_ns() - sum).abs() < 1e-9);
    }

    /// BoxStats quartiles are ordered and bounded by min/max; the mean
    /// lies within [min, max].
    #[test]
    fn box_stats_invariants(samples in proptest::collection::vec(0.0f64..1.0, 1..100)) {
        let s = BoxStats::from_samples(&samples);
        prop_assert!(s.min <= s.q1 && s.q1 <= s.median);
        prop_assert!(s.median <= s.q3 && s.q3 <= s.max);
        prop_assert!(s.mean >= s.min - 1e-12 && s.mean <= s.max + 1e-12);
        prop_assert!(s.iqr() >= 0.0);
        prop_assert_eq!(s.count, samples.len());
    }

    /// The normal CDF is monotone, symmetric, and bounded.
    #[test]
    fn phi_properties(x in -6.0f64..6.0, dx in 0.001f64..2.0) {
        let phi = simra::analog::math::phi;
        prop_assert!(phi(x) > 0.0 && phi(x) < 1.0);
        prop_assert!(phi(x + dx) >= phi(x));
        prop_assert!((phi(x) + phi(-x) - 1.0).abs() < 1e-6);
    }

    /// Survival probability is monotone in margin and anti-monotone in
    /// trial count.
    #[test]
    fn survival_monotonicity(m in -0.1f64..0.2, dm in 0.0001f64..0.05) {
        let f = |margin: f64, trials: u32| {
            simra::analog::sense::survival_probability(margin, 0.03, 0.0045, trials)
        };
        prop_assert!(f(m + dm, 10_000) >= f(m, 10_000));
        prop_assert!(f(m, 1_000) >= f(m, 10_000));
        prop_assert!((0.0..=1.0).contains(&f(m, 10_000)));
    }
}

proptest! {
    /// `majority` agrees with a per-column counting reference for any odd
    /// operand count.
    #[test]
    fn majority_matches_reference(x in prop::sample::select(vec![1usize, 3, 5, 7, 9]), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cols = 96;
        let ops: Vec<BitRow> = (0..x).map(|_| BitRow::random(&mut rng, cols)).collect();
        let got = simra::pud::maj::majority(&ops);
        for c in 0..cols {
            let ones = ops.iter().filter(|o| o.get(c)).count();
            prop_assert_eq!(got.get(c), 2 * ones > x);
        }
    }

    /// MAJX layouts partition the group: X·r operand rows + (N mod X)
    /// neutral rows, all disjoint, all from the group.
    #[test]
    fn maj_layout_partitions_the_group(
        n in prop::sample::select(vec![4u32, 8, 16, 32]),
        x in prop::sample::select(vec![3usize, 5, 7, 9]),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        prop_assume!(n as usize >= x);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let geometry = Geometry::default();
        let group = simra::pud::rowgroup::random_group(
            &geometry,
            simra::dram::BankId::new(0),
            simra::dram::SubarrayId::new(0),
            n,
            &mut rng,
        )
        .expect("512-row subarrays host all power-of-two groups");
        let layout = simra::pud::maj::plan_layout(&group, x).expect("n >= x");
        let r = n as usize / x;
        prop_assert_eq!(layout.replication(), r);
        prop_assert_eq!(layout.neutral_rows.len(), n as usize % x);
        let mut seen = std::collections::BTreeSet::new();
        for rows in &layout.operand_rows {
            prop_assert_eq!(rows.len(), r);
            for row in rows {
                prop_assert!(group.local_rows.contains(row));
                prop_assert!(seen.insert(*row), "rows must be disjoint");
            }
        }
        for row in &layout.neutral_rows {
            prop_assert!(seen.insert(*row), "neutral rows must be disjoint too");
        }
        prop_assert_eq!(seen.len(), n as usize);
    }

    /// Random groups always sit inside their subarray and contain both
    /// APA targets.
    #[test]
    fn random_groups_are_well_formed(
        n in prop::sample::select(vec![2u32, 4, 8, 16, 32]),
        sa in 0u16..8,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let geometry = Geometry::default();
        if let Some(g) = simra::pud::rowgroup::random_group(
            &geometry,
            simra::dram::BankId::new(3),
            simra::dram::SubarrayId::new(sa),
            n,
            &mut rng,
        ) {
            prop_assert_eq!(g.n_rows(), n as usize);
            let (sa_f, lf) = geometry.split_row(g.r_f).unwrap();
            let (sa_s, ls) = geometry.split_row(g.r_s).unwrap();
            prop_assert_eq!(sa_f.raw(), sa);
            prop_assert_eq!(sa_s.raw(), sa);
            prop_assert!(g.local_rows.contains(&lf));
            prop_assert!(g.local_rows.contains(&ls));
            prop_assert!(g.local_rows.iter().all(|r| *r < geometry.rows_per_subarray));
        }
    }

    /// Power grows monotonically with the activation count and a wipe
    /// never gets slower with a bigger fan-out.
    #[test]
    fn power_and_wipe_monotonicity(n in 2u32..=31) {
        let power = simra::bender::PowerModel::ddr4();
        prop_assert!(power.many_row_activation_mw(n + 1) > power.many_row_activation_mw(n));
        let timing = simra::dram::TimingParams::ddr4_2666();
        let wipe = |k: u32| {
            simra::casestudy::coldboot::wipe_time_ns(
                simra::casestudy::coldboot::WipeStrategy::MultiRowCopy { n: k },
                65_536,
                512,
                &timing,
            )
        };
        prop_assert!(wipe(n + 1) <= wipe(n));
    }

    /// BitRow operators respect De Morgan's laws.
    #[test]
    fn bitrow_de_morgan(len in 1usize..200, s1 in any::<u64>(), s2 in any::<u64>()) {
        use rand::SeedableRng;
        let mut r1 = rand::rngs::StdRng::seed_from_u64(s1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(s2);
        let a = BitRow::random(&mut r1, len);
        let b = BitRow::random(&mut r2, len);
        prop_assert_eq!(!&(&a & &b), &(!&a) | &(!&b));
        prop_assert_eq!(!&(&a | &b), &(!&a) & &(!&b));
        prop_assert_eq!(&(&a ^ &b) ^ &b, a);
    }

    /// FaultPlan JSON round-trips losslessly for arbitrary plans: parse
    /// recovers the exact structure (u64 seeds, f64 knobs, f32 sense
    /// shifts bit for bit) and re-rendering is canonical.
    #[test]
    fn fault_plan_json_round_trips_losslessly(
        seed in any::<u64>(),
        choices in proptest::collection::vec(any::<u8>(), 3),
        groups in proptest::collection::vec(0usize..6, 3),
        stall in 0.0f64..50.0,
        with_cells in any::<bool>(),
        with_droop in any::<bool>(),
        with_deadline in any::<bool>(),
        shift_milli in any::<u8>(),
    ) {
        use simra::faults::{CellFaultSpec, FaultPlan, ModuleFault, ModuleFaultKind, VppDroop};
        let modules: Vec<ModuleFault> = choices
            .iter()
            .zip(&groups)
            .enumerate()
            .filter_map(|(i, (&c, &g))| {
                let kind = match c % 4 {
                    0 => return None,
                    1 => ModuleFaultKind::Dropout {
                        at_group: g,
                        recover_after_attempts: if c >= 128 { Some(u32::from(c) % 3) } else { None },
                    },
                    2 => ModuleFaultKind::PanicAt { at_group: g },
                    _ => ModuleFaultKind::Hang { at_group: g, stall_ms: stall },
                };
                Some(ModuleFault { module_index: i, kind })
            })
            .collect();
        let plan = FaultPlan {
            seed,
            cells: with_cells.then(|| CellFaultSpec {
                seed: seed ^ 0x5EED,
                stuck_per_million: 50.0 + stall,
                weak_per_million: 1.0 / 3.0,
                weak_leak_multiplier: 4.0,
                sense_offset_shift: (f32::from(shift_milli) - 128.0) / 1000.0,
            }),
            modules,
            vpp_droop: with_droop.then(|| VppDroop {
                delta_v: 0.4 + stall * 1e-3,
                from_group: groups[0],
                to_group: groups[0] + groups[1] + 1,
            }),
            deadline_ms: with_deadline.then_some(stall + 5.0),
        };
        let rendered = plan.to_json();
        let reparsed = FaultPlan::from_json(&rendered).expect("own rendering must parse");
        prop_assert_eq!(&reparsed, &plan);
        if let (Some(a), Some(b)) = (&reparsed.cells, &plan.cells) {
            prop_assert_eq!(a.sense_offset_shift.to_bits(), b.sense_offset_shift.to_bits());
        }
        prop_assert_eq!(reparsed.to_json(), rendered, "rendering must be canonical");
    }
}
