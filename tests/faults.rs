//! Fault-injection invariants, end to end: an empty plan is invisible
//! (byte-identical samples), and an arbitrary chaotic plan never loses a
//! module slot, never deadlocks, and produces the identical outcome for
//! identical `(seed, plan)` regardless of worker count.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::Rng;

use simra::bender::TestSetup;
use simra::characterize::{
    collect_group_samples, collect_group_samples_serial, run_fleet_with, run_sweep_with,
    trial_point, ExperimentConfig, FleetPolicy, MockClock, ModuleResult, Session, SweepPoint,
    TrialPoint,
};
use simra::dram::ApaTiming;
use simra::exec::{BackendChoice, TrialSpec};
use simra::faults::{CellFaultSpec, FaultPlan, ModuleFault, ModuleFaultKind};
use simra::pud::rowgroup::GroupSpec;

/// The figure runners' op shape: dispatch the point's spec through the
/// session's backend of the point's choice.
fn run_trial_via(
    session: &Session,
    tp: &TrialPoint,
    setup: &mut TestSetup,
    group: &GroupSpec,
    rng: &mut StdRng,
) -> Option<f64> {
    session
        .dispatch(tp.backend)
        .run_trial(&tp.spec, setup, group, rng)
}

/// An op that exercises RNG state, group identity, and module identity,
/// without touching cell arrays (keeps the proptests fast).
fn probe_op(setup: &mut TestSetup, g: &GroupSpec, rng: &mut StdRng) -> Option<f64> {
    Some(g.local_rows[0] as f64 + rng.gen::<f64>() + setup.module().seed() as f64 * 1e-6)
}

/// A two-module fleet at quick scale (quick itself has one module, which
/// never exercises the stealing pool).
fn two_module_config(seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::quick();
    config.seed = seed;
    config
        .modules
        .push(simra::characterize::config::ModuleUnderTest {
            profile: simra::dram::VendorProfile::mfr_m_e_die(),
            seed: seed ^ 0x51,
        });
    config
}

/// Builds one module-level fault from a small integer choice.
fn fault_from_choice(
    module_index: usize,
    choice: u8,
    at_group: usize,
    stall: f64,
) -> Option<ModuleFault> {
    let kind = match choice % 4 {
        0 => return None,
        1 => ModuleFaultKind::Dropout {
            at_group,
            recover_after_attempts: if choice >= 128 { Some(1) } else { None },
        },
        2 => ModuleFaultKind::PanicAt { at_group },
        _ => ModuleFaultKind::Hang {
            at_group,
            stall_ms: stall,
        },
    };
    Some(ModuleFault { module_index, kind })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An all-empty fault plan is indistinguishable from no plan at all:
    /// every sample matches the serial fault-free reference bit for bit,
    /// on one worker and on several.
    #[test]
    fn empty_plan_is_byte_identical_to_baseline(seed in any::<u64>(), n in 2u32..16) {
        let mut config = two_module_config(seed);
        let baseline = collect_group_samples_serial(&config, n, probe_op);
        config.faults = Some(FaultPlan::default());
        let session = Session::new(config.clone());
        prop_assert_eq!(&collect_group_samples(&session, n, probe_op), &baseline);
        let clock = MockClock::new();
        for workers in [1usize, 2, 4] {
            let outcome = run_fleet_with(&session, n, FleetPolicy::default(), &clock, workers, probe_op);
            prop_assert_eq!(outcome.slots.len(), config.modules.len());
            prop_assert_eq!(&outcome.into_samples(), &baseline);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chaos: an arbitrary plan over a three-module fleet. Whatever the
    /// plan does, the executor must (a) terminate, (b) report exactly one
    /// slot per module, and (c) produce the identical outcome on 1, 2,
    /// and 4 workers.
    #[test]
    fn chaotic_plans_never_lose_slots_and_are_schedule_independent(
        seed in any::<u64>(),
        choices in proptest::collection::vec(any::<u8>(), 3),
        groups in proptest::collection::vec(0usize..4, 3),
        stall in 0.0f64..30.0,
        with_deadline in any::<bool>(),
        with_cells in any::<bool>(),
    ) {
        let mut config = two_module_config(seed);
        config.modules.push(simra::characterize::config::ModuleUnderTest {
            profile: simra::dram::VendorProfile::mfr_h_a_die(),
            seed: seed ^ 0xA7,
        });
        let modules: Vec<ModuleFault> = choices
            .iter()
            .zip(&groups)
            .enumerate()
            .filter_map(|(i, (&c, &g))| fault_from_choice(i, c, g, stall))
            .collect();
        let plan = FaultPlan {
            seed,
            cells: with_cells.then_some(CellFaultSpec {
                seed,
                stuck_per_million: 50.0,
                weak_per_million: 50.0,
                weak_leak_multiplier: 4.0,
                sense_offset_shift: 0.0,
            }),
            modules,
            vpp_droop: None,
            deadline_ms: with_deadline.then_some(20.0),
        };
        let policy = FleetPolicy {
            deadline_ms: plan.deadline_ms,
            ..FleetPolicy::default()
        };
        config.faults = Some(plan);
        let session = Session::new(config.clone());
        let clock = MockClock::new();
        let outcomes: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&workers| run_fleet_with(&session, 3, policy, &clock, workers, probe_op))
            .collect();
        for outcome in &outcomes {
            prop_assert_eq!(outcome.slots.len(), 3, "no slot may be lost");
            for slot in &outcome.slots {
                let attempts = match slot {
                    ModuleResult::Completed { attempts, .. } => *attempts,
                    ModuleResult::Failed { attempts, .. } => *attempts,
                };
                prop_assert!((1..=3).contains(&attempts));
            }
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1], "1 vs 2 workers diverged");
        prop_assert_eq!(&outcomes[0], &outcomes[2], "1 vs 4 workers diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A plan that has been through JSON — rendered, parsed back — is
    /// not merely structurally equal: applying it to a fleet produces
    /// byte-identical outcomes to applying the original. Serialization
    /// must never perturb fault application (a resumed checkpointed run
    /// validates against the plan's JSON, so any drift here would break
    /// kill-and-resume determinism).
    #[test]
    fn json_round_tripped_plan_applies_byte_identically(
        seed in any::<u64>(),
        choices in proptest::collection::vec(any::<u8>(), 2),
        groups in proptest::collection::vec(0usize..4, 2),
        stall in 0.0f64..30.0,
        with_deadline in any::<bool>(),
        with_cells in any::<bool>(),
        shift_milli in any::<u8>(),
    ) {
        let mut config = two_module_config(seed);
        let modules: Vec<ModuleFault> = choices
            .iter()
            .zip(&groups)
            .enumerate()
            .filter_map(|(i, (&c, &g))| fault_from_choice(i, c, g, stall))
            .collect();
        let plan = FaultPlan {
            seed,
            cells: with_cells.then_some(CellFaultSpec {
                seed,
                stuck_per_million: 50.0,
                weak_per_million: 50.0,
                weak_leak_multiplier: 4.0,
                sense_offset_shift: (f32::from(shift_milli) - 128.0) / 10_000.0,
            }),
            modules,
            vpp_droop: None,
            deadline_ms: with_deadline.then_some(20.0),
        };
        let reparsed = FaultPlan::from_json(&plan.to_json()).expect("own rendering must parse");
        prop_assert_eq!(&reparsed, &plan);
        let policy = FleetPolicy {
            deadline_ms: plan.deadline_ms,
            ..FleetPolicy::default()
        };
        let clock = MockClock::new();
        config.faults = Some(plan);
        let session = Session::new(config.clone());
        let original = run_fleet_with(&session, 4, policy, &clock, 2, probe_op);
        config.faults = Some(reparsed);
        let session = Session::new(config.clone());
        let round_tripped = run_fleet_with(&session, 4, policy, &clock, 2, probe_op);
        prop_assert_eq!(&original, &round_tripped, "JSON round trip perturbed fault application");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sweep-grid scheduler's pooled rigs are invisible: a whole
    /// multi-point sweep on reused modules is byte-identical to running
    /// every point with freshly constructed modules, across vendor
    /// profiles, fault presets, and 1/2/4 workers — and, when no faults
    /// are armed, to the serial fault-free reference.
    #[test]
    fn pooled_rig_sweep_is_byte_identical_to_fresh_construction(
        seed in any::<u64>(),
        profile_choice in 0usize..4,
        preset_choice in 0usize..4,
        backend_choice in 0usize..2,
        ns in proptest::collection::vec(2u32..12, 2..5),
    ) {
        let mut config = two_module_config(seed);
        config.modules[1].profile = match profile_choice {
            0 => simra::dram::VendorProfile::mfr_h_m_die(),
            1 => simra::dram::VendorProfile::mfr_h_a_die(),
            2 => simra::dram::VendorProfile::mfr_m_e_die(),
            _ => simra::dram::VendorProfile::mfr_m_b_die(),
        };
        let preset = [None, Some("quick"), Some("dropout"), Some("chaos")][preset_choice];
        if let Some(name) = preset {
            config.faults = FaultPlan::preset(name, config.modules.len());
        }
        let policy = FleetPolicy {
            deadline_ms: config.faults.as_ref().and_then(|p| p.deadline_ms),
            ..FleetPolicy::default()
        };
        // The point parameter feeds the op, so a point handed the wrong
        // parameters (or the wrong rig state) shows in the samples.
        let points: Vec<SweepPoint<u32>> = ns.iter().map(|&n| SweepPoint::new(n, n)).collect();
        let op = |params: &u32, setup: &mut TestSetup, g: &GroupSpec, rng: &mut StdRng| {
            probe_op(setup, g, rng).map(|s| s + f64::from(*params))
        };
        let clock = MockClock::new();
        let session = Session::new(config.clone());
        for workers in [1usize, 2, 4] {
            let sweep = run_sweep_with(&session, &points, policy, &clock, workers, op);
            prop_assert_eq!(sweep.len(), points.len());
            for (point, outcome) in points.iter().zip(&sweep) {
                let n = point.n;
                let fresh = run_fleet_with(
                    &session,
                    n,
                    policy,
                    &clock,
                    workers,
                    |s: &mut TestSetup, g: &GroupSpec, r: &mut StdRng| op(&n, s, g, r),
                );
                prop_assert_eq!(outcome, &fresh, "workers={} n={}", workers, n);
                if preset.is_none() {
                    let serial = collect_group_samples_serial(&config, n, |s, g, r| op(&n, s, g, r));
                    prop_assert_eq!(outcome.samples(), serial);
                }
            }
        }
        // Backend-generic leg: the same pooled-vs-fresh identity must hold
        // when the op is a real trait-dispatched trial (either backend)
        // rather than a synthetic probe.
        config.backend = if backend_choice == 0 {
            BackendChoice::Analog
        } else {
            BackendChoice::Surrogate
        };
        let spec = TrialSpec::activation(ApaTiming::from_ns(2.5, 2.5));
        let trial_points: Vec<SweepPoint<TrialPoint>> = ns
            .iter()
            .take(2)
            .map(|&n| trial_point(&config, n, spec))
            .collect();
        let session = Session::new(config.clone());
        for workers in [1usize, 2] {
            let sweep = run_sweep_with(
                &session,
                &trial_points,
                policy,
                &clock,
                workers,
                |tp, s, g, r| run_trial_via(&session, tp, s, g, r),
            );
            prop_assert_eq!(sweep.len(), trial_points.len());
            for (point, outcome) in trial_points.iter().zip(&sweep) {
                let tp = point.params;
                let fresh = run_fleet_with(
                    &session,
                    point.n,
                    policy,
                    &clock,
                    workers,
                    |s: &mut TestSetup, g: &GroupSpec, r: &mut StdRng| {
                        run_trial_via(&session, &tp, s, g, r)
                    },
                );
                prop_assert_eq!(
                    outcome, &fresh,
                    "backend {} leg: workers={} n={}", config.backend, workers, point.n
                );
                if preset.is_none() {
                    let serial = collect_group_samples_serial(&config, point.n, |s, g, r| {
                        run_trial_via(&session, &tp, s, g, r)
                    });
                    prop_assert_eq!(outcome.samples(), serial);
                }
            }
        }
    }
}

/// Deterministic single-case run of the proptest's backend-generic leg,
/// so environments that skip property tests still cover trait-dispatched
/// trials on the pooled scheduler.
#[test]
fn backend_generic_pooled_sweep_matches_fresh_construction() {
    for backend in [BackendChoice::Analog, BackendChoice::Surrogate] {
        let mut config = two_module_config(0xBAC0);
        config.backend = backend;
        config.faults = FaultPlan::preset("quick", config.modules.len());
        let policy = FleetPolicy {
            deadline_ms: config.faults.as_ref().and_then(|p| p.deadline_ms),
            ..FleetPolicy::default()
        };
        let spec = TrialSpec::activation(ApaTiming::from_ns(2.5, 2.5));
        let points: Vec<SweepPoint<TrialPoint>> = [2u32, 8]
            .iter()
            .map(|&n| trial_point(&config, n, spec))
            .collect();
        let clock = MockClock::new();
        let session = Session::new(config.clone());
        let sweep = run_sweep_with(&session, &points, policy, &clock, 2, |tp, s, g, r| {
            run_trial_via(&session, tp, s, g, r)
        });
        assert_eq!(sweep.len(), points.len());
        for (point, outcome) in points.iter().zip(&sweep) {
            let tp = point.params;
            let fresh = run_fleet_with(
                &session,
                point.n,
                policy,
                &clock,
                2,
                |s: &mut TestSetup, g: &GroupSpec, r: &mut StdRng| {
                    run_trial_via(&session, &tp, s, g, r)
                },
            );
            assert_eq!(outcome, &fresh, "backend {backend} n={}", point.n);
            assert!(
                outcome.samples().iter().any(|s| s.is_finite()),
                "backend {backend} n={} produced no finite samples",
                point.n
            );
        }
    }
}

/// Golden test for the partial-results path: the dropout preset on a
/// two-module fleet completes, reports the lost module's cause, and
/// keeps the healthy module's samples intact.
#[test]
fn dropout_preset_reports_partial_results() {
    let mut config = two_module_config(0xD5A);
    let plan = FaultPlan::preset("dropout", config.modules.len()).expect("preset exists");
    config.faults = Some(plan);
    let session = Session::new(config);
    let clock = MockClock::new();
    let outcome = run_fleet_with(&session, 4, FleetPolicy::default(), &clock, 2, probe_op);
    assert_eq!(outcome.slots.len(), 2);
    // Module 0 panics once (heals on retry); module 1 drops out for good.
    match &outcome.slots[0] {
        ModuleResult::Completed { attempts, samples } => {
            assert_eq!(*attempts, 2);
            assert!(!samples.is_empty());
        }
        other => panic!("module 0 must heal on retry, got {other:?}"),
    }
    match &outcome.slots[1] {
        ModuleResult::Failed { attempts, cause } => {
            assert_eq!(*attempts, 3);
            assert_eq!(cause.to_string(), "dropped out at group 0");
        }
        other => panic!("module 1 must drop out, got {other:?}"),
    }
    assert_eq!(outcome.ok_modules(), 1);
    assert!(outcome.describe().starts_with("1/2 modules completed"));
}
