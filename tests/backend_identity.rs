//! Golden byte-identity tests for the backend layer.
//!
//! The `AnalogBackend` contract is that the `PudBackend` refactor is
//! *invisible*: every figure runner must produce bit-for-bit the same
//! samples it produced when the ops were inlined closures. These tests
//! freeze the pre-refactor closures verbatim (including their RNG draw
//! order — the part a refactor most easily breaks) and diff a
//! quick-scale sweep through the trait-dispatched path against them.
//!
//! The surrogate gets the complementary check: not identity, but its
//! documented tolerance band against the analog reference.

use rand::rngs::StdRng;
use rand::Rng;

use simra::bender::TestSetup;
use simra::characterize::{
    sweep_group_samples, sweep_trial_samples, trial_point, ExperimentConfig, Session, SweepPoint,
};
use simra::dram::{ApaTiming, BitRow, DataPattern, Manufacturer};
use simra::exec::{AnalogBackend, BackendChoice, MrcSource, PudBackend, TrialSpec};
use simra::pud::act::activation_success;
use simra::pud::maj::{majx_success, MajConfig};
use simra::pud::multirowcopy::multirowcopy_success;
use simra::pud::rowgroup::GroupSpec;

/// Bitwise view of a sample matrix: equality up to NaN payloads.
fn bits(samples: &[Vec<f64>]) -> Vec<Vec<u64>> {
    samples
        .iter()
        .map(|row| row.iter().map(|s| s.to_bits()).collect())
        .collect()
}

// ---- Frozen pre-refactor ops (verbatim copies of the old closures) ----

#[derive(Debug, Clone, Copy)]
struct LegacyActPoint {
    timing: ApaTiming,
    temperature_c: Option<f64>,
    vpp_v: Option<f64>,
}

fn legacy_activation_op(
    point: &LegacyActPoint,
    setup: &mut TestSetup,
    group: &GroupSpec,
    rng: &mut StdRng,
) -> Option<f64> {
    if let Some(t) = point.temperature_c {
        setup
            .set_temperature(t)
            .expect("swept temperature is in range");
    }
    if let Some(v) = point.vpp_v {
        setup.set_vpp(v).expect("swept V_PP is in range");
    }
    activation_success(setup, group, point.timing, DataPattern::Random, rng).ok()
}

#[derive(Debug, Clone, Copy)]
struct LegacyMajPoint {
    x: usize,
    timing: ApaTiming,
    pattern: DataPattern,
    temperature_c: Option<f64>,
    vpp_v: Option<f64>,
}

fn legacy_majx_op(
    point: &LegacyMajPoint,
    setup: &mut TestSetup,
    group: &GroupSpec,
    rng: &mut StdRng,
) -> Option<f64> {
    if point.x >= 9 && setup.module().profile().manufacturer == Manufacturer::M {
        return None;
    }
    if let Some(t) = point.temperature_c {
        setup
            .set_temperature(t)
            .expect("swept temperature is in range");
    }
    if let Some(v) = point.vpp_v {
        setup.set_vpp(v).expect("swept V_PP is in range");
    }
    let maj_config = MajConfig::default();
    majx_success(
        setup,
        group,
        point.x,
        point.timing,
        point.pattern,
        &maj_config,
        rng,
    )
    .ok()
}

#[derive(Debug, Clone, Copy)]
enum LegacyMrcPattern {
    AllOnes,
    Random,
}

#[derive(Debug, Clone, Copy)]
struct LegacyMrcPoint {
    timing: ApaTiming,
    pattern: LegacyMrcPattern,
    temperature_c: Option<f64>,
    vpp_v: Option<f64>,
}

fn legacy_mrc_op(
    point: &LegacyMrcPoint,
    setup: &mut TestSetup,
    group: &GroupSpec,
    rng: &mut StdRng,
) -> Option<f64> {
    if let Some(t) = point.temperature_c {
        setup
            .set_temperature(t)
            .expect("swept temperature is in range");
    }
    if let Some(v) = point.vpp_v {
        setup.set_vpp(v).expect("swept V_PP is in range");
    }
    let cols = setup.module().geometry().cols_per_row as usize;
    let img = match point.pattern {
        LegacyMrcPattern::AllOnes => BitRow::ones(cols),
        LegacyMrcPattern::Random => BitRow::from_bits((0..cols).map(|_| rng.gen())),
    };
    multirowcopy_success(setup, group, point.timing, &img).ok()
}

// ---- The identity tests ----

/// A two-vendor quick-scale config (Mfr. M exercises the MAJ9 guard).
fn config() -> ExperimentConfig {
    let mut config = ExperimentConfig::quick();
    config
        .modules
        .push(simra::characterize::config::ModuleUnderTest {
            profile: simra::dram::VendorProfile::mfr_m_e_die(),
            seed: 19,
        });
    config
}

#[test]
fn activation_sweep_is_byte_identical_through_the_trait() {
    let config = config();
    let grid: Vec<(u32, ApaTiming, Option<f64>, Option<f64>)> = vec![
        (2, ApaTiming::from_ns(1.5, 1.5), None, None),
        (8, ApaTiming::from_ns(3.0, 3.0), None, None),
        (32, ApaTiming::best_for_activation(), Some(90.0), None),
        (16, ApaTiming::best_for_activation(), None, Some(2.1)),
    ];
    let legacy_points: Vec<SweepPoint<LegacyActPoint>> = grid
        .iter()
        .map(|&(n, timing, temperature_c, vpp_v)| {
            SweepPoint::new(
                n,
                LegacyActPoint {
                    timing,
                    temperature_c,
                    vpp_v,
                },
            )
        })
        .collect();
    let trait_points: Vec<_> = grid
        .iter()
        .map(|&(n, timing, t, v)| {
            let mut spec = TrialSpec::activation(timing);
            if let Some(t) = t {
                spec = spec.at_temperature(t);
            }
            if let Some(v) = v {
                spec = spec.at_vpp(v);
            }
            trial_point(&config, n, spec)
        })
        .collect();
    let session = Session::new(config.clone());
    let legacy = sweep_group_samples(&session, &legacy_points, legacy_activation_op);
    let dispatched = sweep_trial_samples(&session, &trait_points);
    assert_eq!(bits(&legacy), bits(&dispatched));
}

#[test]
fn majx_sweep_is_byte_identical_through_the_trait() {
    let config = config();
    // MAJ9 probes the Mfr-M guard; it must refuse *before* consuming
    // any stream so later points replay identically.
    let grid: Vec<(u32, usize, DataPattern)> = vec![
        (32, 3, DataPattern::Random),
        (32, 5, DataPattern::Solid),
        (16, 9, DataPattern::Random),
        (32, 7, DataPattern::Checkered),
    ];
    let legacy_points: Vec<SweepPoint<LegacyMajPoint>> = grid
        .iter()
        .map(|&(n, x, pattern)| {
            SweepPoint::new(
                n,
                LegacyMajPoint {
                    x,
                    timing: ApaTiming::best_for_majx(),
                    pattern,
                    temperature_c: None,
                    vpp_v: None,
                },
            )
        })
        .collect();
    let trait_points: Vec<_> = grid
        .iter()
        .map(|&(n, x, pattern)| {
            trial_point(
                &config,
                n,
                TrialSpec::majx(x, ApaTiming::best_for_majx(), pattern),
            )
        })
        .collect();
    let session = Session::new(config.clone());
    let legacy = sweep_group_samples(&session, &legacy_points, legacy_majx_op);
    let dispatched = sweep_trial_samples(&session, &trait_points);
    assert_eq!(bits(&legacy), bits(&dispatched));
}

#[test]
fn mrc_sweep_is_byte_identical_through_the_trait() {
    let config = config();
    let timing = ApaTiming::best_for_multi_row_copy();
    let legacy_points = vec![
        SweepPoint::new(
            8,
            LegacyMrcPoint {
                timing,
                pattern: LegacyMrcPattern::Random,
                temperature_c: None,
                vpp_v: None,
            },
        ),
        SweepPoint::new(
            32,
            LegacyMrcPoint {
                timing,
                pattern: LegacyMrcPattern::AllOnes,
                temperature_c: Some(70.0),
                vpp_v: None,
            },
        ),
    ];
    let trait_points = vec![
        trial_point(
            &config,
            8,
            TrialSpec::multirowcopy(timing, MrcSource::RandomBits),
        ),
        trial_point(
            &config,
            32,
            TrialSpec::multirowcopy(timing, MrcSource::AllOnes).at_temperature(70.0),
        ),
    ];
    let session = Session::new(config.clone());
    let legacy = sweep_group_samples(&session, &legacy_points, legacy_mrc_op);
    let dispatched = sweep_trial_samples(&session, &trait_points);
    assert_eq!(bits(&legacy), bits(&dispatched));
}

#[test]
fn random_row_source_matches_the_word_drawing_convention() {
    // The per-die table draws MRC images with `BitRow::random` (whole
    // words), not bit-by-bit; `MrcSource::RandomRow` must reproduce
    // that stream exactly.
    use rand::SeedableRng;
    let profile = simra::dram::VendorProfile::mfr_h_m_die();
    let mut legacy_setup = TestSetup::with_module(simra::dram::DramModule::new(profile.clone(), 4));
    let mut trait_setup = TestSetup::with_module(simra::dram::DramModule::new(profile, 4));
    let mut legacy_rng = StdRng::seed_from_u64(99);
    let group = simra::pud::rowgroup::random_group(
        legacy_setup.module().geometry(),
        simra::dram::BankId::new(0),
        simra::dram::SubarrayId::new(0),
        16,
        &mut legacy_rng,
    )
    .expect("group fits");
    let cols = legacy_setup.module().geometry().cols_per_row as usize;
    let timing = ApaTiming::best_for_multi_row_copy();
    let legacy = {
        let img = BitRow::random(&mut legacy_rng, cols);
        multirowcopy_success(&mut legacy_setup, &group, timing, &img).ok()
    };
    // Re-seed the trait stream to the exact same position.
    let mut trait_rng = StdRng::seed_from_u64(99);
    let group2 = simra::pud::rowgroup::random_group(
        trait_setup.module().geometry(),
        simra::dram::BankId::new(0),
        simra::dram::SubarrayId::new(0),
        16,
        &mut trait_rng,
    )
    .expect("group fits");
    let spec = TrialSpec::multirowcopy(timing, MrcSource::RandomRow);
    let dispatched = AnalogBackend.run_trial(&spec, &mut trait_setup, &group2, &mut trait_rng);
    assert_eq!(legacy.map(f64::to_bits), dispatched.map(f64::to_bits));
}

#[test]
fn surrogate_fig4a_stays_within_the_documented_band() {
    // Not identity — the surrogate's contract is its tolerance band:
    // paired same-N observations match up to cancelled trial noise, and
    // absolute levels stay within a few percentage points.
    let analog_cfg = ExperimentConfig::quick();
    let mut surrogate_cfg = ExperimentConfig::quick();
    surrogate_cfg.backend = BackendChoice::Surrogate;
    let analog = simra::characterize::fig4a_activation_temperature(&Session::new(analog_cfg));
    let surrogate = simra::characterize::fig4a_activation_temperature(&Session::new(surrogate_cfg));
    for (ra, rs) in analog.rows.iter().zip(&surrogate.rows) {
        assert_eq!(ra.label, rs.label);
        for (va, vs) in ra.values.iter().zip(&rs.values) {
            assert!(
                (va - vs).abs() < 5.0,
                "row {}: analog {va} vs surrogate {vs} (band: 5 pp)",
                ra.label
            );
        }
    }
}
