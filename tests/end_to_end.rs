//! Cross-crate integration tests: full experiment pipelines against the
//! facade crate, including the paper's control results (Samsung guard,
//! Limitation 3).

use rand::rngs::StdRng;
use rand::SeedableRng;

use simra::bender::TestSetup;
use simra::dram::{ApaTiming, BankId, BitRow, DataPattern, RowAddr, SubarrayId, VendorProfile};
use simra::pud::act::activation_success;
use simra::pud::maj::{exec_majx, majx_success, MajConfig};
use simra::pud::multirowcopy::exec_multirowcopy;
use simra::pud::rowclone::exec_rowclone;
use simra::pud::rowgroup::{random_group, sample_groups, tile_groups};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn full_pipeline_on_every_vendor_profile() {
    // Activation → MAJ3 → Multi-RowCopy on each PUD-capable profile.
    for profile in [
        VendorProfile::mfr_h_m_die(),
        VendorProfile::mfr_h_m_die_640(),
        VendorProfile::mfr_h_a_die(),
        VendorProfile::mfr_m_e_die(),
        VendorProfile::mfr_m_b_die(),
    ] {
        let label = profile.label();
        let mut setup = TestSetup::new(profile, 3);
        let mut rng = rng(1);
        let group = random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            32,
            &mut rng,
        )
        .expect("32-row group");
        let act = activation_success(
            &mut setup,
            &group,
            ApaTiming::best_for_activation(),
            DataPattern::Random,
            &mut rng,
        )
        .unwrap();
        // Mfr. M dies carry a larger variation scale; their activation
        // success sits slightly below Mfr. H's (both ≥ ~98 % here vs the
        // paper's ≥ 99.85 % fleet-wide average).
        assert!(act > 0.97, "{label}: activation {act}");
        let maj = majx_success(
            &mut setup,
            &group,
            3,
            ApaTiming::best_for_majx(),
            DataPattern::Random,
            &MajConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(maj > 0.9, "{label}: MAJ3 {maj}");
        let cols = setup.module().geometry().cols_per_row as usize;
        let src = BitRow::random(&mut rng, cols);
        let mrc = simra::pud::multirowcopy::multirowcopy_success(
            &mut setup,
            &group,
            ApaTiming::best_for_multi_row_copy(),
            &src,
        )
        .unwrap();
        assert!(mrc > 0.98, "{label}: Multi-RowCopy {mrc}");
    }
}

#[test]
fn samsung_control_group_shows_no_pud() {
    // §9 Limitation 1: the guard swallows the violating command pair.
    let mut setup = TestSetup::new(VendorProfile::mfr_s(), 3);
    let mut rng = rng(2);
    let group = random_group(
        setup.module().geometry(),
        BankId::new(0),
        SubarrayId::new(0),
        8,
        &mut rng,
    )
    .unwrap();
    let act = activation_success(
        &mut setup,
        &group,
        ApaTiming::best_for_activation(),
        DataPattern::Random,
        &mut rng,
    )
    .unwrap();
    assert!(act < 0.15, "guarded part must fail the group, got {act}");
    assert!(majx_success(
        &mut setup,
        &group,
        3,
        ApaTiming::best_for_majx(),
        DataPattern::Random,
        &MajConfig::default(),
        &mut rng,
    )
    .is_err());
    assert!(exec_rowclone(&mut setup, BankId::new(0), RowAddr::new(0), RowAddr::new(1)).is_err());
}

#[test]
fn pud_operations_do_not_disturb_other_rows() {
    // §9 Limitation 3: the paper checks the whole bank for bitflips
    // outside the simultaneously activated group and finds none.
    let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 9);
    let mut rng = rng(3);
    let geometry = *setup.module().geometry();
    let cols = geometry.cols_per_row as usize;
    let bank = BankId::new(0);

    // Fill the subarray with known data.
    let mut images = Vec::new();
    for r in 0..geometry.rows_per_subarray {
        let img = BitRow::random(&mut rng, cols);
        setup.init_row(bank, RowAddr::new(r), &img).unwrap();
        images.push(img);
    }
    // Run one of each PUD operation on a 16-row group.
    let group = random_group(&geometry, bank, SubarrayId::new(0), 16, &mut rng).unwrap();
    let ops = simra::pud::maj::random_operands(3, cols, &mut rng);
    exec_majx(
        &mut setup,
        &group,
        &ops,
        ApaTiming::best_for_majx(),
        &mut rng,
    )
    .unwrap();
    exec_multirowcopy(&mut setup, &group, ApaTiming::best_for_multi_row_copy()).unwrap();

    // Every row outside the group (and outside the MAJ layout's written
    // rows, which is the group itself) must be untouched.
    for r in 0..geometry.rows_per_subarray {
        if group.local_rows.contains(&r) {
            continue;
        }
        let read = setup.read_row(bank, RowAddr::new(r)).unwrap();
        assert_eq!(
            read, images[r as usize],
            "row {r} outside the group was disturbed"
        );
    }
}

#[test]
fn wipe_pipeline_covers_a_whole_subarray() {
    let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 5);
    let mut rng = rng(4);
    let geometry = *setup.module().geometry();
    let cols = geometry.cols_per_row as usize;
    let bank = BankId::new(2);
    for r in 0..geometry.rows_per_subarray {
        let row = geometry.join_row(SubarrayId::new(0), r);
        setup
            .init_row(bank, row, &BitRow::random(&mut rng, cols))
            .unwrap();
    }
    for group in tile_groups(&geometry, bank, SubarrayId::new(0)) {
        setup
            .init_row(bank, group.r_f, &BitRow::zeros(cols))
            .unwrap();
        exec_multirowcopy(&mut setup, &group, ApaTiming::best_for_multi_row_copy()).unwrap();
    }
    let mut residual = 0usize;
    for r in 0..geometry.rows_per_subarray {
        let row = geometry.join_row(SubarrayId::new(0), r);
        residual += setup.read_row(bank, row).unwrap().count_ones();
    }
    let total = geometry.rows_per_subarray as usize * cols;
    assert!(
        (residual as f64) < 0.001 * total as f64,
        "wipe left {residual}/{total} bits"
    );
}

#[test]
fn group_sampling_and_ops_compose_across_banks() {
    let mut setup = TestSetup::new(VendorProfile::mfr_m_e_die(), 6);
    let mut rng = rng(5);
    let groups = sample_groups(setup.module().geometry(), 8, 4, 2, 2, &mut rng);
    assert_eq!(groups.len(), 4 * 2 * 2);
    for g in &groups {
        let s = activation_success(
            &mut setup,
            g,
            ApaTiming::best_for_activation(),
            DataPattern::Random,
            &mut rng,
        )
        .unwrap();
        assert!(s > 0.98, "bank {} group failed: {s}", g.bank);
    }
}

#[test]
fn operating_conditions_flow_through_the_whole_stack() {
    let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 8);
    let mut rng = rng(6);
    let group = random_group(
        setup.module().geometry(),
        BankId::new(0),
        SubarrayId::new(0),
        32,
        &mut rng,
    )
    .unwrap();
    let cfg = MajConfig::default();
    let t = ApaTiming::best_for_majx();
    setup.set_temperature(50.0).unwrap();
    setup.set_vpp(2.5).unwrap();
    let nominal = majx_success(
        &mut setup,
        &group,
        5,
        t,
        DataPattern::Random,
        &cfg,
        &mut rng,
    )
    .unwrap();
    setup.set_temperature(90.0).unwrap();
    let hot = majx_success(
        &mut setup,
        &group,
        5,
        t,
        DataPattern::Random,
        &cfg,
        &mut rng,
    )
    .unwrap();
    // Obs. 11: warmer chips share charge a little faster — success must
    // not collapse, and typically improves slightly.
    assert!(
        (hot - nominal).abs() < 0.2,
        "temperature effect too large: {nominal} → {hot}"
    );
}
