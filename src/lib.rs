//! # simra — the SiMRA-DRAM reproduction, under one roof
//!
//! A software reproduction of *Simultaneous Many-Row Activation in
//! Off-the-Shelf DRAM Chips: Experimental Characterization and Analysis*
//! (DSN 2024): Processing-Using-DRAM operations — simultaneous many-row
//! activation, MAJX with input replication, RowClone, Multi-RowCopy —
//! on a calibrated behavioural DDR4 device model, plus the paper's
//! complete evaluation as regenerable experiments.
//!
//! This crate re-exports every member crate of the workspace; see
//! [`prelude`] for the handful of types most programs start from.
//!
//! # Example
//!
//! ```
//! use simra::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Mount a modelled SK Hynix-like module and pick a 32-row group.
//! let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 42);
//! let mut rng = StdRng::seed_from_u64(1);
//! let group = simra::pud::rowgroup::random_group(
//!     setup.module().geometry(),
//!     BankId::new(0),
//!     SubarrayId::new(0),
//!     32,
//!     &mut rng,
//! )
//! .expect("512-row subarrays always host 32-row groups");
//!
//! // In-DRAM majority-of-three with 10× input replication.
//! let success = simra::pud::maj::majx_success(
//!     &mut setup,
//!     &group,
//!     3,
//!     ApaTiming::best_for_majx(),
//!     DataPattern::Random,
//!     &simra::pud::maj::MajConfig::default(),
//!     &mut rng,
//! )?;
//! assert!(success > 0.9);
//! # Ok(())
//! # }
//! ```

pub use simra_analog as analog;
pub use simra_bender as bender;
pub use simra_casestudy as casestudy;
pub use simra_characterize as characterize;
pub use simra_core as pud;
pub use simra_decoder as decoder;
pub use simra_dram as dram;
pub use simra_exec as exec;
pub use simra_faults as faults;

/// The types most programs start from.
pub mod prelude {
    pub use simra_analog::{CircuitParams, OperatingConditions};
    pub use simra_bender::{BenderProgram, TestSetup};
    pub use simra_core::rowgroup::GroupSpec;
    pub use simra_core::PudError;
    pub use simra_decoder::{ApaOutcome, RowDecoder};
    pub use simra_dram::{
        ApaTiming, BankId, BitRow, DataPattern, DramModule, RowAddr, SubarrayId, VendorProfile,
    };
    pub use simra_exec::{AnalogBackend, BackendChoice, PudBackend, SurrogateBackend, TrialSpec};
}
