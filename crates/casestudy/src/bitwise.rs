//! Functional majority-based bulk-bitwise operations on the modelled
//! DRAM, grounding the Fig. 16 analysis: AND/OR are a single MAJ3 with a
//! control row (Ambit-style), XOR is the standard two-level construction.
//!
//! Complemented operands are staged by the host (real systems keep
//! pre-complemented copies or use dual-contact rows; the tested COTS chips
//! have neither, so ComputeDRAM-style flows also stage complements).

use rand::rngs::StdRng;

use simra_bender::TestSetup;
use simra_core::maj::exec_majx;
use simra_core::rowgroup::GroupSpec;
use simra_core::PudError;
use simra_dram::{ApaTiming, BitRow};

/// Bulk AND via `MAJ3(a, b, 0)` on the group's replicated layout.
///
/// # Errors
///
/// Propagates MAJX validation/sequencer errors.
pub fn exec_and(
    setup: &mut TestSetup,
    group: &GroupSpec,
    a: &BitRow,
    b: &BitRow,
    rng: &mut StdRng,
) -> Result<BitRow, PudError> {
    let zeros = BitRow::zeros(a.len());
    exec_majx(
        setup,
        group,
        &[a.clone(), b.clone(), zeros],
        ApaTiming::best_for_majx(),
        rng,
    )
}

/// Bulk OR via `MAJ3(a, b, 1)`.
///
/// # Errors
///
/// Propagates MAJX validation/sequencer errors.
pub fn exec_or(
    setup: &mut TestSetup,
    group: &GroupSpec,
    a: &BitRow,
    b: &BitRow,
    rng: &mut StdRng,
) -> Result<BitRow, PudError> {
    let ones = BitRow::ones(a.len());
    exec_majx(
        setup,
        group,
        &[a.clone(), b.clone(), ones],
        ApaTiming::best_for_majx(),
        rng,
    )
}

/// Bulk XOR via `OR(AND(a, ~b), AND(~a, b))` — three in-DRAM majority
/// operations plus host-staged complements.
///
/// # Errors
///
/// Propagates MAJX validation/sequencer errors.
pub fn exec_xor(
    setup: &mut TestSetup,
    group: &GroupSpec,
    a: &BitRow,
    b: &BitRow,
    rng: &mut StdRng,
) -> Result<BitRow, PudError> {
    let left = exec_and(setup, group, a, &b.complement(), rng)?;
    let right = exec_and(setup, group, &a.complement(), b, rng)?;
    exec_or(setup, group, &left, &right, rng)
}

/// Fraction of bits where `got` matches `expected` (1.0 = exact).
pub fn match_fraction(got: &BitRow, expected: &BitRow) -> f64 {
    got.matches(expected) as f64 / expected.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use simra_core::rowgroup::random_group;
    use simra_dram::{BankId, DataPattern, SubarrayId, VendorProfile};

    fn env() -> (TestSetup, GroupSpec, StdRng) {
        let setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 3);
        let mut rng = StdRng::seed_from_u64(17);
        let group = random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            32,
            &mut rng,
        )
        .expect("group");
        (setup, group, rng)
    }

    fn reference_and(a: &BitRow, b: &BitRow) -> BitRow {
        BitRow::from_bits((0..a.len()).map(|i| a.get(i) && b.get(i)))
    }

    fn reference_or(a: &BitRow, b: &BitRow) -> BitRow {
        BitRow::from_bits((0..a.len()).map(|i| a.get(i) || b.get(i)))
    }

    fn reference_xor(a: &BitRow, b: &BitRow) -> BitRow {
        BitRow::from_bits((0..a.len()).map(|i| a.get(i) ^ b.get(i)))
    }

    #[test]
    fn and_matches_reference_on_nearly_all_bits() {
        let (mut setup, group, mut rng) = env();
        let cols = setup.module().geometry().cols_per_row as usize;
        let a = DataPattern::Random.row_image(0, cols, &mut rng);
        let b = DataPattern::Random.row_image(1, cols, &mut rng);
        let got = exec_and(&mut setup, &group, &a, &b, &mut rng).unwrap();
        let frac = match_fraction(&got, &reference_and(&a, &b));
        assert!(frac > 0.97, "AND correctness {frac}");
    }

    #[test]
    fn or_matches_reference_on_nearly_all_bits() {
        let (mut setup, group, mut rng) = env();
        let cols = setup.module().geometry().cols_per_row as usize;
        let a = DataPattern::Random.row_image(0, cols, &mut rng);
        let b = DataPattern::Random.row_image(1, cols, &mut rng);
        let got = exec_or(&mut setup, &group, &a, &b, &mut rng).unwrap();
        let frac = match_fraction(&got, &reference_or(&a, &b));
        assert!(frac > 0.97, "OR correctness {frac}");
    }

    #[test]
    fn xor_matches_reference_on_nearly_all_bits() {
        let (mut setup, group, mut rng) = env();
        let cols = setup.module().geometry().cols_per_row as usize;
        let a = DataPattern::Random.row_image(0, cols, &mut rng);
        let b = DataPattern::Random.row_image(1, cols, &mut rng);
        let got = exec_xor(&mut setup, &group, &a, &b, &mut rng).unwrap();
        // Three chained in-DRAM ops accumulate error: allow a bit more.
        let frac = match_fraction(&got, &reference_xor(&a, &b));
        assert!(frac > 0.93, "XOR correctness {frac}");
    }

    #[test]
    fn and_with_all_ones_is_identity() {
        let (mut setup, group, mut rng) = env();
        let cols = setup.module().geometry().cols_per_row as usize;
        let a = DataPattern::Random.row_image(0, cols, &mut rng);
        let ones = BitRow::ones(cols);
        let got = exec_and(&mut setup, &group, &a, &ones, &mut rng).unwrap();
        assert!(match_fraction(&got, &a) > 0.97);
    }
}
