//! # simra-casestudy
//!
//! The paper's §8 case studies:
//!
//! 1. **Majority-based computation** ([`microbench`], Fig. 16): seven
//!    arithmetic & logic microbenchmarks (AND, OR, XOR, ADD, SUB, MUL,
//!    DIV) on 32-bit elements, implemented from majority-logic
//!    constructions, with execution time modelled from measured PUD
//!    operation latencies and empirical success rates — exactly the
//!    paper's methodology ("we analytically model the execution time
//!    using the highest throughput values").
//! 2. **Cold-boot-attack prevention** ([`coldboot`], Fig. 17): content
//!    destruction of a whole bank by RowClone, Frac, or Multi-RowCopy,
//!    compared by total wipe time.
//!
//! [`bitwise`] grounds case study 1 functionally: it actually runs
//! majority-based AND/OR/XOR on the modelled DRAM and checks the result
//! against a scalar reference.

pub mod bitserial;
pub mod bitwise;
pub mod coldboot;
pub mod microbench;
pub mod throughput;
pub mod tmr;

pub use coldboot::fig17_coldboot;
pub use microbench::{fig16_microbenchmarks, fig16_microbenchmarks_on};
