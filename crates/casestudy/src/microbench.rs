//! Case study 1 (§8.1, Fig. 16): seven arithmetic & logic microbenchmarks
//! built from majority operations.
//!
//! Step counts come from standard majority-logic constructions:
//!
//! * a single MAJX with `X − k` inputs tied to 0 (1) computes a `k`-input
//!   AND (OR), with `k = (X+1)/2` — wider majorities collapse reduction
//!   trees (MAJ3 → AND2, MAJ5 → AND3, MAJ7 → AND4, MAJ9 → AND5);
//! * XOR_k is built from ~3 majority levels per node (Alkaldy et al.);
//! * a full adder is `carry = MAJ3(a, b, c)` and, with MAJ5 available,
//!   `sum = MAJ5(a, b, c, ~carry, ~carry)` in one step (vs a 3-step
//!   majority XOR network with MAJ3 only); MAJ7/MAJ9 additionally allow a
//!   2-bit carry step;
//! * multiplication is schoolbook (partial products + adds), division is
//!   restoring (a subtract per quotient bit).
//!
//! Execution time = steps × per-operation latency (staging RowClones +
//! replication Multi-RowCopy + the APA) ÷ the best-group success rate —
//! the paper's throughput model, which is exactly what makes MAJ9
//! counterproductive on Mfr. H (Fig. 16's 114 % degradation).

use serde::{Deserialize, Serialize};

use simra_dram::{Manufacturer, VendorProfile};
use simra_exec::{AnalogBackend, PudBackend};

use crate::throughput::{measure_majx_throughput_on, MajThroughput};
use simra_characterize::report::Table;

/// Elements per microbenchmark: 8 KB of 32-bit words.
pub const ELEMENTS: u64 = 8 * 1024 / 4;
/// Word width.
pub const WORD_BITS: u64 = 32;

/// The seven microbenchmarks of Fig. 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Microbench {
    /// Bulk AND reduction.
    And,
    /// Bulk OR reduction.
    Or,
    /// Bulk XOR reduction.
    Xor,
    /// Element-wise 32-bit addition.
    Add,
    /// Element-wise 32-bit subtraction.
    Sub,
    /// Element-wise 32-bit multiplication.
    Mul,
    /// Element-wise 32-bit division.
    Div,
}

impl Microbench {
    /// All seven, in the paper's order.
    pub const ALL: [Microbench; 7] = [
        Microbench::And,
        Microbench::Or,
        Microbench::Xor,
        Microbench::Add,
        Microbench::Sub,
        Microbench::Mul,
        Microbench::Div,
    ];

    /// Majority-operation steps to run this microbenchmark with MAJX.
    pub fn steps(self, x: usize) -> f64 {
        let k = x.div_ceil(2) as f64; // AND/OR fan-in of one MAJX
        let e = ELEMENTS as f64;
        let w = WORD_BITS as f64;
        // Full-adder step cost per bit position.
        let add_per_bit = match x {
            3 => 5.0,  // carry (1) + majority-XOR sum network (3) + staging
            5 => 3.0,  // carry (1) + MAJ5 sum (1) + complement (1)
            7 => 2.0,  // 2-bit carry step halves the carry chain
            _ => 1.75, // MAJ9: 2-bit carry + wider sum absorption
        };
        match self {
            Microbench::And | Microbench::Or => (e - 1.0) / (k - 1.0),
            Microbench::Xor => 3.0 * (e - 1.0) / (k - 1.0),
            Microbench::Add => w * add_per_bit,
            Microbench::Sub => w * add_per_bit + 0.5 * w,
            Microbench::Mul => w + (w - 1.0) * w * add_per_bit / 4.0,
            Microbench::Div => 1.25 * w * w * add_per_bit / 4.0,
        }
    }
}

impl std::fmt::Display for Microbench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Microbench::And => "AND",
            Microbench::Or => "OR",
            Microbench::Xor => "XOR",
            Microbench::Add => "ADD",
            Microbench::Sub => "SUB",
            Microbench::Mul => "MUL",
            Microbench::Div => "DIV",
        };
        f.write_str(s)
    }
}

/// Execution time (ns) of a microbenchmark given a MAJX throughput point.
pub fn execution_time_ns(micro: Microbench, t: &MajThroughput) -> f64 {
    micro.steps(t.x) * t.effective_ns()
}

/// Fig. 16: speedup of each microbenchmark using MAJ5/MAJ7/MAJ9 over the
/// state-of-the-art baseline (MAJ3 with 4-row activation), per
/// manufacturer. Values are × speedup (1.0 = baseline, < 1.0 = slower).
pub fn fig16_microbenchmarks(profiles: &[VendorProfile], groups: usize, seed: u64) -> Table {
    fig16_microbenchmarks_on(&AnalogBackend, profiles, groups, seed)
}

/// [`fig16_microbenchmarks`] with success rates measured by an explicit
/// [`PudBackend`].
pub fn fig16_microbenchmarks_on(
    backend: &dyn PudBackend,
    profiles: &[VendorProfile],
    groups: usize,
    seed: u64,
) -> Table {
    let mut table = Table::new(
        "Fig. 16: microbenchmark speedup over MAJ3 with 4-row activation",
        format!("{groups} sampled groups per MAJX point, best group selected"),
        vec!["MAJ5".into(), "MAJ7".into(), "MAJ9".into()],
    );
    for profile in profiles {
        let xs: &[usize] = match profile.manufacturer {
            Manufacturer::M => &[5, 7],
            _ => &[5, 7, 9],
        };
        let baseline = measure_majx_throughput_on(backend, profile, 3, 4, groups, seed);
        let points: Vec<MajThroughput> = xs
            .iter()
            .map(|&x| measure_majx_throughput_on(backend, profile, x, 32, groups, seed))
            .collect();
        for micro in Microbench::ALL {
            let base_ns = execution_time_ns(micro, &baseline);
            let mut row = vec![f64::NAN; 3];
            for p in &points {
                let idx = match p.x {
                    5 => 0,
                    7 => 1,
                    _ => 2,
                };
                row[idx] = base_ns / execution_time_ns(micro, p);
            }
            table.push_row(format!("{} {micro}", profile.manufacturer), row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_majority_needs_fewer_steps() {
        for micro in Microbench::ALL {
            let s3 = micro.steps(3);
            let s5 = micro.steps(5);
            let s7 = micro.steps(7);
            assert!(s3 > s5 && s5 > s7, "{micro}: {s3} {s5} {s7}");
        }
    }

    #[test]
    fn reduction_benchmarks_scale_with_elements() {
        assert!(Microbench::And.steps(3) > 1000.0);
        assert!(Microbench::Xor.steps(3) > Microbench::And.steps(3));
    }

    #[test]
    fn fig16_new_majx_beats_baseline_and_maj9_hurts_on_h() {
        let profiles = [VendorProfile::mfr_h_m_die(), VendorProfile::mfr_m_e_die()];
        let t = fig16_microbenchmarks(&profiles, 4, 11);
        // MAJ5 speeds up the reductions on both vendors.
        for mfr in ["Mfr. H", "Mfr. M"] {
            let s = t.get(&format!("{mfr} AND"), "MAJ5").unwrap();
            assert!(s > 1.0, "{mfr} AND with MAJ5 should beat baseline, got {s}");
        }
        // MAJ9's poor success rate makes it a net loss on Mfr. H.
        let maj9 = t.get("Mfr. H AND", "MAJ9").unwrap();
        assert!(maj9 < 1.0, "Fig. 16: MAJ9 degrades performance, got {maj9}");
        // Mfr. M has no MAJ9 column (NaN).
        assert!(t.get("Mfr. M AND", "MAJ9").unwrap().is_nan());
    }
}
