//! Latency and throughput of PUD operations, as the paper measures them
//! with DRAM Bender and folds in empirical success rates (§8.1).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use simra_bender::{BenderProgram, TestSetup};
use simra_core::rowgroup::sample_groups;
use simra_dram::{
    ApaTiming, BankId, DataPattern, DramModule, RowAddr, TimingParams, VendorProfile,
};
use simra_exec::{AnalogBackend, PudBackend, TrialSpec};

/// Measured latency of each primitive PUD operation (ns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpLatencies {
    /// One MAJX APA operation (ACT→PRE→ACT + settle).
    pub majx_apa_ns: f64,
    /// One RowClone (consecutive-activation copy).
    pub rowclone_ns: f64,
    /// One Multi-RowCopy APA.
    pub multirowcopy_ns: f64,
    /// One Frac operation (ACT→PRE with violated tRAS).
    pub frac_ns: f64,
    /// One nominal row write.
    pub write_row_ns: f64,
}

impl OpLatencies {
    /// Schedules each operation as a Bender program against the module's
    /// timing parameters and reads off the latency.
    pub fn measure(timing: &TimingParams) -> Self {
        let bank = BankId::new(0);
        let r0 = RowAddr::new(0);
        let r1 = RowAddr::new(1);
        let majx =
            BenderProgram::apa(bank, r0, r1, ApaTiming::best_for_majx(), timing).latency_ns();
        let rowclone =
            BenderProgram::apa(bank, r0, r1, ApaTiming::row_clone(), timing).latency_ns();
        let mrc = BenderProgram::apa(bank, r0, r1, ApaTiming::best_for_multi_row_copy(), timing)
            .latency_ns();
        // Frac: ACT → (t < tRAS) → PRE, no second ACT; about half a row
        // cycle.
        let frac = {
            let mut p = BenderProgram::new();
            p.command(simra_dram::Command::Activate { bank, row: r0 })
                .wait_ns(9.0)
                .command(simra_dram::Command::Precharge { bank })
                .wait_ns(timing.t_rp_ns);
            p.latency_ns()
        };
        let write = BenderProgram::write_row(bank, r0, timing).latency_ns();
        OpLatencies {
            majx_apa_ns: majx,
            rowclone_ns: rowclone,
            multirowcopy_ns: mrc,
            frac_ns: frac,
            write_row_ns: write,
        }
    }
}

/// Throughput point for one MAJX configuration on one module: latency of
/// a full MAJX operation (input staging + APA) and the *best* empirical
/// success rate across sampled groups (the paper selects the
/// highest-throughput group).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MajThroughput {
    /// Operand count.
    pub x: usize,
    /// Rows simultaneously activated.
    pub n_rows: u32,
    /// Latency of one MAJX operation including input replication (ns).
    pub op_latency_ns: f64,
    /// Best success rate across sampled groups (0–1).
    pub success: f64,
}

impl MajThroughput {
    /// Expected time per *correct* MAJX operation: retries are modelled as
    /// geometric in the success rate (Fig. 16's MAJ9 degradation).
    pub fn effective_ns(&self) -> f64 {
        self.op_latency_ns / self.success.max(1e-3)
    }
}

/// Measures MAJX throughput on a module through the reference analog
/// backend: staging = X RowClones (copy the operands in) + X
/// Multi-RowCopies (replicate to N rows, §8.1), plus the APA itself.
pub fn measure_majx_throughput(
    profile: &VendorProfile,
    x: usize,
    n_rows: u32,
    groups: usize,
    seed: u64,
) -> MajThroughput {
    measure_majx_throughput_on(&AnalogBackend, profile, x, n_rows, groups, seed)
}

/// [`measure_majx_throughput`] with the success rate measured by an
/// explicit [`PudBackend`].
pub fn measure_majx_throughput_on(
    backend: &dyn PudBackend,
    profile: &VendorProfile,
    x: usize,
    n_rows: u32,
    groups: usize,
    seed: u64,
) -> MajThroughput {
    let lat = OpLatencies::measure(&profile.timing);
    // Steady-state staging per operation: one RowClone places the newly
    // produced operand, and — when each operand gets ≥ 2 copies — one
    // Multi-RowCopy refreshes the replicas. (Initial operand loading is
    // amortised over the microbenchmark's thousands of operations.)
    let staging = if n_rows as usize / x >= 2 {
        lat.rowclone_ns + lat.multirowcopy_ns
    } else {
        lat.rowclone_ns
    };
    let op_latency_ns = staging + lat.majx_apa_ns;

    // Each measurement is its own slot: stateful backends (hybrid)
    // reset here, so the result does not depend on what ran earlier on
    // this thread.
    simra_exec::slot::begin();
    let mut setup = TestSetup::with_module(DramModule::new(profile.clone(), seed));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let specs = sample_groups(
        setup.module().geometry(),
        n_rows,
        2,
        2,
        groups.max(1),
        &mut rng,
    );
    let spec = TrialSpec::majx(x, ApaTiming::best_for_majx(), DataPattern::Random);
    let mut best = 0.0f64;
    for g in &specs {
        if let Some(s) = backend.run_trial(&spec, &mut setup, g, &mut rng) {
            best = best.max(s);
        }
    }
    MajThroughput {
        x,
        n_rows,
        op_latency_ns,
        success: best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_ordered_sensibly() {
        let lat = OpLatencies::measure(&TimingParams::ddr4_2666());
        // Multi-RowCopy waits out tRAS before the PRE; MAJX does not.
        assert!(lat.multirowcopy_ns > lat.majx_apa_ns);
        assert!(lat.rowclone_ns > lat.majx_apa_ns);
        assert!(lat.frac_ns < lat.rowclone_ns);
        assert!(lat.write_row_ns > 0.0);
    }

    #[test]
    fn effective_time_penalises_low_success() {
        let good = MajThroughput {
            x: 3,
            n_rows: 32,
            op_latency_ns: 100.0,
            success: 0.99,
        };
        let bad = MajThroughput {
            x: 9,
            n_rows: 32,
            op_latency_ns: 100.0,
            success: 0.06,
        };
        assert!(bad.effective_ns() > 10.0 * good.effective_ns());
    }

    #[test]
    fn measured_throughput_has_positive_success_for_maj3() {
        let t = measure_majx_throughput(&VendorProfile::mfr_h_m_die(), 3, 32, 3, 9);
        assert!(t.success > 0.9, "MAJ3@32 best-group success {}", t.success);
        assert!(t.op_latency_ns > 0.0);
    }

    #[test]
    fn no_replication_skips_multirowcopy_staging() {
        let base = measure_majx_throughput(&VendorProfile::mfr_h_m_die(), 3, 4, 2, 9);
        let repl = measure_majx_throughput(&VendorProfile::mfr_h_m_die(), 3, 32, 2, 9);
        assert!(base.op_latency_ns < repl.op_latency_ns);
    }
}
