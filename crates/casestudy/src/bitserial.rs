//! A bit-serial SIMD machine on top of the PUD primitives — the
//! ComputeDRAM/SIMDRAM-style execution layer that Fig. 16's arithmetic
//! microbenchmarks assume, implemented functionally.
//!
//! Values are stored *vertically*: bit `i` of every element lives in row
//! `r_i`, one element per bitline, so a single majority operation
//! processes every element at once. Logic is built from majorities:
//!
//! * `AND(a, b) = MAJ3(a, b, 0)`, `OR(a, b) = MAJ3(a, b, 1)`;
//! * `XOR(a, b) = OR(AND(a, ~b), AND(~a, b))` with host-staged
//!   complements (the tested COTS chips have no in-DRAM NOT);
//! * full addition ripples `carry = MAJ3(a_i, b_i, c)` and
//!   `sum = XOR(XOR(a_i, b_i), c)`;
//! * subtraction is two's-complement addition; multiplication is
//!   shift-and-add.
//!
//! Two execution modes: [`ExecMode::Analog`] routes every majority
//! through the charge-sharing engine on a 32-row replicated group (bits
//! can and do flip — that is the paper's reality), while
//! [`ExecMode::Ideal`] computes the same dataflow with exact majorities
//! (what a repaired/ECC-backed substrate would produce). Tests verify
//! exactness in `Ideal` and high fidelity in `Analog`.

use rand::rngs::StdRng;

use simra_bender::TestSetup;
use simra_core::maj::{exec_majx, majority};
use simra_core::rowgroup::GroupSpec;
use simra_core::PudError;
use simra_dram::{ApaTiming, BitRow};

/// How majority operations are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Through the analog engine on the configured row group (errors
    /// possible, as on real chips).
    Analog,
    /// Exact digital majorities over the same dataflow.
    Ideal,
}

/// A bit-serial word: `width` host-held row images, LSB first.
///
/// The VM keeps row images host-side between operations (each PUD op
/// re-stages its operands, matching the §8.1 methodology where inputs
/// are RowCloned into the group before every MAJX).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    bits: Vec<BitRow>,
}

impl Word {
    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Number of elements (bitlines).
    pub fn elements(&self) -> usize {
        self.bits.first().map_or(0, BitRow::len)
    }
}

/// The bit-serial SIMD VM.
#[derive(Debug)]
pub struct BitSerialVm {
    setup: TestSetup,
    group: GroupSpec,
    mode: ExecMode,
    rng: StdRng,
    elements: usize,
}

impl BitSerialVm {
    /// Creates a VM executing on `group` (≥ 4 rows; 32 recommended for
    /// replication robustness) of the mounted module.
    pub fn new(setup: TestSetup, group: GroupSpec, mode: ExecMode, rng: StdRng) -> Self {
        let elements = setup.module().geometry().cols_per_row as usize;
        BitSerialVm {
            setup,
            group,
            mode,
            rng,
            elements,
        }
    }

    /// Elements processed per operation (one per bitline).
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Loads a vector of `width`-bit integers, one per bitline, into a
    /// vertical word. Excess bitlines replicate the last value.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or `width > 32`.
    pub fn load(&self, values: &[u32], width: usize) -> Word {
        assert!(!values.is_empty(), "load needs at least one value");
        assert!(width <= 32, "width must be ≤ 32, got {width}");
        let bits = (0..width)
            .map(|i| {
                BitRow::from_bits((0..self.elements).map(|e| {
                    let v = values[e.min(values.len() - 1)];
                    (v >> i) & 1 == 1
                }))
            })
            .collect();
        Word { bits }
    }

    /// Reads a word back as integers (one per element).
    pub fn store(&self, word: &Word) -> Vec<u32> {
        (0..self.elements)
            .map(|e| {
                word.bits
                    .iter()
                    .enumerate()
                    .fold(0u32, |acc, (i, row)| acc | (u32::from(row.get(e)) << i))
            })
            .collect()
    }

    /// One majority-of-three over full row images.
    fn maj3(&mut self, a: &BitRow, b: &BitRow, c: &BitRow) -> Result<BitRow, PudError> {
        match self.mode {
            ExecMode::Ideal => Ok(majority(&[a.clone(), b.clone(), c.clone()])),
            ExecMode::Analog => exec_majx(
                &mut self.setup,
                &self.group,
                &[a.clone(), b.clone(), c.clone()],
                ApaTiming::best_for_majx(),
                &mut self.rng,
            ),
        }
    }

    fn and_rows(&mut self, a: &BitRow, b: &BitRow) -> Result<BitRow, PudError> {
        let zeros = BitRow::zeros(self.elements);
        self.maj3(a, b, &zeros)
    }

    fn or_rows(&mut self, a: &BitRow, b: &BitRow) -> Result<BitRow, PudError> {
        let ones = BitRow::ones(self.elements);
        self.maj3(a, b, &ones)
    }

    fn xor_rows(&mut self, a: &BitRow, b: &BitRow) -> Result<BitRow, PudError> {
        let left = self.and_rows(a, &b.complement())?;
        let right = self.and_rows(&a.complement(), b)?;
        self.or_rows(&left, &right)
    }

    /// Element-wise AND.
    ///
    /// # Errors
    ///
    /// Propagates PUD errors from the underlying majorities.
    pub fn and(&mut self, a: &Word, b: &Word) -> Result<Word, PudError> {
        self.zip_bits(a, b, |vm, x, y| vm.and_rows(x, y))
    }

    /// Element-wise OR.
    ///
    /// # Errors
    ///
    /// Propagates PUD errors.
    pub fn or(&mut self, a: &Word, b: &Word) -> Result<Word, PudError> {
        self.zip_bits(a, b, |vm, x, y| vm.or_rows(x, y))
    }

    /// Element-wise XOR.
    ///
    /// # Errors
    ///
    /// Propagates PUD errors.
    pub fn xor(&mut self, a: &Word, b: &Word) -> Result<Word, PudError> {
        self.zip_bits(a, b, |vm, x, y| vm.xor_rows(x, y))
    }

    fn zip_bits<F>(&mut self, a: &Word, b: &Word, mut f: F) -> Result<Word, PudError>
    where
        F: FnMut(&mut Self, &BitRow, &BitRow) -> Result<BitRow, PudError>,
    {
        assert_eq!(a.width(), b.width(), "operand widths must match");
        let mut bits = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            bits.push(f(self, &a.bits[i], &b.bits[i])?);
        }
        Ok(Word { bits })
    }

    /// Element-wise NOT (host-staged complement, as on the real chips).
    pub fn not(&self, a: &Word) -> Word {
        Word {
            bits: a.bits.iter().map(BitRow::complement).collect(),
        }
    }

    /// Element-wise addition (modulo 2^width): ripple-carry with
    /// `carry = MAJ3` and a majority-built XOR sum.
    ///
    /// # Errors
    ///
    /// Propagates PUD errors.
    pub fn add(&mut self, a: &Word, b: &Word) -> Result<Word, PudError> {
        assert_eq!(a.width(), b.width(), "operand widths must match");
        let mut carry = BitRow::zeros(self.elements);
        let mut bits = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            let ab = self.xor_rows(&a.bits[i], &b.bits[i])?;
            let sum = self.xor_rows(&ab, &carry)?;
            carry = self.maj3(&a.bits[i], &b.bits[i], &carry)?;
            bits.push(sum);
        }
        Ok(Word { bits })
    }

    /// Element-wise subtraction `a − b` (modulo 2^width) via
    /// two's-complement: `a + ~b + 1`.
    ///
    /// # Errors
    ///
    /// Propagates PUD errors.
    pub fn sub(&mut self, a: &Word, b: &Word) -> Result<Word, PudError> {
        let not_b = self.not(b);
        // +1 via an initial carry: ripple with carry preset to all-ones.
        let mut carry = BitRow::ones(self.elements);
        let mut bits = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            let ab = self.xor_rows(&a.bits[i], &not_b.bits[i])?;
            let sum = self.xor_rows(&ab, &carry)?;
            carry = self.maj3(&a.bits[i], &not_b.bits[i], &carry)?;
            bits.push(sum);
        }
        Ok(Word { bits })
    }

    /// Element-wise multiplication (modulo 2^width): shift-and-add over
    /// AND-masked partial products.
    ///
    /// # Errors
    ///
    /// Propagates PUD errors.
    pub fn mul(&mut self, a: &Word, b: &Word) -> Result<Word, PudError> {
        assert_eq!(a.width(), b.width(), "operand widths must match");
        let width = a.width();
        let mut acc = Word {
            bits: vec![BitRow::zeros(self.elements); width],
        };
        for shift in 0..width {
            // Partial product: (a << shift) masked by bit `shift` of b.
            let mask = &b.bits[shift];
            let mut partial = Vec::with_capacity(width);
            for i in 0..width {
                if i < shift {
                    partial.push(BitRow::zeros(self.elements));
                } else {
                    partial.push(self.and_rows(&a.bits[i - shift], mask)?);
                }
            }
            acc = self.add(&acc, &Word { bits: partial })?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use simra_core::rowgroup::random_group;
    use simra_dram::{BankId, SubarrayId, VendorProfile};

    fn vm(mode: ExecMode) -> BitSerialVm {
        let setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 12);
        let mut rng = StdRng::seed_from_u64(44);
        let group = random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            32,
            &mut rng,
        )
        .unwrap();
        BitSerialVm::new(setup, group, mode, rng)
    }

    fn random_values(n: usize, width: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..(1u32 << width))).collect()
    }

    #[test]
    fn load_store_roundtrip() {
        let vm = vm(ExecMode::Ideal);
        let vals = random_values(vm.elements(), 8, 1);
        let w = vm.load(&vals, 8);
        assert_eq!(w.width(), 8);
        assert_eq!(vm.store(&w), vals);
    }

    #[test]
    fn ideal_add_is_exact() {
        let mut m = vm(ExecMode::Ideal);
        let a = random_values(m.elements(), 8, 2);
        let b = random_values(m.elements(), 8, 3);
        let wa = m.load(&a, 8);
        let wb = m.load(&b, 8);
        let sum = m.add(&wa, &wb).unwrap();
        let got = m.store(&sum);
        for i in 0..a.len() {
            assert_eq!(got[i], (a[i] + b[i]) & 0xFF, "element {i}");
        }
    }

    #[test]
    fn ideal_sub_is_exact() {
        let mut m = vm(ExecMode::Ideal);
        let a = random_values(m.elements(), 8, 4);
        let b = random_values(m.elements(), 8, 5);
        let wa = m.load(&a, 8);
        let wb = m.load(&b, 8);
        let diff = m.sub(&wa, &wb).unwrap();
        let got = m.store(&diff);
        for i in 0..a.len() {
            assert_eq!(got[i], a[i].wrapping_sub(b[i]) & 0xFF, "element {i}");
        }
    }

    #[test]
    fn ideal_mul_is_exact() {
        let mut m = vm(ExecMode::Ideal);
        let a = random_values(m.elements(), 6, 6);
        let b = random_values(m.elements(), 6, 7);
        let wa = m.load(&a, 6);
        let wb = m.load(&b, 6);
        let prod = m.mul(&wa, &wb).unwrap();
        let got = m.store(&prod);
        for i in 0..a.len() {
            assert_eq!(got[i], (a[i] * b[i]) & 0x3F, "element {i}");
        }
    }

    #[test]
    fn ideal_logic_is_exact() {
        let mut m = vm(ExecMode::Ideal);
        let a = random_values(m.elements(), 8, 8);
        let b = random_values(m.elements(), 8, 9);
        let wa = m.load(&a, 8);
        let wb = m.load(&b, 8);
        let w_and = m.and(&wa, &wb).unwrap();
        let w_or = m.or(&wa, &wb).unwrap();
        let w_xor = m.xor(&wa, &wb).unwrap();
        let and = m.store(&w_and);
        let or = m.store(&w_or);
        let xor = m.store(&w_xor);
        for i in 0..a.len() {
            assert_eq!(and[i], a[i] & b[i]);
            assert_eq!(or[i], a[i] | b[i]);
            assert_eq!(xor[i], a[i] ^ b[i]);
        }
    }

    #[test]
    fn analog_add_is_mostly_exact() {
        let mut m = vm(ExecMode::Analog);
        let a = random_values(m.elements(), 8, 10);
        let b = random_values(m.elements(), 8, 11);
        let wa = m.load(&a, 8);
        let wb = m.load(&b, 8);
        let sum = m.add(&wa, &wb).unwrap();
        let got = m.store(&sum);
        let exact = (0..a.len())
            .filter(|&i| got[i] == (a[i] + b[i]) & 0xFF)
            .count();
        let frac = exact as f64 / a.len() as f64;
        // ~40 chained in-DRAM majorities per element; per-op success
        // ≥ 99.9 % on a good 32-row group keeps most elements exact.
        assert!(frac > 0.8, "analog 8-bit add exact on {frac} of elements");
    }

    #[test]
    fn analog_logic_is_mostly_exact() {
        let mut m = vm(ExecMode::Analog);
        let a = random_values(m.elements(), 8, 12);
        let b = random_values(m.elements(), 8, 13);
        let wa = m.load(&a, 8);
        let wb = m.load(&b, 8);
        let and = m.and(&wa, &wb).unwrap();
        let got = m.store(&and);
        let exact = (0..a.len()).filter(|&i| got[i] == a[i] & b[i]).count();
        assert!(exact as f64 / a.len() as f64 > 0.9);
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn width_mismatch_panics() {
        let mut m = vm(ExecMode::Ideal);
        let wa = m.load(&[1, 2, 3], 8);
        let wb = m.load(&[1, 2, 3], 4);
        let _ = m.add(&wa, &wb);
    }
}
