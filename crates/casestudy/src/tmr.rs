//! Majority-based error correction (§8.1 "Majority-based Error
//! Correction Operations"): the paper notes that MAJX up to X = 9 lets
//! in-DRAM majority voting correct not just one fault (classic TMR) but
//! up to ⌊(X−1)/2⌋ faults per bit, and leaves the exploration to future
//! work — this module is that exploration on the modelled substrate.
//!
//! Encoding stores X copies of a data row (via Multi-RowCopy-style
//! replication); decode is a single MAJX over the copies. Faults are
//! injected as per-copy bitflips (the radiation-upset model of the TMR
//! literature).

use rand::rngs::StdRng;
use rand::Rng;

use simra_bender::TestSetup;
use simra_core::maj::exec_majx;
use simra_core::rowgroup::GroupSpec;
use simra_core::PudError;
use simra_dram::{ApaTiming, BitRow};

/// A majority-redundancy code: X replicas, single-MAJX decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajorityCode {
    /// Number of replicas (odd, 3–9).
    pub replicas: usize,
}

impl MajorityCode {
    /// Creates a code with `replicas` copies.
    ///
    /// # Panics
    ///
    /// Panics unless `replicas` is odd and in 3..=9 (the MAJX range the
    /// paper demonstrates).
    pub fn new(replicas: usize) -> Self {
        assert!(
            (3..=9).contains(&replicas) && replicas % 2 == 1,
            "majority codes need an odd replica count in 3..=9, got {replicas}"
        );
        MajorityCode { replicas }
    }

    /// Maximum faulty replicas per bit this code corrects.
    pub fn correctable_faults(&self) -> usize {
        (self.replicas - 1) / 2
    }

    /// Encodes `data` as X identical replicas.
    pub fn encode(&self, data: &BitRow) -> Vec<BitRow> {
        vec![data.clone(); self.replicas]
    }

    /// Injects `faults` random single-replica bitflips per column batch:
    /// each selected (replica, bit) position flips. Returns the number of
    /// *columns* whose fault count exceeds the correctable bound.
    pub fn inject_faults<R: Rng + ?Sized>(
        &self,
        replicas: &mut [BitRow],
        faults: usize,
        rng: &mut R,
    ) -> usize {
        let cols = replicas[0].len();
        let mut per_col = vec![0usize; cols];
        for _ in 0..faults {
            let r = rng.gen_range(0..replicas.len());
            let c = rng.gen_range(0..cols);
            let old = replicas[r].get(c);
            replicas[r].set(c, !old);
            per_col[c] += 1;
        }
        // A column is uncorrectable only if a *majority* of its replicas
        // are corrupt; since flips can cancel, count corrupted replicas
        // per column directly.
        per_col
            .iter()
            .filter(|&&n| n > self.correctable_faults())
            .count()
    }

    /// Decodes by an in-DRAM MAJX over the replicas on the given row
    /// group.
    ///
    /// # Errors
    ///
    /// Propagates MAJX errors (group too small, width mismatch, …).
    pub fn decode_in_dram(
        &self,
        setup: &mut TestSetup,
        group: &GroupSpec,
        replicas: &[BitRow],
        rng: &mut StdRng,
    ) -> Result<BitRow, PudError> {
        exec_majx(setup, group, replicas, ApaTiming::best_for_majx(), rng)
    }

    /// Host-side reference decode (bit-exact majority).
    pub fn decode_reference(&self, replicas: &[BitRow]) -> BitRow {
        simra_core::maj::majority(replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use simra_core::rowgroup::random_group;
    use simra_dram::{BankId, DataPattern, SubarrayId, VendorProfile};

    fn env() -> (TestSetup, GroupSpec, StdRng) {
        let setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 6);
        let mut rng = StdRng::seed_from_u64(31);
        let group = random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            32,
            &mut rng,
        )
        .unwrap();
        (setup, group, rng)
    }

    #[test]
    fn correctable_fault_budget() {
        assert_eq!(MajorityCode::new(3).correctable_faults(), 1);
        assert_eq!(MajorityCode::new(5).correctable_faults(), 2);
        assert_eq!(MajorityCode::new(7).correctable_faults(), 3);
        assert_eq!(MajorityCode::new(9).correctable_faults(), 4);
    }

    #[test]
    #[should_panic(expected = "odd replica count")]
    fn even_replicas_rejected() {
        MajorityCode::new(4);
    }

    #[test]
    fn reference_decode_corrects_within_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let code = MajorityCode::new(5);
        let data = DataPattern::Random.row_image(0, 128, &mut rng);
        let mut replicas = code.encode(&data);
        // Corrupt up to 2 replicas per column deterministically: flip the
        // same bit in replicas 0 and 1.
        for c in 0..128 {
            let old0 = replicas[0].get(c);
            replicas[0].set(c, !old0);
            let old1 = replicas[1].get(c);
            replicas[1].set(c, !old1);
        }
        assert_eq!(code.decode_reference(&replicas), data);
    }

    #[test]
    fn reference_decode_fails_beyond_budget() {
        let mut rng = StdRng::seed_from_u64(2);
        let code = MajorityCode::new(3);
        let data = DataPattern::Random.row_image(0, 64, &mut rng);
        let mut replicas = code.encode(&data);
        // Two of three replicas corrupted at bit 0: majority flips.
        for replica in replicas.iter_mut().take(2) {
            let old = replica.get(0);
            replica.set(0, !old);
        }
        assert_ne!(code.decode_reference(&replicas).get(0), data.get(0));
    }

    #[test]
    fn in_dram_decode_corrects_scattered_upsets() {
        let (mut setup, group, mut rng) = env();
        let cols = setup.module().geometry().cols_per_row as usize;
        let code = MajorityCode::new(3);
        let data = DataPattern::Random.row_image(0, cols, &mut rng);
        let mut replicas = code.encode(&data);
        let uncorrectable = code.inject_faults(&mut replicas, cols / 8, &mut rng);
        let decoded = code
            .decode_in_dram(&mut setup, &group, &replicas, &mut rng)
            .unwrap();
        let wrong = decoded.hamming(&data);
        // Every correctable column must come back right, modulo the
        // (small) PUD unreliability of MAJ3@32 itself.
        assert!(
            wrong <= uncorrectable + cols / 50,
            "decode left {wrong} wrong bits ({uncorrectable} uncorrectable)"
        );
    }

    #[test]
    fn wider_codes_survive_heavier_upset_rates() {
        let mut rng = StdRng::seed_from_u64(3);
        let cols = 256;
        let mut failures = Vec::new();
        for x in [3usize, 7] {
            let code = MajorityCode::new(x);
            let data = DataPattern::Random.row_image(0, cols, &mut rng);
            let mut wrong = 0usize;
            for _ in 0..20 {
                let mut replicas = code.encode(&data);
                code.inject_faults(&mut replicas, cols, &mut rng);
                wrong += code.decode_reference(&replicas).hamming(&data);
            }
            failures.push(wrong);
        }
        assert!(
            failures[1] < failures[0],
            "MAJ7-TMR should beat MAJ3-TMR under heavy upsets: {failures:?}"
        );
    }
}
