//! Case study 2 (§8.2, Fig. 17): content-destruction-based cold-boot
//! attack prevention.
//!
//! Three ways to destroy a bank's contents:
//!
//! * **RowClone-based**: write a predetermined pattern to one row, then
//!   RowClone it over every other row — one copy per row.
//! * **Frac-based**: Frac every row to VDD/2 — one (shorter) operation per
//!   row, but no fan-out.
//! * **Multi-RowCopy-based**: write once, then wipe N − 1 rows per APA;
//!   fan-out grows with the activation count.

use serde::{Deserialize, Serialize};

use simra_dram::{RetentionParams, TimingParams};

use crate::throughput::OpLatencies;
use simra_characterize::report::Table;

/// A content-destruction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WipeStrategy {
    /// RowClone row-by-row.
    RowClone,
    /// Frac row-by-row.
    Frac,
    /// Multi-RowCopy with `n`-row activation (wipes n − 1 rows per op).
    MultiRowCopy {
        /// Simultaneously activated rows per operation (2–32).
        n: u32,
    },
}

impl std::fmt::Display for WipeStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WipeStrategy::RowClone => f.write_str("RowClone"),
            WipeStrategy::Frac => f.write_str("Frac"),
            WipeStrategy::MultiRowCopy { n } => write!(f, "MRC {n}-row"),
        }
    }
}

/// Total time (ns) to destroy the contents of a bank with `rows` rows
/// organised in `rows_per_subarray`-row subarrays. RowClone and
/// Multi-RowCopy only fan out within a subarray, so each subarray needs
/// its own seed-row write.
pub fn wipe_time_ns(
    strategy: WipeStrategy,
    rows: u64,
    rows_per_subarray: u64,
    timing: &TimingParams,
) -> f64 {
    assert!(rows_per_subarray > 1, "subarrays have many rows");
    let lat = OpLatencies::measure(timing);
    let subarrays = rows.div_ceil(rows_per_subarray);
    let rows_in_sa = rows_per_subarray.min(rows);
    match strategy {
        WipeStrategy::RowClone => {
            subarrays as f64 * (lat.write_row_ns + (rows_in_sa - 1) as f64 * lat.rowclone_ns)
        }
        WipeStrategy::Frac => rows as f64 * lat.frac_ns,
        WipeStrategy::MultiRowCopy { n } => {
            assert!(n >= 2, "Multi-RowCopy needs at least one destination");
            // Each APA wipes n − 1 destinations (the source row is the
            // already-clean seed row of its group).
            let ops = (rows_in_sa - 1).div_ceil((n - 1) as u64);
            subarrays as f64 * (lat.write_row_ns + ops as f64 * lat.multirowcopy_ns)
        }
    }
}

/// Fig. 17: wipe speedup over RowClone-based destruction for a 65 536-row
/// bank (one speedup column; rows are strategies).
pub fn fig17_coldboot() -> Table {
    let timing = TimingParams::ddr4_2666();
    let rows = 65_536u64;
    let rows_per_subarray = 512u64;
    let base = wipe_time_ns(WipeStrategy::RowClone, rows, rows_per_subarray, &timing);
    let mut table = Table::new(
        "Fig. 17: content-destruction speedup over RowClone-based wipe",
        format!("{rows}-row bank, 512-row subarrays, DDR4-2666 timings"),
        vec!["time_ms".into(), "speedup".into()],
    );
    let mut strategies = vec![WipeStrategy::RowClone, WipeStrategy::Frac];
    for n in [2u32, 4, 8, 16, 32] {
        strategies.push(WipeStrategy::MultiRowCopy { n });
    }
    for s in strategies {
        let t = wipe_time_ns(s, rows, rows_per_subarray, &timing);
        table.push_row(s.to_string(), vec![t / 1e6, base / t]);
    }
    table
}

/// Time (ms) until a powered-off cell's deviation falls below
/// `readable_fraction` of its original value at `temperature_c` — the
/// attacker's remanence window.
pub fn attack_window_ms(
    params: RetentionParams,
    temperature_c: f64,
    readable_fraction: f64,
) -> f64 {
    assert!(
        (0.0..1.0).contains(&readable_fraction) && readable_fraction > 0.0,
        "readable fraction must be in (0, 1)"
    );
    -params.tau_ms(temperature_c) * readable_fraction.ln()
}

/// The remanence context for Fig. 17: how long stolen data stays
/// readable at various chip temperatures versus how quickly each wipe
/// strategy destroys it. Destruction is microseconds; remanence is
/// seconds to minutes — which is exactly why a PUD-based wipe is a
/// viable cold-boot defence.
pub fn remanence_table() -> Table {
    let retention = RetentionParams::typical();
    let timing = TimingParams::ddr4_2666();
    let mut table = Table::new(
        "Cold-boot context: remanence window vs wipe latency",
        "first-order retention model; 65536-row bank",
        vec![
            "window_ms".into(),
            "rowclone_wipe_ms".into(),
            "mrc32_wipe_ms".into(),
        ],
    );
    let rc = wipe_time_ns(WipeStrategy::RowClone, 65_536, 512, &timing) / 1e6;
    let mrc = wipe_time_ns(WipeStrategy::MultiRowCopy { n: 32 }, 65_536, 512, &timing) / 1e6;
    for temp in [-20.0, 5.0, 25.0, 45.0, 85.0] {
        let window = attack_window_ms(retention, temp, 0.5);
        table.push_row(format!("{temp} C"), vec![window, rc, mrc]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remanence_dwarfs_wipe_latency() {
        let t = remanence_table();
        for temp in ["-20 C", "25 C", "85 C"] {
            let window = t.get(temp, "window_ms").unwrap();
            let wipe = t.get(temp, "mrc32_wipe_ms").unwrap();
            assert!(
                window > 100.0 * wipe,
                "{temp}: window {window} ms must dwarf the {wipe} ms wipe"
            );
        }
        // Chilling extends the attacker's window.
        let cold = t.get("-20 C", "window_ms").unwrap();
        let hot = t.get("85 C", "window_ms").unwrap();
        assert!(cold > 10.0 * hot);
    }

    #[test]
    fn attack_window_math() {
        let p = RetentionParams::typical();
        let w = attack_window_ms(p, 45.0, 0.5);
        // τ = 8 s at 45 °C ⇒ half-life = 8 s · ln 2 ≈ 5.5 s.
        assert!((w - 8000.0 * std::f64::consts::LN_2).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "readable fraction")]
    fn bad_fraction_rejected() {
        attack_window_ms(RetentionParams::typical(), 45.0, 1.5);
    }

    #[test]
    fn fig17_mrc_beats_rowclone_and_frac() {
        let t = fig17_coldboot();
        let mrc32 = t.get("MRC 32-row", "speedup").unwrap();
        let frac = t.get("Frac", "speedup").unwrap();
        assert!(
            mrc32 > 10.0,
            "paper: up to 20.87× over RowClone, got {mrc32}"
        );
        assert!(mrc32 < 40.0, "same ballpark as the paper");
        assert!(
            mrc32 / frac > 3.0,
            "paper: up to 7.55× over Frac, got {}",
            mrc32 / frac
        );
        assert_eq!(t.get("RowClone", "speedup").unwrap(), 1.0);
    }

    #[test]
    fn speedup_grows_with_activation_count() {
        let t = fig17_coldboot();
        let mut last = 0.0;
        for n in [2, 4, 8, 16, 32] {
            let s = t.get(&format!("MRC {n}-row"), "speedup").unwrap();
            assert!(s > last, "MRC {n}-row: {s} vs {last}");
            last = s;
        }
    }

    #[test]
    fn wipe_time_accounting() {
        let timing = TimingParams::ddr4_2666();
        // Wiping 33 rows with 32-row activation: seed write + 2 APAs
        // (31 + 1 destinations).
        let lat = OpLatencies::measure(&timing);
        let t = wipe_time_ns(WipeStrategy::MultiRowCopy { n: 32 }, 33, 512, &timing);
        let expected = lat.write_row_ns + 2.0 * lat.multirowcopy_ns;
        assert!((t - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one destination")]
    fn single_row_mrc_rejected() {
        wipe_time_ns(
            WipeStrategy::MultiRowCopy { n: 1 },
            10,
            512,
            &TimingParams::ddr4_2666(),
        );
    }
}
