//! The latching predecoders of LWLD Stage 1 (the paper's `P` signals).

use serde::{Deserialize, Serialize};

/// A contiguous group of row-address bits handled by one predecoder.
///
/// The paper's Fig. 14 example implies the first predecoder (A) covers one
/// address bit (two outputs `P_A0`, `P_A1`) and the others cover two bits
/// each (four outputs): row 0 asserts `{P_A0, P_B0}`, row 7 = `0b111`
/// asserts `{P_A1, P_B3}`, and the product is rows {0, 1, 6, 7} — exactly
/// what the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PredecoderGroup {
    /// Lowest row-address bit this predecoder decodes.
    pub shift: u32,
    /// Number of bits (⇒ `2^width` one-hot outputs).
    pub width: u32,
}

impl PredecoderGroup {
    /// The one-hot output index this group asserts for `addr`.
    pub fn output_for(&self, addr: u32) -> u32 {
        (addr >> self.shift) & ((1 << self.width) - 1)
    }

    /// Number of one-hot outputs.
    pub fn outputs(&self) -> u32 {
        1 << self.width
    }
}

/// One latching predecoder: decodes its bit group and *latches* the
/// asserted output until a (properly timed) precharge clears it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Predecoder {
    group: PredecoderGroup,
    /// Bitmask of latched outputs (bit i set ⇔ output i latched).
    latched: u32,
}

impl Predecoder {
    /// A predecoder for the given bit group, with no outputs latched.
    pub fn new(group: PredecoderGroup) -> Self {
        Predecoder { group, latched: 0 }
    }

    /// The bit group this predecoder decodes.
    pub fn group(&self) -> PredecoderGroup {
        self.group
    }

    /// Decodes `addr` and latches the corresponding output (an `ACT`).
    pub fn latch(&mut self, addr: u32) {
        self.latched |= 1 << self.group.output_for(addr);
    }

    /// Clears all latched outputs (a `PRE` honouring `tRP`).
    pub fn clear(&mut self) {
        self.latched = 0;
    }

    /// Indices of currently latched outputs.
    pub fn latched_outputs(&self) -> Vec<u32> {
        (0..self.group.outputs())
            .filter(|i| self.latched & (1 << i) != 0)
            .collect()
    }

    /// Whether output `i` is latched.
    pub fn is_latched(&self, i: u32) -> bool {
        self.latched & (1 << i) != 0
    }

    /// Number of latched outputs.
    pub fn latched_count(&self) -> u32 {
        self.latched.count_ones()
    }
}

/// Splits `bits` row-address bits into the five predecoder groups of the
/// hypothesised design: 1-bit group A, then 2-bit groups, with the last
/// group absorbing any remainder (e.g. 10-bit Micron subarrays get a 3-bit
/// group E). Five predecoders bound simultaneous activation at 2^5 = 32
/// rows, matching the paper's hypothesis.
pub fn paper_groups(bits: u32) -> Vec<PredecoderGroup> {
    assert!(
        (5..=13).contains(&bits),
        "in-subarray address must be 5..=13 bits, got {bits}"
    );
    // One 1-bit group, then 2-bit groups, with the fifth (last) group
    // absorbing whatever remains. Subarrays smaller than 2^8 rows simply
    // get fewer predecoders (and a lower simultaneous-activation bound).
    let mut groups = vec![PredecoderGroup { shift: 0, width: 1 }];
    let mut shift = 1;
    while shift < bits && groups.len() < 5 {
        let width = if groups.len() == 4 {
            bits - shift
        } else {
            2.min(bits - shift)
        };
        groups.push(PredecoderGroup { shift, width });
        shift += width;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_for_extracts_bit_group() {
        let g = PredecoderGroup { shift: 1, width: 2 };
        assert_eq!(g.output_for(0b000), 0);
        assert_eq!(g.output_for(0b111), 3);
        assert_eq!(g.output_for(0b101), 2);
        assert_eq!(g.outputs(), 4);
    }

    #[test]
    fn latch_accumulates_until_cleared() {
        let mut p = Predecoder::new(PredecoderGroup { shift: 0, width: 2 });
        p.latch(0);
        p.latch(3);
        p.latch(3);
        assert_eq!(p.latched_outputs(), vec![0, 3]);
        assert_eq!(p.latched_count(), 2);
        assert!(p.is_latched(0) && !p.is_latched(1));
        p.clear();
        assert_eq!(p.latched_count(), 0);
    }

    #[test]
    fn paper_groups_cover_all_bits_disjointly() {
        for bits in [9u32, 10, 11] {
            let groups = paper_groups(bits);
            assert_eq!(groups.len(), 5, "five predecoders for real subarray sizes");
            let covered: u32 = groups.iter().map(|g| g.width).sum();
            assert_eq!(covered, bits);
            // Disjoint and contiguous.
            let mut shift = 0;
            for g in &groups {
                assert_eq!(g.shift, shift);
                shift += g.width;
            }
        }
    }

    #[test]
    fn fig14_signal_assignment() {
        // Row 0 → {P_A0, P_B0}; Row 7 → {P_A1, P_B3} per the paper.
        let groups = paper_groups(9);
        assert_eq!(groups[0].output_for(0), 0);
        assert_eq!(groups[1].output_for(0), 0);
        assert_eq!(groups[0].output_for(7), 1);
        assert_eq!(groups[1].output_for(7), 3);
    }

    #[test]
    fn small_subarrays_get_fewer_predecoders() {
        // 64-row (6-bit) synthetic subarrays: 1 + 2 + 2 + 1 bits.
        let groups = paper_groups(6);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups.iter().map(|g| g.width).sum::<u32>(), 6);
        // 5-bit: 1 + 2 + 2.
        assert_eq!(paper_groups(5).len(), 3);
    }

    #[test]
    #[should_panic(expected = "in-subarray address")]
    fn too_few_bits_rejected() {
        paper_groups(3);
    }
}
