//! The Global Wordline Decoder (GWLD) and cross-subarray activation.
//!
//! §7.1's hypothesised hierarchy puts a GWLD in front of the per-subarray
//! LWLDs: the high-order row-address bits drive one Global Wordline,
//! enabling one subarray's local decoder. Like the LWLD predecoders, the
//! GWL drivers latch — so a sufficiently violated `PRE → ACT` can leave
//! *two* GWLs asserted, activating rows in two different subarrays at
//! once. That is HiRA's *hidden row activation* (Yağlıkçı et al., MICRO
//! 2022) and the mechanism behind the concurrent work's 48-row
//! activations across two neighbouring subarrays; the paper itself stays
//! within one subarray, so this module is the opt-in extension.

use serde::{Deserialize, Serialize};

use simra_dram::ApaTiming;

use crate::rowdec::{RowDecoder, SIMULTANEOUS_T2_MAX_NS};

/// Cross-subarray APA outcome: simultaneously open rows in each of the
/// two involved subarrays (local indices).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HiraOutcome {
    /// Subarray index of `R_F` and its open local rows.
    pub first: (u16, Vec<u32>),
    /// Subarray index of `R_S` and its open local rows.
    pub second: (u16, Vec<u32>),
}

impl HiraOutcome {
    /// Total simultaneously open rows across both subarrays.
    pub fn total_rows(&self) -> usize {
        self.first.1.len() + self.second.1.len()
    }
}

/// The GWLD: latching global wordline drivers in front of the LWLDs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalWordlineDecoder {
    subarrays: u16,
    rows_per_subarray: u32,
}

impl GlobalWordlineDecoder {
    /// A GWLD for a bank of `subarrays` subarrays of `rows_per_subarray`
    /// rows each.
    pub fn new(subarrays: u16, rows_per_subarray: u32) -> Self {
        GlobalWordlineDecoder {
            subarrays,
            rows_per_subarray,
        }
    }

    /// Number of subarrays this GWLD drives.
    pub fn subarrays(&self) -> u16 {
        self.subarrays
    }

    /// Resolves a *cross-subarray* APA: `R_F` in subarray `sa_f`, `R_S`
    /// in subarray `sa_s` (local row indices). With a violated `t2`, both
    /// GWLs stay asserted; each LWLD sees only its own address, so each
    /// side opens a *single* row — unless the local addresses also
    /// collide in predecoder space, which cannot happen across distinct
    /// LWLDs (each has its own latches).
    ///
    /// Opening *many* rows per side additionally requires each side's own
    /// latches to hold two addresses, which a single APA cannot do; the
    /// concurrent work chains more ACTs. This model supports the
    /// two-command case: one row per subarray, the HiRA primitive.
    ///
    /// Returns `None` when the subarrays coincide (use
    /// [`RowDecoder::resolve_apa`]) or the timing keeps the sequence
    /// consecutive (no overlap).
    ///
    /// # Panics
    ///
    /// Panics if a subarray index or local row is out of range.
    pub fn resolve_cross(
        &self,
        sa_f: u16,
        local_f: u32,
        sa_s: u16,
        local_s: u32,
        timing: ApaTiming,
    ) -> Option<HiraOutcome> {
        assert!(
            sa_f < self.subarrays && sa_s < self.subarrays,
            "subarray out of range"
        );
        assert!(
            local_f < self.rows_per_subarray && local_s < self.rows_per_subarray,
            "local row out of range"
        );
        if sa_f == sa_s || timing.t2.as_ns() > SIMULTANEOUS_T2_MAX_NS {
            return None;
        }
        Some(HiraOutcome {
            first: (sa_f, vec![local_f]),
            second: (sa_s, vec![local_s]),
        })
    }

    /// A [`RowDecoder`] for any one of this bank's subarrays.
    pub fn local_decoder(&self) -> RowDecoder {
        RowDecoder::for_subarray_rows(self.rows_per_subarray)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gwld() -> GlobalWordlineDecoder {
        GlobalWordlineDecoder::new(8, 512)
    }

    #[test]
    fn cross_subarray_opens_one_row_per_side() {
        let out = gwld()
            .resolve_cross(0, 7, 3, 100, ApaTiming::from_ns(3.0, 3.0))
            .expect("violated t2 keeps both GWLs");
        assert_eq!(out.first, (0, vec![7]));
        assert_eq!(out.second, (3, vec![100]));
        assert_eq!(out.total_rows(), 2);
    }

    #[test]
    fn same_subarray_is_not_hira() {
        assert!(gwld()
            .resolve_cross(2, 7, 2, 9, ApaTiming::from_ns(3.0, 3.0))
            .is_none());
    }

    #[test]
    fn honoured_timing_is_not_hira() {
        assert!(gwld()
            .resolve_cross(0, 7, 3, 9, ApaTiming::row_clone())
            .is_none());
    }

    #[test]
    #[should_panic(expected = "subarray out of range")]
    fn bad_subarray_panics() {
        gwld().resolve_cross(9, 0, 0, 0, ApaTiming::from_ns(3.0, 3.0));
    }

    #[test]
    fn local_decoder_matches_bank_geometry() {
        assert_eq!(gwld().local_decoder().subarray_rows(), 512);
    }
}
