//! The hierarchical row decoder: GWLD + two-stage LWLD with latching
//! predecoders, and the APA resolution logic built on top of it.

use serde::{Deserialize, Serialize};

use simra_dram::ApaTiming;

use crate::apa::ApaOutcome;
use crate::predecoder::{paper_groups, Predecoder, PredecoderGroup};

/// `t2` at or below this keeps the predecoder latches set, producing
/// simultaneous activation; above it the wordline of `R_F` de-asserts and
/// the second `ACT` is a *consecutive* activation (RowClone). The paper
/// finds the boundary between 3 ns (Multi-RowCopy) and 6 ns (RowClone).
pub const SIMULTANEOUS_T2_MAX_NS: f64 = 3.0;

/// The row decoder of one subarray's LWLD.
///
/// Stateless with respect to experiments: [`RowDecoder::resolve_apa`]
/// simulates the latch dance of one APA sequence from a clean (precharged)
/// state, which is how every experiment in the paper begins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowDecoder {
    groups: Vec<PredecoderGroup>,
    subarray_rows: u32,
}

impl RowDecoder {
    /// A decoder for a subarray with `rows` rows (512, 640, or 1024 in the
    /// tested parts).
    ///
    /// # Panics
    ///
    /// Panics if `rows < 32` (fewer rows than the decoder has wordline
    /// combinations for a full 5-group split).
    pub fn for_subarray_rows(rows: u32) -> Self {
        assert!(
            rows >= 32,
            "subarray must have at least 32 rows, got {rows}"
        );
        let mut bits = 0;
        while (1u32 << bits) < rows {
            bits += 1;
        }
        RowDecoder {
            groups: paper_groups(bits),
            subarray_rows: rows,
        }
    }

    /// The predecoder bit groups.
    pub fn groups(&self) -> &[PredecoderGroup] {
        &self.groups
    }

    /// Rows in the subarray this decoder drives.
    pub fn subarray_rows(&self) -> u32 {
        self.subarray_rows
    }

    /// In how many predecoder groups two local row addresses differ.
    pub fn differing_groups(&self, a: u32, b: u32) -> u32 {
        self.groups
            .iter()
            .filter(|g| g.output_for(a) != g.output_for(b))
            .count() as u32
    }

    /// Number of wordlines an APA targeting `(r_f, r_s)` would assert
    /// simultaneously, before clipping to the subarray size: `2^d`.
    pub fn activation_count(&self, r_f: u32, r_s: u32) -> u32 {
        1 << self.differing_groups(r_f, r_s)
    }

    /// The full set of local rows asserted when both addresses' predecode
    /// signals are latched: the Cartesian product of the latched outputs,
    /// clipped to rows that physically exist (640-row subarrays decode 10
    /// bits but only populate 640 wordlines).
    pub fn simultaneous_rows(&self, r_f: u32, r_s: u32) -> Vec<u32> {
        // Drive the actual latch model: ACT R_F latches, violated PRE does
        // not clear, ACT R_S latches.
        let mut predecoders: Vec<Predecoder> =
            self.groups.iter().map(|g| Predecoder::new(*g)).collect();
        for p in &mut predecoders {
            p.latch(r_f);
            p.latch(r_s);
        }
        let mut rows = vec![0u32];
        for p in &predecoders {
            let outs = p.latched_outputs();
            let mut next = Vec::with_capacity(rows.len() * outs.len());
            for base in &rows {
                for out in &outs {
                    next.push(base | (out << p.group().shift));
                }
            }
            rows = next;
        }
        rows.retain(|r| *r < self.subarray_rows);
        rows.sort_unstable();
        rows
    }

    /// Resolves an APA sequence from a precharged bank.
    ///
    /// `guard` models the Samsung internal circuitry that ignores the
    /// timing-violating command pair (§9 Limitation 1).
    ///
    /// Callers must ensure `r_f` and `r_s` are within the subarray; this is
    /// validated here.
    ///
    /// # Panics
    ///
    /// Panics if either row is outside the subarray.
    pub fn resolve_apa(&self, r_f: u32, r_s: u32, timing: ApaTiming, guard: bool) -> ApaOutcome {
        assert!(
            r_f < self.subarray_rows && r_s < self.subarray_rows,
            "rows ({r_f}, {r_s}) outside subarray of {} rows",
            self.subarray_rows
        );
        if guard {
            return ApaOutcome::GuardedSingle { row: r_s };
        }
        if timing.t2.as_ns() <= SIMULTANEOUS_T2_MAX_NS {
            ApaOutcome::Simultaneous {
                rows: self.simultaneous_rows(r_f, r_s),
            }
        } else {
            ApaOutcome::Consecutive {
                first: r_f,
                second: r_s,
            }
        }
    }

    /// One-shot [`RowDecoder::resolve_apa`] for a subarray of `rows`
    /// rows — the single authority on APA row resolution. Everything
    /// that resolves an APA sequence against local row indices (the
    /// `simra-core` ops via the sequencer, the bender interpreter)
    /// funnels through this so the address-mapping model can never fork.
    ///
    /// # Panics
    ///
    /// Panics if either row is outside the subarray.
    pub fn resolve_in_subarray(
        rows: u32,
        r_f: u32,
        r_s: u32,
        timing: ApaTiming,
        guard: bool,
    ) -> ApaOutcome {
        Self::for_subarray_rows(rows).resolve_apa(r_f, r_s, timing, guard)
    }

    /// Finds a partner row for `r_f` such that APA activates exactly `n`
    /// rows (n must be a power of two ≤ 32): flips the lowest address bit
    /// of `log2(n)` distinct predecoder groups. Returns `None` if the
    /// resulting partner or any row of the product would fall outside the
    /// subarray (possible only for non-power-of-two subarrays) or if `n`
    /// exceeds the decoder's reach.
    pub fn partner_for_count(&self, r_f: u32, n: u32) -> Option<u32> {
        if !n.is_power_of_two() || n > (1 << self.groups.len()) {
            return None;
        }
        let d = n.trailing_zeros();
        let mut r_s = r_f;
        for g in self.groups.iter().take(d as usize) {
            r_s ^= 1 << g.shift;
        }
        if r_s >= self.subarray_rows {
            return None;
        }
        let rows = self.simultaneous_rows(r_f, r_s);
        (rows.len() == n as usize).then_some(r_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec() -> RowDecoder {
        RowDecoder::for_subarray_rows(512)
    }

    #[test]
    fn same_row_apa_activates_one_row() {
        let rows = dec().simultaneous_rows(5, 5);
        assert_eq!(rows, vec![5]);
    }

    #[test]
    fn fig14_walkthrough_act0_act7() {
        // The paper's worked example: rows {0, 1, 6, 7}.
        assert_eq!(dec().simultaneous_rows(0, 7), vec![0, 1, 6, 7]);
    }

    #[test]
    fn act127_act128_opens_32_rows() {
        // The paper's 32-row example: 127 = 0b0_0111_1111 and
        // 128 = 0b0_1000_0000 differ in all five groups.
        let d = dec();
        assert_eq!(d.differing_groups(127, 128), 5);
        let rows = d.simultaneous_rows(127, 128);
        assert_eq!(rows.len(), 32);
        assert!(rows.contains(&127) && rows.contains(&128));
    }

    #[test]
    fn counts_are_powers_of_two_only() {
        let d = dec();
        let mut seen = std::collections::BTreeSet::new();
        for r_s in 0..512 {
            seen.insert(d.simultaneous_rows(37, r_s).len());
        }
        // Limitation 2: only 1, 2, 4, 8, 16, 32 are reachable.
        assert_eq!(
            seen.into_iter().collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 16, 32]
        );
    }

    #[test]
    fn partner_for_count_hits_every_n() {
        let d = dec();
        for n in [1u32, 2, 4, 8, 16, 32] {
            let r_s = d.partner_for_count(200, n).unwrap();
            assert_eq!(d.simultaneous_rows(200, r_s).len(), n as usize);
        }
        assert_eq!(d.partner_for_count(200, 64), None);
        assert_eq!(d.partner_for_count(200, 3), None);
    }

    #[test]
    fn product_always_contains_both_targets() {
        let d = dec();
        for (a, b) in [(0u32, 511u32), (13, 200), (400, 401), (255, 256)] {
            let rows = d.simultaneous_rows(a, b);
            assert!(rows.contains(&a), "missing {a}");
            assert!(rows.contains(&b), "missing {b}");
            assert_eq!(rows.len(), d.activation_count(a, b) as usize);
        }
    }

    #[test]
    fn timing_selects_outcome() {
        let d = dec();
        let sim = d.resolve_apa(0, 7, ApaTiming::from_ns(3.0, 3.0), false);
        assert!(matches!(sim, ApaOutcome::Simultaneous { .. }));
        let cons = d.resolve_apa(0, 7, ApaTiming::row_clone(), false);
        assert_eq!(
            cons,
            ApaOutcome::Consecutive {
                first: 0,
                second: 7
            }
        );
    }

    #[test]
    fn guard_degenerates_to_single() {
        let out = dec().resolve_apa(0, 7, ApaTiming::from_ns(3.0, 3.0), true);
        assert_eq!(out, ApaOutcome::GuardedSingle { row: 7 });
    }

    #[test]
    fn non_power_of_two_subarray_clips_product() {
        // 640-row subarray decodes 10 bits; products can fall in the
        // unpopulated 640..1024 range and must be clipped.
        let d = RowDecoder::for_subarray_rows(640);
        let rows = d.simultaneous_rows(0, 639);
        assert!(rows.iter().all(|r| *r < 640));
        assert!(rows.len() <= 32);
    }

    #[test]
    #[should_panic(expected = "outside subarray")]
    fn out_of_subarray_rows_panic() {
        dec().resolve_apa(0, 512, ApaTiming::from_ns(3.0, 3.0), false);
    }

    #[test]
    fn micron_1024_row_subarray_reaches_32() {
        let d = RowDecoder::for_subarray_rows(1024);
        // Find some pair differing in all five groups.
        let r_s = d.partner_for_count(0, 32).unwrap();
        assert_eq!(d.simultaneous_rows(0, r_s).len(), 32);
    }
}
