//! The structural outcome of an APA command sequence.

use serde::{Deserialize, Serialize};

/// What an `ACT R_F → PRE → ACT R_S` sequence does to the local wordlines
/// of a subarray, as resolved by [`crate::RowDecoder::resolve_apa`].
///
/// Rows are *local* (in-subarray) indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApaOutcome {
    /// Multiple wordlines asserted at once (t2 small enough to interrupt
    /// the precharge before the predecoder latches clear). `rows` is
    /// sorted ascending and contains both `R_F` and `R_S`.
    Simultaneous {
        /// All simultaneously asserted local rows.
        rows: Vec<u32>,
    },
    /// Consecutive activation: the precharge got far enough to de-assert
    /// `R_F`'s wordline but not to precharge the bitlines, so activating
    /// `R_S` overwrites it with the sense-amplifier contents (RowClone).
    Consecutive {
        /// The source row (first activation).
        first: u32,
        /// The destination row (second activation).
        second: u32,
    },
    /// Guard circuitry (Samsung) swallowed the timing-violating commands:
    /// the sequence degenerates to a single normal activation.
    GuardedSingle {
        /// The row left open.
        row: u32,
    },
}

impl ApaOutcome {
    /// Number of simultaneously open rows (1 for the degenerate cases).
    pub fn open_row_count(&self) -> usize {
        match self {
            ApaOutcome::Simultaneous { rows } => rows.len(),
            ApaOutcome::Consecutive { .. } | ApaOutcome::GuardedSingle { .. } => 1,
        }
    }

    /// The set of rows whose cells end up connected to the bitlines when
    /// the sequence completes.
    pub fn open_rows(&self) -> Vec<u32> {
        match self {
            ApaOutcome::Simultaneous { rows } => rows.clone(),
            ApaOutcome::Consecutive { second, .. } => vec![*second],
            ApaOutcome::GuardedSingle { row } => vec![*row],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_row_accounting() {
        let s = ApaOutcome::Simultaneous {
            rows: vec![0, 1, 6, 7],
        };
        assert_eq!(s.open_row_count(), 4);
        assert_eq!(s.open_rows(), vec![0, 1, 6, 7]);

        let c = ApaOutcome::Consecutive {
            first: 3,
            second: 9,
        };
        assert_eq!(c.open_row_count(), 1);
        assert_eq!(c.open_rows(), vec![9]);

        let g = ApaOutcome::GuardedSingle { row: 4 };
        assert_eq!(g.open_row_count(), 1);
        assert_eq!(g.open_rows(), vec![4]);
    }
}
