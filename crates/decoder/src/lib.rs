//! # simra-decoder
//!
//! An executable implementation of the paper's *hypothetical hierarchical
//! row decoder* (§7.1): a Global Wordline Decoder (GWLD) that selects a
//! subarray, and a two-stage Local Wordline Decoder (LWLD) whose first
//! stage is five *latching predecoders*.
//!
//! The key mechanism: a `PRE` issued with a greatly violated `tRP` does not
//! de-assert the predecoder latches before the second `ACT` arrives, so
//! after an `ACT R_F → PRE → ACT R_S` (APA) sequence *both* addresses'
//! predecoded signals are latched. Stage 2 of the LWLD asserts every local
//! wordline whose predecode signals are all latched — the Cartesian product
//! of the latched outputs. If `R_F` and `R_S` differ in `d` of the five
//! predecoder groups, exactly `2^d` rows activate simultaneously
//! (`d ∈ {0..5}` ⇒ N ∈ {1, 2, 4, 8, 16, 32}), which is precisely the set of
//! N values the paper observes (Limitation 2).
//!
//! # Example
//!
//! ```
//! use simra_decoder::{ApaOutcome, RowDecoder};
//! use simra_dram::ApaTiming;
//!
//! let dec = RowDecoder::for_subarray_rows(512);
//! // The paper's Fig. 14 walk-through: ACT 0 → PRE → ACT 7 opens 4 rows.
//! let outcome = dec.resolve_apa(0, 7, ApaTiming::from_ns(3.0, 3.0), false);
//! assert_eq!(outcome, ApaOutcome::Simultaneous { rows: vec![0, 1, 6, 7] });
//! ```

pub mod apa;
pub mod gwld;
pub mod predecoder;
pub mod rowdec;

pub use apa::ApaOutcome;
pub use gwld::{GlobalWordlineDecoder, HiraOutcome};
pub use predecoder::{Predecoder, PredecoderGroup};
pub use rowdec::RowDecoder;
