//! RowClone: in-DRAM row-to-row copy via *consecutive* activation
//! (§2.2). The first ACT latches the source into the sense amplifiers;
//! after a full tRAS and a partially-elapsed precharge, the second ACT
//! connects the destination row, which the amps overwrite.

use simra_bender::TestSetup;
use simra_decoder::ApaOutcome;
use simra_dram::{ApaTiming, BankId, RowAddr};

use crate::error::PudError;

/// Functionally copies `src` onto `dst` (both bank-level addresses in the
/// same subarray). Returns the number of destination cells that failed to
/// take the copy (0 in the overwhelmingly common case).
///
/// # Errors
///
/// Cross-subarray pairs and address errors; `UnexpectedActivation` if the
/// decoder did not produce a consecutive activation.
pub fn exec_rowclone(
    setup: &mut TestSetup,
    bank: BankId,
    src: RowAddr,
    dst: RowAddr,
) -> Result<usize, PudError> {
    let timing = ApaTiming::row_clone();
    let (sa, outcome) = setup.resolve_apa(bank, src, dst, timing)?;
    let geometry = *setup.module().geometry();
    let (_, dst_local) = geometry.split_row(dst)?;
    match outcome {
        ApaOutcome::Consecutive { second, .. } if second == dst_local => {}
        other => {
            return Err(PudError::UnexpectedActivation {
                expected: "consecutive activation (RowClone)".into(),
                got: format!("{other:?}"),
            })
        }
    }
    // The amps latched the source during the fully-timed first activation.
    let source_image = setup.read_row(bank, src)?;
    let engine = setup.engine();
    let restore = engine.params().restore_strength(timing, setup.conditions());
    let latch_q = engine.params().mrc_latch_quality(timing.t1.as_ns());
    debug_assert!(
        latch_q >= 1.0,
        "RowClone waits out tRAS; the latch is clean"
    );
    let subarray = setup.module_mut().bank_mut(bank)?.subarray(sa);
    Ok(engine.commit(subarray, &[dst_local], &source_image, restore))
}

/// Success probability of a RowClone between `src` and `dst`: mean
/// per-cell probability that the destination takes the copy across all
/// trials.
///
/// # Errors
///
/// Same conditions as [`exec_rowclone`].
pub fn rowclone_success(
    setup: &mut TestSetup,
    bank: BankId,
    src: RowAddr,
    dst: RowAddr,
) -> Result<f64, PudError> {
    let timing = ApaTiming::row_clone();
    let (sa, _) = setup.resolve_apa(bank, src, dst, timing)?;
    let geometry = *setup.module().geometry();
    let (_, dst_local) = geometry.split_row(dst)?;
    let source_image = setup.read_row(bank, src)?;
    let engine = setup.engine();
    let restore = engine.params().restore_strength(timing, setup.conditions());
    let subarray = setup.module_mut().bank_mut(bank)?.subarray(sa);
    let probs = engine.commit_survival(subarray, &[dst_local], &source_image, restore);
    Ok(probs.iter().sum::<f64>() / probs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simra_dram::{BitRow, DataPattern, VendorProfile};

    #[test]
    fn clone_copies_data_within_subarray() {
        let mut s = TestSetup::new(VendorProfile::mfr_h_m_die(), 33);
        let cols = s.module().geometry().cols_per_row as usize;
        let mut rng = StdRng::seed_from_u64(1);
        let img = DataPattern::Random.row_image(0, cols, &mut rng);
        let bank = BankId::new(0);
        let src = RowAddr::new(17);
        let dst = RowAddr::new(101);
        s.init_row(bank, src, &img).unwrap();
        s.init_row(bank, dst, &BitRow::zeros(cols)).unwrap();
        let failures = exec_rowclone(&mut s, bank, src, dst).unwrap();
        assert_eq!(failures, 0);
        assert_eq!(s.read_row(bank, dst).unwrap(), img);
        // Source is untouched.
        assert_eq!(s.read_row(bank, src).unwrap(), img);
    }

    #[test]
    fn clone_across_subarrays_fails() {
        let mut s = TestSetup::new(VendorProfile::mfr_h_m_die(), 33);
        let err =
            exec_rowclone(&mut s, BankId::new(0), RowAddr::new(0), RowAddr::new(600)).unwrap_err();
        assert!(matches!(err, PudError::Sequencer(_)));
    }

    #[test]
    fn clone_success_is_very_high() {
        let mut s = TestSetup::new(VendorProfile::mfr_h_m_die(), 33);
        let cols = s.module().geometry().cols_per_row as usize;
        let bank = BankId::new(0);
        s.init_row(bank, RowAddr::new(5), &BitRow::ones(cols))
            .unwrap();
        let p = rowclone_success(&mut s, bank, RowAddr::new(5), RowAddr::new(9)).unwrap();
        assert!(p > 0.999, "RowClone success {p}");
    }

    #[test]
    fn samsung_guard_blocks_rowclone() {
        let mut s = TestSetup::new(VendorProfile::mfr_s(), 33);
        let err =
            exec_rowclone(&mut s, BankId::new(0), RowAddr::new(0), RowAddr::new(9)).unwrap_err();
        assert!(matches!(err, PudError::UnexpectedActivation { .. }));
    }
}
