//! The Frac operation (FracDRAM): parking a row's cells at VDD/2 so they
//! contribute (almost) nothing to a later charge-sharing operation.
//!
//! On real chips Frac interrupts a precharge mid-flight so the cell is
//! restored to the half-rail level; the result carries a per-cell residual
//! that our model draws from the calibrated `frac_residual_sigma`.
//! Mfr. M parts do not support Frac (footnote 5); callers emulate neutral
//! rows there with complementary all-0/all-1 pairs instead
//! ([`neutral_plan`]).

use rand::rngs::StdRng;
use rand::Rng;

use simra_bender::TestSetup;
use simra_dram::{BankId, BitRow, RowAddr};

use crate::error::PudError;

/// How an operation should initialise its neutral rows on this part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeutralPlan {
    /// Frac every neutral row to VDD/2 (Mfr. H parts).
    Frac,
    /// Alternate all-0 / all-1 rows; the biased sense amplifiers make the
    /// leftovers resolve deterministically (Mfr. M parts, footnote 5).
    ComplementPairs,
}

/// Chooses the neutral-row strategy for the mounted module.
pub fn neutral_plan(setup: &TestSetup) -> NeutralPlan {
    if setup.module().profile().supports_frac {
        NeutralPlan::Frac
    } else {
        NeutralPlan::ComplementPairs
    }
}

/// Executes a Frac operation on one row: every cell is parked at VDD/2
/// plus a per-cell residual.
///
/// # Errors
///
/// Device errors for bad addresses; [`PudError::UnexpectedActivation`] if
/// the part does not support Frac.
pub fn frac_row(
    setup: &mut TestSetup,
    bank: BankId,
    row: RowAddr,
    rng: &mut StdRng,
) -> Result<(), PudError> {
    if !setup.module().profile().supports_frac {
        return Err(PudError::UnexpectedActivation {
            expected: "a Frac-capable part (Mfr. H)".into(),
            got: format!("{}", setup.module().profile().manufacturer),
        });
    }
    let sigma = setup.engine().params().frac_residual_sigma;
    let geometry = *setup.module().geometry();
    let (sa_id, local) = geometry.split_row(row)?;
    let sa = setup.module_mut().bank_mut(bank)?.subarray(sa_id);
    for col in 0..sa.cols() {
        let residual = gaussian(rng) * sigma;
        sa.set_cell_voltage(local, col, 0.5 + residual as f32);
    }
    Ok(())
}

/// Initialises `rows` as neutral rows according to `plan`.
///
/// # Errors
///
/// Propagates device / capability errors.
pub fn init_neutral_rows(
    setup: &mut TestSetup,
    bank: BankId,
    rows: &[RowAddr],
    plan: NeutralPlan,
    rng: &mut StdRng,
) -> Result<(), PudError> {
    match plan {
        NeutralPlan::Frac => {
            for &row in rows {
                frac_row(setup, bank, row, rng)?;
            }
        }
        NeutralPlan::ComplementPairs => {
            let cols = setup.module().geometry().cols_per_row as usize;
            for (i, &row) in rows.iter().enumerate() {
                let img = if i % 2 == 0 {
                    BitRow::zeros(cols)
                } else {
                    BitRow::ones(cols)
                };
                setup.init_row(bank, row, &img)?;
            }
        }
    }
    Ok(())
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use simra_dram::VendorProfile;

    #[test]
    fn frac_parks_cells_near_half_rail() {
        let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        let bank = BankId::new(0);
        let row = RowAddr::new(10);
        frac_row(&mut setup, bank, row, &mut rng).unwrap();
        let geometry = *setup.module().geometry();
        let (sa_id, local) = geometry.split_row(row).unwrap();
        let sa = setup.module_mut().bank_mut(bank).unwrap().subarray(sa_id);
        let mut near = 0;
        for col in 0..sa.cols() {
            if sa.cell(local, col).is_neutral(3.5 * 0.12) {
                near += 1;
            }
        }
        // Essentially all cells within 3.5 residual sigmas of VDD/2, and
        // none parked at a rail.
        assert!(near as f64 / sa.cols() as f64 > 0.99);
        for col in 0..sa.cols() {
            let v = sa.cell(local, col).voltage();
            assert!(v > 0.01 && v < 0.99, "cell {col} at rail: {v}");
        }
    }

    #[test]
    fn frac_rejected_on_non_frac_parts() {
        let mut setup = TestSetup::new(VendorProfile::mfr_m_e_die(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        let err = frac_row(&mut setup, BankId::new(0), RowAddr::new(0), &mut rng).unwrap_err();
        assert!(matches!(err, PudError::UnexpectedActivation { .. }));
    }

    #[test]
    fn plan_follows_vendor_capability() {
        let h = TestSetup::new(VendorProfile::mfr_h_m_die(), 1);
        let m = TestSetup::new(VendorProfile::mfr_m_e_die(), 1);
        assert_eq!(neutral_plan(&h), NeutralPlan::Frac);
        assert_eq!(neutral_plan(&m), NeutralPlan::ComplementPairs);
    }

    #[test]
    fn complement_pairs_alternate() {
        let mut setup = TestSetup::new(VendorProfile::mfr_m_e_die(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        let bank = BankId::new(0);
        let rows = [RowAddr::new(0), RowAddr::new(1), RowAddr::new(2)];
        init_neutral_rows(
            &mut setup,
            bank,
            &rows,
            NeutralPlan::ComplementPairs,
            &mut rng,
        )
        .unwrap();
        let cols = setup.module().geometry().cols_per_row as usize;
        assert_eq!(setup.read_row(bank, rows[0]).unwrap().count_ones(), 0);
        assert_eq!(setup.read_row(bank, rows[1]).unwrap().count_ones(), cols);
        assert_eq!(setup.read_row(bank, rows[2]).unwrap().count_ones(), 0);
    }

    #[test]
    fn frac_residual_is_seed_deterministic() {
        let run = |seed| {
            let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 1);
            let mut rng = StdRng::seed_from_u64(seed);
            frac_row(&mut setup, BankId::new(0), RowAddr::new(5), &mut rng).unwrap();
            let geometry = *setup.module().geometry();
            let (sa_id, local) = geometry.split_row(RowAddr::new(5)).unwrap();
            let sa = setup
                .module_mut()
                .bank_mut(BankId::new(0))
                .unwrap()
                .subarray(sa_id);
            (0..8)
                .map(|c| sa.cell(local, c).voltage())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
