//! Error type for PUD operations.

use std::error::Error;
use std::fmt;

use simra_bender::SequencerError;
use simra_dram::DramError;

/// Errors raised by PUD operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PudError {
    /// The APA did not produce the activation pattern the operation needs
    /// (e.g. asked for simultaneous rows, got a consecutive activation).
    UnexpectedActivation {
        /// What the operation needed.
        expected: String,
        /// What the decoder produced.
        got: String,
    },
    /// The row group is too small for the requested operation
    /// (MAJX needs at least X simultaneously activated rows).
    GroupTooSmall {
        /// Rows in the group.
        rows: usize,
        /// Rows required.
        required: usize,
    },
    /// Input widths do not match the modelled row width.
    InputWidth {
        /// Bits provided.
        got: usize,
        /// Bits per row.
        expected: usize,
    },
    /// MAJX requires an odd operand count of at least three.
    BadOperandCount(usize),
    /// Error from the sequencer / rig.
    Sequencer(SequencerError),
    /// Error from the device model.
    Dram(DramError),
}

impl fmt::Display for PudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PudError::UnexpectedActivation { expected, got } => {
                write!(f, "unexpected activation: needed {expected}, got {got}")
            }
            PudError::GroupTooSmall { rows, required } => {
                write!(
                    f,
                    "row group has {rows} rows but the operation needs {required}"
                )
            }
            PudError::InputWidth { got, expected } => {
                write!(f, "input is {got} bits wide, rows are {expected}")
            }
            PudError::BadOperandCount(x) => {
                write!(f, "MAJX needs an odd X ≥ 3, got {x}")
            }
            PudError::Sequencer(e) => write!(f, "sequencer: {e}"),
            PudError::Dram(e) => write!(f, "device: {e}"),
        }
    }
}

impl Error for PudError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PudError::Sequencer(e) => Some(e),
            PudError::Dram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SequencerError> for PudError {
    fn from(e: SequencerError) -> Self {
        PudError::Sequencer(e)
    }
}

impl From<DramError> for PudError {
    fn from(e: DramError) -> Self {
        PudError::Dram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = PudError::GroupTooSmall {
            rows: 4,
            required: 5,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('5'));
        let e = PudError::BadOperandCount(4);
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<PudError>();
    }
}
