//! Multi-RowCopy: copying one source row to up to 31 destination rows at
//! once (§3.4, §6) — the paper's second new PUD operation.
//!
//! Sequence: fully activate the source (`t1 ≥ tRAS` so the amps latch it),
//! then interrupt the precharge within ≤ 3 ns so the predecoder latches
//! accumulate and *all* group rows open while the amps still drive the
//! source data; the amps then overwrite every open row.
//!
//! With a short `t1` the amplifiers never finished latching: a fraction of
//! columns latches the wrong value and every destination inherits the
//! error — that is Obs. 15's cliff at `t1 = 1.5 ns` (≈ half the columns).

use simra_bender::TestSetup;
use simra_decoder::ApaOutcome;
use simra_dram::{ApaTiming, BitRow};

use crate::error::PudError;
use crate::rowgroup::GroupSpec;

/// Outcome of a functional Multi-RowCopy.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRowCopyReport {
    /// Local indices of the destination rows that were overwritten.
    pub destinations: Vec<u32>,
    /// The image the sense amplifiers actually drove (equals the source
    /// image on the columns that latched correctly).
    pub driven_image: BitRow,
    /// Cells across all destinations that failed to take the write.
    pub restore_failures: usize,
}

fn resolve_group_rows(
    setup: &TestSetup,
    group: &GroupSpec,
    timing: ApaTiming,
) -> Result<Vec<u32>, PudError> {
    let (_, outcome) = setup.resolve_apa(group.bank, group.r_f, group.r_s, timing)?;
    match outcome {
        ApaOutcome::Simultaneous { rows } if rows == group.local_rows => Ok(rows),
        other => Err(PudError::UnexpectedActivation {
            expected: format!("simultaneous activation of {} rows", group.n_rows()),
            got: format!("{other:?}"),
        }),
    }
}

/// Deterministic per-column "did the amplifier latch in time" decision:
/// a hash of (column, R_F) thresholded at the latch quality. Systematic
/// across trials — slow columns are slow every time.
fn column_latches(col: u32, r_f_raw: u32, quality: f64) -> bool {
    let mut z = (col as u64) << 32 | r_f_raw as u64;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) < quality
}

/// The restore drive scale for Multi-RowCopy: the amps drive at full
/// strength once latched; only a grid-minimum `t2` weakens the overdrive.
fn mrc_restore_strength(setup: &TestSetup, timing: ApaTiming) -> f64 {
    // t1 affects the *latch*, not the restore: evaluate the restore
    // penalty as if t1 were nominal.
    let restore_timing = ApaTiming::from_ns(3.0, timing.t2.as_ns());
    setup
        .engine()
        .params()
        .restore_strength(restore_timing, setup.conditions())
}

/// Success rate (0–1) of Multi-RowCopy on `group` with `timing`: the
/// expected fraction of destination cells that hold the source image
/// after the copy, across all trials (§3.4 methodology: destinations are
/// pre-filled with a different pattern, here the complement).
///
/// # Errors
///
/// Sequencer/group validation errors.
pub fn multirowcopy_success(
    setup: &mut TestSetup,
    group: &GroupSpec,
    timing: ApaTiming,
    source_image: &BitRow,
) -> Result<f64, PudError> {
    let geometry = *setup.module().geometry();
    let cols = geometry.cols_per_row as usize;
    if source_image.len() != cols {
        return Err(PudError::InputWidth {
            got: source_image.len(),
            expected: cols,
        });
    }
    let rows = resolve_group_rows(setup, group, timing)?;
    let local_src = group.local_r_f(&geometry);
    let destinations: Vec<u32> = rows.iter().copied().filter(|r| *r != local_src).collect();

    // Initialise source and destinations per the methodology.
    setup.init_row(group.bank, group.r_f, source_image)?;
    let anti = source_image.complement();
    for &d in &destinations {
        setup.init_row(group.bank, geometry.join_row(group.subarray, d), &anti)?;
    }

    let engine = setup.engine();
    let latch_q = engine.params().mrc_latch_quality(timing.t1.as_ns());
    let restore = mrc_restore_strength(setup, timing);
    let subarray = setup
        .module_mut()
        .bank_mut(group.bank)?
        .subarray(group.subarray);
    let mut probs = Vec::new();
    engine.commit_survival_into(subarray, &destinations, source_image, restore, &mut probs);
    // A destination cell succeeds iff its column latched the source value
    // AND the restore stuck. Columns that latched wrong drive the
    // complement into the cell: guaranteed failure. The latch decision is
    // per-column (systematic across destinations), so hash it once per
    // column instead of once per cell.
    let per_dest_cols = probs.len() / destinations.len().max(1);
    let latched: Vec<bool> = (0..per_dest_cols)
        .map(|col| column_latches(col as u32, group.r_f.raw(), latch_q))
        .collect();
    let mut total = 0.0;
    for (i, p) in probs.iter().enumerate() {
        if latched[i % per_dest_cols.max(1)] {
            total += p;
        }
    }
    Ok(total / probs.len().max(1) as f64)
}

/// Functionally executes Multi-RowCopy, mutating the module.
///
/// # Errors
///
/// Sequencer/group validation errors.
pub fn exec_multirowcopy(
    setup: &mut TestSetup,
    group: &GroupSpec,
    timing: ApaTiming,
) -> Result<MultiRowCopyReport, PudError> {
    let geometry = *setup.module().geometry();
    let rows = resolve_group_rows(setup, group, timing)?;
    let local_src = group.local_r_f(&geometry);
    let destinations: Vec<u32> = rows.iter().copied().filter(|r| *r != local_src).collect();
    let source_image = setup.read_row(group.bank, group.r_f)?;

    let engine = setup.engine();
    let latch_q = engine.params().mrc_latch_quality(timing.t1.as_ns());
    let restore = mrc_restore_strength(setup, timing);
    // The driven image is the source corrupted on slow columns.
    let driven_image = BitRow::from_bits((0..source_image.len()).map(|c| {
        if column_latches(c as u32, group.r_f.raw(), latch_q) {
            source_image.get(c)
        } else {
            !source_image.get(c)
        }
    }));
    let subarray = setup
        .module_mut()
        .bank_mut(group.bank)?
        .subarray(group.subarray);
    let restore_failures = engine.commit(subarray, &destinations, &driven_image, restore);
    Ok(MultiRowCopyReport {
        destinations,
        driven_image,
        restore_failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowgroup::random_group;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simra_dram::{BankId, DataPattern, SubarrayId, VendorProfile};

    fn setup() -> TestSetup {
        TestSetup::new(VendorProfile::mfr_h_m_die(), 55)
    }

    fn group(s: &TestSetup, n: u32, seed: u64) -> GroupSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        random_group(
            s.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            n,
            &mut rng,
        )
        .expect("group")
    }

    #[test]
    fn best_timing_copies_almost_perfectly() {
        let mut s = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let cols = s.module().geometry().cols_per_row as usize;
        for n in [2u32, 4, 8, 16, 32] {
            let g = group(&s, n, n as u64);
            let img = DataPattern::Random.row_image(0, cols, &mut rng);
            let p = multirowcopy_success(&mut s, &g, ApaTiming::best_for_multi_row_copy(), &img)
                .unwrap();
            assert!(p > 0.995, "N={n}: {p}");
        }
    }

    #[test]
    fn t1_grid_minimum_halves_success() {
        let mut s = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let cols = s.module().geometry().cols_per_row as usize;
        let g = group(&s, 8, 3);
        let img = DataPattern::Random.row_image(0, cols, &mut rng);
        let bad = multirowcopy_success(&mut s, &g, ApaTiming::from_ns(1.5, 3.0), &img).unwrap();
        assert!(
            bad > 0.3 && bad < 0.7,
            "t1=1.5 ns should land near 50 %: {bad}"
        );
    }

    #[test]
    fn exec_overwrites_all_destinations() {
        let mut s = setup();
        let cols = s.module().geometry().cols_per_row as usize;
        let g = group(&s, 16, 4);
        let geometry = *s.module().geometry();
        let src_img = BitRow::ones(cols);
        s.init_row(g.bank, g.r_f, &src_img).unwrap();
        for &d in &g.local_rows {
            let row = geometry.join_row(g.subarray, d);
            if row != g.r_f {
                s.init_row(g.bank, row, &BitRow::zeros(cols)).unwrap();
            }
        }
        let report = exec_multirowcopy(&mut s, &g, ApaTiming::best_for_multi_row_copy()).unwrap();
        assert_eq!(report.destinations.len(), 15);
        assert_eq!(report.restore_failures, 0);
        for &d in &report.destinations {
            let row = geometry.join_row(g.subarray, d);
            let read = s.read_row(g.bank, row).unwrap();
            assert!(read.count_ones() as f64 / cols as f64 > 0.99, "row {d}");
        }
    }

    #[test]
    fn all_ones_at_31_dips_below_all_zeros() {
        let mut s = setup();
        let g = group(&s, 32, 5);
        let cols = s.module().geometry().cols_per_row as usize;
        let t = ApaTiming::best_for_multi_row_copy();
        let p1 = multirowcopy_success(&mut s, &g, t, &BitRow::ones(cols)).unwrap();
        let p0 = multirowcopy_success(&mut s, &g, t, &BitRow::zeros(cols)).unwrap();
        assert!(
            p0 > p1,
            "all-0s {p0} should beat all-1s {p1} at 31 destinations"
        );
        assert!(p0 - p1 < 0.05, "but only slightly (paper: 0.79 %)");
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut s = setup();
        let g = group(&s, 4, 6);
        let err = multirowcopy_success(
            &mut s,
            &g,
            ApaTiming::best_for_multi_row_copy(),
            &BitRow::ones(3),
        )
        .unwrap_err();
        assert!(matches!(err, PudError::InputWidth { .. }));
    }

    #[test]
    fn consecutive_timing_rejected() {
        let mut s = setup();
        let cols = s.module().geometry().cols_per_row as usize;
        let g = group(&s, 4, 7);
        let err = multirowcopy_success(&mut s, &g, ApaTiming::row_clone(), &BitRow::ones(cols))
            .unwrap_err();
        assert!(matches!(err, PudError::UnexpectedActivation { .. }));
    }
}
