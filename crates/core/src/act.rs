//! Simultaneous many-row activation and its §3.2 testing methodology:
//! initialise the rows, issue APA, overdrive with WR, read back.

use rand::rngs::StdRng;

use simra_bender::TestSetup;
use simra_dram::{ApaTiming, DataPattern};

use crate::error::PudError;
use crate::rowgroup::GroupSpec;

/// Success rate (0–1) of simultaneously activating `group` with `timing`:
/// the expected fraction of cells across the group's rows that store the
/// WR-overdriven pattern in *all* trials.
///
/// The methodology follows §3.2: rows are pre-initialised with `pattern`,
/// the APA opens the group, and a WR with the *complement* pattern
/// overdrives the bitlines; a cell succeeds iff it takes the new value.
/// Rows the decoder did not actually open count as full failures (their
/// cells still hold the old pattern).
///
/// # Errors
///
/// Propagates sequencer errors (bad addresses, cross-subarray pairs).
pub fn activation_success(
    setup: &mut TestSetup,
    group: &GroupSpec,
    timing: ApaTiming,
    pattern: DataPattern,
    rng: &mut StdRng,
) -> Result<f64, PudError> {
    let geometry = *setup.module().geometry();
    let cols = geometry.cols_per_row as usize;

    // Step 1: initialise the group's rows with the predefined pattern.
    let init = pattern.row_image(0, cols, rng);
    for &local in &group.local_rows {
        let row = geometry.join_row(group.subarray, local);
        setup.init_row(group.bank, row, &init)?;
    }

    // Step 2: resolve the APA structurally.
    let (sa, outcome) = setup.resolve_apa(group.bank, group.r_f, group.r_s, timing)?;

    // Step 3: WR overdrive with a different pattern (the complement).
    let wr_image = init.complement();
    let engine = setup.engine();
    let restore = engine.params().restore_strength(timing, setup.conditions());
    let open = outcome.open_rows();
    let subarray = setup.module_mut().bank_mut(group.bank)?.subarray(sa);
    // Only the in-order sum of the per-cell survivals is needed here, so
    // skip materializing the probability vector entirely.
    let open_cell_success = engine.commit_survival_sum(subarray, &open, &wr_image, restore);

    // Rows that should have been in the group but were not opened
    // contribute zero successes.
    let total_cells = group.local_rows.len() * cols;
    debug_assert!(
        open.iter().all(|r| group.local_rows.contains(r)),
        "the decoder cannot open rows outside the group's Cartesian product"
    );
    Ok(open_cell_success / total_cells as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowgroup::random_group;
    use rand::SeedableRng;
    use simra_dram::{BankId, SubarrayId, VendorProfile};

    fn group(setup: &TestSetup, n: u32, seed: u64) -> GroupSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            n,
            &mut rng,
        )
        .expect("group")
    }

    #[test]
    fn best_timing_activation_is_nearly_perfect() {
        let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 11);
        let mut rng = StdRng::seed_from_u64(0);
        for n in [2u32, 8, 32] {
            let g = group(&setup, n, n as u64);
            let s = activation_success(
                &mut setup,
                &g,
                ApaTiming::best_for_activation(),
                DataPattern::Random,
                &mut rng,
            )
            .unwrap();
            assert!(s > 0.99, "N={n} success {s}");
        }
    }

    #[test]
    fn grid_minimum_timing_drops_success() {
        let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 11);
        let mut rng = StdRng::seed_from_u64(0);
        let g = group(&setup, 8, 3);
        let best = activation_success(
            &mut setup,
            &g,
            ApaTiming::best_for_activation(),
            DataPattern::Random,
            &mut rng,
        )
        .unwrap();
        let weak = activation_success(
            &mut setup,
            &g,
            ApaTiming::from_ns(1.5, 1.5),
            DataPattern::Random,
            &mut rng,
        )
        .unwrap();
        assert!(best - weak > 0.1, "best {best} weak {weak}");
    }

    #[test]
    fn samsung_guard_fails_the_group() {
        let mut setup = TestSetup::new(VendorProfile::mfr_s(), 11);
        let mut rng = StdRng::seed_from_u64(0);
        let g = group(&setup, 8, 3);
        let s = activation_success(
            &mut setup,
            &g,
            ApaTiming::best_for_activation(),
            DataPattern::Random,
            &mut rng,
        )
        .unwrap();
        // Only 1 of 8 rows opens: at most 1/8 of cells can succeed.
        assert!(
            s <= 0.13,
            "guarded part should fail most of the group, got {s}"
        );
    }
}
