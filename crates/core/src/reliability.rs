//! Empirical (trial-sampled) success rates and stable/unstable cell
//! classification — the §3.1 metric computed the slow way.
//!
//! The characterization runners use an *analytic* survival probability
//! (margin → Φ-survival over 10⁴ trials) because it is smooth, fast and
//! deterministic. This module computes the same metric by literally
//! repeating trials with sampled sense noise and counting cells that are
//! correct *every* time — which is what the paper's tester does — and is
//! used in tests to validate that the analytic shortcut agrees with the
//! simulated ground truth.

use rand::rngs::StdRng;

use simra_bender::TestSetup;
use simra_dram::{ApaTiming, BitRow};

use crate::error::PudError;
use crate::maj::{majority, plan_layout, MajLayout};
use crate::rowgroup::GroupSpec;

/// Per-cell trial statistics for one bitline population.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialStats {
    /// Trials run.
    pub trials: u32,
    /// Per-column count of correct resolutions.
    pub correct: Vec<u32>,
}

impl TrialStats {
    /// The paper's success rate: fraction of cells correct in *all*
    /// trials ("stable" cells).
    pub fn success_rate(&self) -> f64 {
        if self.correct.is_empty() {
            return f64::NAN;
        }
        let stable = self.correct.iter().filter(|&&c| c == self.trials).count();
        stable as f64 / self.correct.len() as f64
    }

    /// Mean per-trial accuracy (a *different*, laxer metric than the
    /// success rate — useful to see how far "mostly right" is from
    /// "always right").
    pub fn mean_accuracy(&self) -> f64 {
        if self.correct.is_empty() || self.trials == 0 {
            return f64::NAN;
        }
        let total: u64 = self.correct.iter().map(|&c| c as u64).sum();
        total as f64 / (self.correct.len() as u64 * self.trials as u64) as f64
    }

    /// Column indices of unstable cells (wrong at least once).
    pub fn unstable_columns(&self) -> Vec<u32> {
        self.correct
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != self.trials)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// Runs `trials` sampled MAJX trials on `group` with *fixed* operand
/// data (the same images every trial, like the paper's fixed-pattern
/// tests) and tallies per-column correctness.
///
/// # Errors
///
/// MAJX validation and sequencer errors.
pub fn empirical_majx_trials(
    setup: &mut TestSetup,
    group: &GroupSpec,
    operands: &[BitRow],
    timing: ApaTiming,
    trials: u32,
    rng: &mut StdRng,
) -> Result<TrialStats, PudError> {
    let layout: MajLayout = plan_layout(group, operands.len())?;
    let geometry = *setup.module().geometry();
    let cols = geometry.cols_per_row as usize;
    for o in operands {
        if o.len() != cols {
            return Err(PudError::InputWidth {
                got: o.len(),
                expected: cols,
            });
        }
    }
    let expected = majority(operands);
    let engine = setup.engine();
    let local_r_f = group.local_r_f(&geometry);
    let mut correct = vec![0u32; cols];

    // Write the layout once; sensing does not disturb the stored charge
    // in this mode (we re-sense the same state per trial, as the tester
    // re-initialises between trials).
    for (i, rows) in layout.operand_rows.iter().enumerate() {
        for &local in rows {
            setup.init_row(
                group.bank,
                geometry.join_row(group.subarray, local),
                &operands[i],
            )?;
        }
    }
    let plan = crate::frac::neutral_plan(setup);
    let neutral: Vec<_> = layout
        .neutral_rows
        .iter()
        .map(|&l| geometry.join_row(group.subarray, l))
        .collect();
    crate::frac::init_neutral_rows(setup, group.bank, &neutral, plan, rng)?;

    let rows = group.local_rows.clone();
    // The stored charge state is identical for every trial, so the whole
    // trial loop collapses onto the batched sampling rig: one systematic
    // sense, then per-trial noise redraws in the exact RNG-stream order
    // the scalar loop used.
    let subarray = setup
        .module_mut()
        .bank_mut(group.bank)?
        .subarray(group.subarray);
    let senses =
        engine.sense_sampled_batch(subarray, &rows, local_r_f, timing, trials as usize, rng);
    for sense in &senses {
        for (c, tally) in correct.iter_mut().enumerate() {
            if sense.resolved.get(c) == expected.get(c) {
                *tally += 1;
            }
        }
    }
    Ok(TrialStats { trials, correct })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maj::random_operands;
    use crate::rowgroup::random_group;
    use rand::SeedableRng;
    use simra_analog::CircuitParams;
    use simra_dram::{BankId, SubarrayId, VendorProfile};

    fn env() -> (TestSetup, GroupSpec, StdRng) {
        let setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 23);
        let mut rng = StdRng::seed_from_u64(17);
        let group = random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            32,
            &mut rng,
        )
        .unwrap();
        (setup, group, rng)
    }

    #[test]
    fn stats_accounting() {
        let s = TrialStats {
            trials: 4,
            correct: vec![4, 4, 3, 0],
        };
        assert!((s.success_rate() - 0.5).abs() < 1e-12);
        assert!((s.mean_accuracy() - 11.0 / 16.0).abs() < 1e-12);
        assert_eq!(s.unstable_columns(), vec![2, 3]);
    }

    #[test]
    fn maj3_at_32_rows_has_mostly_stable_cells() {
        let (mut setup, group, mut rng) = env();
        let cols = setup.module().geometry().cols_per_row as usize;
        let ops = random_operands(3, cols, &mut rng);
        let stats = empirical_majx_trials(
            &mut setup,
            &group,
            &ops,
            ApaTiming::best_for_majx(),
            50,
            &mut rng,
        )
        .unwrap();
        assert!(
            stats.success_rate() > 0.9,
            "empirical {:.3}",
            stats.success_rate()
        );
        assert!(stats.mean_accuracy() >= stats.success_rate());
    }

    #[test]
    fn empirical_agrees_with_analytic_survival() {
        // The core validation: the analytic Φ-survival metric the
        // characterization crate uses must track the trial-sampled
        // ground truth (at a matched trial count).
        let (mut setup, group, mut rng) = env();
        let cols = setup.module().geometry().cols_per_row as usize;
        let trials = 200u32;
        let mut params = CircuitParams::calibrated();
        params.effective_trials = trials;
        setup.set_circuit_params(Some(params));

        let ops = random_operands(3, cols, &mut rng);
        let stats = empirical_majx_trials(
            &mut setup,
            &group,
            &ops,
            ApaTiming::best_for_majx(),
            trials,
            &mut rng,
        )
        .unwrap();

        // Analytic prediction on the same state.
        let geometry = *setup.module().geometry();
        let engine = setup.engine();
        let expected = majority(&ops);
        let local_r_f = group.local_r_f(&geometry);
        let subarray = setup
            .module_mut()
            .bank_mut(group.bank)
            .unwrap()
            .subarray(group.subarray);
        let sense = engine.sense(
            subarray,
            &group.local_rows,
            local_r_f,
            ApaTiming::best_for_majx(),
        );
        let analytic: f64 = engine
            .survival_toward(subarray, &sense.deltas, &expected)
            .iter()
            .sum::<f64>()
            / cols as f64;

        let empirical = stats.success_rate();
        assert!(
            (analytic - empirical).abs() < 0.08,
            "analytic {analytic:.3} vs empirical {empirical:.3}"
        );
    }

    #[test]
    fn harsher_timing_lowers_empirical_success() {
        let (mut setup, group, mut rng) = env();
        let cols = setup.module().geometry().cols_per_row as usize;
        let ops = random_operands(3, cols, &mut rng);
        let good = empirical_majx_trials(
            &mut setup,
            &group,
            &ops,
            ApaTiming::best_for_majx(),
            20,
            &mut rng,
        )
        .unwrap();
        let bad = empirical_majx_trials(
            &mut setup,
            &group,
            &ops,
            ApaTiming::from_ns(3.0, 3.0),
            20,
            &mut rng,
        )
        .unwrap();
        assert!(good.success_rate() >= bad.success_rate());
    }

    #[test]
    fn width_mismatch_rejected() {
        let (mut setup, group, mut rng) = env();
        let bad = vec![BitRow::ones(3); 3];
        assert!(matches!(
            empirical_majx_trials(
                &mut setup,
                &group,
                &bad,
                ApaTiming::best_for_majx(),
                5,
                &mut rng
            ),
            Err(PudError::InputWidth { .. })
        ));
    }
}
