//! True-random-number generation from simultaneous many-row activation —
//! the extension the paper points at (§10.1: "Our observations … could
//! also be leveraged to generate true random numbers", after QUAC-TRNG).
//!
//! Mechanism, following QUAC-TRNG's two phases:
//!
//! 1. **Identification**: initialise a 2^d-row group half with 1s and
//!    half with 0s and find the *TRNG columns* — bitlines whose
//!    charge-sharing tie lands within the sense amplifier's thermal-noise
//!    band. Most columns resolve deterministically (process variation
//!    skews their tie); only the metastable ones are entropy sources.
//! 2. **Harvest**: repeat the balanced activation and read the TRNG
//!    columns; a von Neumann corrector removes residual per-column bias.

use rand::rngs::StdRng;

use simra_bender::TestSetup;
use simra_decoder::ApaOutcome;
use simra_dram::{ApaTiming, BitRow};

use crate::error::PudError;
use crate::rowgroup::GroupSpec;

/// The APA timing for TRNG: the minimum ACT→ACT delay, so the first row
/// does not over-share and skew the tie (same reasoning as MAJX, Obs. 7).
fn trng_timing() -> ApaTiming {
    ApaTiming::best_for_majx()
}

/// Prepares the balanced (half-1s / half-0s) initialisation and returns
/// the group's open rows.
fn prepare_balanced(setup: &mut TestSetup, group: &GroupSpec) -> Result<Vec<u32>, PudError> {
    let timing = trng_timing();
    let (_, outcome) = setup.resolve_apa(group.bank, group.r_f, group.r_s, timing)?;
    let rows = match outcome {
        ApaOutcome::Simultaneous { rows } if rows == group.local_rows => rows,
        other => {
            return Err(PudError::UnexpectedActivation {
                expected: "simultaneous activation".into(),
                got: format!("{other:?}"),
            })
        }
    };
    if rows.len() < 2 || rows.len() % 2 != 0 {
        return Err(PudError::GroupTooSmall {
            rows: rows.len(),
            required: 2,
        });
    }
    let geometry = *setup.module().geometry();
    let cols = geometry.cols_per_row as usize;
    for (i, &local) in rows.iter().enumerate() {
        let img = if i < rows.len() / 2 {
            BitRow::ones(cols)
        } else {
            BitRow::zeros(cols)
        };
        setup.init_row(group.bank, geometry.join_row(group.subarray, local), &img)?;
    }
    Ok(rows)
}

/// Identification phase: the columns whose balanced-activation tie falls
/// within `noise_band` sense-noise sigmas — the usable entropy sources.
///
/// # Errors
///
/// Group/sequencer validation errors.
pub fn find_trng_columns(
    setup: &mut TestSetup,
    group: &GroupSpec,
    noise_band: f64,
) -> Result<Vec<u32>, PudError> {
    let rows = prepare_balanced(setup, group)?;
    let geometry = *setup.module().geometry();
    let engine = setup.engine();
    let local_r_f = group.local_r_f(&geometry);
    let timing = trng_timing();
    let threshold = noise_band * engine.params().trial_noise_sigma;
    let subarray = setup
        .module_mut()
        .bank_mut(group.bank)?
        .subarray(group.subarray);
    let sense = engine.sense(subarray, &rows, local_r_f, timing);
    Ok((0..subarray.cols())
        .filter(|&c| (sense.deltas[c as usize] + subarray.sense_offset(c) as f64).abs() < threshold)
        .collect())
}

/// Harvest phase: one balanced activation, sampled with thermal noise,
/// read out on the given TRNG columns (one raw bit per column).
///
/// # Errors
///
/// Group/sequencer validation errors.
pub fn harvest_raw(
    setup: &mut TestSetup,
    group: &GroupSpec,
    columns: &[u32],
    rng: &mut StdRng,
) -> Result<Vec<bool>, PudError> {
    let rows = prepare_balanced(setup, group)?;
    let geometry = *setup.module().geometry();
    let engine = setup.engine();
    let local_r_f = group.local_r_f(&geometry);
    let timing = trng_timing();
    let subarray = setup
        .module_mut()
        .bank_mut(group.bank)?
        .subarray(group.subarray);
    let sense = engine.sense_sampled(subarray, &rows, local_r_f, timing, rng);
    Ok(columns
        .iter()
        .map(|&c| sense.resolved.get(c as usize))
        .collect())
}

/// Von Neumann debiasing: `01 → 0`, `10 → 1`, equal pairs discarded.
pub fn von_neumann(raw_pairs: &[(bool, bool)]) -> Vec<bool> {
    raw_pairs
        .iter()
        .filter_map(|&(a, b)| if a != b { Some(a) } else { None })
        .collect()
}

/// Generates at least `min_bits` debiased random bits from repeated
/// balanced activations of `group` (or as many as a bounded number of
/// rounds yields — starvation means the group has too few TRNG columns).
///
/// # Errors
///
/// Propagates identification/harvest errors;
/// [`PudError::GroupTooSmall`] if the group exposes no TRNG columns.
pub fn generate_bits(
    setup: &mut TestSetup,
    group: &GroupSpec,
    min_bits: usize,
    rng: &mut StdRng,
) -> Result<Vec<bool>, PudError> {
    let columns = find_trng_columns(setup, group, 1.5)?;
    if columns.is_empty() {
        return Err(PudError::GroupTooSmall {
            rows: 0,
            required: 1,
        });
    }
    let mut out = Vec::with_capacity(min_bits);
    let max_rounds = (8 * min_bits / columns.len().max(1)).max(16);
    for _ in 0..max_rounds {
        let first = harvest_raw(setup, group, &columns, rng)?;
        let second = harvest_raw(setup, group, &columns, rng)?;
        let pairs: Vec<(bool, bool)> = first.into_iter().zip(second).collect();
        out.extend(von_neumann(&pairs));
        if out.len() >= min_bits {
            out.truncate(min_bits);
            break;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowgroup::random_group;
    use rand::SeedableRng;
    use simra_dram::{BankId, SubarrayId, VendorProfile};

    fn env() -> (TestSetup, GroupSpec, StdRng) {
        let setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 4);
        let mut rng = StdRng::seed_from_u64(8);
        let group = random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            16,
            &mut rng,
        )
        .unwrap();
        (setup, group, rng)
    }

    #[test]
    fn identification_finds_a_metastable_subset() {
        let (mut setup, group, _) = env();
        let cols = find_trng_columns(&mut setup, &group, 1.5).unwrap();
        let total = setup.module().geometry().cols_per_row as usize;
        assert!(!cols.is_empty(), "some columns must be metastable");
        assert!(cols.len() < total, "not every column is metastable");
        // Identification is deterministic.
        assert_eq!(cols, find_trng_columns(&mut setup, &group, 1.5).unwrap());
        // A wider band admits at least as many columns.
        let wide = find_trng_columns(&mut setup, &group, 3.0).unwrap();
        assert!(wide.len() >= cols.len());
    }

    #[test]
    fn harvests_on_trng_columns_are_noisy() {
        let (mut setup, group, mut rng) = env();
        let cols = find_trng_columns(&mut setup, &group, 1.5).unwrap();
        let a = harvest_raw(&mut setup, &group, &cols, &mut rng).unwrap();
        let b = harvest_raw(&mut setup, &group, &cols, &mut rng).unwrap();
        let differing = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(differing > 0, "TRNG columns must flip between harvests");
    }

    #[test]
    fn von_neumann_removes_pairs() {
        let pairs = [(true, false), (false, true), (true, true), (false, false)];
        assert_eq!(von_neumann(&pairs), vec![true, false]);
    }

    #[test]
    fn generated_bits_are_roughly_balanced() {
        let (mut setup, group, mut rng) = env();
        let bits = generate_bits(&mut setup, &group, 500, &mut rng).unwrap();
        assert!(bits.len() >= 100, "harvest starved: {}", bits.len());
        let ones = bits.iter().filter(|b| **b).count() as f64 / bits.len() as f64;
        assert!(
            (0.35..=0.65).contains(&ones),
            "debiased stream should be near-fair: {ones}"
        );
    }

    #[test]
    fn successive_streams_differ() {
        let (mut setup, group, mut rng) = env();
        let a = generate_bits(&mut setup, &group, 64, &mut rng).unwrap();
        let b = generate_bits(&mut setup, &group, 64, &mut rng).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn odd_sized_groups_rejected() {
        let (mut setup, mut group, _) = env();
        group.local_rows = vec![group.local_rows[0]];
        group.r_s = group.r_f;
        let err = find_trng_columns(&mut setup, &group, 1.5).unwrap_err();
        assert!(matches!(
            err,
            PudError::GroupTooSmall { .. } | PudError::UnexpectedActivation { .. }
        ));
    }
}
