//! Subarray-boundary reverse engineering (§3.1 "Finding Subarray
//! Boundaries"): RowClone only works between rows that share bitlines, so
//! sweeping copies between adjacent rows exposes where one subarray ends
//! and the next begins.

use simra_bender::TestSetup;
use simra_dram::{BankId, BitRow, RowAddr};

use crate::error::PudError;
use crate::rowclone::exec_rowclone;

/// Infers the subarray boundaries of `bank` by attempting RowClone between
/// each pair of adjacent rows over the first `probe_rows` rows: a copy
/// that fails (cross-subarray) marks a boundary. Returns the starting row
/// of each inferred subarray (always includes 0).
///
/// The paper performs this across *all* row pairs; adjacent pairs are
/// sufficient to find boundaries and keep the sweep linear.
///
/// # Errors
///
/// Propagates device errors (not the expected cross-subarray failures,
/// which are the signal being measured).
pub fn find_boundaries(
    setup: &mut TestSetup,
    bank: BankId,
    probe_rows: u32,
) -> Result<Vec<u32>, PudError> {
    let cols = setup.module().geometry().cols_per_row as usize;
    let probe_rows = probe_rows.min(setup.module().geometry().rows_per_bank());
    let marker = BitRow::ones(cols);
    let blank = BitRow::zeros(cols);
    let mut boundaries = vec![0u32];
    for r in 0..probe_rows.saturating_sub(1) {
        let src = RowAddr::new(r);
        let dst = RowAddr::new(r + 1);
        setup.init_row(bank, src, &marker)?;
        setup.init_row(bank, dst, &blank)?;
        let copied = match exec_rowclone(setup, bank, src, dst) {
            Ok(_) => {
                let read = setup.read_row(bank, dst)?;
                // Success = the overwhelming majority of cells copied.
                read.matches(&marker) as f64 / cols as f64 > 0.9
            }
            Err(PudError::Sequencer(_)) | Err(PudError::UnexpectedActivation { .. }) => false,
            Err(e) => return Err(e),
        };
        if !copied {
            boundaries.push(r + 1);
        }
    }
    Ok(boundaries)
}

/// Infers the subarray size from boundary positions (the stride between
/// consecutive boundaries; `None` if fewer than two boundaries were seen).
pub fn infer_subarray_size(boundaries: &[u32]) -> Option<u32> {
    if boundaries.len() < 2 {
        return None;
    }
    Some(boundaries[1] - boundaries[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use simra_dram::VendorProfile;

    #[test]
    fn finds_the_512_row_boundary() {
        let mut s = TestSetup::new(VendorProfile::mfr_h_m_die(), 77);
        // Probe the first 1.5 subarrays: expect a boundary at 512.
        let b = find_boundaries(&mut s, BankId::new(0), 520).unwrap();
        assert_eq!(b, vec![0, 512]);
    }

    #[test]
    fn infers_size_from_boundaries() {
        assert_eq!(infer_subarray_size(&[0, 512, 1024]), Some(512));
        assert_eq!(infer_subarray_size(&[0]), None);
    }

    #[test]
    fn no_boundary_inside_a_subarray() {
        let mut s = TestSetup::new(VendorProfile::mfr_h_m_die(), 77);
        let b = find_boundaries(&mut s, BankId::new(0), 100).unwrap();
        assert_eq!(b, vec![0]);
    }
}
