//! The success-rate metric and distribution summaries for the paper's
//! box-and-whiskers plots.

use serde::{Deserialize, Serialize};

/// Five-number summary plus mean, as the paper's box plots report
/// (box = Q1..Q3, whiskers = min/max).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples summarised.
    pub count: usize,
}

impl BoxStats {
    /// Summarises a sample set.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise an empty sample set");
        let mut s: Vec<f64> = samples.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("samples must be finite"));
        let q = |p: f64| -> f64 {
            // Linear interpolation between closest ranks.
            let pos = p * (s.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                s[lo]
            } else {
                s[lo] + (s[hi] - s[lo]) * (pos - lo as f64)
            }
        };
        BoxStats {
            min: s[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *s.last().expect("nonempty"),
            mean: s.iter().sum::<f64>() / s.len() as f64,
            count: s.len(),
        }
    }

    /// Inter-quartile range (the box height).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl std::fmt::Display for BoxStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:6.2} | q1 {:6.2} | med {:6.2} | q3 {:6.2} | max {:6.2} | mean {:6.2}",
            self.min, self.q1, self.median, self.q3, self.max, self.mean
        )
    }
}

/// Mean of a slice (success rates are usually averaged across groups).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Converts a 0–1 fraction to percent.
pub fn pct(fraction: f64) -> f64 {
    fraction * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn interpolated_quartiles() {
        let s = BoxStats::from_samples(&[0.0, 1.0]);
        assert_eq!(s.q1, 0.25);
        assert_eq!(s.median, 0.5);
        assert_eq!(s.q3, 0.75);
    }

    #[test]
    fn single_sample() {
        let s = BoxStats::from_samples(&[7.0]);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        BoxStats::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "samples must be finite")]
    fn nan_sample_rejected_loudly() {
        // A NaN sample must trip the finite-samples invariant during the
        // sort, not silently poison the quartiles.
        BoxStats::from_samples(&[1.0, f64::NAN, 2.0]);
    }

    #[test]
    fn helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
        assert!((pct(0.9985) - 99.85).abs() < 1e-9);
    }

    #[test]
    fn display_contains_all_fields() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0]);
        let out = s.to_string();
        assert!(out.contains("med") && out.contains("mean"));
    }
}
