//! In-DRAM majority-of-X (MAJX) with input replication (§3.3, §5).
//!
//! To perform MAJX with N-row activation, each of the X operands is
//! replicated ⌊N/X⌋ times across the simultaneously activated rows; the
//! N%X leftover rows are made *neutral* (Frac on Mfr. H, complementary
//! all-0/all-1 pairs on Mfr. M). Replication is the paper's headline
//! robustness lever: MAJ3 with 32-row activation (10× replication) beats
//! MAJ3 with 4-row activation by ~31 % (Obs. 6).

use rand::rngs::StdRng;
use rand::Rng;

use simra_analog::SenseBatch;
use simra_bender::TestSetup;
use simra_decoder::ApaOutcome;
use simra_dram::{ApaTiming, BitRow, DataPattern};

use crate::error::PudError;
use crate::frac::{init_neutral_rows, neutral_plan};
use crate::rowgroup::GroupSpec;

/// How an X-operand majority is laid out on an N-row group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MajLayout {
    /// For each operand, the local rows holding its copies (⌊N/X⌋ each).
    pub operand_rows: Vec<Vec<u32>>,
    /// Local rows initialised as neutral (N % X of them).
    pub neutral_rows: Vec<u32>,
}

impl MajLayout {
    /// Replication factor (copies per operand).
    pub fn replication(&self) -> usize {
        self.operand_rows.first().map_or(0, Vec::len)
    }
}

/// Plans the replication layout of `x` operands over the group's rows.
///
/// # Errors
///
/// [`PudError::BadOperandCount`] unless `x` is odd and ≥ 3;
/// [`PudError::GroupTooSmall`] if the group has fewer than `x` rows.
pub fn plan_layout(group: &GroupSpec, x: usize) -> Result<MajLayout, PudError> {
    if x < 3 || x.is_multiple_of(2) {
        return Err(PudError::BadOperandCount(x));
    }
    let n = group.n_rows();
    if n < x {
        return Err(PudError::GroupTooSmall {
            rows: n,
            required: x,
        });
    }
    let r = n / x;
    let operand_rows = (0..x)
        .map(|i| group.local_rows[i * r..(i + 1) * r].to_vec())
        .collect();
    let neutral_rows = group.local_rows[x * r..].to_vec();
    Ok(MajLayout {
        operand_rows,
        neutral_rows,
    })
}

/// Per-column majority over the operand images.
///
/// # Panics
///
/// Panics if `operands` is empty or images have unequal widths.
pub fn majority(operands: &[BitRow]) -> BitRow {
    assert!(!operands.is_empty(), "majority needs operands");
    let cols = operands[0].len();
    BitRow::from_bits((0..cols).map(|c| {
        let ones = operands.iter().filter(|o| o.get(c)).count();
        ones * 2 > operands.len()
    }))
}

/// Configuration for MAJX characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajConfig {
    /// Independent data redraws for the random pattern. A cell only counts
    /// as stable if it would survive every redraw (fixed patterns are
    /// identical across trials and use a single batch).
    pub data_batches: usize,
}

impl Default for MajConfig {
    fn default() -> Self {
        MajConfig { data_batches: 6 }
    }
}

fn write_layout(
    setup: &mut TestSetup,
    group: &GroupSpec,
    layout: &MajLayout,
    operands: &[BitRow],
    rng: &mut StdRng,
) -> Result<(), PudError> {
    let geometry = *setup.module().geometry();
    for (i, rows) in layout.operand_rows.iter().enumerate() {
        for &local in rows {
            setup.init_row(
                group.bank,
                geometry.join_row(group.subarray, local),
                &operands[i],
            )?;
        }
    }
    let neutral: Vec<_> = layout
        .neutral_rows
        .iter()
        .map(|&local| geometry.join_row(group.subarray, local))
        .collect();
    let plan = neutral_plan(setup);
    init_neutral_rows(setup, group.bank, &neutral, plan, rng)?;
    Ok(())
}

fn expect_simultaneous(
    setup: &TestSetup,
    group: &GroupSpec,
    timing: ApaTiming,
) -> Result<Vec<u32>, PudError> {
    let (_, outcome) = setup.resolve_apa(group.bank, group.r_f, group.r_s, timing)?;
    match outcome {
        ApaOutcome::Simultaneous { rows } if rows == group.local_rows => Ok(rows),
        other => Err(PudError::UnexpectedActivation {
            expected: format!("simultaneous activation of {} rows", group.n_rows()),
            got: format!("{other:?}"),
        }),
    }
}

/// Success rate (0–1) of MAJX on `group`: expected fraction of bitlines
/// whose sense amplifiers resolve the correct majority in all trials,
/// minimised over data redraws for the random pattern (§3.3 methodology).
///
/// # Errors
///
/// Operand/group validation errors, plus sequencer errors.
pub fn majx_success(
    setup: &mut TestSetup,
    group: &GroupSpec,
    x: usize,
    timing: ApaTiming,
    pattern: DataPattern,
    config: &MajConfig,
    rng: &mut StdRng,
) -> Result<f64, PudError> {
    let layout = plan_layout(group, x)?;
    let rows = expect_simultaneous(setup, group, timing)?;
    let geometry = *setup.module().geometry();
    let cols = geometry.cols_per_row as usize;
    let batches = if pattern.is_random() {
        config.data_batches.max(1)
    } else {
        1
    };

    let engine = setup.engine();
    let local_r_f = group.local_r_f(&geometry);
    // Trial-batched sensing: each data redraw writes its layout and
    // snapshots the group's voltage plane; one batched kernel pass then
    // senses every redraw at once (the variation planes are redraw-
    // invariant). Sensing consumes no randomness, so deferring it
    // leaves the RNG stream — and hence every sample — byte-identical
    // to the historical sense-per-redraw loop.
    let mut batch = SenseBatch::new(&rows, cols);
    let mut expecteds = Vec::with_capacity(batches);
    for _ in 0..batches {
        let operands: Vec<BitRow> = (0..x).map(|i| pattern.row_image(i, cols, rng)).collect();
        expecteds.push(majority(&operands));
        write_layout(setup, group, &layout, &operands, rng)?;
        let subarray = setup
            .module_mut()
            .bank_mut(group.bank)?
            .subarray(group.subarray);
        batch.snapshot_trial(subarray);
    }
    let subarray = setup
        .module_mut()
        .bank_mut(group.bank)?
        .subarray(group.subarray);
    let results = engine.sense_batch(subarray, &batch, local_r_f, timing);
    let min_margins = engine.margins_batch(subarray, &results, &expecteds);
    let mean: f64 = min_margins
        .iter()
        .map(|&m| engine.margin_survival(m))
        .sum::<f64>()
        / cols as f64;
    Ok(mean)
}

/// Functionally executes MAJX: replicates `operands` onto the group,
/// initialises neutral rows, performs the APA, commits the sensed result
/// into every open row, and returns the computed majority as resolved by
/// the (noise-sampled) sense amplifiers.
///
/// # Errors
///
/// Operand/group validation errors, plus sequencer errors.
pub fn exec_majx(
    setup: &mut TestSetup,
    group: &GroupSpec,
    operands: &[BitRow],
    timing: ApaTiming,
    rng: &mut StdRng,
) -> Result<BitRow, PudError> {
    let x = operands.len();
    let layout = plan_layout(group, x)?;
    let geometry = *setup.module().geometry();
    let cols = geometry.cols_per_row as usize;
    for o in operands {
        if o.len() != cols {
            return Err(PudError::InputWidth {
                got: o.len(),
                expected: cols,
            });
        }
    }
    let rows = expect_simultaneous(setup, group, timing)?;
    write_layout(setup, group, &layout, operands, rng)?;
    let engine = setup.engine();
    let restore = engine.params().restore_strength(timing, setup.conditions());
    let local_r_f = group.local_r_f(&geometry);
    let subarray = setup
        .module_mut()
        .bank_mut(group.bank)?
        .subarray(group.subarray);
    let sense = engine.sense_sampled(subarray, &rows, local_r_f, timing, rng);
    engine.commit(subarray, &rows, &sense.resolved, restore);
    Ok(sense.resolved)
}

/// Convenience: a random operand set for tests and examples.
pub fn random_operands(x: usize, cols: usize, rng: &mut StdRng) -> Vec<BitRow> {
    (0..x)
        .map(|_| BitRow::from_bits((0..cols).map(|_| rng.gen())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowgroup::random_group;
    use rand::SeedableRng;
    use simra_dram::{BankId, SubarrayId, VendorProfile};

    fn setup() -> TestSetup {
        TestSetup::new(VendorProfile::mfr_h_m_die(), 21)
    }

    fn group(setup: &TestSetup, n: u32, seed: u64) -> GroupSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            n,
            &mut rng,
        )
        .expect("group")
    }

    #[test]
    fn layout_replication_counts() {
        let s = setup();
        let g = group(&s, 32, 1);
        let l3 = plan_layout(&g, 3).unwrap();
        assert_eq!(l3.replication(), 10);
        assert_eq!(l3.neutral_rows.len(), 2);
        let l5 = plan_layout(&g, 5).unwrap();
        assert_eq!(l5.replication(), 6);
        assert_eq!(l5.neutral_rows.len(), 2);
        let l7 = plan_layout(&g, 7).unwrap();
        assert_eq!(l7.replication(), 4);
        assert_eq!(l7.neutral_rows.len(), 4);
        let l9 = plan_layout(&g, 9).unwrap();
        assert_eq!(l9.replication(), 3);
        assert_eq!(l9.neutral_rows.len(), 5);
    }

    #[test]
    fn layout_validation() {
        let s = setup();
        let g = group(&s, 4, 1);
        assert!(matches!(
            plan_layout(&g, 4),
            Err(PudError::BadOperandCount(4))
        ));
        assert!(matches!(
            plan_layout(&g, 1),
            Err(PudError::BadOperandCount(1))
        ));
        assert!(matches!(
            plan_layout(&g, 5),
            Err(PudError::GroupTooSmall { .. })
        ));
    }

    #[test]
    fn majority_reference() {
        let a = BitRow::from_bits([true, true, false, false]);
        let b = BitRow::from_bits([true, false, true, false]);
        let c = BitRow::from_bits([false, true, true, false]);
        let m = majority(&[a, b, c]);
        let bits: Vec<bool> = m.iter().collect();
        assert_eq!(bits, [true, true, true, false]);
    }

    #[test]
    fn maj3_with_replication_beats_no_replication() {
        let mut s = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let g32 = group(&s, 32, 2);
        let g4 = group(&s, 4, 3);
        let cfg = MajConfig::default();
        let t = ApaTiming::best_for_majx();
        let s32 = majx_success(&mut s, &g32, 3, t, DataPattern::Random, &cfg, &mut rng).unwrap();
        let s4 = majx_success(&mut s, &g4, 3, t, DataPattern::Random, &cfg, &mut rng).unwrap();
        assert!(
            s32 > s4 + 0.1,
            "replication should help: 32-row {s32} vs 4-row {s4}"
        );
        assert!(s32 > 0.9, "MAJ3@32 should be strong, got {s32}");
    }

    #[test]
    fn success_ordering_maj3_to_maj9() {
        let mut s = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let g = group(&s, 32, 4);
        let cfg = MajConfig::default();
        let t = ApaTiming::best_for_majx();
        let mut rates = Vec::new();
        for x in [3usize, 5, 7, 9] {
            rates
                .push(majx_success(&mut s, &g, x, t, DataPattern::Random, &cfg, &mut rng).unwrap());
        }
        assert!(
            rates[0] > rates[1] && rates[1] > rates[2] && rates[2] > rates[3],
            "{rates:?}"
        );
    }

    #[test]
    fn exec_majx_computes_clear_majorities() {
        let mut s = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let g = group(&s, 32, 5);
        let cols = s.module().geometry().cols_per_row as usize;
        // All-equal operands: the majority is unambiguous everywhere.
        let ones = vec![BitRow::ones(cols); 3];
        let out = exec_majx(&mut s, &g, &ones, ApaTiming::best_for_majx(), &mut rng).unwrap();
        assert!(out.count_ones() as f64 / cols as f64 > 0.99);
    }

    #[test]
    fn exec_majx_rejects_width_mismatch() {
        let mut s = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let g = group(&s, 8, 6);
        let bad = vec![BitRow::ones(3); 3];
        assert!(matches!(
            exec_majx(&mut s, &g, &bad, ApaTiming::best_for_majx(), &mut rng),
            Err(PudError::InputWidth { .. })
        ));
    }

    #[test]
    fn consecutive_timing_is_rejected() {
        let mut s = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let g = group(&s, 8, 7);
        let err = majx_success(
            &mut s,
            &g,
            3,
            ApaTiming::row_clone(),
            DataPattern::Solid,
            &MajConfig::default(),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, PudError::UnexpectedActivation { .. }));
    }

    #[test]
    fn fixed_pattern_beats_random() {
        let mut s = setup();
        let mut rng = StdRng::seed_from_u64(10);
        let g = group(&s, 32, 8);
        let t = ApaTiming::best_for_majx();
        let cfg = MajConfig::default();
        let solid = majx_success(&mut s, &g, 5, t, DataPattern::Solid, &cfg, &mut rng).unwrap();
        let random = majx_success(&mut s, &g, 5, t, DataPattern::Random, &cfg, &mut rng).unwrap();
        assert!(solid >= random, "solid {solid} vs random {random}");
    }
}
