//! # simra-core
//!
//! The paper's contribution, as a library: Processing-Using-DRAM
//! operations on commodity (modelled) DDR4 — simultaneous many-row
//! activation, majority-of-X with input replication, Frac, RowClone, and
//! Multi-RowCopy — plus the methodology pieces around them (row-group
//! sampling, subarray-boundary reverse engineering, the success-rate
//! metric).
//!
//! Operations come in two flavours:
//!
//! * **characterization** entry points return the paper's *success rate*
//!   (expected fraction of cells correct across all trials), computed
//!   analytically from sensing/restore margins — smooth, fast, and
//!   deterministic;
//! * **functional** entry points (`exec_*`) actually mutate the module,
//!   for the case studies and examples that compute with DRAM.
//!
//! # Example
//!
//! ```
//! use simra_bender::TestSetup;
//! use simra_core::rowgroup::sample_groups;
//! use simra_core::maj::{majx_success, MajConfig};
//! use simra_dram::{ApaTiming, DataPattern, VendorProfile};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 7);
//! let mut rng = StdRng::seed_from_u64(1);
//! let groups = sample_groups(setup.module().geometry(), 32, 1, 1, 1, &mut rng);
//! let s = majx_success(
//!     &mut setup,
//!     &groups[0],
//!     3,
//!     ApaTiming::best_for_majx(),
//!     DataPattern::Solid,
//!     &MajConfig::default(),
//!     &mut rng,
//! ).unwrap();
//! assert!(s > 0.5, "MAJ3 with full replication should mostly work, got {s}");
//! ```

pub mod act;
pub mod boundary;
pub mod error;
pub mod frac;
pub mod maj;
pub mod metrics;
pub mod multirowcopy;
pub mod reliability;
pub mod rowclone;
pub mod rowgroup;
pub mod trng;

pub use error::PudError;
pub use metrics::BoxStats;
pub use rowgroup::GroupSpec;
