//! Row-group algebra: choosing (R_F, R_S) pairs that simultaneously
//! activate exactly N rows, and sampling the paper's test population
//! (3 subarrays per bank × 16 banks × 100 groups per N).

use rand::Rng;
use serde::{Deserialize, Serialize};

use simra_decoder::RowDecoder;
use simra_dram::{BankId, Geometry, RowAddr, SubarrayId};

/// One group of simultaneously activated rows in one subarray.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// Bank the group lives in.
    pub bank: BankId,
    /// Subarray within the bank.
    pub subarray: SubarrayId,
    /// First APA target (bank-level address).
    pub r_f: RowAddr,
    /// Second APA target (bank-level address).
    pub r_s: RowAddr,
    /// Local (in-subarray) indices of all simultaneously activated rows,
    /// sorted ascending.
    pub local_rows: Vec<u32>,
}

impl GroupSpec {
    /// Number of simultaneously activated rows.
    pub fn n_rows(&self) -> usize {
        self.local_rows.len()
    }

    /// Local index of `R_F` within the subarray.
    pub fn local_r_f(&self, geometry: &Geometry) -> u32 {
        geometry
            .split_row(self.r_f)
            .expect("group was built from this geometry")
            .1
    }
}

/// Builds a group with exactly `n` rows (power of two ≤ 32) in the given
/// bank/subarray, choosing `R_F` at random and `R_S` by re-drawing random
/// outputs in `log2(n)` random predecoder groups.
///
/// Returns `None` only if the subarray cannot host such a group (can
/// happen near the clipped top of non-power-of-two subarrays); callers
/// retry with a fresh draw.
pub fn random_group<R: Rng + ?Sized>(
    geometry: &Geometry,
    bank: BankId,
    subarray: SubarrayId,
    n: u32,
    rng: &mut R,
) -> Option<GroupSpec> {
    assert!(
        n.is_power_of_two() && n <= 32,
        "n must be a power of two ≤ 32, got {n}"
    );
    let decoder = RowDecoder::for_subarray_rows(geometry.rows_per_subarray);
    let local_f = rng.gen_range(0..geometry.rows_per_subarray);
    let d = n.trailing_zeros() as usize;
    // Pick d distinct predecoder groups and flip each to a different
    // random output value.
    let mut group_idx: Vec<usize> = (0..decoder.groups().len()).collect();
    partial_shuffle(&mut group_idx, d, rng);
    let mut local_s = local_f;
    for &gi in group_idx.iter().take(d) {
        let g = decoder.groups()[gi];
        let cur = g.output_for(local_f);
        let mut alt = rng.gen_range(0..g.outputs());
        if g.outputs() > 1 {
            while alt == cur {
                alt = rng.gen_range(0..g.outputs());
            }
        }
        local_s = (local_s & !((g.outputs() - 1) << g.shift)) | (alt << g.shift);
    }
    if local_s >= geometry.rows_per_subarray {
        return None;
    }
    let rows = decoder.simultaneous_rows(local_f, local_s);
    if rows.len() != n as usize {
        return None;
    }
    Some(GroupSpec {
        bank,
        subarray,
        r_f: geometry.join_row(subarray, local_f),
        r_s: geometry.join_row(subarray, local_s),
        local_rows: rows,
    })
}

/// Samples the paper's test population: `groups_per_subarray` random
/// groups of `n` simultaneously activated rows in each of
/// `subarrays_per_bank` randomly chosen subarrays of each of `banks`
/// banks. (The paper uses 100 × 3 × 16; experiments here default lower and
/// report the reduction.)
pub fn sample_groups<R: Rng + ?Sized>(
    geometry: &Geometry,
    n: u32,
    banks: u16,
    subarrays_per_bank: u16,
    groups_per_subarray: usize,
    rng: &mut R,
) -> Vec<GroupSpec> {
    let banks = banks.min(geometry.banks);
    let subarrays_per_bank = subarrays_per_bank.min(geometry.subarrays_per_bank);
    let mut out = Vec::new();
    for b in 0..banks {
        // Randomly select distinct subarrays in this bank.
        let mut sa_ids: Vec<u16> = (0..geometry.subarrays_per_bank).collect();
        partial_shuffle(&mut sa_ids, subarrays_per_bank as usize, rng);
        for &sa in sa_ids.iter().take(subarrays_per_bank as usize) {
            let mut found = 0;
            let mut attempts = 0;
            while found < groups_per_subarray && attempts < groups_per_subarray * 50 {
                attempts += 1;
                if let Some(g) = random_group(geometry, BankId::new(b), SubarrayId::new(sa), n, rng)
                {
                    out.push(g);
                    found += 1;
                }
            }
        }
    }
    out
}

/// Tiles an entire subarray with maximal (32-row) simultaneous-activation
/// groups: the union of the returned groups' rows covers every row of the
/// subarray exactly once.
///
/// Construction: each predecoder's outputs pair up under XOR with its
/// all-ones mask (`out ↔ out ^ (outputs − 1)`); picking one representative
/// per pair class in every predecoder and targeting `R_S = R_F` with all
/// fields flipped yields a group that covers exactly the Cartesian product
/// of those pairs. Iterating over all class combinations tiles the
/// subarray — this is how a Multi-RowCopy wipe covers a whole bank
/// (§8.2).
pub fn tile_groups(geometry: &Geometry, bank: BankId, subarray: SubarrayId) -> Vec<GroupSpec> {
    let rows_in_sa = geometry.rows_per_subarray;
    let decoder = RowDecoder::for_subarray_rows(rows_in_sa);
    // Valid output values per predecoder field (non-power-of-two
    // subarrays only populate a prefix of the most-significant field).
    let valid: Vec<u32> = decoder
        .groups()
        .iter()
        .map(|g| g.outputs().min(rows_in_sa.div_ceil(1 << g.shift)))
        .collect();
    // Pair consecutive valid outputs: (0,1), (2,3), …; an odd leftover
    // output forms a singleton class whose groups simply do not flip this
    // field (half-size groups, still a perfect tiling).
    let classes: Vec<u32> = valid.iter().map(|v| v.div_ceil(2)).collect();
    let mut out = Vec::new();
    let mut idx = vec![0u32; classes.len()];
    loop {
        let mut local_f = 0u32;
        let mut local_s = 0u32;
        for (i, g) in decoder.groups().iter().enumerate() {
            let rep = 2 * idx[i];
            let alt = if rep + 1 < valid[i] { rep + 1 } else { rep };
            local_f |= rep << g.shift;
            local_s |= alt << g.shift;
        }
        debug_assert!(local_f < rows_in_sa && local_s < rows_in_sa);
        let rows = decoder.simultaneous_rows(local_f, local_s);
        if !rows.is_empty() {
            out.push(GroupSpec {
                bank,
                subarray,
                r_f: geometry.join_row(subarray, local_f),
                r_s: geometry.join_row(subarray, local_s),
                local_rows: rows,
            });
        }
        // Mixed-radix increment over the class counts.
        let mut i = 0;
        loop {
            if i == idx.len() {
                return out;
            }
            idx[i] += 1;
            if idx[i] < classes[i] {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

/// Fisher–Yates for the first `k` positions only.
fn partial_shuffle<T, R: Rng + ?Sized>(items: &mut [T], k: usize, rng: &mut R) {
    let k = k.min(items.len());
    for i in 0..k {
        let j = rng.gen_range(i..items.len());
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> Geometry {
        Geometry::default()
    }

    #[test]
    fn random_group_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [1u32, 2, 4, 8, 16, 32] {
            let g = random_group(&geom(), BankId::new(0), SubarrayId::new(0), n, &mut rng)
                .expect("512-row subarray always hosts power-of-two groups");
            assert_eq!(g.n_rows(), n as usize);
            // R_F and R_S are inside the subarray's bank-address window.
            let (sa_f, lf) = geom().split_row(g.r_f).unwrap();
            let (sa_s, _) = geom().split_row(g.r_s).unwrap();
            assert_eq!(sa_f.raw(), 0);
            assert_eq!(sa_s.raw(), 0);
            assert!(g.local_rows.contains(&lf));
        }
    }

    #[test]
    fn sample_population_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let groups = sample_groups(&geom(), 8, 2, 3, 5, &mut rng);
        assert_eq!(groups.len(), 2 * 3 * 5);
        // All groups have 8 rows.
        assert!(groups.iter().all(|g| g.n_rows() == 8));
        // Both banks represented.
        assert!(groups.iter().any(|g| g.bank == BankId::new(0)));
        assert!(groups.iter().any(|g| g.bank == BankId::new(1)));
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let a = sample_groups(&geom(), 4, 1, 1, 3, &mut StdRng::seed_from_u64(9));
        let b = sample_groups(&geom(), 4, 1, 1, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn groups_vary_across_draws() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_group(&geom(), BankId::new(0), SubarrayId::new(0), 16, &mut rng).unwrap();
        let b = random_group(&geom(), BankId::new(0), SubarrayId::new(0), 16, &mut rng).unwrap();
        assert_ne!(a, b, "two random draws should differ");
    }

    #[test]
    fn non_power_of_two_subarray_still_samples() {
        let mut g640 = geom();
        g640.rows_per_subarray = 640;
        let mut rng = StdRng::seed_from_u64(5);
        let groups = sample_groups(&g640, 32, 1, 1, 10, &mut rng);
        assert!(!groups.is_empty());
        for g in &groups {
            assert_eq!(g.n_rows(), 32);
            assert!(g.local_rows.iter().all(|r| *r < 640));
        }
    }

    #[test]
    fn tiling_covers_the_subarray_exactly_once() {
        let g = geom();
        let groups = tile_groups(&g, BankId::new(0), SubarrayId::new(1));
        assert_eq!(groups.len(), 16, "512 rows / 32-row groups");
        let mut covered = vec![0u32; g.rows_per_subarray as usize];
        for spec in &groups {
            assert_eq!(spec.n_rows(), 32);
            for &r in &spec.local_rows {
                covered[r as usize] += 1;
            }
        }
        assert!(covered.iter().all(|c| *c == 1), "every row exactly once");
    }

    #[test]
    fn tiling_covers_micron_1024_row_subarrays() {
        let mut g = geom();
        g.rows_per_subarray = 1024;
        let groups = tile_groups(&g, BankId::new(0), SubarrayId::new(0));
        assert_eq!(groups.len(), 32);
        let total: usize = groups.iter().map(GroupSpec::n_rows).sum();
        assert_eq!(total, 1024);
    }

    #[test]
    fn tiling_covers_non_power_of_two_subarrays() {
        let mut g = geom();
        g.rows_per_subarray = 640;
        let groups = tile_groups(&g, BankId::new(0), SubarrayId::new(0));
        let mut covered = vec![0u32; 640];
        for spec in &groups {
            for &r in &spec.local_rows {
                covered[r as usize] += 1;
            }
        }
        assert!(
            covered.iter().all(|c| *c == 1),
            "640-row subarray tiled without overlap"
        );
    }

    #[test]
    fn local_r_f_matches_split() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = random_group(&geom(), BankId::new(3), SubarrayId::new(2), 4, &mut rng).unwrap();
        let lf = g.local_r_f(&geom());
        assert!(g.local_rows.contains(&lf));
    }
}
