//! Primitive-operation benchmarks: the cost of the model itself
//! (sense, commit, RowClone, APA resolution).
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simra_bender::TestSetup;
use simra_core::maj::{exec_majx, random_operands};
use simra_core::rowclone::exec_rowclone;
use simra_core::rowgroup::sample_groups;
use simra_decoder::RowDecoder;
use simra_dram::{ApaTiming, BankId, BitRow, RowAddr, VendorProfile};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_ops");
    group.bench_function("decoder_resolve_apa_32", |b| {
        let dec = RowDecoder::for_subarray_rows(512);
        b.iter(|| dec.resolve_apa(127, 128, ApaTiming::from_ns(3.0, 3.0), false))
    });
    group.bench_function("rowclone_256_cols", |b| {
        let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 7);
        let cols = setup.module().geometry().cols_per_row as usize;
        setup
            .init_row(BankId::new(0), RowAddr::new(0), &BitRow::ones(cols))
            .unwrap();
        b.iter(|| exec_rowclone(&mut setup, BankId::new(0), RowAddr::new(0), RowAddr::new(1)))
    });
    group.bench_function("exec_maj3_n32", |b| {
        let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 7);
        let mut rng = StdRng::seed_from_u64(3);
        let groups = sample_groups(setup.module().geometry(), 32, 1, 1, 1, &mut rng);
        let cols = setup.module().geometry().cols_per_row as usize;
        let ops = random_operands(3, cols, &mut rng);
        b.iter(|| {
            exec_majx(
                &mut setup,
                &groups[0],
                &ops,
                ApaTiming::best_for_majx(),
                &mut rng,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
