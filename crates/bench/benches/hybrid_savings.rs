//! Bench for the adaptive hybrid backend's trial savings: how many
//! analog trials the confidence-gated escalation actually executes
//! versus the full-analog baseline, and what that buys in wall-clock,
//! at quick and reduced (the default full-repro) scale.
//!
//! The hybrid's pitch is "analog evidence only where the table is
//! ambiguous": every trial the Wilson-interval gate answers from the
//! calibrated table is an analog trial *not* run. This bench measures
//! the real `repro` binary end to end — the whole campaign, not a
//! synthetic loop — and reads the hybrid's own telemetry counters from
//! the metrics document, so the numbers are exactly what a user's run
//! would report.
//!
//! Besides the Criterion group, every run — including `--test` smoke
//! runs — writes `BENCH_hybrid.json` with per-scale trial counts,
//! savings ratios, and wall-clock speedups, so CI can archive the
//! evidence for the "≤ 25 % of the analog trial count" acceptance bar
//! and gate on savings ≥ 2× without parsing Criterion output.

use std::process::Command;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use simra_characterize::{fig7_majx_patterns, ExperimentConfig, Session};
use simra_exec::BackendChoice;

/// Runs the real repro binary, returns wall-clock milliseconds.
fn timed_repro(args: &[&str]) -> f64 {
    let start = Instant::now();
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    start.elapsed().as_secs_f64() * 1e3
}

/// Extracts a `(module, name)` counter from a metrics JSON document
/// without a JSON parser dependency: counters are serialized flat as
/// `{"module":"m","name":"n","value":V}` objects.
fn counter(doc: &str, module: &str, name: &str) -> u64 {
    let needle = format!("{{\"module\":\"{module}\",\"name\":\"{name}\",\"value\":");
    let at = doc
        .find(&needle)
        .unwrap_or_else(|| panic!("counter {module}/{name} missing from metrics"));
    let rest = &doc[at + needle.len()..];
    let end = rest
        .find(['}', ','])
        .expect("counter value is followed by a delimiter");
    rest[..end]
        .trim()
        .parse()
        .expect("counter value parses as u64")
}

struct ScaleSavings {
    scale: &'static str,
    total_trials: u64,
    analog_trials_executed: u64,
    early_stops: u64,
    budget_capped: u64,
    calibration_probes: u64,
    analog_wall_ms: f64,
    hybrid_wall_ms: f64,
}

impl ScaleSavings {
    /// Analog trials a full-analog run would execute, per hybrid
    /// accounting: every trial the hybrid answered *or* escalated.
    fn baseline_trials(&self) -> u64 {
        self.total_trials
    }

    fn trial_savings(&self) -> f64 {
        self.baseline_trials() as f64 / self.analog_trials_executed.max(1) as f64
    }

    fn analog_share(&self) -> f64 {
        self.analog_trials_executed as f64 / self.baseline_trials().max(1) as f64
    }

    fn wall_speedup(&self) -> f64 {
        self.analog_wall_ms / self.hybrid_wall_ms
    }
}

fn measure(scale: &'static str) -> ScaleSavings {
    let metrics = std::env::temp_dir().join(format!(
        "simra-hybrid-savings-{}-{scale}.json",
        std::process::id()
    ));
    let metrics_s = metrics.to_str().expect("temp path is UTF-8");
    let analog_wall_ms = timed_repro(&[scale]);
    let hybrid_wall_ms = timed_repro(&[
        scale,
        "--backend",
        "hybrid",
        "--metrics",
        "--metrics-out",
        metrics_s,
    ]);
    let doc = std::fs::read_to_string(&metrics).expect("read hybrid metrics");
    let _ = std::fs::remove_file(&metrics);
    let table_hits = counter(&doc, "hybrid", "table_hits");
    let escalations = counter(&doc, "hybrid", "escalations");
    ScaleSavings {
        scale,
        total_trials: table_hits + escalations,
        analog_trials_executed: escalations,
        early_stops: counter(&doc, "hybrid", "early_stops"),
        budget_capped: counter(&doc, "hybrid", "budget_capped"),
        calibration_probes: counter(&doc, "surrogate", "calibration_probes"),
        analog_wall_ms,
        hybrid_wall_ms,
    }
}

/// Writes BENCH_hybrid.json next to the bench's working directory (the
/// `simra-bench` package root under `cargo bench`); override the path
/// with `BENCH_HYBRID_OUT`.
fn write_savings_doc() {
    let scales = [measure("quick"), measure("reduced")];
    let entries: Vec<String> = scales
        .iter()
        .map(|s| {
            format!(
                "{{\"scale\":{},\"total_trials\":{},\"analog_trials_executed\":{},\
                 \"early_stops\":{},\"budget_capped\":{},\"calibration_probes\":{},\
                 \"trial_savings\":{:.3},\"analog_share\":{:.4},\
                 \"analog_wall_ms\":{:.3},\"hybrid_wall_ms\":{:.3},\"wall_speedup\":{:.3}}}",
                simra_telemetry::json::quote(s.scale),
                s.total_trials,
                s.analog_trials_executed,
                s.early_stops,
                s.budget_capped,
                s.calibration_probes,
                s.trial_savings(),
                s.analog_share(),
                s.analog_wall_ms,
                s.hybrid_wall_ms,
                s.wall_speedup(),
            )
        })
        .collect();
    let doc = format!(
        "{{\"schema_version\":1,\"tool\":{},\"scales\":[{}]}}",
        simra_telemetry::json::quote("hybrid_savings_bench"),
        entries.join(","),
    );
    let path =
        std::env::var("BENCH_HYBRID_OUT").unwrap_or_else(|_| "BENCH_hybrid.json".to_string());
    std::fs::write(&path, &doc).expect("write BENCH_hybrid.json");
    for s in &scales {
        eprintln!(
            "hybrid_savings[{}]: {} of {} trials analog ({:.1}% share, {:.2}x savings), \
             wall {:.0} ms vs {:.0} ms analog ({:.2}x) -> {path}",
            s.scale,
            s.analog_trials_executed,
            s.total_trials,
            100.0 * s.analog_share(),
            s.trial_savings(),
            s.hybrid_wall_ms,
            s.analog_wall_ms,
            s.wall_speedup(),
        );
    }
}

fn bench(c: &mut Criterion) {
    write_savings_doc();

    // A light in-process comparison for Criterion's trend tracking:
    // one figure family dispatched through each backend at quick scale.
    let mut analog_cfg = ExperimentConfig::quick();
    analog_cfg.backend = BackendChoice::Analog;
    let analog_session = Session::new(analog_cfg);
    let mut hybrid_cfg = ExperimentConfig::quick();
    hybrid_cfg.backend = BackendChoice::Hybrid;
    let hybrid_session = Session::new(hybrid_cfg);
    let mut group = c.benchmark_group("hybrid_savings");
    group.bench_function("fig7/analog", |b| {
        b.iter(|| fig7_majx_patterns(&analog_session));
    });
    group.bench_function("fig7/hybrid", |b| {
        // First call calibrates; Criterion's warm-up absorbs it.
        b.iter(|| fig7_majx_patterns(&hybrid_session));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
