//! Ablation benches for the design choices DESIGN.md calls out: what
//! happens to MAJX success when individual model mechanisms are turned
//! off. Each bench measures the ablated configuration; the printed
//! throughput differences against the calibrated run ARE the ablation
//! result.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simra_analog::CircuitParams;
use simra_bender::TestSetup;
use simra_core::maj::{majx_success, MajConfig};
use simra_core::rowgroup::sample_groups;
use simra_dram::{ApaTiming, DataPattern, VendorProfile};

fn maj3_at(setup: &mut TestSetup, timing: ApaTiming, rng: &mut StdRng) -> f64 {
    let groups = sample_groups(setup.module().geometry(), 32, 1, 1, 1, rng);
    majx_success(
        setup,
        &groups[0],
        3,
        timing,
        DataPattern::Random,
        &MajConfig::default(),
        rng,
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(20);

    // Ablation 1: no first-row over-share — (3,3) should recover to the
    // level of (1.5,3), erasing the paper's Obs. 7 timing asymmetry.
    group.bench_function("maj3_calibrated_t33", |b| {
        let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 7);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| maj3_at(&mut setup, ApaTiming::from_ns(3.0, 3.0), &mut rng));
    });
    group.bench_function("maj3_no_overshare_t33", |b| {
        let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 7);
        let mut p = CircuitParams::calibrated();
        p.overshare_per_ns = 0.0;
        setup.set_circuit_params(Some(p));
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| maj3_at(&mut setup, ApaTiming::from_ns(3.0, 3.0), &mut rng));
    });

    // Ablation 2: no transfer-variation amplification — PUD sensing
    // becomes nearly noiseless and every MAJX saturates.
    group.bench_function("maj3_no_transfer_amp", |b| {
        let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 7);
        let mut p = CircuitParams::calibrated();
        p.pud_transfer_amp = 0.0;
        setup.set_circuit_params(Some(p));
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| maj3_at(&mut setup, ApaTiming::best_for_majx(), &mut rng));
    });

    // Ablation 3: no group-to-group spread — the box plots collapse to
    // points and best-group selection stops mattering.
    group.bench_function("maj3_no_group_spread", |b| {
        let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 7);
        let mut p = CircuitParams::calibrated();
        p.group_spread_sigma = 0.0;
        setup.set_circuit_params(Some(p));
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| maj3_at(&mut setup, ApaTiming::best_for_majx(), &mut rng));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
