//! Bench for the execution-backend layer: every figure runner dispatched
//! through the [`AnalogBackend`] reference path versus the calibrated
//! [`SurrogateBackend`], at quick scale.
//!
//! The surrogate's pitch is "figure-shaped answers at lookup cost": it
//! pays a one-time calibration per (operation, N, profile) key — a
//! narrow-rig probe of the analog core — and then Bernoulli-samples
//! success probabilities per trial. The comparison here measures the
//! *warm* surrogate (calibration amortised, which is how every sweep
//! after the first behaves) against the analog path doing the full
//! charge-sharing simulation.
//!
//! Besides the Criterion groups, every run — including `--test` smoke
//! runs — writes `BENCH_backend.json` with direct best-of-N wall-clock
//! numbers per figure plus the overall speedup, so CI can archive the
//! evidence for the issue's ≥50× acceptance bar without parsing
//! Criterion's output.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use simra_characterize::{
    fig10_mrc_timing, fig3_activation_timing, fig7_majx_patterns, ExperimentConfig, Session, Table,
};
use simra_exec::BackendChoice;

type FigureFn = fn(&Session) -> Table;

/// The measured figures: one per PUD operation family, so the comparison
/// covers activation (Fig. 3), MAJX (Fig. 7), and Multi-RowCopy
/// (Fig. 10) trial shapes.
const FIGURES: [(&str, FigureFn); 3] = [
    ("fig3", fig3_activation_timing),
    ("fig7", fig7_majx_patterns),
    ("fig10", fig10_mrc_timing),
];

fn session_for(backend: BackendChoice) -> Session {
    let mut config = ExperimentConfig::quick();
    config.backend = backend;
    Session::new(config)
}

/// Best-of-N direct wall-clock measurement (minimum over `reps` runs).
fn best_of_ms<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let rows = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(rows > 0, "the measured figure produced no rows");
        best = best.min(ms);
    }
    best
}

struct Comparison {
    analog_ms: f64,
    surrogate_ms: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.analog_ms / self.surrogate_ms
    }
}

fn compare(figure: FigureFn) -> Comparison {
    let analog = session_for(BackendChoice::Analog);
    let surrogate = session_for(BackendChoice::Surrogate);
    // Warm both paths: thread/rig start-up on the analog side, the
    // one-time calibration probes on the surrogate side.
    let _ = figure(&analog);
    let _ = figure(&surrogate);
    Comparison {
        analog_ms: best_of_ms(3, || figure(&analog).rows.len()),
        surrogate_ms: best_of_ms(3, || figure(&surrogate).rows.len()),
    }
}

/// Writes BENCH_backend.json next to the bench's working directory (the
/// `simra-bench` package root under `cargo bench`); override the path
/// with `BENCH_BACKEND_OUT`.
fn write_backend_doc() {
    let mut entries = Vec::new();
    let mut analog_total = 0.0;
    let mut surrogate_total = 0.0;
    for (name, figure) in FIGURES {
        let cmp = compare(figure);
        analog_total += cmp.analog_ms;
        surrogate_total += cmp.surrogate_ms;
        entries.push(format!(
            "{{\"figure\":{},\"analog_ms\":{:.3},\"surrogate_ms\":{:.3},\"speedup\":{:.3}}}",
            simra_telemetry::json::quote(name),
            cmp.analog_ms,
            cmp.surrogate_ms,
            cmp.speedup(),
        ));
    }
    let overall = analog_total / surrogate_total;
    let doc = format!(
        "{{\"schema_version\":1,\"tool\":{},\"scale\":{},\"figures\":[{}],\
         \"analog_total_ms\":{:.3},\"surrogate_total_ms\":{:.3},\"overall_speedup\":{:.3}}}",
        simra_telemetry::json::quote("backend_compare_bench"),
        simra_telemetry::json::quote("quick"),
        entries.join(","),
        analog_total,
        surrogate_total,
        overall,
    );
    let path =
        std::env::var("BENCH_BACKEND_OUT").unwrap_or_else(|_| "BENCH_backend.json".to_string());
    std::fs::write(&path, &doc).expect("write BENCH_backend.json");
    eprintln!(
        "backend_compare: analog {analog_total:.1} ms vs surrogate {surrogate_total:.1} ms \
         ({overall:.1}x overall) -> {path}"
    );
}

fn bench(c: &mut Criterion) {
    write_backend_doc();

    let analog = session_for(BackendChoice::Analog);
    let surrogate = session_for(BackendChoice::Surrogate);
    let mut group = c.benchmark_group("backend_compare");
    for (name, figure) in FIGURES {
        group.bench_function(format!("{name}/analog").as_str(), |b| {
            b.iter(|| figure(&analog));
        });
        group.bench_function(format!("{name}/surrogate").as_str(), |b| {
            // First call calibrates; Criterion's warm-up absorbs it.
            b.iter(|| figure(&surrogate));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
