//! Bench for the sweep-grid scheduler: the whole (module × point) grid
//! submitted at once on the persistent [`FleetPool`] (reused worker
//! threads, reused module rigs, no per-point barrier) versus the
//! per-point baseline that mirrors the old executor (threads constructed
//! and joined per point, fresh rigs every point).
//!
//! Two workloads, because they bound the answer from both sides:
//!
//! * **dispatch** — a figure-shaped 100-point sweep whose op is a cheap
//!   probe (RNG draw + group/module identity). Both variants do the same
//!   op work, so the comparison isolates exactly what the scheduler
//!   changed: pool churn, rig construction, and per-point barriers. This
//!   is the headline `speedup` in `BENCH_sweep.json`.
//! * **activation** — a 10-point activation-success sweep where the DRAM
//!   simulation dominates. This shows the end-to-end effect on an
//!   op-bound figure run (necessarily closer to 1× on few cores, since
//!   the science work is identical either way).
//!
//! Besides the Criterion groups, every run — including `--test` smoke
//! runs — writes a small `BENCH_sweep.json` document with direct
//! best-of-N wall-clock comparisons, so CI can archive the numbers
//! without parsing Criterion's output.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use simra_bender::TestSetup;
use simra_characterize::config::ModuleUnderTest;
use simra_characterize::fleet::{run_sweep_on, FleetPolicy, SweepPoint, SystemClock};
use simra_characterize::pool::FleetPool;
use simra_characterize::{ExperimentConfig, Session};
use simra_core::act::activation_success;
use simra_core::rowgroup::GroupSpec;
use simra_dram::{ApaTiming, DataPattern, VendorProfile};

/// Worker threads used by both variants — the comparison isolates the
/// scheduler (persistent pool + rig reuse + no barrier), not parallelism.
const WORKERS: usize = 4;
const MODULES: usize = 4;

fn fleet_config(groups_per_subarray: usize) -> ExperimentConfig {
    let mut config = ExperimentConfig::quick();
    config.modules = (0..MODULES)
        .map(|i| ModuleUnderTest {
            profile: VendorProfile::mfr_h_m_die(),
            seed: 100 + i as u64,
        })
        .collect();
    config.groups_per_subarray = groups_per_subarray;
    config
}

/// The activation N ladder repeated `repeats` times — the shape of a
/// figure's sweep grid (Fig. 3 is 6 timing rows × the ladder).
fn ladder_points(repeats: usize) -> Vec<SweepPoint<()>> {
    let ladder = [2u32, 4, 8, 16, 32];
    (0..repeats)
        .flat_map(|_| ladder)
        .map(|n| SweepPoint::new(n, ()))
        .collect()
}

/// Cheap probe op: exercises the per-task RNG stream and group/module
/// identity without touching cell arrays (the scheduler-bound regime).
fn probe_op(
    _params: &(),
    setup: &mut TestSetup,
    group: &GroupSpec,
    rng: &mut StdRng,
) -> Option<f64> {
    Some(group.local_rows[0] as f64 + rng.gen::<f64>() + setup.module().seed() as f64 * 1e-6)
}

/// Full activation-success op (the op-bound regime).
fn activation_op(
    _params: &(),
    setup: &mut TestSetup,
    group: &GroupSpec,
    rng: &mut StdRng,
) -> Option<f64> {
    activation_success(
        setup,
        group,
        ApaTiming::best_for_activation(),
        DataPattern::Random,
        rng,
    )
    .ok()
}

type SweepOp = fn(&(), &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64>;

/// The grid scheduler: one persistent pool, the whole grid at once.
fn run_grid(pool: &FleetPool, session: &Session, points: &[SweepPoint<()>], op: SweepOp) -> usize {
    let clock = SystemClock::default();
    run_sweep_on(
        pool,
        session,
        points,
        FleetPolicy::default(),
        &clock,
        WORKERS,
        op,
    )
    .iter()
    .map(|o| o.samples().len())
    .sum()
}

/// The old executor's cost model: every sweep point constructs its own
/// worker threads (joined again at the point's end) and mounts fresh
/// module rigs.
fn run_per_point(session: &Session, points: &[SweepPoint<()>], op: SweepOp) -> usize {
    let clock = SystemClock::default();
    points
        .iter()
        .map(|point| {
            let pool = FleetPool::new(WORKERS);
            let outcomes = run_sweep_on(
                &pool,
                session,
                std::slice::from_ref(point),
                FleetPolicy::default(),
                &clock,
                WORKERS,
                op,
            );
            outcomes[0].samples().len()
        })
        .sum()
}

/// Best-of-N direct wall-clock measurement (minimum over `reps` runs).
fn best_of_ms<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let samples = f();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(samples > 0, "the measured sweep produced no samples");
        best = best.min(ms);
    }
    best
}

struct Comparison {
    grid_ms: f64,
    per_point_ms: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.per_point_ms / self.grid_ms
    }
}

fn compare(
    pool: &FleetPool,
    session: &Session,
    points: &[SweepPoint<()>],
    op: SweepOp,
) -> Comparison {
    // Warm both paths once (thread start, silicon stamp cache, page faults).
    let _ = run_grid(pool, session, points, op);
    let _ = run_per_point(session, points, op);
    Comparison {
        grid_ms: best_of_ms(3, || run_grid(pool, session, points, op)),
        per_point_ms: best_of_ms(3, || run_per_point(session, points, op)),
    }
}

/// Writes BENCH_sweep.json next to the bench's working directory (the
/// `simra-bench` package root under `cargo bench`); override the path
/// with `BENCH_SWEEP_OUT`.
fn write_sweep_doc() {
    let pool = FleetPool::new(WORKERS);
    let dispatch_session = Session::new(fleet_config(1));
    let dispatch_points = ladder_points(20);
    let dispatch = compare(&pool, &dispatch_session, &dispatch_points, probe_op);
    let act_session = Session::new(fleet_config(4));
    let act_points = ladder_points(2);
    let act = compare(&pool, &act_session, &act_points, activation_op);
    let doc = format!(
        "{{\"schema_version\":1,\"tool\":{},\"workers\":{WORKERS},\"modules\":{MODULES},\
         \"points\":{},\"grid_ms\":{:.3},\"per_point_ms\":{:.3},\"speedup\":{:.3},\
         \"activation_points\":{},\"activation_grid_ms\":{:.3},\
         \"activation_per_point_ms\":{:.3},\"activation_speedup\":{:.3}}}",
        simra_telemetry::json::quote("sweep_grid_bench"),
        dispatch_points.len(),
        dispatch.grid_ms,
        dispatch.per_point_ms,
        dispatch.speedup(),
        act_points.len(),
        act.grid_ms,
        act.per_point_ms,
        act.speedup(),
    );
    let path = std::env::var("BENCH_SWEEP_OUT").unwrap_or_else(|_| "BENCH_sweep.json".to_string());
    std::fs::write(&path, &doc).expect("write BENCH_sweep.json");
    eprintln!(
        "sweep_grid: dispatch {:.1} ms vs {:.1} ms ({:.2}x), activation {:.1} ms vs {:.1} ms ({:.2}x) -> {path}",
        dispatch.grid_ms,
        dispatch.per_point_ms,
        dispatch.speedup(),
        act.grid_ms,
        act.per_point_ms,
        act.speedup(),
    );
}

fn bench(c: &mut Criterion) {
    write_sweep_doc();

    let dispatch_session = Session::new(fleet_config(1));
    let dispatch_points = ladder_points(20);
    let act_session = Session::new(fleet_config(4));
    let act_points = ladder_points(2);
    let mut group = c.benchmark_group("sweep_grid");
    group.bench_function("dispatch_grid/4w", |b| {
        let pool = FleetPool::new(WORKERS);
        b.iter(|| run_grid(&pool, &dispatch_session, &dispatch_points, probe_op));
    });
    group.bench_function("dispatch_per_point/4w", |b| {
        b.iter(|| run_per_point(&dispatch_session, &dispatch_points, probe_op));
    });
    group.bench_function("activation_grid/4w", |b| {
        let pool = FleetPool::new(WORKERS);
        b.iter(|| run_grid(&pool, &act_session, &act_points, activation_op));
    });
    group.bench_function("activation_per_point/4w", |b| {
        b.iter(|| run_per_point(&act_session, &act_points, activation_op));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
