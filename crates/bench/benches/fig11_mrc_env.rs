//! Bench for Fig. 11/12: Multi-RowCopy pattern and environment sweeps.
use criterion::{criterion_group, criterion_main, Criterion};
use simra_characterize::{
    fig11_mrc_patterns, fig12a_mrc_temperature, fig12b_mrc_voltage, ExperimentConfig, Session,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_12");
    group.sample_size(10);
    let session = Session::new(ExperimentConfig::quick());
    group.bench_function("pattern_sweep", |b| b.iter(|| fig11_mrc_patterns(&session)));
    group.bench_function("temperature_sweep", |b| {
        b.iter(|| fig12a_mrc_temperature(&session))
    });
    group.bench_function("voltage_sweep", |b| b.iter(|| fig12b_mrc_voltage(&session)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
