//! Bench for Fig. 8/9: MAJX temperature and V_PP sweeps.
use criterion::{criterion_group, criterion_main, Criterion};
use simra_characterize::{fig8_majx_temperature, fig9_majx_voltage, ExperimentConfig, Session};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_09");
    group.sample_size(10);
    let session = Session::new(ExperimentConfig::quick());
    group.bench_function("temperature_sweep", |b| {
        b.iter(|| fig8_majx_temperature(&session))
    });
    group.bench_function("voltage_sweep", |b| b.iter(|| fig9_majx_voltage(&session)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
