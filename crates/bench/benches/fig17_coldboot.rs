//! Bench for Fig. 17: content-destruction strategies.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simra_casestudy::coldboot::{wipe_time_ns, WipeStrategy};
use simra_casestudy::fig17_coldboot;
use simra_dram::TimingParams;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17");
    let timing = TimingParams::ddr4_2666();
    for n in [2u32, 32] {
        group.bench_with_input(BenchmarkId::new("wipe_model_mrc", n), &n, |b, &n| {
            b.iter(|| wipe_time_ns(WipeStrategy::MultiRowCopy { n }, 65_536, 512, &timing))
        });
    }
    group.bench_function("full_table", |b| b.iter(fig17_coldboot));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
