//! Bench for Fig. 3: regenerates the many-row activation timing grid and
//! times one grid point per N.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simra_bender::TestSetup;
use simra_characterize::{fig3_activation_timing, ExperimentConfig, Session};
use simra_core::act::activation_success;
use simra_core::rowgroup::sample_groups;
use simra_dram::{ApaTiming, DataPattern, VendorProfile};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03");
    for n in [2u32, 8, 32] {
        group.bench_with_input(BenchmarkId::new("activation_success", n), &n, |b, &n| {
            let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 7);
            let mut rng = StdRng::seed_from_u64(1);
            let groups = sample_groups(setup.module().geometry(), n, 1, 1, 1, &mut rng);
            b.iter(|| {
                activation_success(
                    &mut setup,
                    &groups[0],
                    ApaTiming::best_for_activation(),
                    DataPattern::Random,
                    &mut rng,
                )
                .unwrap()
            });
        });
    }
    group.sample_size(10);
    group.bench_function("full_table_quick", |b| {
        let session = Session::new(ExperimentConfig::quick());
        b.iter(|| fig3_activation_timing(&session));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
