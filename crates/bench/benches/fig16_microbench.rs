//! Bench for Fig. 16: the seven majority-based microbenchmarks.
use criterion::{criterion_group, criterion_main, Criterion};
use simra_casestudy::fig16_microbenchmarks;
use simra_casestudy::microbench::{execution_time_ns, Microbench};
use simra_casestudy::throughput::measure_majx_throughput;
use simra_dram::VendorProfile;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16");
    group.bench_function("throughput_point_maj5", |b| {
        b.iter(|| measure_majx_throughput(&VendorProfile::mfr_h_m_die(), 5, 32, 2, 11))
    });
    group.bench_function("analytic_model_all_microbenches", |b| {
        let t = measure_majx_throughput(&VendorProfile::mfr_h_m_die(), 5, 32, 2, 11);
        b.iter(|| {
            Microbench::ALL
                .iter()
                .map(|m| execution_time_ns(*m, &t))
                .sum::<f64>()
        })
    });
    group.sample_size(10);
    group.bench_function("full_table", |b| {
        let profiles = [VendorProfile::mfr_h_m_die(), VendorProfile::mfr_m_e_die()];
        b.iter(|| fig16_microbenchmarks(&profiles, 2, 11));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
