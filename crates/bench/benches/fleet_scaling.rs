//! Bench for the sweep-engine hot path: `collect_group_samples`
//! throughput on the work-stealing fleet executor at 1/2/4/8 modules, the
//! serial reference for comparison, and the `bitline_deltas` SoA inner
//! loop (allocating vs scratch-buffer variants).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use simra_analog::charge::{bitline_deltas, bitline_deltas_into};
use simra_bender::TestSetup;
use simra_characterize::config::ModuleUnderTest;
use simra_characterize::fleet::{collect_group_samples, collect_group_samples_serial};
use simra_characterize::{ExperimentConfig, Session};
use simra_core::act::activation_success;
use simra_core::rowgroup::GroupSpec;
use simra_dram::subarray::VariationParams;
use simra_dram::{ApaTiming, DataPattern, Subarray, VendorProfile};

fn fleet_config(modules: usize) -> ExperimentConfig {
    let mut config = ExperimentConfig::quick();
    config.modules = (0..modules)
        .map(|i| ModuleUnderTest {
            profile: VendorProfile::mfr_h_m_die(),
            seed: 100 + i as u64,
        })
        .collect();
    config.groups_per_subarray = 4;
    config
}

fn activation_op(setup: &mut TestSetup, group: &GroupSpec, rng: &mut StdRng) -> Option<f64> {
    activation_success(
        setup,
        group,
        ApaTiming::best_for_activation(),
        DataPattern::Random,
        rng,
    )
    .ok()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_scaling");
    for modules in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("collect_group_samples", modules),
            &modules,
            |b, &modules| {
                let session = Session::new(fleet_config(modules));
                b.iter(|| collect_group_samples(&session, 8, activation_op));
            },
        );
    }
    group.bench_function("serial_reference/4", |b| {
        let config = fleet_config(4);
        b.iter(|| collect_group_samples_serial(&config, 8, activation_op));
    });
    group.finish();

    let mut micro = c.benchmark_group("bitline_deltas");
    let sa = Subarray::new(512, 256, VariationParams::default(), 1);
    // A 32-row APA group with the first row over-sharing, the worst-case
    // inner-loop shape of the characterization sweeps.
    let rows_weights: Vec<(u32, f64)> = (0..32u32)
        .map(|r| (r * 16, if r == 0 { 3.0 } else { 1.0 }))
        .collect();
    micro.bench_function("alloc/32x256", |b| {
        b.iter(|| bitline_deltas(&sa, &rows_weights, 4.6, 0.97, 2.5));
    });
    micro.bench_function("into/32x256", |b| {
        let mut cap_scratch = Vec::new();
        let mut out = Vec::new();
        b.iter(|| {
            bitline_deltas_into(
                &sa,
                &rows_weights,
                4.6,
                0.97,
                2.5,
                &mut cap_scratch,
                &mut out,
            );
            out[0]
        });
    });
    micro.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
