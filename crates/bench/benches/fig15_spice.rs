//! Bench for Fig. 15: the SPICE-equivalent Monte-Carlo study.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simra_analog::montecarlo::{run_point, MonteCarloConfig};
use simra_analog::CircuitParams;
use simra_characterize::{fig15_spice, ExperimentConfig, Session};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15");
    let params = CircuitParams::calibrated();
    for n in [4u32, 32] {
        group.bench_with_input(BenchmarkId::new("mc_point_1000_sets", n), &n, |b, &n| {
            let cfg = MonteCarloConfig {
                sets: 1000,
                seed: 1,
            };
            b.iter(|| run_point(&params, n, 20, cfg));
        });
    }
    group.sample_size(10);
    group.bench_function("full_grid", |b| {
        let session = Session::new(ExperimentConfig::quick());
        b.iter(|| fig15_spice(&session));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
