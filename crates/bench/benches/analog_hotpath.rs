//! Bench for the analog hot path: the tiled charge-sharing kernel and
//! the trial-batched sense rig versus the frozen scalar reference.
//!
//! Three kernel variants are measured on the same subarray state:
//!
//! * `scalar` — [`bitline_deltas_into_scalar`], the frozen
//!   pre-vectorization kernel (the bit-identity reference);
//! * `tiled` — [`bitline_deltas_into`], the [`LANES`]-wide
//!   register-accumulator rewrite the sense path runs on;
//! * `batched` — [`bitline_deltas_batch_into`] over a block of voltage
//!   snapshots, which walks the capacitance/strength planes once per
//!   batch instead of once per trial.
//!
//! On top of the raw kernels, the engine-level trial path is measured
//! at all three stages of the trajectory: the seed baseline (`trials`
//! calls of [`ApaEngine::sense_reference`], the frozen scalar path the
//! repo shipped before vectorization), the SIMD stage (`trials` calls
//! of [`ApaEngine::sense`]), and the batched stage (one
//! [`ApaEngine::sense_batch`] over pre-captured snapshots).
//!
//! Besides the Criterion groups, every run — including `--test` smoke
//! runs — writes `BENCH_analog.json` with direct best-of-N wall-clock
//! numbers (columns/sec for the kernels, trials/sec for the sense rig),
//! so CI can archive the evidence for the issue's ≥2× kernel / ≥3×
//! batched-sense acceptance bars without parsing Criterion's output.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use simra_analog::charge::{
    bitline_deltas_batch_into, bitline_deltas_into, bitline_deltas_into_scalar, LANES,
};
use simra_analog::{ApaEngine, CircuitParams, OperatingConditions, SenseBatch};
use simra_dram::subarray::VariationParams;
use simra_dram::{ApaTiming, BitRow, Subarray};

/// Columns per row of the bench subarray — the vendor profiles'
/// geometry (`simra_dram::VendorProfile`), so the kernels are measured
/// at the working-set size the repro actually runs them at.
const COLS: usize = 256;
/// Simultaneously opened rows (the paper's largest COTS N).
const ACTIVE_ROWS: usize = 32;
/// Trials per batch for the batched kernel / sense measurements — the
/// data-redraw count of one characterization point. 32 keeps the whole
/// snapshot stack (`TRIALS · ACTIVE_ROWS · COLS` f32s, 1 MiB) cache
/// resident, which is how the characterize loops use batches: one
/// point's redraws at a time, not an unbounded backlog.
const TRIALS: usize = 32;
/// Best-of reps for every direct wall-clock measurement. The bench
/// shares a host with other tenants, so the minimum over many short
/// reps — not a mean — is the estimator for all throughput numbers.
const REPS: usize = 15;
/// Single-shot kernel invocations per timed rep (amortizes timer
/// granularity over a few milliseconds of work).
const INNER: usize = 512;
/// Batched kernel invocations per timed rep: each call covers `TRIALS`
/// snapshots, so this covers the same `INNER · COLS` column count as
/// the single-shot timings.
const INNER_BATCH: usize = INNER / TRIALS;

fn rig() -> (Subarray, ApaEngine, Vec<u32>) {
    let mut subarray = Subarray::new(64, COLS as u32, VariationParams::default(), 5);
    // Deterministic mixed data: enough structure to exercise both sense
    // polarities, no RNG dependency.
    for row in 0..64u32 {
        let image = BitRow::from_bits(
            (0..COLS).map(|c| (c as u32).wrapping_mul(2_654_435_761).wrapping_add(row) & 4 != 0),
        );
        subarray.write_row(row, &image).unwrap();
    }
    let engine = ApaEngine::new(
        CircuitParams::calibrated(),
        OperatingConditions::nominal(),
        false,
    );
    let rows: Vec<u32> = (0..ACTIVE_ROWS as u32).collect();
    (subarray, engine, rows)
}

/// Best-of-N direct wall-clock measurement (minimum over `reps` runs).
fn best_of_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct KernelTimes {
    scalar_ms: f64,
    tiled_ms: f64,
    batched_ms: f64,
}

/// Times the three kernel variants over identical inputs. Each timed
/// rep processes `INNER * COLS` columns: `INNER` calls of the
/// single-shot kernels, `INNER_BATCH` calls of the batched kernel
/// (each covering `TRIALS` snapshots).
fn time_kernels(subarray: &Subarray, engine: &ApaEngine, rows: &[u32]) -> KernelTimes {
    let params = engine.params();
    let timing = ApaTiming::best_for_majx();
    let first_weight = params.first_row_weight(rows.len(), timing);
    let rows_weights: Vec<(u32, f64)> = rows
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, if i == 0 { first_weight } else { 1.0 }))
        .collect();
    let transfer_amp = params.transfer_amp(rows.len());
    let (assertion, beta) = (1.0, params.beta);
    // Every timed call goes through black_box on both sides so the
    // repeated identical invocations cannot be hoisted, merged, or
    // dead-stored by the optimizer.

    let mut cap = Vec::new();
    let mut out = Vec::new();
    let scalar_ms = best_of_ms(REPS, || {
        for _ in 0..INNER {
            bitline_deltas_into_scalar(
                subarray,
                std::hint::black_box(&rows_weights),
                transfer_amp,
                assertion,
                beta,
                &mut cap,
                &mut out,
            );
            std::hint::black_box((&mut cap, &mut out));
        }
    });
    let tiled_ms = best_of_ms(REPS, || {
        for _ in 0..INNER {
            bitline_deltas_into(
                subarray,
                std::hint::black_box(&rows_weights),
                transfer_amp,
                assertion,
                beta,
                &mut cap,
                &mut out,
            );
            std::hint::black_box((&mut cap, &mut out));
        }
    });

    // The batched kernel consumes explicit voltage snapshots; capture
    // TRIALS copies of the live plane so per-trial inputs match.
    let mut voltages = Vec::with_capacity(TRIALS * rows.len() * COLS);
    for _ in 0..TRIALS {
        for &row in rows {
            voltages.extend_from_slice(&subarray.row_voltages(row)[..COLS]);
        }
    }
    let batched_ms = best_of_ms(REPS, || {
        for _ in 0..INNER_BATCH {
            bitline_deltas_batch_into(
                subarray,
                std::hint::black_box(&rows_weights),
                std::hint::black_box(&voltages),
                TRIALS,
                transfer_amp,
                assertion,
                beta,
                &mut cap,
                &mut out,
            );
            std::hint::black_box((&mut cap, &mut out));
        }
    });
    // Sanity: the batched run produced TRIALS * COLS deltas.
    assert_eq!(out.len(), TRIALS * COLS);
    KernelTimes {
        scalar_ms,
        tiled_ms,
        batched_ms,
    }
}

struct SenseTimes {
    scalar_ms: f64,
    tiled_ms: f64,
    batched_ms: f64,
}

/// Times `TRIALS` engine-level senses at each trajectory stage: the
/// seed trial loop (one [`ApaEngine::sense_reference`] per trial — the
/// frozen scalar path), the SIMD trial loop (one [`ApaEngine::sense`]
/// per trial), and one batched [`ApaEngine::sense_batch`] pass over
/// pre-captured snapshots. Snapshot capture is outside the timed
/// region: in real trial loops the operand writes happen either way,
/// and the batch's `f32` copies ride along with them.
fn time_senses(subarray: &Subarray, engine: &ApaEngine, rows: &[u32]) -> SenseTimes {
    let timing = ApaTiming::best_for_majx();
    // Every rep covers SENSE_INNER × TRIALS senses so each timed region
    // is a few milliseconds — long enough that scheduler noise cannot
    // swallow a whole rep; the reported number is per TRIALS senses.
    const SENSE_INNER: usize = 4;
    let scalar_ms = best_of_ms(REPS, || {
        for _ in 0..SENSE_INNER * TRIALS {
            let r = engine.sense_reference(std::hint::black_box(subarray), rows, rows[0], timing);
            assert_eq!(std::hint::black_box(r).deltas.len(), COLS);
        }
    }) / SENSE_INNER as f64;
    let tiled_ms = best_of_ms(REPS, || {
        for _ in 0..SENSE_INNER * TRIALS {
            let r = engine.sense(std::hint::black_box(subarray), rows, rows[0], timing);
            assert_eq!(std::hint::black_box(r).deltas.len(), COLS);
        }
    }) / SENSE_INNER as f64;
    let mut batch = SenseBatch::new(rows, COLS);
    for _ in 0..TRIALS {
        batch.snapshot_trial(subarray);
    }
    let batched_ms = best_of_ms(REPS, || {
        for _ in 0..SENSE_INNER {
            let results =
                engine.sense_batch(subarray, std::hint::black_box(&batch), rows[0], timing);
            assert_eq!(std::hint::black_box(results).len(), TRIALS);
        }
    }) / SENSE_INNER as f64;
    SenseTimes {
        scalar_ms,
        tiled_ms,
        batched_ms,
    }
}

/// Work items (columns, trials) per second for a timing that covered
/// `count` items in `ms` milliseconds.
fn per_sec(count: usize, ms: f64) -> f64 {
    count as f64 / (ms / 1e3)
}

/// Writes BENCH_analog.json next to the bench's working directory (the
/// `simra-bench` package root under `cargo bench`); override the path
/// with `BENCH_ANALOG_OUT`.
fn write_analog_doc() {
    let (subarray, engine, rows) = rig();
    let kernel = time_kernels(&subarray, &engine, &rows);
    let sense = time_senses(&subarray, &engine, &rows);

    let single_cols = INNER * COLS;
    let batch_cols = INNER_BATCH * TRIALS * COLS;
    let kernel_json = format!(
        "{{\"cols\":{COLS},\"active_rows\":{ACTIVE_ROWS},\"lanes\":{LANES},\
         \"trials_per_batch\":{TRIALS},\
         \"scalar_ms\":{:.4},\"tiled_ms\":{:.4},\"batched_ms\":{:.4},\
         \"scalar_cols_per_sec\":{:.0},\"tiled_cols_per_sec\":{:.0},\
         \"batched_cols_per_sec\":{:.0},\
         \"tiled_speedup\":{:.3},\"batched_speedup\":{:.3}}}",
        kernel.scalar_ms,
        kernel.tiled_ms,
        kernel.batched_ms,
        per_sec(single_cols, kernel.scalar_ms),
        per_sec(single_cols, kernel.tiled_ms),
        per_sec(batch_cols, kernel.batched_ms),
        per_sec(single_cols, kernel.tiled_ms) / per_sec(single_cols, kernel.scalar_ms),
        per_sec(batch_cols, kernel.batched_ms) / per_sec(single_cols, kernel.scalar_ms),
    );
    let sense_json = format!(
        "{{\"trials\":{TRIALS},\"cols\":{COLS},\"active_rows\":{ACTIVE_ROWS},\
         \"scalar_loop_ms\":{:.4},\"tiled_loop_ms\":{:.4},\"batched_ms\":{:.4},\
         \"scalar_trials_per_sec\":{:.0},\"tiled_trials_per_sec\":{:.0},\
         \"batched_trials_per_sec\":{:.0},\
         \"tiled_speedup\":{:.3},\"speedup\":{:.3}}}",
        sense.scalar_ms,
        sense.tiled_ms,
        sense.batched_ms,
        per_sec(TRIALS, sense.scalar_ms),
        per_sec(TRIALS, sense.tiled_ms),
        per_sec(TRIALS, sense.batched_ms),
        sense.scalar_ms / sense.tiled_ms,
        sense.scalar_ms / sense.batched_ms,
    );
    let doc = format!(
        "{{\"schema_version\":1,\"tool\":{},\"scale\":{},\
         \"kernel\":{kernel_json},\"sense\":{sense_json}}}",
        simra_telemetry::json::quote("analog_hotpath_bench"),
        simra_telemetry::json::quote("quick"),
    );
    let path =
        std::env::var("BENCH_ANALOG_OUT").unwrap_or_else(|_| "BENCH_analog.json".to_string());
    std::fs::write(&path, &doc).expect("write BENCH_analog.json");
    eprintln!(
        "analog_hotpath: kernel scalar {:.3} / tiled {:.3} / batched {:.3} ms (per {} cols); \
         sense {} trials: scalar {:.3} / tiled {:.3} / batched {:.3} ms ({:.1}x) -> {path}",
        kernel.scalar_ms,
        kernel.tiled_ms,
        kernel.batched_ms,
        single_cols,
        TRIALS,
        sense.scalar_ms,
        sense.tiled_ms,
        sense.batched_ms,
        sense.scalar_ms / sense.batched_ms,
    );
}

fn bench(c: &mut Criterion) {
    write_analog_doc();

    let (subarray, engine, rows) = rig();
    let params = engine.params();
    let timing = ApaTiming::best_for_majx();
    let rows_weights: Vec<(u32, f64)> = rows
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            (
                r,
                if i == 0 {
                    params.first_row_weight(rows.len(), timing)
                } else {
                    1.0
                },
            )
        })
        .collect();
    let transfer_amp = params.transfer_amp(rows.len());
    let beta = params.beta;
    let mut cap = Vec::new();
    let mut out = Vec::new();

    let mut group = c.benchmark_group("analog_hotpath");
    group.bench_function("kernel/scalar", |b| {
        b.iter(|| {
            bitline_deltas_into_scalar(
                &subarray,
                &rows_weights,
                transfer_amp,
                1.0,
                beta,
                &mut cap,
                &mut out,
            )
        });
    });
    group.bench_function("kernel/tiled", |b| {
        b.iter(|| {
            bitline_deltas_into(
                &subarray,
                &rows_weights,
                transfer_amp,
                1.0,
                beta,
                &mut cap,
                &mut out,
            )
        });
    });
    group.bench_function("sense/scalar_loop", |b| {
        b.iter(|| {
            for _ in 0..TRIALS {
                criterion::black_box(engine.sense_reference(&subarray, &rows, rows[0], timing));
            }
        });
    });
    group.bench_function("sense/tiled_loop", |b| {
        b.iter(|| {
            for _ in 0..TRIALS {
                criterion::black_box(engine.sense(&subarray, &rows, rows[0], timing));
            }
        });
    });
    let mut batch = SenseBatch::new(&rows, COLS);
    for _ in 0..TRIALS {
        batch.snapshot_trial(&subarray);
    }
    group.bench_function("sense/batched", |b| {
        b.iter(|| criterion::black_box(engine.sense_batch(&subarray, &batch, rows[0], timing)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
