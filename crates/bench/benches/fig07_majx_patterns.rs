//! Bench for Fig. 7: MAJX across data patterns.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simra_bender::TestSetup;
use simra_characterize::{fig7_majx_patterns, ExperimentConfig, Session};
use simra_core::maj::{majx_success, MajConfig};
use simra_core::rowgroup::sample_groups;
use simra_dram::{ApaTiming, DataPattern, VendorProfile};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07");
    for x in [3usize, 5, 7, 9] {
        group.bench_with_input(BenchmarkId::new("majx_success_n32", x), &x, |b, &x| {
            let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 7);
            let mut rng = StdRng::seed_from_u64(1);
            let groups = sample_groups(setup.module().geometry(), 32, 1, 1, 1, &mut rng);
            let cfg = MajConfig::default();
            b.iter(|| {
                majx_success(
                    &mut setup,
                    &groups[0],
                    x,
                    ApaTiming::best_for_majx(),
                    DataPattern::Random,
                    &cfg,
                    &mut rng,
                )
                .unwrap()
            });
        });
    }
    group.sample_size(10);
    group.bench_function("full_table_quick", |b| {
        let session = Session::new(ExperimentConfig::quick());
        b.iter(|| fig7_majx_patterns(&session));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
