//! Bench for Fig. 10: Multi-RowCopy timing grid.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simra_bender::TestSetup;
use simra_characterize::{fig10_mrc_timing, ExperimentConfig, Session};
use simra_core::multirowcopy::multirowcopy_success;
use simra_core::rowgroup::sample_groups;
use simra_dram::{ApaTiming, BitRow, VendorProfile};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    for dests in [1u32, 7, 31] {
        group.bench_with_input(BenchmarkId::new("mrc_success", dests), &dests, |b, &d| {
            let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 7);
            let mut rng = StdRng::seed_from_u64(1);
            let groups = sample_groups(setup.module().geometry(), d + 1, 1, 1, 1, &mut rng);
            let cols = setup.module().geometry().cols_per_row as usize;
            let img = BitRow::random(&mut rng, cols);
            b.iter(|| {
                multirowcopy_success(
                    &mut setup,
                    &groups[0],
                    ApaTiming::best_for_multi_row_copy(),
                    &img,
                )
                .unwrap()
            });
        });
    }
    group.sample_size(10);
    group.bench_function("full_table_quick", |b| {
        let session = Session::new(ExperimentConfig::quick());
        b.iter(|| fig10_mrc_timing(&session));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
