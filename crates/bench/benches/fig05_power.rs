//! Bench for Fig. 5: the power table (analytic, fast).
use criterion::{criterion_group, criterion_main, Criterion};
use simra_bender::power::PowerModel;
use simra_characterize::{fig5_power, ExperimentConfig, Session};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig05");
    group.bench_function("power_table", |b| {
        let session = Session::new(ExperimentConfig::quick());
        b.iter(|| fig5_power(&session))
    });
    group.bench_function("many_row_activation_mw", |b| {
        let m = PowerModel::ddr4();
        b.iter(|| (2..=32).map(|n| m.many_row_activation_mw(n)).sum::<f64>())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
