//! Determinism contract of the adaptive hybrid backend, end to end.
//!
//! The hybrid backend escalates to the analog path *adaptively* — how
//! many analog trials a point gets depends on the Wilson interval of
//! what was observed so far. The contract is that none of this
//! adaptivity leaks into the output: same-seed runs are byte-identical
//! no matter how many worker threads execute the sweeps, whether the
//! run was SIGKILLed and resumed from its checkpoint journal, or
//! whether the grid was split across shard worker processes. These
//! tests exercise the real `repro` binary, property-style over the
//! topology knobs (worker counts, kill timing).

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use proptest::prelude::*;

/// Scratch directory under the system temp dir, fresh per call.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "simra-hybrid-determinism-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `repro` with `args`, optionally pinning the worker-thread count.
fn repro(args: &[&str], threads: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(args);
    if let Some(t) = threads {
        cmd.env("SIMRA_THREADS", t);
    }
    cmd.output().expect("spawn repro")
}

fn stdout_of(args: &[&str], threads: Option<&str>) -> String {
    let out = repro(args, threads);
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("repro stdout is UTF-8")
}

/// The quick-scale hybrid reference output, computed once per process.
/// Every topology variation must reproduce these exact bytes.
fn golden() -> &'static str {
    static GOLDEN: OnceLock<String> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let out = stdout_of(&["quick", "--backend", "hybrid"], None);
        assert!(
            out.contains("18/18 observations reproduced"),
            "the hybrid reference run must hold the full scoreboard"
        );
        out
    })
}

/// Starts a checkpointed run, SIGKILLs it once `min_journals` sweep
/// journals exist (or it finishes first), and returns the count at the
/// kill.
fn start_and_kill(args: &[&str], dir: &Path, min_journals: usize) -> usize {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro");
    let deadline = Instant::now() + Duration::from_secs(120);
    let journals = loop {
        let n = std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "journal"))
                    .count()
            })
            .unwrap_or(0);
        if n >= min_journals {
            break n;
        }
        if child.try_wait().expect("poll child").is_some() {
            break n;
        }
        assert!(
            Instant::now() < deadline,
            "no journals appeared within the deadline"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let _ = child.kill();
    let _ = child.wait();
    journals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The number of worker threads must not show through: the per-slot
    /// escalation state is thread-local and reset at every slot
    /// boundary, so any thread interleaving replays the same decisions.
    #[test]
    fn hybrid_stdout_is_worker_count_invariant(
        threads in prop::sample::select(vec!["1", "2", "4"]),
    ) {
        let out = stdout_of(&["quick", "--backend", "hybrid"], Some(threads));
        prop_assert_eq!(out.as_str(), golden(), "SIMRA_THREADS={} diverged", threads);
    }

    /// SIGKILL at a proptest-chosen instant, then resume: the journaled
    /// prefix plus recomputed suffix must reproduce the uninterrupted
    /// bytes — escalation decisions replay identically on resume.
    #[test]
    fn hybrid_kill_and_resume_is_byte_identical(
        min_journals in 1usize..5,
    ) {
        let dir = scratch(&format!("kill-{min_journals}"));
        let dir_s = dir.to_str().expect("scratch path is UTF-8");
        let n = start_and_kill(
            &["quick", "--backend", "hybrid", "--checkpoint-dir", dir_s],
            &dir,
            min_journals,
        );
        let resumed = stdout_of(
            &["quick", "--backend", "hybrid", "--checkpoint-dir", dir_s, "--resume"],
            None,
        );
        prop_assert_eq!(
            resumed.as_str(),
            golden(),
            "resume after SIGKILL ({} journals on disk) diverged",
            n
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn hybrid_sharded_run_is_byte_identical() {
    let dir = scratch("shards");
    let dir_s = dir.to_str().expect("scratch path is UTF-8");
    let sharded = stdout_of(
        &[
            "quick",
            "--backend",
            "hybrid",
            "--shards",
            "2",
            "--checkpoint-dir",
            dir_s,
        ],
        None,
    );
    assert_eq!(
        sharded,
        golden(),
        "2-way sharded hybrid run diverged from the single-process run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hybrid_flags_perturb_the_output_deterministically() {
    // Different decision parameters legitimately change the sampled
    // stream (different escalation counts consume different RNG
    // amounts) — but the same parameters must still be reproducible.
    let args = [
        "quick",
        "--backend",
        "hybrid",
        "--hybrid-epsilon",
        "0.04",
        "--hybrid-budget",
        "2:6",
    ];
    let a = stdout_of(&args, None);
    let b = stdout_of(&args, Some("2"));
    assert_eq!(a, b, "explicit hybrid flags must stay deterministic");
    assert!(
        a.contains("observations reproduced"),
        "flagged run must still print a scoreboard"
    );
}
