//! Multi-process sharding integration tests for the `repro` binary.
//!
//! The distributed-sweep contract: `repro --shards N` splits every
//! sweep grid across N worker processes, merges their journals, and
//! replays — and its stdout (every figure table, both scoreboards) is
//! byte-identical to a single-process run of the same arguments. The
//! contract composes with crash resilience: a SIGKILLed worker resumes
//! from its own journal when the coordinator is rerun, still
//! byte-identical. These tests exercise the real binary end to end.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

/// Scratch directory under the system temp dir, fresh per call.
fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("simra-shard-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stdout_of(args: &[&str]) -> String {
    let out = repro(args);
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("repro stdout is UTF-8")
}

/// Starts a lone shard worker, SIGKILLs it once `min_journals` sweep
/// journals exist in its checkpoint directory, and returns how many
/// existed at the kill.
fn start_worker_and_kill(args: &[&str], dir: &Path, min_journals: usize) -> usize {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro shard worker");
    let deadline = Instant::now() + Duration::from_secs(120);
    let journals = loop {
        let n = std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "journal"))
                    .count()
            })
            .unwrap_or(0);
        if n >= min_journals {
            break n;
        }
        if child.try_wait().expect("poll child").is_some() {
            // The worker finished before we got to kill it; the
            // coordinator will then replay its journal, which still
            // validates the byte-identity contract.
            break n;
        }
        assert!(
            Instant::now() < deadline,
            "no journals appeared within the deadline"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let _ = child.kill();
    let _ = child.wait();
    journals
}

/// The `"scoreboard"` section of a metrics JSON document. Telemetry
/// counters legitimately differ between a sharded replay and a
/// single-process run (replay skips trials and ticks checkpoint
/// counters); the scientific verdicts must not.
fn scoreboard_of(path: &Path) -> String {
    let doc = std::fs::read_to_string(path).expect("read metrics JSON");
    let start = doc
        .find("\"scoreboard\":")
        .expect("metrics document has a scoreboard section");
    doc[start..].to_string()
}

#[test]
fn sharded_run_is_byte_identical_to_single_process() {
    let dir = scratch("plain");
    let golden_metrics = dir.join("golden-metrics.json");
    let golden_metrics_s = golden_metrics.to_str().expect("path is UTF-8");
    let golden = stdout_of(&["quick", "--metrics-out", golden_metrics_s]);
    assert!(
        golden.contains("18/18 observations reproduced"),
        "golden run must hold the full scoreboard"
    );
    let root = scratch("plain-shards");
    let root_s = root.to_str().expect("scratch path is UTF-8");
    let sharded_metrics = dir.join("sharded-metrics.json");
    let sharded_metrics_s = sharded_metrics.to_str().expect("path is UTF-8");
    let sharded = stdout_of(&[
        "quick",
        "--shards",
        "4",
        "--checkpoint-dir",
        root_s,
        "--metrics-out",
        sharded_metrics_s,
    ]);
    assert_eq!(
        sharded, golden,
        "a 4-way sharded run must be byte-identical to single-process"
    );
    assert_eq!(
        scoreboard_of(&sharded_metrics),
        scoreboard_of(&golden_metrics),
        "the sharded metrics scoreboard must match the single-process run"
    );
    // The coordinator leaves the merged journals and worker telemetry
    // behind for inspection.
    assert!(root.join("merged").join("sweep-0000.journal").exists());
    assert!(root.join("telemetry-merged.json").exists());
    for shard in 0..4 {
        assert!(root
            .join(format!("shard-{shard}"))
            .join("session.json")
            .exists());
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn killed_worker_resumes_under_the_coordinator_byte_identical() {
    let golden = stdout_of(&["quick"]);
    let root = scratch("kill");
    let root_s = root.to_str().expect("scratch path is UTF-8");
    // Run shard 1's worker alone — exactly as the coordinator would
    // spawn it — and SIGKILL it once it has journaled some sweeps.
    let shard_dir = root.join("shard-1");
    let shard_dir_s = shard_dir.to_str().expect("path is UTF-8");
    let n = start_worker_and_kill(
        &[
            "quick",
            "--shard-worker",
            "1/4",
            "--checkpoint-dir",
            shard_dir_s,
        ],
        &shard_dir,
        2,
    );
    // The coordinator finds the half-written shard, resumes it (its
    // session manifest already exists), runs the other three workers
    // fresh, merges, and replays.
    let sharded = stdout_of(&["quick", "--shards", "4", "--checkpoint-dir", root_s]);
    assert_eq!(
        sharded, golden,
        "resume after SIGKILL of a worker ({n} journals on disk) must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn rerunning_a_completed_coordinator_replays_byte_identical() {
    let root = scratch("rerun");
    let root_s = root.to_str().expect("scratch path is UTF-8");
    let first = stdout_of(&["quick", "--shards", "2", "--checkpoint-dir", root_s]);
    // Everything — workers and the merged session — is already on
    // disk; the rerun resumes all of it and replays.
    let second = stdout_of(&["quick", "--shards", "2", "--checkpoint-dir", root_s]);
    assert_eq!(second, first);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shard_cli_validation_exits_2_with_usage() {
    for args in [
        &["quick", "--shards", "0"][..],
        &["quick", "--shards", "four"],
        &["quick", "--shards"],
        &["quick", "--shard-worker", "4/4", "--checkpoint-dir", "d"],
        &["quick", "--shard-worker", "0/2"],
        &[
            "quick",
            "--shards",
            "2",
            "--checkpoint-dir",
            "d",
            "--resume",
        ],
        &[
            "quick",
            "--shards",
            "2",
            "--shard-worker",
            "0/2",
            "--checkpoint-dir",
            "d",
        ],
    ] {
        let out = repro(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "repro {args:?} must be rejected"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("usage: repro"),
            "diagnostic for {args:?} must include usage, got: {stderr}"
        );
    }
}

#[test]
fn worker_refuses_a_mismatched_shard_spec_on_resume() {
    let root = scratch("respec");
    let shard_dir = root.join("shard-0");
    let shard_dir_s = shard_dir.to_str().expect("path is UTF-8");
    start_worker_and_kill(
        &[
            "quick",
            "--shard-worker",
            "0/4",
            "--checkpoint-dir",
            shard_dir_s,
        ],
        &shard_dir,
        1,
    );
    // Same directory, different spec: the session manifest must refuse
    // with the coordinator's fail-fast exit code.
    let out = repro(&[
        "quick",
        "--shard-worker",
        "1/4",
        "--checkpoint-dir",
        shard_dir_s,
        "--resume",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("mismatch"),
        "expected a manifest mismatch diagnostic, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
