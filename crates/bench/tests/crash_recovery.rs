//! Kill-and-resume integration test for the `repro` binary.
//!
//! The crash-resilience contract: a characterization run journaling
//! into `--checkpoint-dir` can be SIGKILLed at any instant and resumed
//! with `--resume`, and the resumed run's stdout — every figure table,
//! both scoreboards — is byte-identical to an uninterrupted run of the
//! same arguments. This test exercises the real binary end to end: it
//! records a golden uninterrupted run, starts a checkpointed run,
//! SIGKILLs it once a few sweep journals exist on disk, resumes, and
//! diffs. Both the fault-free path and `--faults quick` (which adds
//! the fleet-coverage footer) are covered, plus the metrics document's
//! scoreboard section.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

/// Scratch directory under the system temp dir, fresh per call.
fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("simra-crash-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stdout_of(args: &[&str]) -> String {
    let out = repro(args);
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("repro stdout is UTF-8")
}

/// Starts a checkpointed run, SIGKILLs it once `min_journals` sweep
/// journals exist, and returns how many existed at the kill.
fn start_and_kill(args: &[&str], dir: &Path, min_journals: usize) -> usize {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro");
    let deadline = Instant::now() + Duration::from_secs(120);
    let journals = loop {
        let n = std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "journal"))
                    .count()
            })
            .unwrap_or(0);
        if n >= min_journals {
            break n;
        }
        if child.try_wait().expect("poll child").is_some() {
            // The run finished before we got to kill it; resume will
            // then replay everything, which still validates the
            // byte-identity contract (just less adversarially).
            break n;
        }
        assert!(
            Instant::now() < deadline,
            "no journals appeared within the deadline"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    // SIGKILL: no destructors, no flushing — the journal's fsynced
    // prefix is all the resumed run gets.
    let _ = child.kill();
    let _ = child.wait();
    journals
}

/// The `"scoreboard"` section of a metrics JSON document. Telemetry
/// counters legitimately differ between a resumed and an uninterrupted
/// run (the resumed one skips work and ticks checkpoint counters); the
/// scientific verdicts must not.
fn scoreboard_of(path: &Path) -> String {
    let doc = std::fs::read_to_string(path).expect("read metrics JSON");
    let start = doc
        .find("\"scoreboard\":")
        .expect("metrics document has a scoreboard section");
    doc[start..].to_string()
}

#[test]
fn killed_run_resumes_byte_identical() {
    let golden = stdout_of(&["quick"]);
    assert!(
        golden.contains("18/18 observations reproduced"),
        "golden run must hold the full scoreboard"
    );
    let dir = scratch("plain");
    let dir_s = dir.to_str().expect("scratch path is UTF-8");
    let n = start_and_kill(&["quick", "--checkpoint-dir", dir_s], &dir, 3);
    let resumed = stdout_of(&["quick", "--checkpoint-dir", dir_s, "--resume"]);
    assert_eq!(
        resumed, golden,
        "resume after SIGKILL ({n} journals on disk) must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_faulted_run_resumes_byte_identical_with_scoreboard() {
    let golden = stdout_of(&["quick", "--faults", "quick"]);
    assert!(golden.contains("=== Fleet coverage under fault injection ==="));
    let dir = scratch("faults");
    let golden_metrics = dir.join("golden-metrics.json");
    let golden_metrics_s = golden_metrics.to_str().expect("path is UTF-8");
    let golden_doc = stdout_of(&[
        "quick",
        "--faults",
        "quick",
        "--metrics-out",
        golden_metrics_s,
    ]);
    assert_eq!(golden_doc, golden, "metrics flags must not perturb stdout");
    let ckpt = scratch("faults-ckpt");
    let ckpt_s = ckpt.to_str().expect("scratch path is UTF-8");
    start_and_kill(
        &["quick", "--faults", "quick", "--checkpoint-dir", ckpt_s],
        &ckpt,
        3,
    );
    let resumed_metrics = dir.join("resumed-metrics.json");
    let resumed_metrics_s = resumed_metrics.to_str().expect("path is UTF-8");
    let resumed = stdout_of(&[
        "quick",
        "--faults",
        "quick",
        "--checkpoint-dir",
        ckpt_s,
        "--resume",
        "--metrics-out",
        resumed_metrics_s,
    ]);
    assert_eq!(resumed, golden, "faulted resume must be byte-identical");
    assert_eq!(
        scoreboard_of(&resumed_metrics),
        scoreboard_of(&golden_metrics),
        "resumed scoreboard must match the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn resume_refuses_mismatched_arguments() {
    let dir = scratch("mismatch");
    let dir_s = dir.to_str().expect("scratch path is UTF-8");
    start_and_kill(&["quick", "--checkpoint-dir", dir_s], &dir, 1);
    // Same directory, different scale: the session manifest must refuse.
    let out = repro(&["reduced", "--checkpoint-dir", dir_s, "--resume"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("mismatch"),
        "expected a manifest mismatch diagnostic, got: {stderr}"
    );
    // A fresh session must refuse a directory that already holds one.
    let out = repro(&["quick", "--checkpoint-dir", dir_s]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("already exists"),
        "expected a dir-in-use diagnostic, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
