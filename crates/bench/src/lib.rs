//! Bench support crate: the Criterion bench targets (in `benches/`),
//! the `repro` binary, and the pieces it shares with tooling —
//! [`cli`] argument parsing and the [`metrics`] JSON document written
//! by `repro --metrics-out`.

pub mod cli;
pub mod metrics;
