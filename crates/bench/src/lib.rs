//! Bench support crate (bench targets live in benches/).
