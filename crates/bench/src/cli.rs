//! Argument parsing for the `repro` binary.
//!
//! Extracted from `main` so the accepted grammar is testable and so
//! malformed invocations fail loudly: any unrecognized `-`/`--` token,
//! a flag missing its value, a duplicate scale, or an unknown scale
//! name is an error, never a silently reinterpreted argument. (The old
//! inline loop treated single-dash typos like `-faults` as the scale
//! positional and ran the wrong configuration without a word.)

/// Usage text printed alongside every parse error.
pub const USAGE: &str = "\
usage: repro [<scale>] [--backend <which>] [--timings] [--faults <preset>] [--metrics] [--metrics-out <path>] [--checkpoint-dir <path> [--resume]]
  <scale>               quick | reduced | paper (default: reduced)
  --backend <which>     execution backend: analog (default, the reference
                        physics path) | surrogate (calibrated fast model)
  --timings             print per-figure wall-clock to stderr
  --faults <preset>     arm a fault-injection preset (quick | dropout | chaos)
  --metrics             print a telemetry summary to stderr after the run
  --metrics-out <path>  write versioned telemetry + scoreboard JSON to <path>
  --checkpoint-dir <path>
                        journal every sweep into <path>; a killed run can be
                        resumed from there with byte-identical results
  --resume              continue the checkpoint session in --checkpoint-dir
                        (requires an existing session with the same arguments)";

/// Parsed `repro` invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CliOptions {
    /// Positional scale argument, if given (`quick` | `reduced` | `paper`).
    pub scale: Option<String>,
    /// `--timings`: per-figure wall-clock on stderr.
    pub timings: bool,
    /// `--metrics`: telemetry summary on stderr after the run.
    pub metrics: bool,
    /// `--metrics-out <path>`: write the metrics JSON document here.
    pub metrics_out: Option<String>,
    /// `--faults <preset>`: arm a fault-injection preset.
    pub faults_preset: Option<String>,
    /// `--backend <which>`: execution backend for every trial.
    pub backend: simra_exec::BackendChoice,
    /// `--checkpoint-dir <path>`: journal sweeps here for kill-and-resume.
    pub checkpoint_dir: Option<String>,
    /// `--resume`: continue the session in `--checkpoint-dir`.
    pub resume: bool,
}

impl CliOptions {
    /// The effective scale (`reduced` unless overridden).
    pub fn scale(&self) -> &str {
        self.scale.as_deref().unwrap_or("reduced")
    }

    /// Whether any telemetry output was requested; the global recorder
    /// is enabled only in that case so plain runs stay zero-cost.
    pub fn wants_telemetry(&self) -> bool {
        self.metrics || self.metrics_out.is_some()
    }
}

/// A rejected invocation. `Display` yields the one-line diagnostic;
/// callers print it together with [`USAGE`] and exit non-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A `-`/`--` token that is not part of the grammar.
    UnknownFlag(String),
    /// A flag that takes a value reached the end of the argument list.
    MissingValue(&'static str),
    /// Two positional arguments.
    DuplicateScale(String, String),
    /// A positional that is not one of the known scales.
    UnknownScale(String),
    /// `--backend` named something other than `analog` | `surrogate`.
    UnknownBackend(String),
    /// `--resume` without the `--checkpoint-dir` it would resume into.
    ResumeWithoutDir,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag: {flag}"),
            CliError::MissingValue(flag) => write!(f, "{flag} requires a value"),
            CliError::DuplicateScale(first, second) => {
                write!(f, "scale given twice: {first:?} then {second:?}")
            }
            CliError::UnknownScale(scale) => {
                write!(
                    f,
                    "unknown scale: {scale:?} (expected quick | reduced | paper)"
                )
            }
            CliError::UnknownBackend(backend) => {
                write!(
                    f,
                    "unknown backend: {backend:?} (expected analog | surrogate)"
                )
            }
            CliError::ResumeWithoutDir => {
                write!(f, "--resume requires --checkpoint-dir")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Parses the argument list (without the program name).
pub fn parse_args<I, S>(args: I) -> Result<CliOptions, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut opts = CliOptions::default();
    let mut iter = args.into_iter().map(Into::into);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--timings" => opts.timings = true,
            "--metrics" => opts.metrics = true,
            "--metrics-out" => match iter.next() {
                Some(path) => opts.metrics_out = Some(path),
                None => return Err(CliError::MissingValue("--metrics-out")),
            },
            "--faults" => match iter.next() {
                Some(name) => opts.faults_preset = Some(name),
                None => return Err(CliError::MissingValue("--faults")),
            },
            "--backend" => match iter.next() {
                Some(name) => match name.parse() {
                    Ok(backend) => opts.backend = backend,
                    Err(_) => return Err(CliError::UnknownBackend(name)),
                },
                None => return Err(CliError::MissingValue("--backend")),
            },
            "--checkpoint-dir" => match iter.next() {
                Some(path) => opts.checkpoint_dir = Some(path),
                None => return Err(CliError::MissingValue("--checkpoint-dir")),
            },
            "--resume" => opts.resume = true,
            other if other.starts_with('-') => {
                return Err(CliError::UnknownFlag(other.to_string()));
            }
            "quick" | "reduced" | "paper" => match &opts.scale {
                Some(first) => {
                    return Err(CliError::DuplicateScale(first.clone(), arg));
                }
                None => opts.scale = Some(arg),
            },
            other => return Err(CliError::UnknownScale(other.to_string())),
        }
    }
    if opts.resume && opts.checkpoint_dir.is_none() {
        return Err(CliError::ResumeWithoutDir);
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, CliError> {
        parse_args(args.iter().copied())
    }

    #[test]
    fn empty_invocation_defaults_to_reduced() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.scale(), "reduced");
        assert!(!opts.timings && !opts.metrics);
        assert!(opts.metrics_out.is_none() && opts.faults_preset.is_none());
        assert!(!opts.wants_telemetry());
    }

    #[test]
    fn full_grammar_round_trips() {
        let opts = parse(&[
            "quick",
            "--timings",
            "--faults",
            "chaos",
            "--metrics",
            "--metrics-out",
            "m.json",
        ])
        .unwrap();
        assert_eq!(opts.scale(), "quick");
        assert!(opts.timings && opts.metrics);
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(opts.faults_preset.as_deref(), Some("chaos"));
        assert!(opts.wants_telemetry());
    }

    #[test]
    fn flag_order_does_not_matter() {
        let opts = parse(&["--timings", "paper"]).unwrap();
        assert_eq!(opts.scale(), "paper");
        assert!(opts.timings);
    }

    #[test]
    fn unknown_double_dash_flag_is_rejected() {
        // `--timing` (a plausible typo of `--timings`) must not pass.
        assert_eq!(
            parse(&["--timing"]),
            Err(CliError::UnknownFlag("--timing".into()))
        );
    }

    #[test]
    fn single_dash_typo_no_longer_becomes_the_scale() {
        // Regression: `-faults` used to be accepted as the positional
        // scale argument and the run silently fell back to `reduced`.
        assert_eq!(
            parse(&["-faults", "chaos"]),
            Err(CliError::UnknownFlag("-faults".into()))
        );
    }

    #[test]
    fn unknown_scale_is_rejected() {
        assert_eq!(parse(&["fast"]), Err(CliError::UnknownScale("fast".into())));
    }

    #[test]
    fn duplicate_scale_is_rejected() {
        assert_eq!(
            parse(&["quick", "paper"]),
            Err(CliError::DuplicateScale("quick".into(), "paper".into()))
        );
    }

    #[test]
    fn value_flags_require_a_value() {
        assert_eq!(
            parse(&["--faults"]),
            Err(CliError::MissingValue("--faults"))
        );
        assert_eq!(
            parse(&["quick", "--metrics-out"]),
            Err(CliError::MissingValue("--metrics-out"))
        );
    }

    #[test]
    fn backend_flag_selects_the_surrogate() {
        use simra_exec::BackendChoice;
        assert_eq!(parse(&[]).unwrap().backend, BackendChoice::Analog);
        assert_eq!(
            parse(&["quick", "--backend", "surrogate"]).unwrap().backend,
            BackendChoice::Surrogate
        );
        assert_eq!(
            parse(&["--backend", "analog"]).unwrap().backend,
            BackendChoice::Analog
        );
        assert_eq!(
            parse(&["--backend", "fast"]),
            Err(CliError::UnknownBackend("fast".into()))
        );
        assert_eq!(
            parse(&["--backend"]),
            Err(CliError::MissingValue("--backend"))
        );
    }

    #[test]
    fn checkpoint_flags_parse() {
        let opts = parse(&["quick", "--checkpoint-dir", "ckpt"]).unwrap();
        assert_eq!(opts.checkpoint_dir.as_deref(), Some("ckpt"));
        assert!(!opts.resume);
        let opts = parse(&["--checkpoint-dir", "ckpt", "--resume"]).unwrap();
        assert_eq!(opts.checkpoint_dir.as_deref(), Some("ckpt"));
        assert!(opts.resume);
        assert_eq!(
            parse(&["--checkpoint-dir"]),
            Err(CliError::MissingValue("--checkpoint-dir"))
        );
    }

    #[test]
    fn resume_requires_a_checkpoint_dir() {
        assert_eq!(parse(&["--resume"]), Err(CliError::ResumeWithoutDir));
        assert_eq!(
            parse(&["quick", "--resume"]),
            Err(CliError::ResumeWithoutDir)
        );
        assert!(CliError::ResumeWithoutDir
            .to_string()
            .contains("--checkpoint-dir"));
    }

    #[test]
    fn errors_render_a_diagnostic() {
        assert_eq!(
            CliError::UnknownFlag("--x".into()).to_string(),
            "unknown flag: --x"
        );
        assert!(CliError::UnknownScale("fast".into())
            .to_string()
            .contains("expected quick | reduced | paper"));
        assert!(USAGE.contains("--metrics-out"));
    }
}
