//! Argument parsing for the `repro` binary.
//!
//! Extracted from `main` so the accepted grammar is testable and so
//! malformed invocations fail loudly: any unrecognized `-`/`--` token,
//! a flag missing its value, a duplicate scale, or an unknown scale
//! name is an error, never a silently reinterpreted argument. (The old
//! inline loop treated single-dash typos like `-faults` as the scale
//! positional and ran the wrong configuration without a word.)

/// Usage text printed alongside every parse error.
pub const USAGE: &str = "\
usage: repro [<scale>] [--backend <which>] [--timings] [--faults <preset>] [--metrics] [--metrics-out <path>] [--shards <N>] [--checkpoint-dir <path> [--resume]]
  <scale>               quick | reduced | paper (default: reduced)
  --backend <which>     execution backend: analog (default, the reference
                        physics path) | surrogate (calibrated fast model) |
                        hybrid (table answers where certain, analog
                        escalation where ambiguous)
  --hybrid-epsilon <e>  hybrid only: target Wilson half-width for the
                        sequential early-stop rule, 0 < e < 0.5 (default 0.02)
  --hybrid-budget <floor>:<ceiling>
                        hybrid only: min/max analog trials per operating
                        point (default 1:8)
  --timings             print per-figure wall-clock to stderr
  --faults <preset>     arm a fault-injection preset (quick | dropout | chaos)
  --metrics             print a telemetry summary to stderr after the run
  --metrics-out <path>  write versioned telemetry + scoreboard JSON to <path>
  --shards <N>          split every sweep grid across N worker processes,
                        merge their journals, and replay — output is
                        byte-identical to an unsharded run; killed workers
                        resume automatically when the command is rerun
  --checkpoint-dir <path>
                        journal every sweep into <path>; a killed run can be
                        resumed from there with byte-identical results (with
                        --shards: the shard root; defaults to a temp dir)
  --resume              continue the checkpoint session in --checkpoint-dir
                        (requires an existing session with the same arguments)
  --shard-worker <i>/<N>
                        internal: run as shard worker i of N, journaling only
                        its slots into --checkpoint-dir (spawned by --shards)";

/// Parsed `repro` invocation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CliOptions {
    /// Positional scale argument, if given (`quick` | `reduced` | `paper`).
    pub scale: Option<String>,
    /// `--timings`: per-figure wall-clock on stderr.
    pub timings: bool,
    /// `--metrics`: telemetry summary on stderr after the run.
    pub metrics: bool,
    /// `--metrics-out <path>`: write the metrics JSON document here.
    pub metrics_out: Option<String>,
    /// `--faults <preset>`: arm a fault-injection preset.
    pub faults_preset: Option<String>,
    /// `--backend <which>`: execution backend for every trial.
    pub backend: simra_exec::BackendChoice,
    /// `--hybrid-epsilon <e>`: target Wilson half-width of the hybrid
    /// early-stop rule (requires `--backend hybrid`).
    pub hybrid_epsilon: Option<f64>,
    /// `--hybrid-budget <floor>:<ceiling>`: per-point analog trial
    /// budget of the hybrid backend (requires `--backend hybrid`).
    pub hybrid_budget: Option<(u32, u32)>,
    /// `--checkpoint-dir <path>`: journal sweeps here for kill-and-resume.
    pub checkpoint_dir: Option<String>,
    /// `--resume`: continue the session in `--checkpoint-dir`.
    pub resume: bool,
    /// `--shards <N>`: run as a coordinator over N worker processes.
    pub shards: Option<u32>,
    /// `--shard-worker <i>/<N>` (internal): run as shard worker `i` of
    /// `N`, journaling only the slots it owns into `--checkpoint-dir`.
    pub shard_worker: Option<(u32, u32)>,
}

impl CliOptions {
    /// The effective scale (`reduced` unless overridden).
    pub fn scale(&self) -> &str {
        self.scale.as_deref().unwrap_or("reduced")
    }

    /// Whether any telemetry output was requested; the global recorder
    /// is enabled only in that case so plain runs stay zero-cost.
    pub fn wants_telemetry(&self) -> bool {
        self.metrics || self.metrics_out.is_some()
    }

    /// The hybrid decision parameters: defaults overridden by
    /// `--hybrid-epsilon` / `--hybrid-budget`.
    pub fn hybrid_params(&self) -> simra_exec::HybridParams {
        let mut params = simra_exec::HybridParams::default();
        if let Some(epsilon) = self.hybrid_epsilon {
            params.epsilon = epsilon;
        }
        if let Some((floor, ceiling)) = self.hybrid_budget {
            params.floor = floor;
            params.ceiling = ceiling;
        }
        params
    }
}

/// A rejected invocation. `Display` yields the one-line diagnostic;
/// callers print it together with [`USAGE`] and exit non-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A `-`/`--` token that is not part of the grammar.
    UnknownFlag(String),
    /// A flag that takes a value reached the end of the argument list.
    MissingValue(&'static str),
    /// Two positional arguments.
    DuplicateScale(String, String),
    /// A positional that is not one of the known scales.
    UnknownScale(String),
    /// `--backend` named something other than
    /// `analog` | `surrogate` | `hybrid`.
    UnknownBackend(String),
    /// `--hybrid-epsilon` with a value outside `(0, 0.5)`.
    InvalidHybridEpsilon(String),
    /// `--hybrid-budget` with a value that is not `<floor>:<ceiling>`
    /// with `floor <= ceiling`, `ceiling >= 1`.
    InvalidHybridBudget(String),
    /// A `--hybrid-*` flag without `--backend hybrid`: the values would
    /// be silently ignored, which is worse than an error.
    HybridFlagsWithoutHybridBackend,
    /// `--resume` without the `--checkpoint-dir` it would resume into.
    ResumeWithoutDir,
    /// `--shards` with a value that is not a positive integer.
    InvalidShards(String),
    /// `--shard-worker` with a value that is not `<i>/<N>` with `i < N`.
    InvalidShardWorker(String),
    /// `--shards` and `--shard-worker` in the same invocation.
    ShardConflict,
    /// `--shard-worker` without the `--checkpoint-dir` it journals into.
    ShardWorkerWithoutDir,
    /// `--shards` with `--resume`: a rerun coordinator resumes on its
    /// own, so the explicit flag would only mislead.
    ShardsWithResume,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag: {flag}"),
            CliError::MissingValue(flag) => write!(f, "{flag} requires a value"),
            CliError::DuplicateScale(first, second) => {
                write!(f, "scale given twice: {first:?} then {second:?}")
            }
            CliError::UnknownScale(scale) => {
                write!(
                    f,
                    "unknown scale: {scale:?} (expected quick | reduced | paper)"
                )
            }
            CliError::UnknownBackend(backend) => {
                write!(
                    f,
                    "unknown backend: {backend:?} (expected analog | surrogate | hybrid)"
                )
            }
            CliError::InvalidHybridEpsilon(value) => {
                write!(
                    f,
                    "--hybrid-epsilon expects a number in (0, 0.5), got {value:?}"
                )
            }
            CliError::InvalidHybridBudget(value) => {
                write!(
                    f,
                    "--hybrid-budget expects <floor>:<ceiling> with floor <= ceiling and ceiling >= 1, got {value:?}"
                )
            }
            CliError::HybridFlagsWithoutHybridBackend => {
                write!(
                    f,
                    "--hybrid-epsilon/--hybrid-budget require --backend hybrid"
                )
            }
            CliError::ResumeWithoutDir => {
                write!(f, "--resume requires --checkpoint-dir")
            }
            CliError::InvalidShards(value) => {
                write!(f, "--shards expects a positive integer, got {value:?}")
            }
            CliError::InvalidShardWorker(value) => {
                write!(
                    f,
                    "--shard-worker expects <i>/<N> with i < N, got {value:?}"
                )
            }
            CliError::ShardConflict => {
                write!(f, "--shards and --shard-worker cannot be combined")
            }
            CliError::ShardWorkerWithoutDir => {
                write!(f, "--shard-worker requires --checkpoint-dir")
            }
            CliError::ShardsWithResume => {
                write!(
                    f,
                    "--shards resumes killed workers automatically; drop --resume"
                )
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Parses the argument list (without the program name).
pub fn parse_args<I, S>(args: I) -> Result<CliOptions, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut opts = CliOptions::default();
    let mut iter = args.into_iter().map(Into::into);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--timings" => opts.timings = true,
            "--metrics" => opts.metrics = true,
            "--metrics-out" => match iter.next() {
                Some(path) => opts.metrics_out = Some(path),
                None => return Err(CliError::MissingValue("--metrics-out")),
            },
            "--faults" => match iter.next() {
                Some(name) => opts.faults_preset = Some(name),
                None => return Err(CliError::MissingValue("--faults")),
            },
            "--backend" => match iter.next() {
                Some(name) => match name.parse() {
                    Ok(backend) => opts.backend = backend,
                    Err(_) => return Err(CliError::UnknownBackend(name)),
                },
                None => return Err(CliError::MissingValue("--backend")),
            },
            "--hybrid-epsilon" => match iter.next() {
                Some(value) => match value.parse::<f64>() {
                    Ok(e) if e > 0.0 && e < 0.5 => opts.hybrid_epsilon = Some(e),
                    _ => return Err(CliError::InvalidHybridEpsilon(value)),
                },
                None => return Err(CliError::MissingValue("--hybrid-epsilon")),
            },
            "--hybrid-budget" => match iter.next() {
                Some(value) => match parse_hybrid_budget(&value) {
                    Some(budget) => opts.hybrid_budget = Some(budget),
                    None => return Err(CliError::InvalidHybridBudget(value)),
                },
                None => return Err(CliError::MissingValue("--hybrid-budget")),
            },
            "--checkpoint-dir" => match iter.next() {
                Some(path) => opts.checkpoint_dir = Some(path),
                None => return Err(CliError::MissingValue("--checkpoint-dir")),
            },
            "--resume" => opts.resume = true,
            "--shards" => match iter.next() {
                Some(value) => match value.parse::<u32>() {
                    Ok(n) if n > 0 => opts.shards = Some(n),
                    _ => return Err(CliError::InvalidShards(value)),
                },
                None => return Err(CliError::MissingValue("--shards")),
            },
            "--shard-worker" => match iter.next() {
                Some(value) => match parse_shard_worker(&value) {
                    Some(spec) => opts.shard_worker = Some(spec),
                    None => return Err(CliError::InvalidShardWorker(value)),
                },
                None => return Err(CliError::MissingValue("--shard-worker")),
            },
            other if other.starts_with('-') => {
                return Err(CliError::UnknownFlag(other.to_string()));
            }
            "quick" | "reduced" | "paper" => match &opts.scale {
                Some(first) => {
                    return Err(CliError::DuplicateScale(first.clone(), arg));
                }
                None => opts.scale = Some(arg),
            },
            other => return Err(CliError::UnknownScale(other.to_string())),
        }
    }
    if opts.resume && opts.checkpoint_dir.is_none() {
        return Err(CliError::ResumeWithoutDir);
    }
    if opts.shards.is_some() && opts.shard_worker.is_some() {
        return Err(CliError::ShardConflict);
    }
    if opts.shard_worker.is_some() && opts.checkpoint_dir.is_none() {
        return Err(CliError::ShardWorkerWithoutDir);
    }
    if opts.shards.is_some() && opts.resume {
        return Err(CliError::ShardsWithResume);
    }
    if (opts.hybrid_epsilon.is_some() || opts.hybrid_budget.is_some())
        && opts.backend != simra_exec::BackendChoice::Hybrid
    {
        return Err(CliError::HybridFlagsWithoutHybridBackend);
    }
    Ok(opts)
}

/// Parses a `--hybrid-budget` value: `<floor>:<ceiling>` with
/// `floor <= ceiling`, `ceiling > 0`.
fn parse_hybrid_budget(value: &str) -> Option<(u32, u32)> {
    let (floor, ceiling) = value.split_once(':')?;
    let floor = floor.parse::<u32>().ok()?;
    let ceiling = ceiling.parse::<u32>().ok()?;
    (ceiling > 0 && floor <= ceiling).then_some((floor, ceiling))
}

/// Parses a `--shard-worker` value: `<i>/<N>` with `i < N`, `N > 0`.
fn parse_shard_worker(value: &str) -> Option<(u32, u32)> {
    let (index, count) = value.split_once('/')?;
    let index = index.parse::<u32>().ok()?;
    let count = count.parse::<u32>().ok()?;
    (count > 0 && index < count).then_some((index, count))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, CliError> {
        parse_args(args.iter().copied())
    }

    #[test]
    fn empty_invocation_defaults_to_reduced() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.scale(), "reduced");
        assert!(!opts.timings && !opts.metrics);
        assert!(opts.metrics_out.is_none() && opts.faults_preset.is_none());
        assert!(!opts.wants_telemetry());
    }

    #[test]
    fn full_grammar_round_trips() {
        let opts = parse(&[
            "quick",
            "--timings",
            "--faults",
            "chaos",
            "--metrics",
            "--metrics-out",
            "m.json",
        ])
        .unwrap();
        assert_eq!(opts.scale(), "quick");
        assert!(opts.timings && opts.metrics);
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(opts.faults_preset.as_deref(), Some("chaos"));
        assert!(opts.wants_telemetry());
    }

    #[test]
    fn flag_order_does_not_matter() {
        let opts = parse(&["--timings", "paper"]).unwrap();
        assert_eq!(opts.scale(), "paper");
        assert!(opts.timings);
    }

    #[test]
    fn unknown_double_dash_flag_is_rejected() {
        // `--timing` (a plausible typo of `--timings`) must not pass.
        assert_eq!(
            parse(&["--timing"]),
            Err(CliError::UnknownFlag("--timing".into()))
        );
    }

    #[test]
    fn single_dash_typo_no_longer_becomes_the_scale() {
        // Regression: `-faults` used to be accepted as the positional
        // scale argument and the run silently fell back to `reduced`.
        assert_eq!(
            parse(&["-faults", "chaos"]),
            Err(CliError::UnknownFlag("-faults".into()))
        );
    }

    #[test]
    fn unknown_scale_is_rejected() {
        assert_eq!(parse(&["fast"]), Err(CliError::UnknownScale("fast".into())));
    }

    #[test]
    fn duplicate_scale_is_rejected() {
        assert_eq!(
            parse(&["quick", "paper"]),
            Err(CliError::DuplicateScale("quick".into(), "paper".into()))
        );
    }

    #[test]
    fn value_flags_require_a_value() {
        assert_eq!(
            parse(&["--faults"]),
            Err(CliError::MissingValue("--faults"))
        );
        assert_eq!(
            parse(&["quick", "--metrics-out"]),
            Err(CliError::MissingValue("--metrics-out"))
        );
    }

    #[test]
    fn backend_flag_selects_the_surrogate() {
        use simra_exec::BackendChoice;
        assert_eq!(parse(&[]).unwrap().backend, BackendChoice::Analog);
        assert_eq!(
            parse(&["quick", "--backend", "surrogate"]).unwrap().backend,
            BackendChoice::Surrogate
        );
        assert_eq!(
            parse(&["--backend", "analog"]).unwrap().backend,
            BackendChoice::Analog
        );
        assert_eq!(
            parse(&["--backend", "hybrid"]).unwrap().backend,
            BackendChoice::Hybrid
        );
        assert_eq!(
            parse(&["--backend", "fast"]),
            Err(CliError::UnknownBackend("fast".into()))
        );
        assert_eq!(
            parse(&["--backend"]),
            Err(CliError::MissingValue("--backend"))
        );
    }

    #[test]
    fn hybrid_flags_parse_and_validate() {
        let opts = parse(&[
            "quick",
            "--backend",
            "hybrid",
            "--hybrid-epsilon",
            "0.05",
            "--hybrid-budget",
            "2:12",
        ])
        .unwrap();
        assert_eq!(opts.hybrid_epsilon, Some(0.05));
        assert_eq!(opts.hybrid_budget, Some((2, 12)));
        let params = opts.hybrid_params();
        assert_eq!(params.epsilon, 0.05);
        assert_eq!((params.floor, params.ceiling), (2, 12));
        // Defaults pass through untouched when the flags are absent.
        let params = parse(&["--backend", "hybrid"]).unwrap().hybrid_params();
        assert!(params.is_default());
        for bad in ["0", "0.5", "-0.1", "nan", "lots", ""] {
            assert_eq!(
                parse(&["--backend", "hybrid", "--hybrid-epsilon", bad]),
                Err(CliError::InvalidHybridEpsilon(bad.into())),
                "--hybrid-epsilon {bad:?} must be rejected"
            );
        }
        for bad in ["3:2", "1:0", "1", "a:2", "1:b", ":2", "1:", ""] {
            assert_eq!(
                parse(&["--backend", "hybrid", "--hybrid-budget", bad]),
                Err(CliError::InvalidHybridBudget(bad.into())),
                "--hybrid-budget {bad:?} must be rejected"
            );
        }
        assert_eq!(
            parse(&["--backend", "hybrid", "--hybrid-epsilon"]),
            Err(CliError::MissingValue("--hybrid-epsilon"))
        );
        assert_eq!(
            parse(&["--backend", "hybrid", "--hybrid-budget"]),
            Err(CliError::MissingValue("--hybrid-budget"))
        );
    }

    #[test]
    fn hybrid_flags_require_the_hybrid_backend() {
        assert_eq!(
            parse(&["--hybrid-epsilon", "0.05"]),
            Err(CliError::HybridFlagsWithoutHybridBackend)
        );
        assert_eq!(
            parse(&["--backend", "surrogate", "--hybrid-budget", "1:4"]),
            Err(CliError::HybridFlagsWithoutHybridBackend)
        );
    }

    #[test]
    fn checkpoint_flags_parse() {
        let opts = parse(&["quick", "--checkpoint-dir", "ckpt"]).unwrap();
        assert_eq!(opts.checkpoint_dir.as_deref(), Some("ckpt"));
        assert!(!opts.resume);
        let opts = parse(&["--checkpoint-dir", "ckpt", "--resume"]).unwrap();
        assert_eq!(opts.checkpoint_dir.as_deref(), Some("ckpt"));
        assert!(opts.resume);
        assert_eq!(
            parse(&["--checkpoint-dir"]),
            Err(CliError::MissingValue("--checkpoint-dir"))
        );
    }

    #[test]
    fn resume_requires_a_checkpoint_dir() {
        assert_eq!(parse(&["--resume"]), Err(CliError::ResumeWithoutDir));
        assert_eq!(
            parse(&["quick", "--resume"]),
            Err(CliError::ResumeWithoutDir)
        );
        assert!(CliError::ResumeWithoutDir
            .to_string()
            .contains("--checkpoint-dir"));
    }

    #[test]
    fn shards_flag_parses_and_validates() {
        let opts = parse(&["quick", "--shards", "4"]).unwrap();
        assert_eq!(opts.shards, Some(4));
        assert!(opts.shard_worker.is_none());
        for bad in ["0", "-1", "four", "4.5", ""] {
            assert_eq!(
                parse(&["--shards", bad]),
                Err(CliError::InvalidShards(bad.into())),
                "--shards {bad:?} must be rejected"
            );
        }
        assert_eq!(
            parse(&["--shards"]),
            Err(CliError::MissingValue("--shards"))
        );
    }

    #[test]
    fn shard_worker_flag_parses_and_validates() {
        let opts = parse(&["quick", "--shard-worker", "1/4", "--checkpoint-dir", "d"]).unwrap();
        assert_eq!(opts.shard_worker, Some((1, 4)));
        for bad in ["4/4", "5/4", "1", "1/0", "a/4", "1/b", "/4", "1/", ""] {
            assert_eq!(
                parse(&["--shard-worker", bad, "--checkpoint-dir", "d"]),
                Err(CliError::InvalidShardWorker(bad.into())),
                "--shard-worker {bad:?} must be rejected"
            );
        }
        assert_eq!(
            parse(&["--shard-worker"]),
            Err(CliError::MissingValue("--shard-worker"))
        );
    }

    #[test]
    fn shard_flag_combinations_are_policed() {
        assert_eq!(
            parse(&[
                "--shards",
                "2",
                "--shard-worker",
                "0/2",
                "--checkpoint-dir",
                "d"
            ]),
            Err(CliError::ShardConflict)
        );
        assert_eq!(
            parse(&["--shard-worker", "0/2"]),
            Err(CliError::ShardWorkerWithoutDir)
        );
        assert_eq!(
            parse(&["--shards", "2", "--checkpoint-dir", "d", "--resume"]),
            Err(CliError::ShardsWithResume)
        );
        // A coordinator without --checkpoint-dir is fine (temp root).
        assert_eq!(parse(&["--shards", "2"]).unwrap().shards, Some(2));
    }

    #[test]
    fn errors_render_a_diagnostic() {
        assert_eq!(
            CliError::UnknownFlag("--x".into()).to_string(),
            "unknown flag: --x"
        );
        assert!(CliError::UnknownScale("fast".into())
            .to_string()
            .contains("expected quick | reduced | paper"));
        assert!(USAGE.contains("--metrics-out"));
        assert!(USAGE.contains("--shards <N>"));
        assert!(USAGE.contains("--shard-worker <i>/<N>"));
    }
}
