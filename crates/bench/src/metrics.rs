//! The versioned JSON document written by `repro --metrics-out`.
//!
//! One self-describing file per run: the telemetry snapshot (every
//! counter/histogram/span the session recorded) plus the observation
//! and takeaway scoreboards, so CI and offline tooling can gate on a
//! run without scraping stdout. Serialization is hand-rolled on the
//! [`simra_telemetry::json`] helpers — the workspace has no JSON
//! dependency, and the document is small enough not to want one.

use simra_characterize::{ObservationReport, TakeawayReport};
use simra_telemetry::json;
use simra_telemetry::Snapshot;

/// Version of the metrics document layout (not the telemetry snapshot,
/// which carries its own `schema_version`). Bump on breaking changes.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Everything that goes into one metrics document.
#[derive(Debug)]
pub struct MetricsDoc<'a> {
    /// Scale the run executed at (`quick` | `reduced` | `paper`).
    pub scale: &'a str,
    /// Fault-injection preset, if one was armed.
    pub faults_preset: Option<&'a str>,
    /// Telemetry recorded over the whole run.
    pub telemetry: &'a Snapshot,
    /// The 18-observation scoreboard.
    pub observations: &'a [ObservationReport],
    /// The 7-takeaway scoreboard.
    pub takeaways: &'a [TakeawayReport],
}

fn observation_json(r: &ObservationReport) -> String {
    format!(
        "{{\"id\":{},\"claim\":{},\"measured\":{},\"holds\":{},\"data_missing\":{}}}",
        r.id,
        json::quote(&r.claim),
        json::quote(&r.measured),
        r.holds,
        r.data_missing
    )
}

fn takeaway_json(t: &TakeawayReport) -> String {
    format!(
        "{{\"id\":{},\"lesson\":{},\"from_observations\":{},\"holds\":{}}}",
        t.id,
        json::quote(&t.lesson),
        json::array(t.from_observations.iter().map(|o| o.to_string())),
        t.holds
    )
}

impl MetricsDoc<'_> {
    /// Renders the document as a single JSON object.
    pub fn to_json(&self) -> String {
        let faults = match self.faults_preset {
            Some(name) => json::quote(name),
            None => "null".into(),
        };
        let held = self.observations.iter().filter(|r| r.holds).count();
        let missing = self.observations.iter().filter(|r| r.data_missing).count();
        let t_held = self.takeaways.iter().filter(|t| t.holds).count();
        format!(
            "{{\"schema_version\":{},\"tool\":\"repro\",\"scale\":{},\"faults\":{},\
             \"telemetry\":{},\"scoreboard\":{{\
             \"observations\":{},\"observations_held\":{held},\
             \"observations_missing_data\":{missing},\
             \"takeaways\":{},\"takeaways_held\":{t_held}}}}}",
            METRICS_SCHEMA_VERSION,
            json::quote(self.scale),
            faults,
            self.telemetry.to_json(),
            json::array(self.observations.iter().map(observation_json)),
            json::array(self.takeaways.iter().map(takeaway_json)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simra_telemetry::Recorder;

    fn sample_doc_json() -> String {
        let recorder = Recorder::new();
        recorder.enable();
        recorder.counter("engine", "sense_ops").add(3);
        let snapshot = recorder.snapshot();
        let observations = vec![
            ObservationReport {
                id: 1,
                claim: "a \"quoted\" claim".into(),
                measured: "99.90 %".into(),
                holds: true,
                data_missing: false,
            },
            ObservationReport {
                id: 2,
                claim: "unmeasurable".into(),
                measured: "series 'x'/'y' missing".into(),
                holds: false,
                data_missing: true,
            },
        ];
        let takeaways = vec![TakeawayReport {
            id: 1,
            lesson: "rows activate".into(),
            from_observations: vec![1],
            holds: true,
        }];
        MetricsDoc {
            scale: "quick",
            faults_preset: None,
            telemetry: &snapshot,
            observations: &observations,
            takeaways: &takeaways,
        }
        .to_json()
    }

    #[test]
    fn document_is_versioned_and_complete() {
        let doc = sample_doc_json();
        assert!(doc.starts_with(&format!(
            "{{\"schema_version\":{METRICS_SCHEMA_VERSION},\"tool\":\"repro\""
        )));
        assert!(doc.contains("\"scale\":\"quick\""));
        assert!(doc.contains("\"faults\":null"));
        assert!(doc.contains("\"sense_ops\""));
        assert!(doc.contains("\"observations_held\":1"));
        assert!(doc.contains("\"observations_missing_data\":1"));
        assert!(doc.contains("\"takeaways_held\":1"));
        assert!(doc.contains("a \\\"quoted\\\" claim"));
    }

    #[test]
    fn faults_preset_is_quoted_when_present() {
        let recorder = Recorder::new();
        let snapshot = recorder.snapshot();
        let doc = MetricsDoc {
            scale: "reduced",
            faults_preset: Some("chaos"),
            telemetry: &snapshot,
            observations: &[],
            takeaways: &[],
        }
        .to_json();
        assert!(doc.contains("\"faults\":\"chaos\""));
        assert!(doc.contains("\"observations_held\":0"));
    }
}
