//! Regenerates every table and figure of the paper's evaluation and
//! prints them as text tables (the data behind EXPERIMENTS.md).
//!
//! Usage:
//!   repro            # reduced scale (default; minutes)
//!   repro quick      # smoke scale (seconds)
//!   repro paper      # the paper's full population (hours)

use simra_casestudy::{fig16_microbenchmarks, fig17_coldboot};
use simra_characterize::{
    fig10_mrc_timing, fig11_mrc_patterns, fig12a_mrc_temperature, fig12b_mrc_voltage, fig15_spice,
    fig3_activation_timing, fig4a_activation_temperature, fig4b_activation_voltage, fig5_power,
    fig6_maj3_timing, fig7_majx_patterns, fig8_majx_temperature, fig9_majx_voltage,
    ExperimentConfig,
};
use simra_dram::VendorProfile;

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "reduced".into());
    let config = match scale.as_str() {
        "quick" => ExperimentConfig::quick(),
        "paper" => ExperimentConfig::paper_scale(),
        _ => ExperimentConfig::reduced(),
    };
    eprintln!("# scale: {scale} — {}", config.describe_scale());

    println!("{}", fig3_activation_timing(&config));
    println!("{}", fig4a_activation_temperature(&config));
    println!("{}", fig4b_activation_voltage(&config));
    println!("{}", fig5_power(&config));
    println!("{}", fig6_maj3_timing(&config));
    println!("{}", fig7_majx_patterns(&config));
    println!("{}", fig8_majx_temperature(&config));
    println!("{}", fig9_majx_voltage(&config));
    println!("{}", fig10_mrc_timing(&config));
    println!("{}", fig11_mrc_patterns(&config));
    println!("{}", fig12a_mrc_temperature(&config));
    println!("{}", fig12b_mrc_voltage(&config));
    let (fig15a, fig15b) = fig15_spice(&config);
    println!("{fig15a}");
    println!("{fig15b}");
    let profiles = [VendorProfile::mfr_h_m_die(), VendorProfile::mfr_m_e_die()];
    let groups = if scale == "paper" { 40 } else { 8 };
    println!("{}", fig16_microbenchmarks(&profiles, groups, 11));
    println!("{}", fig17_coldboot());

    println!("{}", simra_characterize::per_die_breakdown(&config));

    println!("=== Observation scoreboard (18 observations, §4–§6) ===");
    let reports = simra_characterize::check_observations(&config);
    let held = reports.iter().filter(|r| r.holds).count();
    for r in &reports {
        println!("{r}");
    }
    println!("--- {held}/18 observations reproduced at this scale ---");

    println!("\n=== Takeaway scoreboard (7 lessons) ===");
    let takeaways = simra_characterize::derive_takeaways(&reports);
    let t_held = takeaways.iter().filter(|t| t.holds).count();
    for t in &takeaways {
        println!("{t}");
    }
    println!("--- {t_held}/7 takeaways reproduced at this scale ---");
}
