//! Regenerates every table and figure of the paper's evaluation and
//! prints them as text tables (the data behind EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! repro                         # reduced scale (default; minutes)
//! repro quick                   # smoke scale (seconds)
//! repro paper                   # the paper's full population (hours)
//! repro <scale> --timings       # also print per-figure wall-clock to stderr
//! repro <scale> --backend <which>  # execution backend: analog (default)
//!                               # | surrogate (calibrated fast model)
//!                               # | hybrid (adaptive table/analog mix)
//! repro <scale> --backend hybrid --hybrid-epsilon 0.02 --hybrid-budget 1:8
//!                               # hybrid early-stop half-width and
//!                               # per-point analog trial budget
//! repro <scale> --faults <name> # arm a fault-injection preset
//!                               # (quick | dropout | chaos)
//! repro <scale> --metrics       # telemetry summary to stderr after the run
//! repro <scale> --metrics-out <path>  # telemetry + scoreboard JSON to <path>
//! repro <scale> --checkpoint-dir <path>  # journal sweeps for kill-and-resume
//! repro <scale> --checkpoint-dir <path> --resume  # continue a killed run
//! repro <scale> --shards <N>    # split sweeps across N worker processes,
//!                               # merge, and replay (byte-identical output)
//! ```
//!
//! `--timings` and the telemetry flags write to stderr (or to a file),
//! so the figure tables on stdout stay byte-identical with and without
//! them — observability must never change the scientific output.
//! `--faults` deliberately *does* change it (that is the point); the
//! run footer then reports fleet coverage and the quorum-adjusted
//! scoreboard threshold. Malformed invocations print a diagnostic plus
//! usage and exit non-zero (see [`simra_bench::cli`]).

use std::time::Instant;

use simra_bench::cli::{self, CliOptions};
use simra_bench::metrics::MetricsDoc;
use simra_casestudy::{fig16_microbenchmarks_on, fig17_coldboot};
use simra_characterize::{
    fig10_mrc_timing, fig11_mrc_patterns, fig12a_mrc_temperature, fig12b_mrc_voltage, fig15_spice,
    fig3_activation_timing, fig4a_activation_temperature, fig4b_activation_voltage, fig5_power,
    fig6_maj3_timing, fig7_majx_patterns, fig8_majx_temperature, fig9_majx_voltage,
    ExperimentConfig, Session,
};
use simra_dram::VendorProfile;
use simra_faults::FaultPlan;

/// Runs one named stage, reporting its wall-clock to stderr when enabled.
fn timed<T>(timings: bool, label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    if timings {
        eprintln!("[timing] {label}: {:.3} s", start.elapsed().as_secs_f64());
    }
    out
}

fn main() {
    let opts: CliOptions = match cli::parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("{err}");
            eprintln!("{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    let timings = opts.timings;
    // Shard workers always record telemetry: the coordinator merges the
    // per-worker snapshots whether or not the final run wants metrics.
    if opts.wants_telemetry() || opts.shard_worker.is_some() {
        simra_telemetry::global().enable();
    }
    let scale = opts.scale();
    let mut config = match scale {
        "quick" => ExperimentConfig::quick(),
        "paper" => ExperimentConfig::paper_scale(),
        _ => ExperimentConfig::reduced(),
    };
    config.backend = opts.backend;
    if config.backend == simra_exec::BackendChoice::Hybrid {
        // Folded into the config (and hence into checkpoint-session
        // manifests); the session constructed below applies it to its
        // own backend set, which is what actually executes the trials.
        config.hybrid = opts.hybrid_params();
    }
    if config.backend != simra_exec::BackendChoice::Analog {
        // stderr only: default-backend stdout stays byte-identical.
        eprintln!("# backend: {}", config.backend);
    }
    if let Some(name) = opts.faults_preset.as_deref() {
        match FaultPlan::preset(name, config.modules.len()) {
            Some(plan) => {
                eprintln!("# faults: {name} — {}", plan.describe());
                config.faults = Some(plan);
            }
            None => {
                eprintln!("unknown fault preset: {name} (expected quick | dropout | chaos)");
                std::process::exit(2);
            }
        }
    }
    // The session owns everything this run mutates — backend set (with
    // the hybrid knobs above), telemetry handle, checkpoint slot, fleet
    // coverage — so it is built once the config is final.
    let session = Session::new(config.clone());
    let backend = session.dispatch(config.backend);
    // A coordinator without --checkpoint-dir shards into a temp root,
    // removed after the run; `Some` only in that case.
    let mut temp_root = None;
    if let Some((index, count)) = opts.shard_worker {
        // Worker mode: journal only this shard's slots. The session
        // manifest pins the shard spec alongside scale/seed/backend, so
        // resuming under a different spec is a typed refusal (exit 2).
        let dir = opts
            .checkpoint_dir
            .as_deref()
            .expect("the CLI rejects --shard-worker without --checkpoint-dir");
        let spec = simra_exec::ShardSpec { index, count };
        if let Err(err) =
            session.arm_sharded_checkpoints(std::path::Path::new(dir), opts.resume, spec)
        {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
        eprintln!(
            "# shard worker {spec}: journaling into {dir} ({})",
            if opts.resume {
                "resuming"
            } else {
                "fresh session"
            }
        );
    } else if let Some(shards) = opts.shards {
        // Coordinator mode: run the workers to completion, merge their
        // journals, then arm the merged directory and fall through to
        // the ordinary campaign below — every sweep replays from the
        // merged journal, so stdout is byte-identical to an unsharded
        // run.
        let root = match opts.checkpoint_dir.as_deref() {
            Some(dir) => std::path::PathBuf::from(dir),
            None => {
                let dir = std::env::temp_dir().join(format!("simra-shards-{}", std::process::id()));
                temp_root = Some(dir.clone());
                dir
            }
        };
        let exe = match std::env::current_exe() {
            Ok(exe) => exe,
            Err(err) => {
                eprintln!("error: cannot locate the repro binary to re-invoke: {err}");
                std::process::exit(2);
            }
        };
        let mut base_args = vec![opts.scale().to_string()];
        if opts.backend != simra_exec::BackendChoice::Analog {
            base_args.push("--backend".into());
            base_args.push(opts.backend.to_string());
        }
        if let Some(epsilon) = opts.hybrid_epsilon {
            base_args.push("--hybrid-epsilon".into());
            base_args.push(epsilon.to_string());
        }
        if let Some((floor, ceiling)) = opts.hybrid_budget {
            base_args.push("--hybrid-budget".into());
            base_args.push(format!("{floor}:{ceiling}"));
        }
        if let Some(preset) = opts.faults_preset.as_deref() {
            base_args.push("--faults".into());
            base_args.push(preset.to_string());
        }
        let coordinator =
            simra_characterize::ShardCoordinator::new(exe, base_args, root.clone(), shards);
        eprintln!("# shards: {shards} workers under {}", root.display());
        let report = match coordinator.execute() {
            Ok(report) => report,
            Err(err) => {
                eprintln!("error: {err}");
                std::process::exit(2);
            }
        };
        eprintln!(
            "# shards: merged {} sweep journal(s) ({} records) into {}",
            report.sweeps,
            report.records,
            coordinator.merged_dir().display()
        );
        if let Some(path) = &report.telemetry {
            eprintln!("# shards: worker telemetry merged into {}", path.display());
        }
        let merged = coordinator.merged_dir();
        // Rerunning the same coordinator command resumes on its own.
        let resume = merged.join("session.json").exists();
        if let Err(err) = session.arm_checkpoints(&merged, resume) {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
        eprintln!(
            "# checkpoints: {} (replaying merged journals)",
            merged.display()
        );
    } else if let Some(dir) = opts.checkpoint_dir.as_deref() {
        // Armed after the config is final: the session manifest pins
        // scale, seed, backend, and fault plan, and `--resume` refuses
        // to continue under different arguments.
        if let Err(err) = session.arm_checkpoints(std::path::Path::new(dir), opts.resume) {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
        eprintln!(
            "# checkpoints: {} ({})",
            dir,
            if opts.resume {
                "resuming"
            } else {
                "fresh session"
            }
        );
    }
    eprintln!("# scale: {scale} — {}", config.describe_scale());
    let total = Instant::now();

    // Times one figure runner and prints its table to stdout.
    macro_rules! show {
        ($label:expr, $f:expr) => {
            println!("{}", timed(timings, $label, $f))
        };
    }

    show!("fig3", || fig3_activation_timing(&session));
    show!("fig4a", || fig4a_activation_temperature(&session));
    show!("fig4b", || fig4b_activation_voltage(&session));
    show!("fig5", || fig5_power(&session));
    show!("fig6", || fig6_maj3_timing(&session));
    show!("fig7", || fig7_majx_patterns(&session));
    show!("fig8", || fig8_majx_temperature(&session));
    show!("fig9", || fig9_majx_voltage(&session));
    show!("fig10", || fig10_mrc_timing(&session));
    show!("fig11", || fig11_mrc_patterns(&session));
    show!("fig12a", || fig12a_mrc_temperature(&session));
    show!("fig12b", || fig12b_mrc_voltage(&session));
    let (fig15a, fig15b) = timed(timings, "fig15", || fig15_spice(&session));
    println!("{fig15a}");
    println!("{fig15b}");
    let profiles = [VendorProfile::mfr_h_m_die(), VendorProfile::mfr_m_e_die()];
    let groups = if scale == "paper" { 40 } else { 8 };
    show!("fig16", || fig16_microbenchmarks_on(
        backend, &profiles, groups, 11
    ));
    show!("fig17", fig17_coldboot);

    show!("per_die_breakdown", || {
        simra_characterize::per_die_breakdown(&session)
    });

    println!("=== Observation scoreboard (18 observations, §4–§6) ===");
    let reports = timed(timings, "observations", || {
        simra_characterize::check_observations(&session)
    });
    let held = reports.iter().filter(|r| r.holds).count();
    let missing = reports.iter().filter(|r| r.data_missing).count();
    for r in &reports {
        println!("{r}");
    }
    println!("--- {held}/18 observations reproduced at this scale ---");
    // Only printed when something actually went missing, so a healthy
    // run's stdout stays byte-identical to older builds.
    if missing > 0 {
        println!("--- {missing}/18 observations could not be measured (missing series) ---");
    }

    println!("\n=== Takeaway scoreboard (7 lessons) ===");
    let takeaways = simra_characterize::derive_takeaways(&reports);
    let t_held = takeaways.iter().filter(|t| t.holds).count();
    for t in &takeaways {
        println!("{t}");
    }
    println!("--- {t_held}/7 takeaways reproduced at this scale ---");

    // Coverage accounting only prints under fault injection, so a
    // fault-free run's stdout stays byte-identical to older builds.
    if opts.faults_preset.is_some() {
        let (coverage, failures) = session.take_coverage();
        println!("\n=== Fleet coverage under fault injection ===");
        println!("{}", coverage.describe());
        for line in &failures {
            println!("{line}");
        }
        let quorum = simra_characterize::scoreboard_quorum(18, coverage.completed, coverage.tasks);
        println!("--- quorum-adjusted threshold: {quorum}/18 ---");
    }

    if opts.wants_telemetry() {
        let snapshot = simra_telemetry::global().snapshot();
        if let Some(path) = opts.metrics_out.as_deref() {
            let doc = MetricsDoc {
                scale,
                faults_preset: opts.faults_preset.as_deref(),
                telemetry: &snapshot,
                observations: &reports,
                takeaways: &takeaways,
            };
            if let Err(err) = std::fs::write(path, doc.to_json()) {
                eprintln!("failed to write metrics to {path}: {err}");
                std::process::exit(1);
            }
            eprintln!("# metrics written to {path}");
        }
        if opts.metrics {
            eprint!("{}", snapshot.summary());
        }
    }

    if opts.shard_worker.is_some() {
        // The worker's snapshot rides with its journal so the
        // coordinator can merge all workers' telemetry.
        let dir = opts
            .checkpoint_dir
            .as_deref()
            .expect("the CLI rejects --shard-worker without --checkpoint-dir");
        let path = std::path::Path::new(dir).join("telemetry.json");
        let snapshot = simra_telemetry::global().snapshot();
        if let Err(err) = std::fs::write(&path, snapshot.to_json() + "\n") {
            eprintln!("failed to write {}: {err}", path.display());
            std::process::exit(1);
        }
    }

    if let Some(root) = temp_root {
        let _ = std::fs::remove_dir_all(&root);
    }

    if timings {
        eprintln!("[timing] total: {:.3} s", total.elapsed().as_secs_f64());
    }
}
