//! Calibration probe: prints headline numbers vs paper targets.
use rand::rngs::StdRng;
use rand::SeedableRng;
use simra_bender::TestSetup;
use simra_core::act::activation_success;
use simra_core::maj::{majx_success, MajConfig};
use simra_core::multirowcopy::multirowcopy_success;
use simra_core::rowgroup::sample_groups;
use simra_dram::{ApaTiming, DataPattern, VendorProfile};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 7);
    let geom = *setup.module().geometry();
    let cfg = MajConfig::default();
    let t = ApaTiming::best_for_majx();

    for n in [4u32, 8, 16, 32] {
        let groups = sample_groups(&geom, n, 2, 2, 5, &mut rng);
        let mut s3 = vec![];
        for g in &groups {
            s3.push(
                majx_success(&mut setup, g, 3, t, DataPattern::Random, &cfg, &mut rng)
                    .expect("fault-free MAJX probe always yields a sample"),
            );
        }
        println!(
            "MAJ3@{n}: {:.2}%",
            100.0 * s3.iter().sum::<f64>() / s3.len() as f64
        );
    }
    let groups = sample_groups(&geom, 32, 2, 2, 5, &mut rng);
    for x in [5usize, 7, 9] {
        let mut s = vec![];
        for g in &groups {
            s.push(
                majx_success(&mut setup, g, x, t, DataPattern::Random, &cfg, &mut rng)
                    .expect("fault-free MAJX probe always yields a sample"),
            );
        }
        println!(
            "MAJ{x}@32: {:.2}% (paper: {})",
            100.0 * s.iter().sum::<f64>() / s.len() as f64,
            match x {
                5 => "79.64",
                7 => "33.87",
                _ => "5.91",
            }
        );
    }
    let mut s33 = vec![];
    for g in &groups {
        s33.push(
            majx_success(
                &mut setup,
                g,
                3,
                ApaTiming::from_ns(3.0, 3.0),
                DataPattern::Random,
                &cfg,
                &mut rng,
            )
            .expect("fault-free MAJX probe always yields a sample"),
        );
    }
    println!(
        "MAJ3@32 (3,3): {:.2}% (paper ~53.5)",
        100.0 * s33.iter().sum::<f64>() / s33.len() as f64
    );
    for x in [3usize, 5, 7, 9] {
        let mut s = vec![];
        for g in &groups {
            s.push(
                majx_success(&mut setup, g, x, t, DataPattern::Solid, &cfg, &mut rng)
                    .expect("fault-free MAJX probe always yields a sample"),
            );
        }
        println!(
            "MAJ{x}@32 solid: {:.2}%",
            100.0 * s.iter().sum::<f64>() / s.len() as f64
        );
    }
    for n in [2u32, 4, 8, 16, 32] {
        let groups = sample_groups(&geom, n, 2, 2, 3, &mut rng);
        let mut s = vec![];
        for g in &groups {
            s.push(
                activation_success(
                    &mut setup,
                    g,
                    ApaTiming::best_for_activation(),
                    DataPattern::Random,
                    &mut rng,
                )
                .expect("fault-free activation probe always yields a sample"),
            );
        }
        println!(
            "ACT@{n}: {:.3}% (paper 99.85-99.99)",
            100.0 * s.iter().sum::<f64>() / s.len() as f64
        );
    }
    let cols = geom.cols_per_row as usize;
    for n in [2u32, 4, 8, 16, 32] {
        let groups = sample_groups(&geom, n, 2, 2, 3, &mut rng);
        let mut s = vec![];
        for g in &groups {
            let img = DataPattern::Random.row_image(0, cols, &mut rng);
            s.push(
                multirowcopy_success(&mut setup, g, ApaTiming::best_for_multi_row_copy(), &img)
                    .expect("fault-free multi-row-copy probe always yields a sample"),
            );
        }
        println!(
            "MRC@{}dests: {:.3}% (paper 99.98+)",
            n - 1,
            100.0 * s.iter().sum::<f64>() / s.len() as f64
        );
    }
    let mut setup_m = TestSetup::new(VendorProfile::mfr_m_e_die(), 7);
    let geom_m = *setup_m.module().geometry();
    let groups_m = sample_groups(&geom_m, 32, 2, 2, 5, &mut rng);
    for x in [3usize, 5, 7, 9] {
        let mut s = vec![];
        for g in &groups_m {
            s.push(
                majx_success(&mut setup_m, g, x, t, DataPattern::Random, &cfg, &mut rng)
                    .expect("fault-free MAJX probe always yields a sample"),
            );
        }
        println!(
            "MfrM MAJ{x}@32: {:.2}%",
            100.0 * s.iter().sum::<f64>() / s.len() as f64
        );
    }
}
