//! Per-operation energy: power × duration, plus the data-movement
//! comparison that motivates PUD in the first place (§1: moving data to
//! the CPU costs orders of magnitude more energy than operating on it
//! in place).

use serde::{Deserialize, Serialize};

use simra_dram::{ApaTiming, BankId, RowAddr, TimingParams};

use crate::power::{PowerModel, StandardOp};
use crate::program::BenderProgram;

/// Energy cost of moving one bit over the memory channel to the CPU and
/// back (pJ/bit): interface + on-chip transport, the textbook ~10–20×
/// penalty over a column access.
pub const CHANNEL_ENERGY_PJ_PER_BIT: f64 = 15.0;

/// Energy accounting for one module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// The power model energies derive from.
    pub power: PowerModel,
    /// Module timing (durations).
    pub timing: TimingParams,
}

impl EnergyModel {
    /// DDR4-2666 defaults.
    pub fn ddr4() -> Self {
        EnergyModel {
            power: PowerModel::ddr4(),
            timing: TimingParams::ddr4_2666(),
        }
    }

    /// Energy of one standard operation (nJ): its power over its
    /// characteristic duration.
    pub fn standard_nj(&self, op: StandardOp) -> f64 {
        let duration_ns = match op {
            StandardOp::Read | StandardOp::Write => {
                self.timing.t_rcd_ns + self.timing.t_ras_ns + self.timing.t_rp_ns
            }
            StandardOp::ActPre => self.timing.t_ras_ns + self.timing.t_rp_ns,
            StandardOp::Refresh => self.timing.t_rfc_ns,
        };
        self.power.standard_mw(op) * duration_ns * 1e-6
    }

    /// Energy of one simultaneous `n`-row activation (nJ).
    pub fn many_row_activation_nj(&self, n: u32) -> f64 {
        let duration_ns = self.timing.t_ras_ns + self.timing.t_rp_ns;
        self.power.many_row_activation_mw(n) * duration_ns * 1e-6
    }

    /// Energy of an arbitrary program (nJ), charged at the ACT+PRE power
    /// for its full latency — a deliberately simple upper-bound model.
    pub fn program_nj(&self, program: &BenderProgram) -> f64 {
        self.power.standard_mw(StandardOp::ActPre) * program.latency_ns() * 1e-6
    }

    /// Energy to compute a bulk AND of two `row_bits`-wide rows *in
    /// DRAM* (one MAJ3 APA over a 4-row group) versus reading both rows
    /// to the CPU, ANDing there (CPU ALU energy ignored — it only helps
    /// the comparison), and writing the result back. Returns
    /// `(pud_nj, cpu_nj)`.
    pub fn bulk_and_comparison_nj(&self, row_bits: u32) -> (f64, f64) {
        let apa = BenderProgram::apa(
            BankId::new(0),
            RowAddr::new(0),
            RowAddr::new(7),
            ApaTiming::best_for_majx(),
            &self.timing,
        );
        let pud = self.program_nj(&apa);
        let cpu = 2.0 * self.standard_nj(StandardOp::Read)
            + self.standard_nj(StandardOp::Write)
            + 3.0 * row_bits as f64 * CHANNEL_ENERGY_PJ_PER_BIT * 1e-3;
        (pud, cpu)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::ddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_is_the_most_expensive_standard_op() {
        let e = EnergyModel::ddr4();
        let refresh = e.standard_nj(StandardOp::Refresh);
        for op in [StandardOp::Read, StandardOp::Write, StandardOp::ActPre] {
            assert!(e.standard_nj(op) < refresh);
        }
    }

    #[test]
    fn many_row_activation_energy_grows_sublinearly() {
        let e = EnergyModel::ddr4();
        let e1 = e.many_row_activation_nj(1);
        let e32 = e.many_row_activation_nj(32);
        assert!(e32 > e1);
        assert!(
            e32 < 32.0 * e1,
            "32 rows must cost far less than 32 activations"
        );
    }

    #[test]
    fn pud_and_beats_the_cpu_round_trip() {
        let e = EnergyModel::ddr4();
        // A real x8 chip row is 8192 bits.
        let (pud, cpu) = e.bulk_and_comparison_nj(8192);
        assert!(
            cpu > 5.0 * pud,
            "in-DRAM AND ({pud:.2} nJ) should beat the CPU round trip ({cpu:.2} nJ) by a lot"
        );
    }

    #[test]
    fn program_energy_scales_with_latency() {
        let e = EnergyModel::ddr4();
        let short = BenderProgram::apa(
            BankId::new(0),
            RowAddr::new(0),
            RowAddr::new(1),
            ApaTiming::best_for_majx(),
            &e.timing,
        );
        let long = BenderProgram::apa(
            BankId::new(0),
            RowAddr::new(0),
            RowAddr::new(1),
            ApaTiming::best_for_multi_row_copy(),
            &e.timing,
        );
        assert!(e.program_nj(&long) > e.program_nj(&short));
    }
}
