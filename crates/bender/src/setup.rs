//! The experimental rig: module under test + temperature controller +
//! programmable V_PP supply (Fig. 2 components 3–6).

use serde::{Deserialize, Serialize};

use simra_analog::params::{NOMINAL_TEMPERATURE_C, NOMINAL_VPP};
use simra_analog::{ApaEngine, CircuitParams, EngineCounters, OperatingConditions};
use simra_dram::{DramModule, VendorProfile};

/// Temperature range of the MaxWell FT200 controller as used in the paper.
pub const TEMPERATURE_RANGE_C: (f64, f64) = (50.0, 90.0);
/// V_PP range swept in the paper with the TTi PL068-P supply.
pub const VPP_RANGE_V: (f64, f64) = (2.1, 2.5);
/// The supply's setting precision (±1 mV).
pub const VPP_PRECISION_V: f64 = 0.001;

/// Errors from configuring the rig.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SetupError {
    /// Requested temperature is outside the controller's range.
    TemperatureOutOfRange(f64),
    /// Requested V_PP is outside the supply's safe range.
    VppOutOfRange(f64),
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetupError::TemperatureOutOfRange(t) => {
                write!(f, "temperature {t} °C outside controller range 50–90 °C")
            }
            SetupError::VppOutOfRange(v) => {
                write!(f, "V_PP {v} V outside supply range 2.1–2.5 V")
            }
        }
    }
}

impl std::error::Error for SetupError {}

/// One DRAM module clamped in the rig, at a controlled operating point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestSetup {
    module: DramModule,
    conditions: OperatingConditions,
    /// Circuit-parameter override for ablation studies (None = the
    /// calibrated defaults).
    params_override: Option<CircuitParams>,
    /// Engine op-counter handles every [`engine`](Self::engine) call
    /// inherits. Observational only (never serialized, never compared):
    /// a deserialized rig reattaches to the global recorder until a
    /// session re-binds it.
    #[serde(skip, default)]
    engine_counters: EngineCounters,
}

/// Rigs compare by experimental state (module, operating point, param
/// override); the telemetry destination is observational.
impl PartialEq for TestSetup {
    fn eq(&self, other: &Self) -> bool {
        self.module == other.module
            && self.conditions == other.conditions
            && self.params_override == other.params_override
    }
}

impl TestSetup {
    /// Mounts a fresh module (vendor `profile`, silicon stamped from
    /// `seed`) at the nominal operating point (50 °C, 2.5 V).
    pub fn new(profile: VendorProfile, seed: u64) -> Self {
        TestSetup::with_module(DramModule::new(profile, seed))
    }

    /// Mounts an existing module.
    pub fn with_module(module: DramModule) -> Self {
        TestSetup {
            module,
            conditions: OperatingConditions::nominal(),
            params_override: None,
            engine_counters: EngineCounters::default(),
        }
    }

    /// Redirects the op counters of every engine this rig builds (e.g.
    /// into a session-owned recorder).
    pub fn set_engine_counters(&mut self, counters: EngineCounters) {
        self.engine_counters = counters;
    }

    /// Overrides the analog circuit parameters — the hook for ablation
    /// studies (e.g. "what if the first row did not over-share?").
    /// Pass `None` to restore the calibrated defaults.
    pub fn set_circuit_params(&mut self, params: Option<CircuitParams>) {
        self.params_override = params;
    }

    /// The module under test.
    pub fn module(&self) -> &DramModule {
        &self.module
    }

    /// Mutable access to the module under test.
    pub fn module_mut(&mut self) -> &mut DramModule {
        &mut self.module
    }

    /// Unmounts the module from the rig, consuming the setup. The fleet's
    /// rig pool uses this to carry one `DramModule` across sweep points
    /// instead of rebuilding it per point.
    pub fn into_module(self) -> DramModule {
        self.module
    }

    /// Current operating conditions.
    pub fn conditions(&self) -> OperatingConditions {
        self.conditions
    }

    /// Sets the chip temperature (clamped heater, §3.1).
    ///
    /// # Errors
    ///
    /// Returns [`SetupError::TemperatureOutOfRange`] outside 50–90 °C.
    pub fn set_temperature(&mut self, celsius: f64) -> Result<(), SetupError> {
        if !(TEMPERATURE_RANGE_C.0..=TEMPERATURE_RANGE_C.1).contains(&celsius) {
            return Err(SetupError::TemperatureOutOfRange(celsius));
        }
        self.conditions.temperature_c = celsius;
        Ok(())
    }

    /// Sets the wordline voltage, quantised to the supply's ±1 mV
    /// precision.
    ///
    /// # Errors
    ///
    /// Returns [`SetupError::VppOutOfRange`] outside 2.1–2.5 V.
    pub fn set_vpp(&mut self, volts: f64) -> Result<(), SetupError> {
        if !(VPP_RANGE_V.0..=VPP_RANGE_V.1).contains(&volts) {
            return Err(SetupError::VppOutOfRange(volts));
        }
        self.conditions.vpp_v = (volts / VPP_PRECISION_V).round() * VPP_PRECISION_V;
        Ok(())
    }

    /// Resets to the nominal operating point.
    pub fn reset_conditions(&mut self) {
        self.conditions = OperatingConditions {
            temperature_c: NOMINAL_TEMPERATURE_C,
            vpp_v: NOMINAL_VPP,
        };
    }

    /// An analog engine bound to the mounted module's vendor quirks and
    /// the rig's current operating point, reporting to the rig's
    /// counter handles.
    pub fn engine(&self) -> ApaEngine {
        let params = self
            .params_override
            .unwrap_or_else(CircuitParams::calibrated);
        ApaEngine::with_counters(
            params,
            self.conditions,
            self.module.profile().biased_sense_amps,
            self.engine_counters.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditions_round_trip() {
        let mut s = TestSetup::new(VendorProfile::mfr_h_m_die(), 3);
        s.set_temperature(70.0).unwrap();
        s.set_vpp(2.3).unwrap();
        assert_eq!(s.conditions().temperature_c, 70.0);
        assert!((s.conditions().vpp_v - 2.3).abs() < 1e-9);
        s.reset_conditions();
        assert_eq!(s.conditions().temperature_c, 50.0);
        assert_eq!(s.conditions().vpp_v, 2.5);
    }

    #[test]
    fn into_module_round_trips_the_mounted_module() {
        let module = DramModule::new(VendorProfile::mfr_m_e_die(), 42);
        let expected = module.clone();
        let s = TestSetup::with_module(module);
        assert_eq!(s.into_module(), expected);
    }

    #[test]
    fn ranges_enforced() {
        let mut s = TestSetup::new(VendorProfile::mfr_h_m_die(), 3);
        assert!(s.set_temperature(25.0).is_err());
        assert!(s.set_temperature(95.0).is_err());
        assert!(s.set_vpp(1.8).is_err());
        assert!(s.set_vpp(2.6).is_err());
    }

    #[test]
    fn vpp_quantised_to_millivolts() {
        let mut s = TestSetup::new(VendorProfile::mfr_h_m_die(), 3);
        s.set_vpp(2.34567).unwrap();
        assert!((s.conditions().vpp_v - 2.346).abs() < 1e-9);
    }

    #[test]
    fn circuit_param_override_is_honoured() {
        let mut s = TestSetup::new(VendorProfile::mfr_h_m_die(), 3);
        let mut p = CircuitParams::calibrated();
        p.overshare_per_ns = 0.0;
        s.set_circuit_params(Some(p));
        assert_eq!(s.engine().params().overshare_per_ns, 0.0);
        s.set_circuit_params(None);
        assert!(s.engine().params().overshare_per_ns > 0.0);
    }

    #[test]
    fn engine_reflects_conditions() {
        let mut s = TestSetup::new(VendorProfile::mfr_m_e_die(), 3);
        s.set_temperature(90.0).unwrap();
        let e = s.engine();
        assert!(e.biased_amps());
        assert_eq!(e.conditions().temperature_c, 90.0);
    }
}
