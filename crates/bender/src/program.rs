//! Bender programs: timed command streams with latency accounting.
//!
//! The case studies (§8) need the *latency* of each PUD operation as the
//! real infrastructure would schedule it. A [`BenderProgram`] is the
//! command stream; [`BenderProgram::latency_ns`] is what the paper
//! "measures with DRAM Bender".

use serde::{Deserialize, Serialize};

use simra_dram::{ApaTiming, BankId, Command, RowAddr, TimingParams};

use self::timingext::read_burst_ns;

/// One instruction of a Bender program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BenderInstr {
    /// Issue a DDR command (occupies one 1.5 ns issue slot).
    Command(Command),
    /// Wait for a given number of nanoseconds before the next issue.
    WaitNs(f64),
}

/// A schedulable command stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct BenderProgram {
    instrs: Vec<BenderInstr>,
}

impl BenderProgram {
    /// An empty program.
    pub fn new() -> Self {
        BenderProgram::default()
    }

    /// Appends a command.
    pub fn command(&mut self, c: Command) -> &mut Self {
        self.instrs.push(BenderInstr::Command(c));
        self
    }

    /// Appends a wait.
    pub fn wait_ns(&mut self, ns: f64) -> &mut Self {
        self.instrs.push(BenderInstr::WaitNs(ns));
        self
    }

    /// The instruction stream.
    pub fn instrs(&self) -> &[BenderInstr] {
        &self.instrs
    }

    /// Number of DDR commands issued.
    pub fn command_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, BenderInstr::Command(_)))
            .count()
    }

    /// End-to-end latency: every command occupies one 1.5 ns issue slot,
    /// waits add on top.
    pub fn latency_ns(&self) -> f64 {
        self.instrs
            .iter()
            .map(|i| match i {
                BenderInstr::Command(_) => simra_dram::timing::ISSUE_GRID_NS,
                BenderInstr::WaitNs(ns) => *ns,
            })
            .sum()
    }

    /// The canonical APA PUD-operation program: `ACT R_F → t1 → PRE → t2 →
    /// ACT R_S`, then settle (tRAS) and precharge (tRP).
    pub fn apa(
        bank: BankId,
        r_f: RowAddr,
        r_s: RowAddr,
        timing: ApaTiming,
        t: &TimingParams,
    ) -> Self {
        let mut p = BenderProgram::new();
        p.command(Command::Activate { bank, row: r_f })
            .wait_ns(timing.t1.as_ns())
            .command(Command::Precharge { bank })
            .wait_ns(timing.t2.as_ns())
            .command(Command::Activate { bank, row: r_s })
            .wait_ns(t.t_ras_ns)
            .command(Command::Precharge { bank })
            .wait_ns(t.t_rp_ns);
        p
    }

    /// A nominal-timing row write: `ACT → tRCD → WR → tWR → PRE → tRP`,
    /// with the WR→PRE wait stretched so ACT→PRE also satisfies tRAS.
    pub fn write_row(bank: BankId, row: RowAddr, t: &TimingParams) -> Self {
        let mut p = BenderProgram::new();
        p.command(Command::Activate { bank, row })
            .wait_ns(t.t_rcd_ns)
            .command(Command::Write { bank })
            .wait_ns(t.t_wr_ns.max(t.t_ras_ns - t.t_rcd_ns))
            .command(Command::Precharge { bank })
            .wait_ns(t.t_rp_ns);
        p
    }

    /// A nominal-timing row read: `ACT → tRCD → RD → burst → PRE → tRP`,
    /// with the RD→PRE wait stretched so ACT→PRE also satisfies tRAS.
    pub fn read_row(bank: BankId, row: RowAddr, t: &TimingParams) -> Self {
        let mut p = BenderProgram::new();
        p.command(Command::Activate { bank, row })
            .wait_ns(t.t_rcd_ns)
            .command(Command::Read { bank })
            .wait_ns(read_burst_ns(t).max(t.t_ras_ns - t.t_rcd_ns))
            .command(Command::Precharge { bank })
            .wait_ns(t.t_rp_ns);
        p
    }
}

/// Timing helpers shared by program builders.
pub(crate) mod timingext {
    use simra_dram::TimingParams;

    /// Duration of a BL8 read burst (4 clocks of data at DDR).
    pub fn read_burst_ns(t: &TimingParams) -> f64 {
        4.0 * t.t_ck_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr4_2666()
    }

    #[test]
    fn apa_program_shape() {
        let p = BenderProgram::apa(
            BankId::new(0),
            RowAddr::new(0),
            RowAddr::new(7),
            ApaTiming::from_ns(1.5, 3.0),
            &t(),
        );
        assert_eq!(p.command_count(), 4);
        // 4 commands · 1.5 + 1.5 + 3 + tRAS + tRP.
        let expected = 6.0 + 1.5 + 3.0 + 32.0 + 13.5;
        assert!(
            (p.latency_ns() - expected).abs() < 1e-9,
            "{}",
            p.latency_ns()
        );
    }

    #[test]
    fn majx_apa_is_faster_than_write_plus_read() {
        let wr = BenderProgram::write_row(BankId::new(0), RowAddr::new(0), &t());
        let apa = BenderProgram::apa(
            BankId::new(0),
            RowAddr::new(0),
            RowAddr::new(7),
            ApaTiming::best_for_majx(),
            &t(),
        );
        // The PUD op costs about one row cycle; sanity-check scales.
        assert!(apa.latency_ns() < 2.0 * wr.latency_ns());
    }

    #[test]
    fn builder_chains() {
        let mut p = BenderProgram::new();
        p.command(Command::Refresh {
            bank: BankId::new(1),
        })
        .wait_ns(350.0);
        assert_eq!(p.command_count(), 1);
        assert!((p.latency_ns() - 351.5).abs() < 1e-9);
    }

    #[test]
    fn multi_row_copy_timing_dominated_by_t1() {
        let mrc = BenderProgram::apa(
            BankId::new(0),
            RowAddr::new(0),
            RowAddr::new(31),
            ApaTiming::best_for_multi_row_copy(),
            &t(),
        );
        let maj = BenderProgram::apa(
            BankId::new(0),
            RowAddr::new(0),
            RowAddr::new(31),
            ApaTiming::best_for_majx(),
            &t(),
        );
        assert!(mrc.latency_ns() > maj.latency_ns());
    }
}
