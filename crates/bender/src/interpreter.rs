//! The program interpreter: executes a [`BenderProgram`] against the
//! mounted module, command by command, with a running clock.
//!
//! This is the closest analogue to what the real DRAM Bender FPGA does:
//! the host hands it a timed command stream and the hardware replays it
//! exactly. The interpreter
//!
//! * feeds every command through the [`ProtocolChecker`] so the run
//!   reports exactly which JEDEC rules it (deliberately) violated,
//! * resolves `ACT → PRE → ACT` pairs through the row decoder with the
//!   *actual elapsed* t1/t2 of the stream — so the same program text
//!   performs MAJX, RowClone, or Multi-RowCopy purely depending on its
//!   timing, exactly as on silicon,
//! * applies sense/restore semantics through the analog engine, and
//! * collects `RD` read-outs.

use simra_decoder::{ApaOutcome, RowDecoder};
use simra_dram::protocol::{ProtocolChecker, Violation};
use simra_dram::{ApaTiming, BitRow, Command, RowAddr, SubarrayId};

use crate::program::{BenderInstr, BenderProgram};
use crate::sequencer::SequencerError;
use crate::setup::TestSetup;

/// Outcome of executing one program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramRun {
    /// Total program latency (ns).
    pub latency_ns: f64,
    /// Commands issued.
    pub commands: usize,
    /// Timing violations the stream performed (the PUD mechanism!).
    pub violations: Vec<Violation>,
    /// State-machine errors (e.g. RD on a precharged bank).
    pub state_errors: usize,
    /// Images returned by `RD` commands, in issue order.
    pub reads: Vec<BitRow>,
}

/// Per-bank interpreter state.
#[derive(Debug, Clone)]
struct BankRun {
    /// Last ACT: (bank-level row, issue time).
    last_act: Option<(RowAddr, f64)>,
    /// Last PRE issue time.
    last_pre: Option<f64>,
    /// Currently open local rows and their subarray.
    open: Option<(SubarrayId, Vec<u32>)>,
    /// What the sense amplifiers currently drive.
    latched: Option<BitRow>,
    /// Restore strength of the in-flight activation (for WR commits).
    restore: f64,
}

impl BankRun {
    fn new() -> Self {
        BankRun {
            last_act: None,
            last_pre: None,
            open: None,
            latched: None,
            restore: 1.0,
        }
    }
}

impl TestSetup {
    /// Executes `program`, applying device semantics and recording
    /// protocol violations. `write_image` is the data payload every `WR`
    /// command drives (the real tester programs its write buffers
    /// up-front the same way).
    ///
    /// # Errors
    ///
    /// Device errors (bad addresses) and cross-subarray APA targets.
    pub fn run_program(
        &mut self,
        program: &BenderProgram,
        write_image: Option<&BitRow>,
    ) -> Result<ProgramRun, SequencerError> {
        let geometry = *self.module().geometry();
        let timing = self.module().profile().timing;
        let mut checker = ProtocolChecker::new(timing, geometry.banks);
        let mut banks: Vec<BankRun> = (0..geometry.banks).map(|_| BankRun::new()).collect();
        let mut clock_ns = 0.0f64;
        let mut commands = 0usize;
        let mut reads = Vec::new();

        for instr in program.instrs() {
            match instr {
                BenderInstr::WaitNs(ns) => {
                    if *ns < 0.0 {
                        return Err(SequencerError::NegativeWait { ns: *ns });
                    }
                    clock_ns += ns;
                }
                BenderInstr::Command(cmd) => {
                    // Validate the bank before the checker sees the
                    // command: the checker's bookkeeping is indexed by
                    // bank and treats an out-of-range id as a harness
                    // bug, not a device error.
                    self.module().bank(cmd.bank())?;
                    checker.observe(clock_ns, *cmd);
                    commands += 1;
                    // Commands are instantaneous on the clock; the 1.5 ns
                    // issue slot only contributes to the program's total
                    // latency accounting, not to inter-command timing.
                    self.apply_command(
                        *cmd,
                        clock_ns,
                        &geometry,
                        &mut banks,
                        write_image,
                        &mut reads,
                    )?;
                }
            }
        }
        Ok(ProgramRun {
            latency_ns: program.latency_ns(),
            commands,
            violations: checker.violations().to_vec(),
            state_errors: checker.state_errors().len(),
            reads,
        })
    }

    fn apply_command(
        &mut self,
        cmd: Command,
        at_ns: f64,
        geometry: &simra_dram::Geometry,
        banks: &mut [BankRun],
        write_image: Option<&BitRow>,
        reads: &mut Vec<BitRow>,
    ) -> Result<(), SequencerError> {
        let bank_id = cmd.bank();
        self.module().bank(bank_id)?;
        let idx = bank_id.raw() as usize;
        match cmd {
            Command::Activate { row, .. } => {
                let (sa, local) = geometry.split_row(row)?;
                let apa = match (&banks[idx].last_act, &banks[idx].last_pre) {
                    (Some((prev_row, act_t)), Some(pre_t))
                        if pre_t > act_t && at_ns - pre_t < timing_trp(self) =>
                    {
                        // A PRE is still in flight: this is the second ACT
                        // of an APA pair with measured t1/t2.
                        Some((*prev_row, ApaTiming::from_ns(pre_t - act_t, at_ns - pre_t)))
                    }
                    _ => None,
                };
                match apa {
                    None => {
                        // Plain activation: open one row, latch its image.
                        let image = self.module_mut().bank_mut(bank_id)?.read_row_nominal(row)?;
                        banks[idx].open = Some((sa, vec![local]));
                        banks[idx].latched = Some(image);
                        banks[idx].restore = 1.0;
                    }
                    Some((prev_row, apa_timing)) => {
                        let (sa_f, local_f) = geometry.split_row(prev_row)?;
                        if sa_f != sa {
                            return Err(SequencerError::CrossSubarray {
                                first: sa_f,
                                second: sa,
                            });
                        }
                        self.apply_apa(bank_id, sa, local_f, local, apa_timing, &mut banks[idx])?;
                    }
                }
                banks[idx].last_act = Some((row, at_ns));
            }
            Command::Precharge { .. } => {
                banks[idx].last_pre = Some(at_ns);
                // The wordlines only actually de-assert if no violating
                // ACT interrupts; that is decided when the next ACT
                // arrives. Closing the "open" bookkeeping happens lazily.
                if let Some((_, t)) = banks[idx].last_act {
                    if at_ns - t >= self.module().profile().timing.t_ras_ns {
                        banks[idx].open = None;
                        banks[idx].latched = None;
                    }
                }
            }
            Command::Write { .. } => {
                if let (Some((sa, rows)), Some(img)) = (&banks[idx].open, write_image) {
                    let engine = self.engine();
                    let restore = banks[idx].restore;
                    let rows = rows.clone();
                    let sa = *sa;
                    if img.len() != geometry.cols_per_row as usize {
                        return Err(SequencerError::Dram(simra_dram::DramError::WidthMismatch {
                            got: img.len(),
                            expected: geometry.cols_per_row as usize,
                        }));
                    }
                    let subarray = self.module_mut().bank_mut(bank_id)?.subarray(sa);
                    engine.commit(subarray, &rows, img, restore);
                    banks[idx].latched = Some(img.clone());
                }
            }
            Command::Read { .. } => {
                if let Some(img) = &banks[idx].latched {
                    reads.push(img.clone());
                }
            }
            Command::Refresh { .. } => {
                // Refresh needs a precharged bank (the checker flags
                // anything else); device state is unchanged at this
                // abstraction level.
            }
        }
        Ok(())
    }

    fn apply_apa(
        &mut self,
        bank_id: simra_dram::BankId,
        sa: SubarrayId,
        local_f: u32,
        local_s: u32,
        apa_timing: ApaTiming,
        bank: &mut BankRun,
    ) -> Result<(), SequencerError> {
        let geometry = *self.module().geometry();
        let guard = self.module().profile().apa_guard;
        // simra-decoder is the one authority on APA row resolution —
        // the interpreter must agree with the sequencer by construction.
        let outcome = RowDecoder::resolve_in_subarray(
            geometry.rows_per_subarray,
            local_f,
            local_s,
            apa_timing,
            guard,
        );
        let engine = self.engine();
        let restore = engine
            .params()
            .restore_strength(apa_timing, self.conditions());
        bank.restore = restore;
        match outcome {
            ApaOutcome::Simultaneous { rows } => {
                let t1 = apa_timing.t1.as_ns();
                if t1 >= self.module().profile().timing.t_rcd_ns {
                    // Multi-RowCopy regime: the amps latched R_F before
                    // the interrupted precharge; they overwrite every
                    // open row with it.
                    let src = geometry.join_row(sa, local_f);
                    let image = self.module_mut().bank_mut(bank_id)?.read_row_nominal(src)?;
                    let subarray = self.module_mut().bank_mut(bank_id)?.subarray(sa);
                    engine.commit(subarray, &rows, &image, restore);
                    bank.latched = Some(image);
                } else {
                    // Charge-sharing regime: the amps resolve the
                    // many-row tie (MAJ semantics) and restore it.
                    let subarray = self.module_mut().bank_mut(bank_id)?.subarray(sa);
                    let sense = engine.sense(subarray, &rows, local_f, apa_timing);
                    engine.commit(subarray, &rows, &sense.resolved, restore);
                    bank.latched = Some(sense.resolved);
                }
                bank.open = Some((sa, rows));
            }
            ApaOutcome::Consecutive { first, second } => {
                // RowClone: the latched source overwrites the destination.
                let src = geometry.join_row(sa, first);
                let image = self.module_mut().bank_mut(bank_id)?.read_row_nominal(src)?;
                let subarray = self.module_mut().bank_mut(bank_id)?.subarray(sa);
                engine.commit(subarray, &[second], &image, restore);
                bank.latched = Some(image);
                bank.open = Some((sa, vec![second]));
            }
            ApaOutcome::GuardedSingle { row } => {
                let addr = geometry.join_row(sa, row);
                let image = self
                    .module_mut()
                    .bank_mut(bank_id)?
                    .read_row_nominal(addr)?;
                bank.latched = Some(image);
                bank.open = Some((sa, vec![row]));
            }
        }
        Ok(())
    }
}

fn timing_trp(setup: &TestSetup) -> f64 {
    setup.module().profile().timing.t_rp_ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use simra_dram::{BankId, DataPattern, VendorProfile};

    fn setup() -> TestSetup {
        TestSetup::new(VendorProfile::mfr_h_m_die(), 64)
    }

    #[test]
    fn apa_program_reports_its_violations_and_wipes() {
        let mut s = setup();
        let cols = s.module().geometry().cols_per_row as usize;
        let bank = BankId::new(0);
        for r in 0..8u32 {
            s.init_row(bank, RowAddr::new(r), &BitRow::zeros(cols))
                .unwrap();
        }
        // APA(0, 7) + WR(ones): the §3.2 activation test as a program.
        let timing = s.module().profile().timing;
        let mut p = BenderProgram::new();
        p.command(Command::Activate {
            bank,
            row: RowAddr::new(0),
        })
        .wait_ns(3.0)
        .command(Command::Precharge { bank })
        .wait_ns(3.0)
        .command(Command::Activate {
            bank,
            row: RowAddr::new(7),
        })
        .wait_ns(timing.t_rcd_ns)
        .command(Command::Write { bank })
        .wait_ns(timing.t_wr_ns)
        .command(Command::Precharge { bank })
        .wait_ns(timing.t_rp_ns);
        let ones = BitRow::ones(cols);
        let run = s.run_program(&p, Some(&ones)).unwrap();
        assert_eq!(run.commands, 5);
        // tRAS and tRP were both violated on purpose.
        let rules: Vec<String> = run.violations.iter().map(|v| v.rule.to_string()).collect();
        assert!(
            rules.contains(&"tRAS".into()) && rules.contains(&"tRP".into()),
            "{rules:?}"
        );
        // Rows 0, 1, 6, 7 were simultaneously open and took the write.
        for r in [0u32, 1, 6, 7] {
            let img = s.read_row(bank, RowAddr::new(r)).unwrap();
            assert!(img.count_ones() as f64 / cols as f64 > 0.99, "row {r}");
        }
        let untouched = s.read_row(bank, RowAddr::new(2)).unwrap();
        assert_eq!(untouched.count_ones(), 0);
    }

    #[test]
    fn rowclone_program_copies_by_timing_alone() {
        let mut s = setup();
        let cols = s.module().geometry().cols_per_row as usize;
        let bank = BankId::new(1);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let img = DataPattern::Random.row_image(0, cols, &mut rng);
        s.init_row(bank, RowAddr::new(3), &img).unwrap();
        s.init_row(bank, RowAddr::new(9), &BitRow::zeros(cols))
            .unwrap();
        // Same program shape as APA, but t1 = tRAS and t2 = 6 ns:
        // consecutive activation ⇒ RowClone.
        let p = BenderProgram::apa(
            bank,
            RowAddr::new(3),
            RowAddr::new(9),
            ApaTiming::row_clone(),
            &s.module().profile().timing,
        );
        let run = s.run_program(&p, None).unwrap();
        // tRAS was honoured; only the precharge was interrupted.
        let rules: Vec<String> = run.violations.iter().map(|v| v.rule.to_string()).collect();
        assert_eq!(rules, vec!["tRP"]);
        assert_eq!(s.read_row(bank, RowAddr::new(9)).unwrap(), img);
        assert_eq!(s.read_row(bank, RowAddr::new(3)).unwrap(), img);
    }

    #[test]
    fn multirowcopy_program_fans_out_by_timing_alone() {
        let mut s = setup();
        let cols = s.module().geometry().cols_per_row as usize;
        let bank = BankId::new(2);
        s.init_row(bank, RowAddr::new(0), &BitRow::ones(cols))
            .unwrap();
        for r in 1..8u32 {
            s.init_row(bank, RowAddr::new(r), &BitRow::zeros(cols))
                .unwrap();
        }
        // t1 = 36 ns ≥ tRCD, t2 = 3 ns: Multi-RowCopy of row 0 over the
        // {0,1,6,7} group — wait, ACT 0 → ACT 7 opens {0,1,6,7}.
        let p = BenderProgram::apa(
            bank,
            RowAddr::new(0),
            RowAddr::new(7),
            ApaTiming::best_for_multi_row_copy(),
            &s.module().profile().timing,
        );
        s.run_program(&p, None).unwrap();
        for r in [1u32, 6, 7] {
            let img = s.read_row(bank, RowAddr::new(r)).unwrap();
            assert!(img.count_ones() as f64 / cols as f64 > 0.99, "row {r}");
        }
        // Rows outside the group still zero.
        assert_eq!(s.read_row(bank, RowAddr::new(2)).unwrap().count_ones(), 0);
    }

    #[test]
    fn reads_return_the_latched_image() {
        let mut s = setup();
        let cols = s.module().geometry().cols_per_row as usize;
        let bank = BankId::new(3);
        let img = BitRow::ones(cols);
        s.init_row(bank, RowAddr::new(4), &img).unwrap();
        let p = BenderProgram::read_row(bank, RowAddr::new(4), &s.module().profile().timing);
        let run = s.run_program(&p, None).unwrap();
        assert!(run.violations.is_empty() && run.state_errors == 0);
        assert_eq!(run.reads, vec![img]);
    }

    #[test]
    fn negative_wait_is_a_typed_error() {
        let mut s = setup();
        let mut p = BenderProgram::new();
        p.command(Command::Activate {
            bank: BankId::new(0),
            row: RowAddr::new(0),
        })
        .wait_ns(-5.0)
        .command(Command::Precharge {
            bank: BankId::new(0),
        });
        let err = s.run_program(&p, None).unwrap_err();
        assert!(
            matches!(err, SequencerError::NegativeWait { ns } if ns == -5.0),
            "{err:?}"
        );
    }

    #[test]
    fn out_of_range_bank_is_a_typed_error() {
        let mut s = setup();
        let mut p = BenderProgram::new();
        p.command(Command::Activate {
            bank: BankId::new(99),
            row: RowAddr::new(0),
        });
        let err = s.run_program(&p, None).unwrap_err();
        assert!(matches!(err, SequencerError::Dram(_)), "{err:?}");
    }

    #[test]
    fn legal_programs_are_violation_free() {
        let mut s = setup();
        let bank = BankId::new(0);
        let p = BenderProgram::write_row(bank, RowAddr::new(0), &s.module().profile().timing);
        let cols = s.module().geometry().cols_per_row as usize;
        let run = s.run_program(&p, Some(&BitRow::ones(cols))).unwrap();
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert_eq!(run.state_errors, 0);
    }
}
