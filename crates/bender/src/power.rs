//! The IDD-based power meter (Fig. 5).
//!
//! The paper measures average power per operation on one module. We model
//! operation power from datasheet-class IDD currents: standard operations
//! get fixed draws, and simultaneous N-row activation adds a per-extra-row
//! increment on top of ACT+PRE — the local wordline drivers and restore
//! currents scale with N while the shared global circuitry does not, which
//! is why even 32-row activation stays comfortably below a REF burst
//! (Obs. 5: 21.19 % below).

use serde::{Deserialize, Serialize};

/// A standard DRAM operation whose power the meter reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StandardOp {
    /// Burst read.
    Read,
    /// Burst write.
    Write,
    /// Activate + precharge pair.
    ActPre,
    /// Refresh.
    Refresh,
}

impl std::fmt::Display for StandardOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StandardOp::Read => "RD",
            StandardOp::Write => "WR",
            StandardOp::ActPre => "ACT+PRE",
            StandardOp::Refresh => "REF",
        };
        f.write_str(s)
    }
}

/// The module-level power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Average power of a burst read (mW).
    pub read_mw: f64,
    /// Average power of a burst write (mW).
    pub write_mw: f64,
    /// Average power of an ACT+PRE pair (mW).
    pub act_pre_mw: f64,
    /// Average power of a refresh (mW) — the hungriest standard op.
    pub refresh_mw: f64,
    /// Extra power per additional simultaneously activated row, as a
    /// fraction of `act_pre_mw`.
    pub extra_row_fraction: f64,
}

impl PowerModel {
    /// Datasheet-class DDR4 values calibrated against Obs. 5.
    pub fn ddr4() -> Self {
        PowerModel {
            read_mw: 190.0,
            write_mw: 205.0,
            act_pre_mw: 120.0,
            refresh_mw: 350.0,
            extra_row_fraction: 0.042,
        }
    }

    /// Power of a standard operation (the dashed lines of Fig. 5).
    pub fn standard_mw(&self, op: StandardOp) -> f64 {
        match op {
            StandardOp::Read => self.read_mw,
            StandardOp::Write => self.write_mw,
            StandardOp::ActPre => self.act_pre_mw,
            StandardOp::Refresh => self.refresh_mw,
        }
    }

    /// Average power of a simultaneous `n`-row activation (APA + restore).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn many_row_activation_mw(&self, n: u32) -> f64 {
        assert!(n > 0, "activation needs at least one row");
        self.act_pre_mw * (1.0 + self.extra_row_fraction * (n - 1) as f64)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::ddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_is_the_hungriest_standard_op() {
        let m = PowerModel::ddr4();
        for op in [StandardOp::Read, StandardOp::Write, StandardOp::ActPre] {
            assert!(m.standard_mw(op) < m.standard_mw(StandardOp::Refresh));
        }
    }

    #[test]
    fn obs5_32_row_activation_below_refresh() {
        let m = PowerModel::ddr4();
        let p32 = m.many_row_activation_mw(32);
        let r = m.standard_mw(StandardOp::Refresh);
        let below = 1.0 - p32 / r;
        // Paper: 21.19 % below REF. Allow a band around it.
        assert!(
            below > 0.10 && below < 0.35,
            "32-row is {:.1}% below REF",
            below * 100.0
        );
    }

    #[test]
    fn power_monotone_in_n() {
        let m = PowerModel::ddr4();
        let mut last = 0.0;
        for n in [1u32, 2, 4, 8, 16, 32] {
            let p = m.many_row_activation_mw(n);
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn single_row_matches_act_pre() {
        let m = PowerModel::ddr4();
        assert_eq!(m.many_row_activation_mw(1), m.act_pre_mw);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_rejected() {
        PowerModel::ddr4().many_row_activation_mw(0);
    }
}
