//! The command sequencer: resolves APA command sequences against the
//! mounted module, through the row decoder and the analog engine.

use simra_decoder::{ApaOutcome, RowDecoder};
use simra_dram::{ApaTiming, BankId, BitRow, DramError, RowAddr, SubarrayId};

use crate::setup::TestSetup;

/// Errors from scheduling command sequences.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SequencerError {
    /// The two APA target rows live in different subarrays; intra-subarray
    /// PUD operations require shared bitlines (§3.1).
    CrossSubarray {
        /// Subarray of `R_F`.
        first: SubarrayId,
        /// Subarray of `R_S`.
        second: SubarrayId,
    },
    /// A program asked to wait a negative duration; the interpreter's
    /// clock (and the protocol checker behind it) only runs forwards.
    NegativeWait {
        /// The offending wait (ns).
        ns: f64,
    },
    /// Underlying device error.
    Dram(DramError),
}

impl std::fmt::Display for SequencerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SequencerError::CrossSubarray { first, second } => {
                write!(f, "APA targets span subarrays {first} and {second}")
            }
            SequencerError::NegativeWait { ns } => {
                write!(
                    f,
                    "negative wait of {ns} ns would run the program clock backwards"
                )
            }
            SequencerError::Dram(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for SequencerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SequencerError::Dram(e) => Some(e),
            SequencerError::CrossSubarray { .. } | SequencerError::NegativeWait { .. } => None,
        }
    }
}

impl From<DramError> for SequencerError {
    fn from(e: DramError) -> Self {
        SequencerError::Dram(e)
    }
}

impl TestSetup {
    /// Resolves an `ACT R_F → PRE → ACT R_S` sequence structurally:
    /// which local wordlines end up asserted, in which subarray.
    ///
    /// # Errors
    ///
    /// [`SequencerError::CrossSubarray`] if the rows do not share a
    /// subarray, or a device error for bad addresses.
    pub fn resolve_apa(
        &self,
        bank: BankId,
        r_f: RowAddr,
        r_s: RowAddr,
        timing: ApaTiming,
    ) -> Result<(SubarrayId, ApaOutcome), SequencerError> {
        let geometry = *self.module().geometry();
        // Validate the bank id eagerly.
        self.module().bank(bank)?;
        let (sa_f, local_f) = geometry.split_row(r_f)?;
        let (sa_s, local_s) = geometry.split_row(r_s)?;
        if sa_f != sa_s {
            return Err(SequencerError::CrossSubarray {
                first: sa_f,
                second: sa_s,
            });
        }
        let guard = self.module().profile().apa_guard;
        // simra-decoder is the one authority on APA row resolution.
        Ok((
            sa_f,
            RowDecoder::resolve_in_subarray(
                geometry.rows_per_subarray,
                local_f,
                local_s,
                timing,
                guard,
            ),
        ))
    }

    /// Initialises a row with nominal timings (test setup step).
    ///
    /// # Errors
    ///
    /// Device errors for bad addresses or image widths.
    pub fn init_row(
        &mut self,
        bank: BankId,
        row: RowAddr,
        image: &BitRow,
    ) -> Result<(), SequencerError> {
        Ok(self
            .module_mut()
            .bank_mut(bank)?
            .write_row_nominal(row, image)?)
    }

    /// Reads a row back with nominal timings (test read-out step).
    ///
    /// # Errors
    ///
    /// Device errors for bad addresses.
    pub fn read_row(&mut self, bank: BankId, row: RowAddr) -> Result<BitRow, SequencerError> {
        Ok(self.module_mut().bank_mut(bank)?.read_row_nominal(row)?)
    }

    /// The §3.2 activation-test sequence: APA with `timing`, then a `WR`
    /// that overdrives the bitlines with `pattern`, updating the cells of
    /// every simultaneously open row. Returns the structural outcome so the
    /// caller knows which rows should now hold `pattern`.
    ///
    /// # Errors
    ///
    /// Propagates APA resolution errors; rejects a `pattern` narrower or
    /// wider than the module's rows.
    pub fn apa_then_write(
        &mut self,
        bank: BankId,
        r_f: RowAddr,
        r_s: RowAddr,
        timing: ApaTiming,
        pattern: &BitRow,
    ) -> Result<(SubarrayId, ApaOutcome), SequencerError> {
        let expected = self.module().geometry().cols_per_row as usize;
        if pattern.len() != expected {
            return Err(SequencerError::Dram(DramError::WidthMismatch {
                got: pattern.len(),
                expected,
            }));
        }
        let (sa, outcome) = self.resolve_apa(bank, r_f, r_s, timing)?;
        let engine = self.engine();
        let restore = engine.params().restore_strength(timing, self.conditions());
        let open = outcome.open_rows();
        let subarray = self.module_mut().bank_mut(bank)?.subarray(sa);
        engine.commit(subarray, &open, pattern, restore);
        Ok((sa, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simra_dram::VendorProfile;

    fn setup() -> TestSetup {
        TestSetup::new(VendorProfile::mfr_h_m_die(), 42)
    }

    #[test]
    fn apa_within_subarray_resolves() {
        let s = setup();
        let (sa, out) = s
            .resolve_apa(
                BankId::new(0),
                RowAddr::new(0),
                RowAddr::new(7),
                ApaTiming::from_ns(3.0, 3.0),
            )
            .unwrap();
        assert_eq!(sa.raw(), 0);
        assert_eq!(out.open_row_count(), 4);
    }

    #[test]
    fn cross_subarray_rejected() {
        let s = setup();
        // Rows 0 and 600 are in different 512-row subarrays.
        let err = s
            .resolve_apa(
                BankId::new(0),
                RowAddr::new(0),
                RowAddr::new(600),
                ApaTiming::from_ns(3.0, 3.0),
            )
            .unwrap_err();
        assert!(matches!(err, SequencerError::CrossSubarray { .. }));
    }

    #[test]
    fn bad_bank_propagates_device_error() {
        let s = setup();
        let err = s
            .resolve_apa(
                BankId::new(99),
                RowAddr::new(0),
                RowAddr::new(1),
                ApaTiming::from_ns(3.0, 3.0),
            )
            .unwrap_err();
        assert!(matches!(err, SequencerError::Dram(_)));
    }

    #[test]
    fn mismatched_pattern_width_is_a_typed_error() {
        let mut s = setup();
        let err = s
            .apa_then_write(
                BankId::new(0),
                RowAddr::new(0),
                RowAddr::new(7),
                ApaTiming::from_ns(3.0, 3.0),
                &BitRow::ones(8),
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                SequencerError::Dram(DramError::WidthMismatch { got: 8, .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn error_display_is_lowercase_and_concise() {
        // Mirrors the style checks in simra_dram::error: every variant
        // renders a short lowercase message a CLI can print verbatim.
        let errors: Vec<SequencerError> = vec![
            SequencerError::CrossSubarray {
                first: SubarrayId::new(0),
                second: SubarrayId::new(1),
            },
            SequencerError::NegativeWait { ns: -3.0 },
            SequencerError::Dram(DramError::WidthMismatch {
                got: 8,
                expected: 256,
            }),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty() && msg.len() < 120, "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
        let negative = SequencerError::NegativeWait { ns: -3.0 }.to_string();
        assert!(negative.starts_with("negative wait of -3"), "{negative}");
    }

    #[test]
    fn error_source_chain_reaches_device_errors() {
        use std::error::Error;
        let e = SequencerError::Dram(DramError::WidthMismatch {
            got: 8,
            expected: 256,
        });
        assert!(e.source().is_some());
        assert!(SequencerError::NegativeWait { ns: -1.0 }.source().is_none());
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SequencerError>();
    }

    #[test]
    fn samsung_guard_blocks_multi_activation() {
        let s = TestSetup::new(VendorProfile::mfr_s(), 42);
        let (_, out) = s
            .resolve_apa(
                BankId::new(0),
                RowAddr::new(0),
                RowAddr::new(7),
                ApaTiming::from_ns(3.0, 3.0),
            )
            .unwrap();
        assert_eq!(out.open_row_count(), 1);
    }

    #[test]
    fn apa_then_write_stores_pattern_in_all_open_rows() {
        let mut s = setup();
        let cols = s.module().geometry().cols_per_row as usize;
        let bank = BankId::new(0);
        // Initialise rows 0..8 with zeros, then APA(0, 7) + WR ones.
        for r in 0..8 {
            s.init_row(bank, RowAddr::new(r), &BitRow::zeros(cols))
                .unwrap();
        }
        let ones = BitRow::ones(cols);
        let (_, out) = s
            .apa_then_write(
                bank,
                RowAddr::new(0),
                RowAddr::new(7),
                ApaTiming::from_ns(3.0, 3.0),
                &ones,
            )
            .unwrap();
        assert_eq!(out.open_row_count(), 4);
        // At best timing, near-all cells take the write.
        for r in out.open_rows() {
            let read = s.read_row(bank, RowAddr::new(r)).unwrap();
            let frac = read.count_ones() as f64 / cols as f64;
            assert!(frac > 0.99, "row {r} only {frac}");
        }
        // Rows outside the activated set keep their data.
        let untouched = s.read_row(bank, RowAddr::new(2)).unwrap();
        assert_eq!(untouched.count_ones(), 0);
    }

    #[test]
    fn weak_timing_write_fails_many_cells() {
        let mut s = setup();
        let cols = s.module().geometry().cols_per_row as usize;
        let bank = BankId::new(0);
        for r in 0..8 {
            s.init_row(bank, RowAddr::new(r), &BitRow::zeros(cols))
                .unwrap();
        }
        let ones = BitRow::ones(cols);
        let (_, out) = s
            .apa_then_write(
                bank,
                RowAddr::new(0),
                RowAddr::new(7),
                ApaTiming::from_ns(1.5, 1.5),
                &ones,
            )
            .unwrap();
        let mut stored = 0usize;
        let mut total = 0usize;
        for r in out.open_rows() {
            let read = s.read_row(bank, RowAddr::new(r)).unwrap();
            stored += read.count_ones();
            total += cols;
        }
        let frac = stored as f64 / total as f64;
        assert!(
            frac < 0.95,
            "grid-minimum timing should visibly fail: {frac}"
        );
    }
}
