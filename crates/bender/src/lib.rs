//! # simra-bender
//!
//! The DRAM-Bender-equivalent testing infrastructure (Fig. 2 of the
//! paper): a command sequencer with 1.5 ns issue granularity driving the
//! modelled module through the row decoder and the analog engine, plus the
//! rig around it — temperature controller, programmable V_PP supply, and
//! an IDD-based power meter.
//!
//! The real infrastructure is an Alveo U200 FPGA + host; ours is a struct.
//! What matters for the reproduction is that every experiment is phrased
//! against the same abstraction the paper uses: *schedule DRAM commands
//! with exact (violated) timings, then read back and count*.
//!
//! # Example
//!
//! ```
//! use simra_bender::TestSetup;
//! use simra_dram::{ApaTiming, BankId, RowAddr, VendorProfile};
//!
//! let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 1);
//! let (sa, outcome) = setup
//!     .resolve_apa(BankId::new(0), RowAddr::new(0), RowAddr::new(7), ApaTiming::from_ns(3.0, 3.0))
//!     .unwrap();
//! assert_eq!(outcome.open_row_count(), 4);
//! assert_eq!(sa.raw(), 0);
//! ```

pub mod energy;
pub mod interpreter;
pub mod power;
pub mod program;
pub mod sequencer;
pub mod setup;

pub use energy::EnergyModel;
pub use interpreter::ProgramRun;
pub use power::PowerModel;
pub use program::{BenderInstr, BenderProgram};
pub use sequencer::SequencerError;
pub use setup::TestSetup;
