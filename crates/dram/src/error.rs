//! Error type shared across the device model.

use std::error::Error;
use std::fmt;

use crate::geometry::{BankId, RowAddr};

/// Errors raised by the DRAM device model.
///
/// Following C-GOOD-ERR, this type implements [`std::error::Error`],
/// [`fmt::Display`], `Send`, and `Sync`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A row address outside the bank was used.
    RowOutOfRange {
        /// The offending row address.
        row: RowAddr,
        /// Number of rows in the bank.
        rows_in_bank: u32,
    },
    /// A bank id outside the module was used.
    BankOutOfRange {
        /// The offending bank id.
        bank: BankId,
        /// Number of banks per module.
        banks: u16,
    },
    /// A command was issued that the bank state machine cannot accept
    /// (e.g. `RD` on a precharged bank).
    IllegalCommand {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A data payload did not match the row width.
    WidthMismatch {
        /// Bits provided by the caller.
        got: usize,
        /// Bits per row in this device.
        expected: usize,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::RowOutOfRange { row, rows_in_bank } => {
                write!(f, "row {row} out of range (bank has {rows_in_bank} rows)")
            }
            DramError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range (module has {banks} banks)")
            }
            DramError::IllegalCommand { reason } => {
                write!(f, "illegal command: {reason}")
            }
            DramError::WidthMismatch { got, expected } => {
                write!(
                    f,
                    "row image width mismatch: got {got} bits, expected {expected}"
                )
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = DramError::RowOutOfRange {
            row: RowAddr::new(700),
            rows_in_bank: 512,
        };
        let s = e.to_string();
        assert!(s.contains("700"));
        assert!(s.starts_with("row"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }

    #[test]
    fn width_mismatch_mentions_both_sizes() {
        let e = DramError::WidthMismatch {
            got: 128,
            expected: 256,
        };
        let s = e.to_string();
        assert!(s.contains("128") && s.contains("256"));
    }
}
