//! A JEDEC protocol checker: the memory-controller-side bank state
//! machine plus timing-rule enforcement.
//!
//! The paper's whole premise is *deliberate* timing violation — so the
//! model needs a component that knows what the rules are and can say
//! precisely which rule a command stream breaks and by how much. The
//! checker validates a timed command stream against a [`TimingParams`]
//! set and reports every violation; the tester (simra-bender) runs with
//! the checker in "observe" mode, a normal memory controller would run
//! it in "enforce" mode.

use serde::{Deserialize, Serialize};

use crate::command::Command;
use crate::geometry::BankId;
use crate::timing::TimingParams;

/// The timing rule a command pair is subject to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimingRule {
    /// ACT → PRE minimum (row restore).
    TRas,
    /// PRE → ACT minimum (precharge).
    TRp,
    /// ACT → RD/WR minimum (column access).
    TRcd,
    /// WR → PRE minimum (write recovery).
    TWr,
    /// REF → any minimum (refresh cycle).
    TRfc,
}

impl TimingRule {
    /// The rule's nominal value (ns) under `t`.
    pub fn nominal_ns(self, t: &TimingParams) -> f64 {
        match self {
            TimingRule::TRas => t.t_ras_ns,
            TimingRule::TRp => t.t_rp_ns,
            TimingRule::TRcd => t.t_rcd_ns,
            TimingRule::TWr => t.t_wr_ns,
            TimingRule::TRfc => t.t_rfc_ns,
        }
    }
}

impl std::fmt::Display for TimingRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TimingRule::TRas => "tRAS",
            TimingRule::TRp => "tRP",
            TimingRule::TRcd => "tRCD",
            TimingRule::TWr => "tWR",
            TimingRule::TRfc => "tRFC",
        };
        f.write_str(s)
    }
}

/// One detected violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The rule broken.
    pub rule: TimingRule,
    /// Bank the pair addressed.
    pub bank: BankId,
    /// Actual elapsed time between the commands (ns).
    pub actual_ns: f64,
    /// The rule's minimum (ns).
    pub required_ns: f64,
    /// Issue time of the offending (second) command (ns).
    pub at_ns: f64,
}

impl Violation {
    /// How far below the minimum the pair was (ns).
    pub fn shortfall_ns(&self) -> f64 {
        self.required_ns - self.actual_ns
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} violated on {} at t={:.1} ns: {:.1} < {:.1} ns",
            self.rule, self.bank, self.at_ns, self.actual_ns, self.required_ns
        )
    }
}

/// Illegal command for the bank's current state (independent of timing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateError {
    /// The offending command.
    pub command: Command,
    /// Issue time (ns).
    pub at_ns: f64,
    /// What the bank state machine expected.
    pub expected: String,
}

/// Per-bank protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct BankTrack {
    /// Whether a row is open.
    open: bool,
    /// Time of the last ACT (ns).
    last_act_ns: f64,
    /// Time of the last PRE (ns).
    last_pre_ns: f64,
    /// Time of the last WR (ns).
    last_wr_ns: f64,
    /// Time of the last REF (ns).
    last_ref_ns: f64,
}

impl BankTrack {
    fn new() -> Self {
        let long_ago = -1e12;
        BankTrack {
            open: false,
            last_act_ns: long_ago,
            last_pre_ns: long_ago,
            last_wr_ns: long_ago,
            last_ref_ns: long_ago,
        }
    }
}

/// The protocol checker: feed it `(time, command)` pairs in issue order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolChecker {
    timing: TimingParams,
    banks: Vec<BankTrack>,
    violations: Vec<Violation>,
    state_errors: Vec<StateError>,
    last_time_ns: f64,
}

impl ProtocolChecker {
    /// A checker for a module with `banks` banks under `timing`.
    pub fn new(timing: TimingParams, banks: u16) -> Self {
        ProtocolChecker {
            timing,
            banks: vec![BankTrack::new(); banks as usize],
            violations: Vec::new(),
            state_errors: Vec::new(),
            last_time_ns: f64::NEG_INFINITY,
        }
    }

    /// Observes one command at absolute time `at_ns`.
    ///
    /// A checker observes; it never brings the rig down. Commands that
    /// arrive out of time order or address a bank the checker was not
    /// configured for are recorded as [`StateError`]s (the stream is no
    /// longer [`ProtocolChecker::is_clean`]) and observation continues:
    /// an out-of-order command is still checked against the bank state,
    /// while an out-of-range bank cannot be tracked and is skipped.
    pub fn observe(&mut self, at_ns: f64, command: Command) {
        if at_ns < self.last_time_ns {
            self.state_errors.push(StateError {
                command,
                at_ns,
                expected: format!(
                    "commands in time order (previous command at t={:.1} ns)",
                    self.last_time_ns
                ),
            });
        } else {
            self.last_time_ns = at_ns;
        }
        let bank_id = command.bank();
        let idx = bank_id.raw() as usize;
        if idx >= self.banks.len() {
            self.state_errors.push(StateError {
                command,
                at_ns,
                expected: format!("a configured bank (have {})", self.banks.len()),
            });
            return;
        }

        // Refresh recovery applies to every command on the bank.
        let trfc_ago = at_ns - self.banks[idx].last_ref_ns;
        if trfc_ago < self.timing.t_rfc_ns {
            self.violations.push(Violation {
                rule: TimingRule::TRfc,
                bank: bank_id,
                actual_ns: trfc_ago,
                required_ns: self.timing.t_rfc_ns,
                at_ns,
            });
        }

        let bank = &mut self.banks[idx];
        match command {
            Command::Activate { .. } => {
                if bank.open {
                    self.state_errors.push(StateError {
                        command,
                        at_ns,
                        expected: "precharged bank before ACT".into(),
                    });
                }
                let since_pre = at_ns - bank.last_pre_ns;
                if since_pre < self.timing.t_rp_ns {
                    self.violations.push(Violation {
                        rule: TimingRule::TRp,
                        bank: bank_id,
                        actual_ns: since_pre,
                        required_ns: self.timing.t_rp_ns,
                        at_ns,
                    });
                }
                bank.open = true;
                bank.last_act_ns = at_ns;
            }
            Command::Precharge { .. } => {
                let since_act = at_ns - bank.last_act_ns;
                if bank.open && since_act < self.timing.t_ras_ns {
                    self.violations.push(Violation {
                        rule: TimingRule::TRas,
                        bank: bank_id,
                        actual_ns: since_act,
                        required_ns: self.timing.t_ras_ns,
                        at_ns,
                    });
                }
                let since_wr = at_ns - bank.last_wr_ns;
                if since_wr < self.timing.t_wr_ns {
                    self.violations.push(Violation {
                        rule: TimingRule::TWr,
                        bank: bank_id,
                        actual_ns: since_wr,
                        required_ns: self.timing.t_wr_ns,
                        at_ns,
                    });
                }
                bank.open = false;
                bank.last_pre_ns = at_ns;
            }
            Command::Read { .. } | Command::Write { .. } => {
                if !bank.open {
                    self.state_errors.push(StateError {
                        command,
                        at_ns,
                        expected: "an open row before RD/WR".into(),
                    });
                }
                let since_act = at_ns - bank.last_act_ns;
                if bank.open && since_act < self.timing.t_rcd_ns {
                    self.violations.push(Violation {
                        rule: TimingRule::TRcd,
                        bank: bank_id,
                        actual_ns: since_act,
                        required_ns: self.timing.t_rcd_ns,
                        at_ns,
                    });
                }
                if matches!(command, Command::Write { .. }) {
                    bank.last_wr_ns = at_ns;
                }
            }
            Command::Refresh { .. } => {
                if bank.open {
                    self.state_errors.push(StateError {
                        command,
                        at_ns,
                        expected: "precharged bank before REF".into(),
                    });
                }
                bank.last_ref_ns = at_ns;
            }
        }
    }

    /// All timing violations seen so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// All state-machine errors seen so far.
    pub fn state_errors(&self) -> &[StateError] {
        &self.state_errors
    }

    /// Whether the observed stream was fully JEDEC-legal.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.state_errors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::RowAddr;

    fn checker() -> ProtocolChecker {
        ProtocolChecker::new(TimingParams::ddr4_2666(), 16)
    }

    fn act(bank: u16, row: u32) -> Command {
        Command::Activate {
            bank: BankId::new(bank),
            row: RowAddr::new(row),
        }
    }

    fn pre(bank: u16) -> Command {
        Command::Precharge {
            bank: BankId::new(bank),
        }
    }

    #[test]
    fn legal_stream_is_clean() {
        let mut c = checker();
        c.observe(0.0, act(0, 5));
        c.observe(
            14.0,
            Command::Read {
                bank: BankId::new(0),
            },
        );
        c.observe(40.0, pre(0));
        c.observe(60.0, act(0, 6));
        assert!(c.is_clean(), "{:?}", c.violations());
    }

    #[test]
    fn the_apa_sequence_violates_tras_and_trp() {
        // The paper's PUD primitive: ACT → 1.5 ns → PRE → 3 ns → ACT.
        let mut c = checker();
        c.observe(0.0, act(0, 0));
        c.observe(1.5, pre(0));
        c.observe(4.5, act(0, 7));
        let rules: Vec<TimingRule> = c.violations().iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec![TimingRule::TRas, TimingRule::TRp]);
        // Shortfalls are what the tester deliberately engineers.
        assert!((c.violations()[0].shortfall_ns() - (32.0 - 1.5)).abs() < 1e-9);
        assert!((c.violations()[1].shortfall_ns() - (13.5 - 3.0)).abs() < 1e-9);
    }

    #[test]
    fn rd_on_precharged_bank_is_a_state_error() {
        let mut c = checker();
        c.observe(
            0.0,
            Command::Read {
                bank: BankId::new(3),
            },
        );
        assert_eq!(c.state_errors().len(), 1);
        assert!(c.state_errors()[0].expected.contains("open row"));
    }

    #[test]
    fn early_read_violates_trcd() {
        let mut c = checker();
        c.observe(0.0, act(1, 0));
        c.observe(
            5.0,
            Command::Read {
                bank: BankId::new(1),
            },
        );
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].rule, TimingRule::TRcd);
    }

    #[test]
    fn write_recovery_enforced() {
        let mut c = checker();
        c.observe(0.0, act(0, 0));
        c.observe(
            14.0,
            Command::Write {
                bank: BankId::new(0),
            },
        );
        c.observe(20.0, pre(0)); // 6 ns after WR < tWR = 15 ns (and < tRAS)
        let rules: Vec<TimingRule> = c.violations().iter().map(|v| v.rule).collect();
        assert!(rules.contains(&TimingRule::TWr));
    }

    #[test]
    fn refresh_recovery_enforced() {
        let mut c = checker();
        c.observe(
            0.0,
            Command::Refresh {
                bank: BankId::new(0),
            },
        );
        c.observe(100.0, act(0, 0));
        assert_eq!(c.violations()[0].rule, TimingRule::TRfc);
        // A properly spaced ACT after tRFC is fine.
        let mut c2 = checker();
        c2.observe(
            0.0,
            Command::Refresh {
                bank: BankId::new(0),
            },
        );
        c2.observe(400.0, act(0, 0));
        assert!(c2.is_clean());
    }

    #[test]
    fn banks_are_tracked_independently() {
        let mut c = checker();
        c.observe(0.0, act(0, 0));
        c.observe(1.0, act(1, 0)); // different bank: no tRP/tRAS coupling
        assert!(c.is_clean(), "{:?}", c.violations());
    }

    #[test]
    fn double_activate_is_a_state_error() {
        let mut c = checker();
        c.observe(0.0, act(0, 0));
        c.observe(50.0, act(0, 1));
        assert_eq!(c.state_errors().len(), 1);
    }

    #[test]
    fn out_of_order_commands_record_a_state_error() {
        let mut c = checker();
        c.observe(10.0, act(0, 0));
        c.observe(5.0, pre(0));
        assert!(!c.is_clean());
        assert_eq!(c.state_errors().len(), 1);
        let err = &c.state_errors()[0];
        assert!(err.expected.contains("time order"), "{}", err.expected);
        assert_eq!(err.at_ns, 5.0);
        // The checker keeps observing afterwards — and the out-of-order
        // PRE was still state-checked (it closed the row).
        c.observe(60.0, act(0, 1));
        assert_eq!(c.state_errors().len(), 1, "ACT on closed bank is legal");
    }

    #[test]
    fn out_of_range_bank_records_a_state_error() {
        let mut c = checker();
        c.observe(0.0, act(99, 0));
        assert_eq!(c.state_errors().len(), 1);
        assert!(c.state_errors()[0].expected.contains("configured bank"));
        // Subsequent legal traffic is still tracked.
        c.observe(10.0, act(0, 0));
        assert_eq!(c.state_errors().len(), 1);
    }

    #[test]
    fn violation_display_is_informative() {
        let mut c = checker();
        c.observe(0.0, act(0, 0));
        c.observe(1.5, pre(0));
        let s = c.violations()[0].to_string();
        assert!(s.contains("tRAS") && s.contains("B0"));
    }
}
