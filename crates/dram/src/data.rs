//! Data patterns and packed row images.
//!
//! The paper tests five data patterns (§3.1): four *fixed* byte-pair
//! patterns (`0x00/0xFF`, `0xAA/0x55`, `0xCC/0x33`, `0x66/0x99`) where each
//! activated row is filled entirely with one byte of the pair, and a
//! uniformly *random* pattern where every activated row gets independent
//! random data. Random is the default everywhere because it is the
//! worst-case pattern observed.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A packed bit image of one DRAM row (one bit per modelled bitline).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitRow {
    words: Vec<u64>,
    len: usize,
}

impl BitRow {
    /// An all-zeros row of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitRow {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-ones row of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut row = BitRow {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        row.mask_tail();
        row
    }

    /// A row whose bytes all equal `byte` (bit 0 of the row is bit 0 of the
    /// first byte), truncated/cycled to `len` bits.
    pub fn repeat_byte(byte: u8, len: usize) -> Self {
        let mut row = BitRow::zeros(len);
        for i in 0..len {
            let bit = (byte >> (i % 8)) & 1 == 1;
            row.set(i, bit);
        }
        row
    }

    /// A uniformly random row drawn from `rng`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Self {
        let mut row = BitRow {
            words: (0..len.div_ceil(64)).map(|_| rng.gen()).collect(),
            len,
        };
        row.mask_tail();
        row
    }

    /// Builds a row from an iterator of bits.
    ///
    /// Single pass: bits are packed into words as they are drawn, with
    /// no intermediate buffer — this sits on the per-trial sense hot
    /// path ([`crate::Subarray`] senses resolve one bit per column).
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits = bits.into_iter();
        let mut words = Vec::with_capacity(bits.size_hint().0.div_ceil(64));
        let mut len = 0usize;
        let mut word = 0u64;
        for b in bits {
            word |= (b as u64) << (len % 64);
            len += 1;
            if len.is_multiple_of(64) {
                words.push(word);
                word = 0;
            }
        }
        if !len.is_multiple_of(64) {
            words.push(word);
        }
        BitRow { words, len }
    }

    /// Number of bits in the row.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the row has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range ({} bits)",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range ({} bits)",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of positions where `self` and `other` agree.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different lengths.
    pub fn matches(&self, other: &BitRow) -> usize {
        assert_eq!(self.len, other.len, "row length mismatch");
        self.len - self.hamming(other)
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different lengths.
    pub fn hamming(&self, other: &BitRow) -> usize {
        assert_eq!(self.len, other.len, "row length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Bitwise complement of the row.
    pub fn complement(&self) -> BitRow {
        let mut out = BitRow {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Iterates over the bits of the row.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

macro_rules! bitrow_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait<&BitRow> for &BitRow {
            type Output = BitRow;

            /// Word-wise bitwise operation.
            ///
            /// # Panics
            ///
            /// Panics if the rows have different lengths.
            fn $method(self, rhs: &BitRow) -> BitRow {
                assert_eq!(self.len, rhs.len, "row length mismatch");
                let mut out = BitRow {
                    words: self.words.iter().zip(&rhs.words).map(|(a, b)| a $op b).collect(),
                    len: self.len,
                };
                out.mask_tail();
                out
            }
        }
    };
}

bitrow_binop!(BitAnd, bitand, &);
bitrow_binop!(BitOr, bitor, |);
bitrow_binop!(BitXor, bitxor, ^);

impl std::ops::Not for &BitRow {
    type Output = BitRow;

    /// Word-wise complement (same as [`BitRow::complement`]).
    fn not(self) -> BitRow {
        self.complement()
    }
}

impl fmt::Display for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Show at most the first 64 bits; rows are wide.
        let shown = self.len.min(64);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > shown {
            write!(f, "… ({} bits)", self.len)?;
        }
        Ok(())
    }
}

/// The data patterns swept in the paper's experiments (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPattern {
    /// Each row all `0x00` or all `0xFF`.
    Solid,
    /// Each row all `0xAA` or all `0x55`.
    Checkered,
    /// Each row all `0xCC` or all `0x33`.
    ColStripe2,
    /// Each row all `0x66` or all `0x99`.
    ColStripe2Shifted,
    /// Uniformly random data, fresh per row (the worst-case pattern).
    Random,
}

impl DataPattern {
    /// All five patterns, in the paper's order.
    pub const ALL: [DataPattern; 5] = [
        DataPattern::Solid,
        DataPattern::Checkered,
        DataPattern::ColStripe2,
        DataPattern::ColStripe2Shifted,
        DataPattern::Random,
    ];

    /// The byte pair for fixed patterns; `None` for [`DataPattern::Random`].
    pub fn byte_pair(self) -> Option<(u8, u8)> {
        match self {
            DataPattern::Solid => Some((0x00, 0xFF)),
            DataPattern::Checkered => Some((0xAA, 0x55)),
            DataPattern::ColStripe2 => Some((0xCC, 0x33)),
            DataPattern::ColStripe2Shifted => Some((0x66, 0x99)),
            DataPattern::Random => None,
        }
    }

    /// Whether this pattern produces per-bitline-uncorrelated data.
    pub fn is_random(self) -> bool {
        self == DataPattern::Random
    }

    /// Produces the image for the `index`-th row of a group.
    ///
    /// For fixed patterns even-indexed rows take the first byte of the pair
    /// and odd-indexed rows the second, matching the paper's "fill each
    /// activated row either with all A or all B".
    pub fn row_image<R: Rng + ?Sized>(self, index: usize, cols: usize, rng: &mut R) -> BitRow {
        match self.byte_pair() {
            Some((a, b)) => BitRow::repeat_byte(if index.is_multiple_of(2) { a } else { b }, cols),
            None => BitRow::random(rng, cols),
        }
    }
}

impl fmt::Display for DataPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataPattern::Solid => "0x00/0xFF",
            DataPattern::Checkered => "0xAA/0x55",
            DataPattern::ColStripe2 => "0xCC/0x33",
            DataPattern::ColStripe2Shifted => "0x66/0x99",
            DataPattern::Random => "random",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_ones() {
        let z = BitRow::zeros(100);
        let o = BitRow::ones(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(o.count_ones(), 100);
        assert_eq!(z.hamming(&o), 100);
        assert_eq!(z.matches(&o), 0);
        assert_eq!(z.complement(), o);
    }

    #[test]
    fn repeat_byte_patterns() {
        let aa = BitRow::repeat_byte(0xAA, 16);
        // 0xAA = 0b10101010: bit 0 is 0, bit 1 is 1, ...
        assert!(!aa.get(0));
        assert!(aa.get(1));
        assert!(!aa.get(8));
        assert!(aa.get(9));
        assert_eq!(aa.count_ones(), 8);
    }

    #[test]
    fn set_get_roundtrip_and_tail_masking() {
        let mut r = BitRow::zeros(70);
        r.set(69, true);
        assert!(r.get(69));
        r.set(69, false);
        assert_eq!(r.count_ones(), 0);
        let o = BitRow::ones(70);
        assert_eq!(o.count_ones(), 70);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitRow::zeros(8).get(8);
    }

    #[test]
    fn random_rows_are_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(BitRow::random(&mut a, 333), BitRow::random(&mut b, 333));
    }

    #[test]
    fn pattern_pairs_match_paper() {
        assert_eq!(DataPattern::Solid.byte_pair(), Some((0x00, 0xFF)));
        assert_eq!(DataPattern::Checkered.byte_pair(), Some((0xAA, 0x55)));
        assert_eq!(DataPattern::ColStripe2.byte_pair(), Some((0xCC, 0x33)));
        assert_eq!(
            DataPattern::ColStripe2Shifted.byte_pair(),
            Some((0x66, 0x99))
        );
        assert_eq!(DataPattern::Random.byte_pair(), None);
    }

    #[test]
    fn fixed_pattern_alternates_pair_by_row_index() {
        let mut rng = StdRng::seed_from_u64(0);
        let r0 = DataPattern::Solid.row_image(0, 64, &mut rng);
        let r1 = DataPattern::Solid.row_image(1, 64, &mut rng);
        assert_eq!(r0.count_ones(), 0);
        assert_eq!(r1.count_ones(), 64);
    }

    #[test]
    fn word_wise_operators_match_bitwise_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = BitRow::random(&mut rng, 130);
        let b = BitRow::random(&mut rng, 130);
        let and = &a & &b;
        let or = &a | &b;
        let xor = &a ^ &b;
        let not = !&a;
        for i in 0..130 {
            assert_eq!(and.get(i), a.get(i) && b.get(i));
            assert_eq!(or.get(i), a.get(i) || b.get(i));
            assert_eq!(xor.get(i), a.get(i) ^ b.get(i));
            assert_eq!(not.get(i), !a.get(i));
        }
        // Tail bits beyond len stay masked.
        assert_eq!(
            or.count_ones(),
            (0..130).filter(|&i| a.get(i) || b.get(i)).count()
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn operator_length_mismatch_panics() {
        let _ = &BitRow::zeros(8) & &BitRow::zeros(9);
    }

    #[test]
    fn from_bits_roundtrip() {
        let bits = [true, false, true, true, false];
        let r = BitRow::from_bits(bits);
        let back: Vec<bool> = r.iter().collect();
        assert_eq!(back, bits);
    }
}
