//! The DRAM subarray: a 2-D grid of cells sharing bitlines and sense
//! amplifiers.
//!
//! Process variation is stamped at construction from a deterministic seed:
//! per-cell capacitance/strength factors and a per-column sense-amplifier
//! offset. The same (module-seed, bank, subarray) triple always produces
//! the same silicon, which is what lets the paper-style "cell is unstable"
//! classification be meaningful across repeated trials.
//!
//! State is stored structure-of-arrays: the immutable variation planes
//! live in an [`Arc<SiliconPlanes>`] shared through the silicon cache
//! (see [`crate::silicon`]), while the mutable per-cell voltage plane is
//! owned. The per-row slice accessors ([`Subarray::row_voltages`] and
//! friends) are what the charge-sharing hot loops iterate — contiguous,
//! bounds-checked once per row instead of once per cell.

use std::sync::Arc;

use serde::ser::SerializeStruct;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::cell::Cell;
use crate::data::BitRow;
use crate::error::DramError;
use crate::faults::SubarrayFaults;
use crate::silicon::{stamped_planes, SiliconPlanes};

/// Construction parameters for a subarray's process variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationParams {
    /// Sigma of the per-cell capacitance factor (around 1.0).
    pub cell_cap_sigma: f32,
    /// Sigma of the per-cell access-strength factor (around 1.0).
    pub cell_strength_sigma: f32,
    /// Sigma of the per-column sense-amplifier offset, in normalized
    /// bitline-voltage units (fraction of VDD).
    pub sense_offset_sigma: f32,
}

impl Default for VariationParams {
    fn default() -> Self {
        // Calibrated jointly with `simra_analog::params::calibrated()`.
        VariationParams {
            cell_cap_sigma: 0.07,
            cell_strength_sigma: 0.05,
            sense_offset_sigma: 0.0035,
        }
    }
}

/// Installed fault overlay plus caches derived from it. Boxed so the
/// overwhelmingly common fault-free subarray pays one pointer.
#[derive(Debug, Clone, PartialEq)]
struct FaultState {
    overlay: SubarrayFaults,
    /// Sense offsets with the overlay's shift applied, replacing the
    /// silicon plane reads while the overlay is installed. `None` when
    /// the overlay does not shift offsets.
    shifted_offsets: Option<Vec<f32>>,
}

/// A DRAM subarray with analog cell state.
#[derive(Debug, Clone, PartialEq)]
pub struct Subarray {
    rows: u32,
    cols: u32,
    /// Mutable per-cell normalized voltage plane, row-major.
    voltage: Vec<f32>,
    /// Shared immutable variation planes (the "silicon").
    silicon: Arc<SiliconPlanes>,
    /// Optional defect overlay (stuck/weak cells, shifted sense offsets).
    faults: Option<Box<FaultState>>,
}

impl Subarray {
    /// Builds a subarray with process variation drawn from `seed`. The
    /// variation planes come from the silicon cache: repeated construction
    /// with the same inputs shares one stamp.
    pub fn new(rows: u32, cols: u32, variation: VariationParams, seed: u64) -> Self {
        let silicon = stamped_planes(rows, cols, variation, seed);
        Subarray {
            rows,
            cols,
            voltage: vec![0.0; rows as usize * cols as usize],
            silicon,
            faults: None,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (modelled bitlines).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    #[inline]
    fn check_row(&self, row: u32) {
        assert!(
            row < self.rows,
            "row {row} out of range ({} rows)",
            self.rows
        );
    }

    #[inline]
    fn check(&self, row: u32, col: u32) {
        self.check_row(row);
        assert!(
            col < self.cols,
            "col {col} out of range ({} cols)",
            self.cols
        );
    }

    #[inline]
    fn row_range(&self, row: u32) -> std::ops::Range<usize> {
        let start = row as usize * self.cols as usize;
        start..start + self.cols as usize
    }

    /// A snapshot of one cell (voltage + variation factors).
    ///
    /// This is the one bounds-checked scalar accessor; hot loops should
    /// use the per-row slice accessors instead.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of range.
    pub fn cell(&self, row: u32, col: u32) -> Cell {
        self.check(row, col);
        let i = row as usize * self.cols as usize + col as usize;
        Cell::with_variation(
            self.voltage[i],
            self.silicon.cap_factors()[i],
            self.silicon.strength_factors()[i],
        )
    }

    /// Sets one cell's analog voltage (clamped to `[0, 1]`, like
    /// [`Cell::set_voltage`]).
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of range.
    pub fn set_cell_voltage(&mut self, row: u32, col: u32, voltage: f32) {
        self.check(row, col);
        let i = row as usize * self.cols as usize + col as usize;
        self.voltage[i] = voltage.clamp(0.0, 1.0);
    }

    /// Fully writes a digital value into one cell (rail restore).
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of range.
    pub fn write_cell_bit(&mut self, row: u32, col: u32, bit: bool) {
        self.check(row, col);
        let i = row as usize * self.cols as usize + col as usize;
        self.voltage[i] = if bit { 1.0 } else { 0.0 };
    }

    /// One row's voltage plane.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn row_voltages(&self, row: u32) -> &[f32] {
        self.check_row(row);
        &self.voltage[self.row_range(row)]
    }

    /// One row's voltage plane, mutably. Writes through this accessor are
    /// *not* clamped; callers own the physics.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_voltages_mut(&mut self, row: u32) -> &mut [f32] {
        self.check_row(row);
        let range = self.row_range(row);
        &mut self.voltage[range]
    }

    /// One row's capacitance-factor plane.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn row_cap_factors(&self, row: u32) -> &[f32] {
        self.check_row(row);
        &self.silicon.cap_factors()[self.row_range(row)]
    }

    /// One row's strength-factor plane.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn row_strength_factors(&self, row: u32) -> &[f32] {
        self.check_row(row);
        &self.silicon.strength_factors()[self.row_range(row)]
    }

    /// Splits one row into `(voltages mut, cap factors, strength factors)`
    /// — the mutable voltage slice and the immutable silicon slices borrow
    /// disjoint fields, so restore loops can read variation while writing
    /// charge.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_split_mut(&mut self, row: u32) -> (&mut [f32], &[f32], &[f32]) {
        self.check_row(row);
        let range = self.row_range(row);
        (
            &mut self.voltage[range.clone()],
            &self.silicon.cap_factors()[range.clone()],
            &self.silicon.strength_factors()[range],
        )
    }

    /// Per-column sense-amplifier offset (shifted while a fault overlay
    /// with an offset shift is installed).
    pub fn sense_offset(&self, col: u32) -> f32 {
        self.sense_offsets()[col as usize]
    }

    /// Deterministic resolve direction for dead-even bitlines (Mfr. M).
    pub fn bias_direction(&self, col: u32) -> bool {
        self.silicon.bias_directions()[col as usize]
    }

    /// All per-column sense-amplifier offsets (shifted while a fault
    /// overlay with an offset shift is installed).
    pub fn sense_offsets(&self) -> &[f32] {
        match self.faults.as_deref() {
            Some(state) => state
                .shifted_offsets
                .as_deref()
                .unwrap_or_else(|| self.silicon.sense_offsets()),
            None => self.silicon.sense_offsets(),
        }
    }

    /// All per-column dead-even resolve directions.
    pub fn bias_directions(&self) -> &[bool] {
        self.silicon.bias_directions()
    }

    /// The shared silicon planes (for cache accounting / tests).
    pub fn silicon(&self) -> &Arc<SiliconPlanes> {
        &self.silicon
    }

    /// Installs a defect overlay: stuck/weak cells and a sense-offset
    /// shift, typically derived from a
    /// [`CellFaultSpec`](crate::faults::CellFaultSpec). Stuck cells are
    /// pinned immediately and re-asserted after every write, restore, and
    /// decay pass; the healthy silicon planes are untouched.
    pub fn set_faults(&mut self, overlay: SubarrayFaults) {
        let shifted_offsets = (overlay.sense_offset_shift != 0.0).then(|| {
            self.silicon
                .sense_offsets()
                .iter()
                .map(|&o| o + overlay.sense_offset_shift)
                .collect()
        });
        self.faults = Some(Box::new(FaultState {
            overlay,
            shifted_offsets,
        }));
        self.pin_faulted_cells();
    }

    /// Removes the defect overlay. Cell voltages keep whatever the faults
    /// last left behind; only *future* operations behave healthily.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// The installed defect overlay, if any.
    pub fn faults(&self) -> Option<&SubarrayFaults> {
        self.faults.as_deref().map(|state| &state.overlay)
    }

    /// Re-asserts the overlay's stuck cells in one row. Called after any
    /// write/restore touching the row; a no-op without an overlay.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn pin_row_faults(&mut self, row: u32) {
        self.check_row(row);
        let start = row as usize * self.cols as usize;
        let Some(state) = self.faults.as_deref() else {
            return;
        };
        let voltage = &mut self.voltage;
        for &(col, bit) in state.overlay.stuck_in_row(row) {
            voltage[start + col as usize] = if bit { 1.0 } else { 0.0 };
        }
    }

    /// Re-asserts every stuck cell of the overlay (all rows).
    pub fn pin_faulted_cells(&mut self) {
        let cols = self.cols as usize;
        let Some(state) = self.faults.as_deref() else {
            return;
        };
        let voltage = &mut self.voltage;
        for (&row, cells) in state.overlay.stuck_rows() {
            let start = row as usize * cols;
            for &(col, bit) in cells {
                voltage[start + col as usize] = if bit { 1.0 } else { 0.0 };
            }
        }
    }

    /// Applies the *extra* leakage of weak cells on top of a decay pass
    /// whose healthy survival factor was `base` (see
    /// [`Subarray::decay`]): a weak cell with multiplier `m` decays as if
    /// its survival factor were `base^m`, so the extra factor is
    /// `base^((m−1)/cap)`.
    pub(crate) fn apply_weak_decay(&mut self, base: f64) {
        let cols = self.cols as usize;
        let Some(state) = self.faults.as_deref() else {
            return;
        };
        let caps = self.silicon.cap_factors();
        let voltage = &mut self.voltage;
        for (&row, cells) in state.overlay.weak_rows() {
            let start = row as usize * cols;
            for &(col, mult) in cells {
                let i = start + col as usize;
                let cap = caps[i].max(0.05) as f64;
                let extra = base.powf((mult as f64 - 1.0).max(0.0) / cap) as f32;
                voltage[i] = (0.5 + (voltage[i] - 0.5) * extra).clamp(0.0, 1.0);
            }
        }
    }

    /// Discharges every cell to 0 V, keeping the silicon: the cheap way to
    /// reuse a subarray for a fresh sweep point. Stuck cells re-assert
    /// their pinned value.
    ///
    /// Swaps in a freshly zero-allocated plane rather than `fill(0.0)`:
    /// large zeroed allocations come from the OS as copy-on-write zero
    /// pages, so the reset costs O(pages the next point actually writes)
    /// — exactly what fresh construction pays — instead of an eager
    /// write of the whole plane.
    pub fn reset_voltages(&mut self) {
        self.voltage = vec![0.0; self.rows as usize * self.cols as usize];
        self.pin_faulted_cells();
    }

    /// Fully writes a digital image into a row (rail-to-rail restore).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::WidthMismatch`] if the image width differs from
    /// the subarray width, or [`DramError::RowOutOfRange`] for a bad row.
    pub fn write_row(&mut self, row: u32, image: &BitRow) -> Result<(), DramError> {
        if row >= self.rows {
            return Err(DramError::RowOutOfRange {
                row: crate::geometry::RowAddr::new(row),
                rows_in_bank: self.rows,
            });
        }
        if image.len() != self.cols as usize {
            return Err(DramError::WidthMismatch {
                got: image.len(),
                expected: self.cols as usize,
            });
        }
        let range = self.row_range(row);
        for (col, v) in self.voltage[range].iter_mut().enumerate() {
            *v = if image.get(col) { 1.0 } else { 0.0 };
        }
        // Stuck cells ignore even a nominal-timing write.
        self.pin_row_faults(row);
        Ok(())
    }

    /// Digital read-out of a row (each cell thresholded at VDD/2).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for a bad row.
    pub fn read_row(&self, row: u32) -> Result<BitRow, DramError> {
        if row >= self.rows {
            return Err(DramError::RowOutOfRange {
                row: crate::geometry::RowAddr::new(row),
                rows_in_bank: self.rows,
            });
        }
        Ok(BitRow::from_bits(
            self.voltage[self.row_range(row)].iter().map(|&v| v > 0.5),
        ))
    }

    /// Parks every cell of a row at an exact analog voltage (Frac support).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for a bad row.
    pub fn set_row_voltage(&mut self, row: u32, voltage: f32) -> Result<(), DramError> {
        if row >= self.rows {
            return Err(DramError::RowOutOfRange {
                row: crate::geometry::RowAddr::new(row),
                rows_in_bank: self.rows,
            });
        }
        let clamped = voltage.clamp(0.0, 1.0);
        let range = self.row_range(row);
        self.voltage[range].fill(clamped);
        self.pin_row_faults(row);
        Ok(())
    }
}

// Hand-written serde: the workspace's serde does not enable the `rc`
// feature, so `Arc<SiliconPlanes>` cannot be derived. Serialization
// inlines the planes; deserialization re-wraps them in a fresh `Arc`
// (round-tripped subarrays own their silicon rather than joining the
// cache — equality still holds, sharing does not).
impl Serialize for Subarray {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Subarray", 5)?;
        s.serialize_field("rows", &self.rows)?;
        s.serialize_field("cols", &self.cols)?;
        s.serialize_field("voltage", &self.voltage)?;
        s.serialize_field("silicon", self.silicon.as_ref())?;
        // Only the overlay travels; the shifted-offset cache is re-derived.
        s.serialize_field("faults", &self.faults.as_deref().map(|f| &f.overlay))?;
        s.end()
    }
}

impl<'de> Deserialize<'de> for Subarray {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        #[serde(rename = "Subarray")]
        struct Repr {
            rows: u32,
            cols: u32,
            voltage: Vec<f32>,
            silicon: SiliconPlanes,
            #[serde(default)]
            faults: Option<SubarrayFaults>,
        }
        let r = Repr::deserialize(deserializer)?;
        let n = r.rows as usize * r.cols as usize;
        if r.voltage.len() != n {
            return Err(serde::de::Error::custom(format!(
                "voltage plane has {} cells, geometry wants {n}",
                r.voltage.len()
            )));
        }
        if r.silicon.rows() != r.rows || r.silicon.cols() != r.cols {
            return Err(serde::de::Error::custom(
                "silicon plane shape does not match subarray geometry",
            ));
        }
        let mut sa = Subarray {
            rows: r.rows,
            cols: r.cols,
            voltage: r.voltage,
            silicon: Arc::new(r.silicon),
            faults: None,
        };
        if let Some(overlay) = r.faults {
            // Round-tripped voltages already reflect the pinned cells;
            // re-pinning through set_faults is idempotent.
            sa.set_faults(overlay);
        }
        Ok(sa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataPattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> Subarray {
        Subarray::new(16, 64, VariationParams::default(), 42)
    }

    #[test]
    fn write_read_roundtrip() {
        let mut sa = small();
        let mut rng = StdRng::seed_from_u64(1);
        let img = DataPattern::Random.row_image(0, 64, &mut rng);
        sa.write_row(3, &img).unwrap();
        assert_eq!(sa.read_row(3).unwrap(), img);
    }

    #[test]
    fn construction_is_seed_deterministic() {
        let a = Subarray::new(8, 32, VariationParams::default(), 7);
        let b = Subarray::new(8, 32, VariationParams::default(), 7);
        assert_eq!(a, b);
        let c = Subarray::new(8, 32, VariationParams::default(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn same_seed_shares_silicon() {
        let a = Subarray::new(8, 32, VariationParams::default(), 7);
        let b = Subarray::new(8, 32, VariationParams::default(), 7);
        assert!(
            Arc::ptr_eq(a.silicon(), b.silicon()),
            "twin subarrays must share one silicon stamp"
        );
    }

    #[test]
    fn variation_statistics_roughly_match_sigma() {
        let sa = Subarray::new(64, 256, VariationParams::default(), 3);
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        let n = (sa.rows() * sa.cols()) as f64;
        for r in 0..sa.rows() {
            for c in 0..sa.cols() {
                let v = sa.cell(r, c).cap_factor() as f64;
                sum += v;
                sum2 += v * v;
            }
        }
        let mean = sum / n;
        let var = sum2 / n - mean * mean;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.07).abs() < 0.01, "sigma {}", var.sqrt());
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut sa = small();
        let img = BitRow::zeros(32);
        assert!(matches!(
            sa.write_row(0, &img),
            Err(DramError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn row_out_of_range_rejected() {
        let mut sa = small();
        let img = BitRow::zeros(64);
        assert!(sa.write_row(16, &img).is_err());
        assert!(sa.read_row(16).is_err());
        assert!(sa.set_row_voltage(16, 0.5).is_err());
    }

    #[test]
    fn set_row_voltage_parks_cells() {
        let mut sa = small();
        sa.set_row_voltage(2, 0.5).unwrap();
        for c in 0..sa.cols() {
            assert!(sa.cell(2, c).is_neutral(1e-6));
        }
    }

    #[test]
    fn slice_accessors_agree_with_cell() {
        let mut sa = small();
        sa.write_row(5, &BitRow::ones(64)).unwrap();
        let volts = sa.row_voltages(5).to_vec();
        let caps = sa.row_cap_factors(5).to_vec();
        let strengths = sa.row_strength_factors(5).to_vec();
        for c in 0..sa.cols() {
            let cell = sa.cell(5, c);
            assert_eq!(volts[c as usize], cell.voltage());
            assert_eq!(caps[c as usize], cell.cap_factor());
            assert_eq!(strengths[c as usize], cell.strength_factor());
        }
        let (v_mut, caps2, strengths2) = sa.row_split_mut(5);
        assert_eq!(v_mut, &volts[..]);
        assert_eq!(caps2, &caps[..]);
        assert_eq!(strengths2, &strengths[..]);
    }

    #[test]
    fn scalar_mutators_match_cell_semantics() {
        let mut sa = small();
        sa.set_cell_voltage(0, 0, 1.7);
        assert_eq!(sa.cell(0, 0).voltage(), 1.0, "set_cell_voltage clamps");
        sa.set_cell_voltage(0, 0, -0.3);
        assert_eq!(sa.cell(0, 0).voltage(), 0.0);
        sa.write_cell_bit(0, 1, true);
        assert!(sa.cell(0, 1).as_bit());
        sa.write_cell_bit(0, 1, false);
        assert!(!sa.cell(0, 1).as_bit());
    }

    #[test]
    fn reset_voltages_keeps_silicon() {
        let mut sa = small();
        sa.write_row(0, &BitRow::ones(64)).unwrap();
        let caps_before = sa.row_cap_factors(0).to_vec();
        sa.reset_voltages();
        assert_eq!(sa.read_row(0).unwrap().count_ones(), 0);
        assert_eq!(sa.row_cap_factors(0), &caps_before[..]);
    }

    #[test]
    #[should_panic(expected = "row 16 out of range")]
    fn out_of_range_row_access_panics() {
        let _ = small().cell(16, 0);
    }

    #[test]
    #[should_panic(expected = "col 64 out of range")]
    fn out_of_range_col_access_panics() {
        let _ = small().cell(0, 64);
    }

    #[test]
    #[should_panic(expected = "row 16 out of range")]
    fn out_of_range_row_slice_panics() {
        let _ = small().row_voltages(16).len();
    }

    fn dense_faults(sa: &Subarray) -> crate::faults::SubarrayFaults {
        crate::faults::CellFaultSpec {
            seed: 0xF00D,
            stuck_per_million: 20_000.0,
            weak_per_million: 20_000.0,
            weak_leak_multiplier: 10.0,
            sense_offset_shift: 0.01,
        }
        .derive(sa.rows(), sa.cols(), 42)
    }

    #[test]
    fn stuck_cells_ignore_writes() {
        let mut sa = small();
        let overlay = dense_faults(&sa);
        assert!(overlay.stuck_count() > 0, "spec dense enough to test");
        sa.set_faults(overlay.clone());
        sa.write_row(0, &BitRow::ones(64)).unwrap();
        for &(col, bit) in overlay.stuck_in_row(0) {
            assert_eq!(
                sa.cell(0, col).as_bit(),
                bit,
                "stuck cell ({col}) must keep its pinned value"
            );
        }
        sa.reset_voltages();
        for &(col, bit) in overlay.stuck_in_row(0) {
            assert_eq!(sa.cell(0, col).as_bit(), bit);
        }
    }

    #[test]
    fn sense_offsets_are_shifted_under_faults() {
        let mut sa = small();
        let healthy = sa.sense_offsets().to_vec();
        sa.set_faults(dense_faults(&sa));
        for (col, &h) in healthy.iter().enumerate() {
            assert!((sa.sense_offset(col as u32) - (h + 0.01)).abs() < 1e-7);
        }
        sa.clear_faults();
        assert_eq!(sa.sense_offsets(), &healthy[..]);
    }

    #[test]
    fn clear_faults_restores_healthy_writes() {
        let mut sa = small();
        sa.set_faults(dense_faults(&sa));
        sa.clear_faults();
        assert!(sa.faults().is_none());
        sa.write_row(1, &BitRow::ones(64)).unwrap();
        assert_eq!(sa.read_row(1).unwrap().count_ones(), 64);
    }

    #[test]
    fn empty_overlay_changes_nothing() {
        let mut faulted = small();
        faulted.set_faults(crate::faults::SubarrayFaults::default());
        let healthy = small();
        faulted.write_row(2, &BitRow::ones(64)).unwrap();
        let mut h = healthy;
        h.write_row(2, &BitRow::ones(64)).unwrap();
        assert_eq!(faulted.row_voltages(2), h.row_voltages(2));
        assert_eq!(faulted.sense_offsets(), h.sense_offsets());
    }
}
