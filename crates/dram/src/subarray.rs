//! The DRAM subarray: a 2-D grid of cells sharing bitlines and sense
//! amplifiers.
//!
//! Process variation is stamped at construction from a deterministic seed:
//! per-cell capacitance/strength factors and a per-column sense-amplifier
//! offset. The same (module-seed, bank, subarray) triple always produces
//! the same silicon, which is what lets the paper-style "cell is unstable"
//! classification be meaningful across repeated trials.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cell::Cell;
use crate::data::BitRow;
use crate::error::DramError;

/// Gaussian sample via Box–Muller; avoids pulling in a distributions crate.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Construction parameters for a subarray's process variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationParams {
    /// Sigma of the per-cell capacitance factor (around 1.0).
    pub cell_cap_sigma: f32,
    /// Sigma of the per-cell access-strength factor (around 1.0).
    pub cell_strength_sigma: f32,
    /// Sigma of the per-column sense-amplifier offset, in normalized
    /// bitline-voltage units (fraction of VDD).
    pub sense_offset_sigma: f32,
}

impl Default for VariationParams {
    fn default() -> Self {
        // Calibrated jointly with `simra_analog::params::calibrated()`.
        VariationParams {
            cell_cap_sigma: 0.07,
            cell_strength_sigma: 0.05,
            sense_offset_sigma: 0.0035,
        }
    }
}

/// A DRAM subarray with analog cell state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subarray {
    rows: u32,
    cols: u32,
    cells: Vec<Cell>,
    /// Per-column sense-amplifier input-referred offset (fraction of VDD).
    sense_offsets: Vec<f32>,
    /// Per-column deterministic bias direction used when a bitline resolves
    /// dead-even on biased-sense-amp parts (Mfr. M).
    bias_direction: Vec<bool>,
}

impl Subarray {
    /// Builds a subarray with process variation drawn from `seed`.
    pub fn new(rows: u32, cols: u32, variation: VariationParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rows as usize * cols as usize;
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            let cap = 1.0 + gaussian(&mut rng) * variation.cell_cap_sigma;
            let strength = 1.0 + gaussian(&mut rng) * variation.cell_strength_sigma;
            cells.push(Cell::with_variation(0.0, cap, strength));
        }
        let sense_offsets = (0..cols)
            .map(|_| gaussian(&mut rng) * variation.sense_offset_sigma)
            .collect();
        let bias_direction = (0..cols).map(|_| rng.gen()).collect();
        Subarray {
            rows,
            cols,
            cells,
            sense_offsets,
            bias_direction,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (modelled bitlines).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    fn index(&self, row: u32, col: u32) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row as usize * self.cols as usize + col as usize
    }

    /// Immutable access to a cell.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of range.
    pub fn cell(&self, row: u32, col: u32) -> Cell {
        assert!(
            row < self.rows,
            "row {row} out of range ({} rows)",
            self.rows
        );
        assert!(
            col < self.cols,
            "col {col} out of range ({} cols)",
            self.cols
        );
        self.cells[self.index(row, col)]
    }

    /// Mutable access to a cell.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of range.
    pub fn cell_mut(&mut self, row: u32, col: u32) -> &mut Cell {
        assert!(
            row < self.rows,
            "row {row} out of range ({} rows)",
            self.rows
        );
        assert!(
            col < self.cols,
            "col {col} out of range ({} cols)",
            self.cols
        );
        let i = self.index(row, col);
        &mut self.cells[i]
    }

    /// Per-column sense-amplifier offset.
    pub fn sense_offset(&self, col: u32) -> f32 {
        self.sense_offsets[col as usize]
    }

    /// Deterministic resolve direction for dead-even bitlines (Mfr. M).
    pub fn bias_direction(&self, col: u32) -> bool {
        self.bias_direction[col as usize]
    }

    /// Fully writes a digital image into a row (rail-to-rail restore).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::WidthMismatch`] if the image width differs from
    /// the subarray width, or [`DramError::RowOutOfRange`] for a bad row.
    pub fn write_row(&mut self, row: u32, image: &BitRow) -> Result<(), DramError> {
        if row >= self.rows {
            return Err(DramError::RowOutOfRange {
                row: crate::geometry::RowAddr::new(row),
                rows_in_bank: self.rows,
            });
        }
        if image.len() != self.cols as usize {
            return Err(DramError::WidthMismatch {
                got: image.len(),
                expected: self.cols as usize,
            });
        }
        for col in 0..self.cols {
            let i = self.index(row, col);
            self.cells[i].write_bit(image.get(col as usize));
        }
        Ok(())
    }

    /// Digital read-out of a row (each cell thresholded at VDD/2).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for a bad row.
    pub fn read_row(&self, row: u32) -> Result<BitRow, DramError> {
        if row >= self.rows {
            return Err(DramError::RowOutOfRange {
                row: crate::geometry::RowAddr::new(row),
                rows_in_bank: self.rows,
            });
        }
        Ok(BitRow::from_bits(
            (0..self.cols).map(|c| self.cell(row, c).as_bit()),
        ))
    }

    /// Parks every cell of a row at an exact analog voltage (Frac support).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for a bad row.
    pub fn set_row_voltage(&mut self, row: u32, voltage: f32) -> Result<(), DramError> {
        if row >= self.rows {
            return Err(DramError::RowOutOfRange {
                row: crate::geometry::RowAddr::new(row),
                rows_in_bank: self.rows,
            });
        }
        for col in 0..self.cols {
            let i = self.index(row, col);
            self.cells[i].set_voltage(voltage);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataPattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> Subarray {
        Subarray::new(16, 64, VariationParams::default(), 42)
    }

    #[test]
    fn write_read_roundtrip() {
        let mut sa = small();
        let mut rng = StdRng::seed_from_u64(1);
        let img = DataPattern::Random.row_image(0, 64, &mut rng);
        sa.write_row(3, &img).unwrap();
        assert_eq!(sa.read_row(3).unwrap(), img);
    }

    #[test]
    fn construction_is_seed_deterministic() {
        let a = Subarray::new(8, 32, VariationParams::default(), 7);
        let b = Subarray::new(8, 32, VariationParams::default(), 7);
        assert_eq!(a, b);
        let c = Subarray::new(8, 32, VariationParams::default(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn variation_statistics_roughly_match_sigma() {
        let sa = Subarray::new(64, 256, VariationParams::default(), 3);
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        let n = (sa.rows() * sa.cols()) as f64;
        for r in 0..sa.rows() {
            for c in 0..sa.cols() {
                let v = sa.cell(r, c).cap_factor() as f64;
                sum += v;
                sum2 += v * v;
            }
        }
        let mean = sum / n;
        let var = sum2 / n - mean * mean;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.07).abs() < 0.01, "sigma {}", var.sqrt());
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut sa = small();
        let img = BitRow::zeros(32);
        assert!(matches!(
            sa.write_row(0, &img),
            Err(DramError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn row_out_of_range_rejected() {
        let mut sa = small();
        let img = BitRow::zeros(64);
        assert!(sa.write_row(16, &img).is_err());
        assert!(sa.read_row(16).is_err());
        assert!(sa.set_row_voltage(16, 0.5).is_err());
    }

    #[test]
    fn set_row_voltage_parks_cells() {
        let mut sa = small();
        sa.set_row_voltage(2, 0.5).unwrap();
        for c in 0..sa.cols() {
            assert!(sa.cell(2, c).is_neutral(1e-6));
        }
    }
}
