//! Immutable process-variation planes ("silicon") and the silicon cache.
//!
//! A subarray's analog state splits cleanly in two: the *silicon* —
//! per-cell capacitance/strength factors, per-column sense-amplifier
//! offsets and bias directions, all fixed at manufacture time — and the
//! *charge* — the per-cell voltage plane, which every operation mutates.
//! The silicon is a pure function of `(geometry, variation, seed)`, so it
//! can be stamped once and shared via [`Arc`] across every module instance
//! a characterization sweep builds: sweeping a new timing/pattern/N point
//! resets voltage state instead of re-deriving thousands of Gaussians.
//!
//! [`stamped_planes`] is the cached entry point; [`SiliconPlanes::stamp`]
//! is the uncached constructor. The stamping RNG order is load-bearing:
//! per-cell cap then strength factors (row-major), then per-column sense
//! offsets, then per-column bias directions — the same draw order the
//! original `Subarray::new` used, so stamped silicon is bit-identical to
//! the pre-cache model. Fault injection (see [`crate::faults`]) never
//! draws from this stream: defect overlays come from a dedicated,
//! salted stream so faulty and fault-free silicon share one stamp.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::subarray::VariationParams;

/// Gaussian sample via Box–Muller; avoids pulling in a distributions crate.
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// The immutable variation planes of one subarray, stored structure-of-
/// arrays so the charge-sharing inner loops run over contiguous `f32`
/// slices (row-major, `rows × cols`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiliconPlanes {
    rows: u32,
    cols: u32,
    /// Per-cell capacitance factor (multiple of nominal), row-major.
    cap_factor: Vec<f32>,
    /// Per-cell access-transistor strength factor, row-major.
    strength_factor: Vec<f32>,
    /// Per-column sense-amplifier input-referred offset (fraction of VDD).
    sense_offsets: Vec<f32>,
    /// Per-column deterministic bias direction used when a bitline resolves
    /// dead-even on biased-sense-amp parts (Mfr. M).
    bias_direction: Vec<bool>,
}

impl SiliconPlanes {
    /// Stamps the variation planes from `seed` (uncached).
    ///
    /// Factors are clamped to `[0.05, 4.0]`; a zero or negative capacitance
    /// is physically meaningless and would poison the charge arithmetic.
    pub fn stamp(rows: u32, cols: u32, variation: VariationParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rows as usize * cols as usize;
        let mut cap_factor = Vec::with_capacity(n);
        let mut strength_factor = Vec::with_capacity(n);
        for _ in 0..n {
            let cap = 1.0 + gaussian(&mut rng) * variation.cell_cap_sigma;
            let strength = 1.0 + gaussian(&mut rng) * variation.cell_strength_sigma;
            cap_factor.push(cap.clamp(0.05, 4.0));
            strength_factor.push(strength.clamp(0.05, 4.0));
        }
        let sense_offsets = (0..cols)
            .map(|_| gaussian(&mut rng) * variation.sense_offset_sigma)
            .collect();
        let bias_direction = (0..cols).map(|_| rng.gen()).collect();
        SiliconPlanes {
            rows,
            cols,
            cap_factor,
            strength_factor,
            sense_offsets,
            bias_direction,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The full per-cell capacitance-factor plane, row-major.
    #[inline]
    pub fn cap_factors(&self) -> &[f32] {
        &self.cap_factor
    }

    /// The full per-cell strength-factor plane, row-major.
    #[inline]
    pub fn strength_factors(&self) -> &[f32] {
        &self.strength_factor
    }

    /// Per-column sense-amplifier offsets.
    pub fn sense_offsets(&self) -> &[f32] {
        &self.sense_offsets
    }

    /// Per-column dead-even resolve directions.
    pub fn bias_directions(&self) -> &[bool] {
        &self.bias_direction
    }
}

/// Cache key: the complete input set of [`SiliconPlanes::stamp`]. Sigmas
/// are keyed by bit pattern (they come from a fixed calibration table, so
/// bitwise equality is the right notion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SiliconKey {
    rows: u32,
    cols: u32,
    cap_sigma_bits: u32,
    strength_sigma_bits: u32,
    offset_sigma_bits: u32,
    seed: u64,
}

/// Upper bound on cached planes. The paper-scale fleet touches at most
/// 18 modules × 16 banks × 3 subarrays = 864 distinct planes (~1 MB each
/// at the default 512 × 256 geometry); the cap only exists so pathological
/// seed churn (e.g. fuzzing) cannot grow the cache without bound.
const SILICON_CACHE_CAP: usize = 1024;

static SILICON_CACHE: OnceLock<Mutex<HashMap<SiliconKey, Arc<SiliconPlanes>>>> = OnceLock::new();

fn cache() -> &'static Mutex<HashMap<SiliconKey, Arc<SiliconPlanes>>> {
    SILICON_CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the (possibly cached) silicon planes for the given stamp
/// inputs. Every call with the same inputs returns a clone of the same
/// `Arc`, so a fleet sweep stamps each subarray's Gaussians exactly once.
pub fn stamped_planes(
    rows: u32,
    cols: u32,
    variation: VariationParams,
    seed: u64,
) -> Arc<SiliconPlanes> {
    let key = SiliconKey {
        rows,
        cols,
        cap_sigma_bits: variation.cell_cap_sigma.to_bits(),
        strength_sigma_bits: variation.cell_strength_sigma.to_bits(),
        offset_sigma_bits: variation.sense_offset_sigma.to_bits(),
        seed,
    };
    if let Some(hit) = cache().lock().expect("silicon cache poisoned").get(&key) {
        return Arc::clone(hit);
    }
    // Stamp outside the lock: the Box–Muller pass over the whole plane is
    // the expensive part and other threads may want unrelated entries.
    let fresh = Arc::new(SiliconPlanes::stamp(rows, cols, variation, seed));
    let mut map = cache().lock().expect("silicon cache poisoned");
    if map.len() >= SILICON_CACHE_CAP {
        // Dropping everything is safe: stamping is deterministic, evicted
        // entries are simply re-derived on next touch.
        map.clear();
    }
    Arc::clone(map.entry(key).or_insert(fresh))
}

/// Number of currently cached planes (memory accounting / tests).
pub fn silicon_cache_len() -> usize {
    cache().lock().expect("silicon cache poisoned").len()
}

/// Drops every cached plane. Purely a memory-release lever; subsequent
/// [`stamped_planes`] calls re-derive identical silicon.
pub fn silicon_cache_clear() {
    cache().lock().expect("silicon cache poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamping_is_seed_deterministic() {
        let v = VariationParams::default();
        let a = SiliconPlanes::stamp(8, 16, v, 42);
        let b = SiliconPlanes::stamp(8, 16, v, 42);
        assert_eq!(a, b);
        let c = SiliconPlanes::stamp(8, 16, v, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn planes_have_expected_shapes() {
        let p = SiliconPlanes::stamp(4, 8, VariationParams::default(), 1);
        assert_eq!(p.rows(), 4);
        assert_eq!(p.cols(), 8);
        assert_eq!(p.cap_factors().len(), 32);
        assert_eq!(p.strength_factors().len(), 32);
        assert_eq!(p.sense_offsets().len(), 8);
        assert_eq!(p.bias_directions().len(), 8);
    }

    #[test]
    fn factors_are_clamped() {
        let wild = VariationParams {
            cell_cap_sigma: 50.0,
            cell_strength_sigma: 50.0,
            sense_offset_sigma: 0.0,
        };
        let p = SiliconPlanes::stamp(16, 16, wild, 3);
        for &f in p.cap_factors().iter().chain(p.strength_factors()) {
            assert!((0.05..=4.0).contains(&f), "factor {f} escaped the clamp");
        }
    }

    #[test]
    fn cache_shares_identical_stamps() {
        let v = VariationParams::default();
        // A seed no other test uses, so the entry is ours.
        let a = stamped_planes(8, 8, v, 0xCAFE_0001);
        let b = stamped_planes(8, 8, v, 0xCAFE_0001);
        assert!(Arc::ptr_eq(&a, &b), "same inputs must share one stamp");
        let c = stamped_planes(8, 8, v, 0xCAFE_0002);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_ne!(*a, *c);
    }

    #[test]
    fn cache_clear_restamps_identically() {
        let v = VariationParams::default();
        let before = stamped_planes(8, 8, v, 0xCAFE_0003);
        silicon_cache_clear();
        let after = stamped_planes(8, 8, v, 0xCAFE_0003);
        assert_eq!(*before, *after, "restamped silicon must be identical");
    }
}
