//! The DRAM bank: lazily materialised subarrays plus sense-amplifier state.
//!
//! Banks instantiate subarrays on first touch — a 16-bank module has up to
//! 128 subarrays but a characterization run only ever opens a handful, and
//! lazy materialisation keeps memory proportional to what is tested.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::data::BitRow;
use crate::error::DramError;
use crate::geometry::{Geometry, RowAddr, SubarrayId};
use crate::subarray::{Subarray, VariationParams};

/// Sense-amplifier / wordline state of a bank.
///
/// After an APA sequence multiple local wordlines can be asserted at once;
/// the state records which subarray they are in, which local rows are open,
/// and what the sense amplifiers have latched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BankState {
    /// Bitlines precharged to VDD/2; no wordline asserted.
    Precharged,
    /// One or more wordlines asserted in a single subarray, with the
    /// sense amplifiers latched to `latched`.
    Activated {
        /// The subarray whose local wordlines are asserted.
        subarray: SubarrayId,
        /// Asserted local row indices within that subarray.
        open_rows: Vec<u32>,
        /// The digital value currently driven on the bitlines.
        latched: BitRow,
    },
}

/// A DRAM bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bank {
    geometry: Geometry,
    variation: VariationParams,
    seed: u64,
    subarrays: BTreeMap<SubarrayId, Subarray>,
    state: BankState,
}

impl Bank {
    /// Creates a bank whose subarrays will be stamped from `seed`.
    pub fn new(geometry: Geometry, variation: VariationParams, seed: u64) -> Self {
        Bank {
            geometry,
            variation,
            seed,
            subarrays: BTreeMap::new(),
            state: BankState::Precharged,
        }
    }

    /// The bank's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Current sense-amplifier / wordline state.
    pub fn state(&self) -> &BankState {
        &self.state
    }

    /// Sets the sense/wordline state (the sequencer drives this).
    pub fn set_state(&mut self, state: BankState) {
        self.state = state;
    }

    /// Returns the subarray, materialising it on first touch.
    pub fn subarray(&mut self, id: SubarrayId) -> &mut Subarray {
        let geometry = self.geometry;
        let variation = self.variation;
        let seed = self.seed;
        self.subarrays.entry(id).or_insert_with(|| {
            // Mix the subarray id into the seed so every subarray gets
            // distinct but reproducible silicon.
            let sa_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(id.raw() as u64 + 1);
            Subarray::new(
                geometry.rows_per_subarray,
                geometry.cols_per_row,
                variation,
                sa_seed,
            )
        })
    }

    /// Read-only view of an already-materialised subarray.
    pub fn subarray_if_materialized(&self, id: SubarrayId) -> Option<&Subarray> {
        self.subarrays.get(&id)
    }

    /// Number of materialised subarrays (memory accounting / tests).
    pub fn materialized_subarrays(&self) -> usize {
        self.subarrays.len()
    }

    /// Writes a digital image to a bank-level row address, respecting
    /// nominal timings (i.e. bypassing the analog path — used for test
    /// initialisation, exactly like the paper initialising rows "while
    /// adhering to the nominal timing parameters").
    ///
    /// # Errors
    ///
    /// Propagates geometry and width errors.
    pub fn write_row_nominal(&mut self, row: RowAddr, image: &BitRow) -> Result<(), DramError> {
        let (sa, local) = self.geometry.split_row(row)?;
        self.subarray(sa).write_row(local, image)
    }

    /// Reads a bank-level row address with nominal timings.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors.
    pub fn read_row_nominal(&mut self, row: RowAddr) -> Result<BitRow, DramError> {
        let (sa, local) = self.geometry.split_row(row)?;
        self.subarray(sa).read_row(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataPattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bank() -> Bank {
        Bank::new(Geometry::default(), VariationParams::default(), 11)
    }

    #[test]
    fn lazy_materialisation() {
        let mut b = bank();
        assert_eq!(b.materialized_subarrays(), 0);
        let _ = b.subarray(SubarrayId::new(3));
        assert_eq!(b.materialized_subarrays(), 1);
        let _ = b.subarray(SubarrayId::new(3));
        assert_eq!(b.materialized_subarrays(), 1);
    }

    #[test]
    fn nominal_write_read_via_bank_address() {
        let mut b = bank();
        let cols = b.geometry().cols_per_row as usize;
        let mut rng = StdRng::seed_from_u64(5);
        let img = DataPattern::Random.row_image(0, cols, &mut rng);
        // Row 600 lives in subarray 1 (512-row subarrays).
        let row = RowAddr::new(600);
        b.write_row_nominal(row, &img).unwrap();
        assert_eq!(b.read_row_nominal(row).unwrap(), img);
        assert!(b.subarray_if_materialized(SubarrayId::new(1)).is_some());
        assert!(b.subarray_if_materialized(SubarrayId::new(0)).is_none());
    }

    #[test]
    fn different_subarrays_get_different_silicon() {
        let mut b = bank();
        let s0 = b.subarray(SubarrayId::new(0)).clone();
        let s1 = b.subarray(SubarrayId::new(1)).clone();
        assert_ne!(s0, s1);
    }

    #[test]
    fn state_transitions() {
        let mut b = bank();
        assert_eq!(*b.state(), BankState::Precharged);
        b.set_state(BankState::Activated {
            subarray: SubarrayId::new(0),
            open_rows: vec![1, 2],
            latched: BitRow::zeros(4),
        });
        assert!(matches!(b.state(), BankState::Activated { .. }));
    }

    #[test]
    fn out_of_range_row_rejected() {
        let mut b = bank();
        let img = BitRow::zeros(b.geometry().cols_per_row as usize);
        let bad = RowAddr::new(b.geometry().rows_per_bank());
        assert!(b.write_row_nominal(bad, &img).is_err());
    }
}
