//! The DRAM bank: lazily materialised subarrays plus sense-amplifier state.
//!
//! Banks instantiate subarrays on first touch — a 16-bank module has up to
//! 128 subarrays but a characterization run only ever opens a handful, and
//! lazy materialisation keeps memory proportional to what is tested.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::data::BitRow;
use crate::error::DramError;
use crate::faults::CellFaultSpec;
use crate::geometry::{Geometry, RowAddr, SubarrayId};
use crate::subarray::{Subarray, VariationParams};

/// Sense-amplifier / wordline state of a bank.
///
/// After an APA sequence multiple local wordlines can be asserted at once;
/// the state records which subarray they are in, which local rows are open,
/// and what the sense amplifiers have latched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BankState {
    /// Bitlines precharged to VDD/2; no wordline asserted.
    Precharged,
    /// One or more wordlines asserted in a single subarray, with the
    /// sense amplifiers latched to `latched`.
    Activated {
        /// The subarray whose local wordlines are asserted.
        subarray: SubarrayId,
        /// Asserted local row indices within that subarray.
        open_rows: Vec<u32>,
        /// The digital value currently driven on the bitlines.
        latched: BitRow,
    },
}

/// A DRAM bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bank {
    geometry: Geometry,
    variation: VariationParams,
    seed: u64,
    subarrays: BTreeMap<SubarrayId, Subarray>,
    state: BankState,
    /// Cell-fault spec applied to every subarray (present and future).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    fault_spec: Option<CellFaultSpec>,
    /// Subarrays handed out mutably since the last [`Bank::reset_for_reuse`]
    /// — the only ones whose voltage plane can differ from the fresh
    /// (all-zero, faults-pinned) state, and therefore the only ones reset
    /// needs to touch. Keeps rig reuse O(planes used by the last point)
    /// instead of O(every plane ever materialised).
    #[serde(default, skip_serializing_if = "BTreeSet::is_empty")]
    touched: BTreeSet<SubarrayId>,
}

impl Bank {
    /// Creates a bank whose subarrays will be stamped from `seed`.
    pub fn new(geometry: Geometry, variation: VariationParams, seed: u64) -> Self {
        Bank {
            geometry,
            variation,
            seed,
            subarrays: BTreeMap::new(),
            state: BankState::Precharged,
            fault_spec: None,
            touched: BTreeSet::new(),
        }
    }

    /// Deterministic per-subarray silicon seed (also keys the fault
    /// overlay's dedicated stream).
    fn subarray_seed(seed: u64, id: SubarrayId) -> u64 {
        // Mix the subarray id into the seed so every subarray gets
        // distinct but reproducible silicon.
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id.raw() as u64 + 1)
    }

    /// Installs (or, with `None`, clears) the cell-fault spec: every
    /// already-materialised subarray gets its overlay re-derived, and
    /// every future materialisation applies it automatically.
    pub fn set_fault_spec(&mut self, spec: Option<CellFaultSpec>) {
        self.fault_spec = spec;
        let seed = self.seed;
        for (id, sa) in self.subarrays.iter_mut() {
            // Re-deriving an overlay pins cells (and a cleared overlay
            // leaves old pins behind), so these planes are no longer in
            // the canonical fresh state.
            self.touched.insert(*id);
            match spec {
                Some(s) if !s.is_empty() => {
                    sa.set_faults(s.derive(sa.rows(), sa.cols(), Self::subarray_seed(seed, *id)));
                }
                _ => sa.clear_faults(),
            }
        }
    }

    /// The installed cell-fault spec, if any.
    pub fn fault_spec(&self) -> Option<&CellFaultSpec> {
        self.fault_spec.as_ref()
    }

    /// Returns the bank to its exact just-constructed state without
    /// dropping any materialised silicon: bitlines precharged, every
    /// voltage plane touched since the last reset zeroed (with faulted
    /// cells re-pinned) — untouched planes are already in that state. A
    /// reused bank is indistinguishable from a fresh [`Bank::new`]
    /// because fresh subarrays also start with an all-zero plane and
    /// materialisation is a pure function of
    /// `(geometry, variation, seed, fault_spec)`.
    pub fn reset_for_reuse(&mut self) {
        self.state = BankState::Precharged;
        // Only planes handed out mutably since the last reset can differ
        // from the fresh state; everything else is already zeroed+pinned.
        for id in std::mem::take(&mut self.touched) {
            if let Some(sa) = self.subarrays.get_mut(&id) {
                sa.reset_voltages();
            }
        }
    }

    /// The bank's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Current sense-amplifier / wordline state.
    pub fn state(&self) -> &BankState {
        &self.state
    }

    /// Sets the sense/wordline state (the sequencer drives this).
    pub fn set_state(&mut self, state: BankState) {
        self.state = state;
    }

    /// Returns the subarray, materialising it on first touch (applying
    /// the bank's fault spec, if one is installed).
    pub fn subarray(&mut self, id: SubarrayId) -> &mut Subarray {
        let geometry = self.geometry;
        let variation = self.variation;
        let seed = self.seed;
        let fault_spec = self.fault_spec;
        self.touched.insert(id);
        self.subarrays.entry(id).or_insert_with(|| {
            let sa_seed = Self::subarray_seed(seed, id);
            let mut sa = Subarray::new(
                geometry.rows_per_subarray,
                geometry.cols_per_row,
                variation,
                sa_seed,
            );
            if let Some(spec) = fault_spec {
                if !spec.is_empty() {
                    sa.set_faults(spec.derive(sa.rows(), sa.cols(), sa_seed));
                }
            }
            sa
        })
    }

    /// Read-only view of an already-materialised subarray.
    pub fn subarray_if_materialized(&self, id: SubarrayId) -> Option<&Subarray> {
        self.subarrays.get(&id)
    }

    /// Number of materialised subarrays (memory accounting / tests).
    pub fn materialized_subarrays(&self) -> usize {
        self.subarrays.len()
    }

    /// Writes a digital image to a bank-level row address, respecting
    /// nominal timings (i.e. bypassing the analog path — used for test
    /// initialisation, exactly like the paper initialising rows "while
    /// adhering to the nominal timing parameters").
    ///
    /// # Errors
    ///
    /// Propagates geometry and width errors.
    pub fn write_row_nominal(&mut self, row: RowAddr, image: &BitRow) -> Result<(), DramError> {
        let (sa, local) = self.geometry.split_row(row)?;
        self.subarray(sa).write_row(local, image)
    }

    /// Reads a bank-level row address with nominal timings.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors.
    pub fn read_row_nominal(&mut self, row: RowAddr) -> Result<BitRow, DramError> {
        let (sa, local) = self.geometry.split_row(row)?;
        self.subarray(sa).read_row(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataPattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bank() -> Bank {
        Bank::new(Geometry::default(), VariationParams::default(), 11)
    }

    #[test]
    fn lazy_materialisation() {
        let mut b = bank();
        assert_eq!(b.materialized_subarrays(), 0);
        let _ = b.subarray(SubarrayId::new(3));
        assert_eq!(b.materialized_subarrays(), 1);
        let _ = b.subarray(SubarrayId::new(3));
        assert_eq!(b.materialized_subarrays(), 1);
    }

    #[test]
    fn nominal_write_read_via_bank_address() {
        let mut b = bank();
        let cols = b.geometry().cols_per_row as usize;
        let mut rng = StdRng::seed_from_u64(5);
        let img = DataPattern::Random.row_image(0, cols, &mut rng);
        // Row 600 lives in subarray 1 (512-row subarrays).
        let row = RowAddr::new(600);
        b.write_row_nominal(row, &img).unwrap();
        assert_eq!(b.read_row_nominal(row).unwrap(), img);
        assert!(b.subarray_if_materialized(SubarrayId::new(1)).is_some());
        assert!(b.subarray_if_materialized(SubarrayId::new(0)).is_none());
    }

    #[test]
    fn different_subarrays_get_different_silicon() {
        let mut b = bank();
        let s0 = b.subarray(SubarrayId::new(0)).clone();
        let s1 = b.subarray(SubarrayId::new(1)).clone();
        assert_ne!(s0, s1);
    }

    #[test]
    fn state_transitions() {
        let mut b = bank();
        assert_eq!(*b.state(), BankState::Precharged);
        b.set_state(BankState::Activated {
            subarray: SubarrayId::new(0),
            open_rows: vec![1, 2],
            latched: BitRow::zeros(4),
        });
        assert!(matches!(b.state(), BankState::Activated { .. }));
    }

    #[test]
    fn out_of_range_row_rejected() {
        let mut b = bank();
        let img = BitRow::zeros(b.geometry().cols_per_row as usize);
        let bad = RowAddr::new(b.geometry().rows_per_bank());
        assert!(b.write_row_nominal(bad, &img).is_err());
    }

    fn dense_spec() -> CellFaultSpec {
        CellFaultSpec {
            seed: 0xFA,
            stuck_per_million: 10_000.0,
            weak_per_million: 0.0,
            weak_leak_multiplier: 1.0,
            sense_offset_shift: 0.0,
        }
    }

    #[test]
    fn fault_spec_applies_to_existing_and_future_subarrays() {
        let mut b = bank();
        let _ = b.subarray(SubarrayId::new(0));
        b.set_fault_spec(Some(dense_spec()));
        let existing_faults = b.subarray(SubarrayId::new(0)).faults().cloned();
        let future_faults = b.subarray(SubarrayId::new(1)).faults().cloned();
        assert!(existing_faults.is_some_and(|f| f.stuck_count() > 0));
        assert!(future_faults.is_some_and(|f| f.stuck_count() > 0));
        b.set_fault_spec(None);
        assert!(b.subarray(SubarrayId::new(0)).faults().is_none());
        assert!(b.subarray(SubarrayId::new(2)).faults().is_none());
    }

    #[test]
    fn reset_for_reuse_restores_the_fresh_state() {
        let mut used = bank();
        let cols = used.geometry().cols_per_row as usize;
        let mut rng = StdRng::seed_from_u64(5);
        let img = DataPattern::Random.row_image(0, cols, &mut rng);
        used.write_row_nominal(RowAddr::new(600), &img).unwrap();
        used.set_state(BankState::Activated {
            subarray: SubarrayId::new(1),
            open_rows: vec![1],
            latched: img,
        });
        used.reset_for_reuse();
        assert_eq!(*used.state(), BankState::Precharged);
        // The dirtied subarray must match a freshly materialised one.
        let mut fresh = bank();
        assert_eq!(
            used.subarray(SubarrayId::new(1)),
            fresh.subarray(SubarrayId::new(1))
        );
    }

    #[test]
    fn reset_for_reuse_across_shifting_subarray_sets_matches_fresh() {
        // A reused rig accumulates materialised subarrays across sweep
        // points that each touch a different one; every reset must leave
        // each of them (touched this point or long ago) equal to fresh.
        let mut used = bank();
        let cols = used.geometry().cols_per_row as usize;
        for id in [0u16, 1, 2] {
            used.subarray(SubarrayId::new(id))
                .write_row(5, &BitRow::ones(cols))
                .unwrap();
            used.reset_for_reuse();
        }
        let mut fresh = bank();
        for id in [0u16, 1, 2] {
            assert_eq!(
                used.subarray(SubarrayId::new(id)),
                fresh.subarray(SubarrayId::new(id)),
                "subarray {id} diverged from fresh after targeted resets"
            );
        }
    }

    #[test]
    fn reset_for_reuse_keeps_fault_overlays_pinned() {
        let mut b = bank();
        b.set_fault_spec(Some(dense_spec()));
        let before = b.subarray(SubarrayId::new(0)).clone();
        let cols = b.geometry().cols_per_row as usize;
        b.write_row_nominal(RowAddr::new(3), &BitRow::ones(cols))
            .unwrap();
        b.reset_for_reuse();
        assert_eq!(*b.subarray(SubarrayId::new(0)), before);
    }

    #[test]
    fn fault_overlay_is_the_same_either_side_of_materialisation() {
        // Installing the spec before or after a subarray materialises
        // must derive the identical overlay (both go through the same
        // per-subarray seed).
        let mut before = bank();
        before.set_fault_spec(Some(dense_spec()));
        let f_before = before.subarray(SubarrayId::new(3)).faults().cloned();
        let mut after = bank();
        let _ = after.subarray(SubarrayId::new(3));
        after.set_fault_spec(Some(dense_spec()));
        let f_after = after.subarray(SubarrayId::new(3)).faults().cloned();
        assert_eq!(f_before, f_after);
    }
}
