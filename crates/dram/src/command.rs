//! The DDR command vocabulary and the APA sequence descriptor.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geometry::{BankId, RowAddr};
use crate::timing::IssueGrid;

/// A single DDR4 command as the memory controller issues it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command {
    /// Open a row: assert its wordline and enable the sense amplifiers.
    Activate { bank: BankId, row: RowAddr },
    /// Close the bank: de-assert wordlines, precharge bitlines to VDD/2.
    Precharge { bank: BankId },
    /// Read from the open row through the sense amplifiers.
    Read { bank: BankId },
    /// Write: overdrive the bitlines (and thus every open row's cells).
    Write { bank: BankId },
    /// Refresh the bank.
    Refresh { bank: BankId },
}

impl Command {
    /// The bank this command addresses.
    pub fn bank(&self) -> BankId {
        match *self {
            Command::Activate { bank, .. }
            | Command::Precharge { bank }
            | Command::Read { bank }
            | Command::Write { bank }
            | Command::Refresh { bank } => bank,
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Activate { bank, row } => write!(f, "ACT {bank} {row}"),
            Command::Precharge { bank } => write!(f, "PRE {bank}"),
            Command::Read { bank } => write!(f, "RD {bank}"),
            Command::Write { bank } => write!(f, "WR {bank}"),
            Command::Refresh { bank } => write!(f, "REF {bank}"),
        }
    }
}

/// Timing of an `ACT R_F → PRE → ACT R_S` (APA) sequence.
///
/// `t1` is the ACT→PRE delay, `t2` the PRE→ACT delay, both on the tester's
/// 1.5 ns issue grid. All of the paper's PUD operations are defined by an
/// APA with particular (t1, t2):
///
/// * simultaneous many-row activation: t1 = t2 = 3 ns (Fig. 3 best),
/// * MAJX: t1 = 1.5 ns, t2 = 3 ns (Fig. 6 best),
/// * Multi-RowCopy: t1 = tRAS (36 ns), t2 = 3 ns (Fig. 10 best),
/// * RowClone: t1 = tRAS, t2 ≈ 6 ns (consecutive, not simultaneous).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ApaTiming {
    /// ACT→PRE delay.
    pub t1: IssueGrid,
    /// PRE→ACT delay.
    pub t2: IssueGrid,
}

impl ApaTiming {
    /// APA timing from nanosecond delays (snapped to the issue grid).
    pub fn from_ns(t1_ns: f64, t2_ns: f64) -> Self {
        ApaTiming {
            t1: IssueGrid::from_ns(t1_ns),
            t2: IssueGrid::from_ns(t2_ns),
        }
    }

    /// Best timing for simultaneous many-row activation (Obs. 1).
    pub fn best_for_activation() -> Self {
        ApaTiming::from_ns(3.0, 3.0)
    }

    /// Best timing for MAJX (Obs. 7).
    pub fn best_for_majx() -> Self {
        ApaTiming::from_ns(1.5, 3.0)
    }

    /// Best timing for Multi-RowCopy (Obs. 14): wait out tRAS, then
    /// interrupt the precharge almost immediately.
    pub fn best_for_multi_row_copy() -> Self {
        ApaTiming::from_ns(36.0, 3.0)
    }

    /// RowClone timing: full sense, then *consecutive* activation
    /// (t2 large enough that the decoder de-asserts the first row).
    pub fn row_clone() -> Self {
        ApaTiming::from_ns(36.0, 6.0)
    }

    /// Total ACT→ACT delay in ns.
    pub fn act_to_act_ns(&self) -> f64 {
        self.t1.as_ns() + self.t2.as_ns()
    }
}

impl fmt::Display for ApaTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t1={}ns t2={}ns", self.t1.as_ns(), self.t2.as_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper() {
        assert_eq!(ApaTiming::best_for_activation().t1.as_ns(), 3.0);
        assert_eq!(ApaTiming::best_for_activation().t2.as_ns(), 3.0);
        assert_eq!(ApaTiming::best_for_majx().t1.as_ns(), 1.5);
        assert_eq!(ApaTiming::best_for_majx().t2.as_ns(), 3.0);
        assert_eq!(ApaTiming::best_for_multi_row_copy().t1.as_ns(), 36.0);
        assert_eq!(ApaTiming::best_for_multi_row_copy().t2.as_ns(), 3.0);
        assert_eq!(ApaTiming::row_clone().t2.as_ns(), 6.0);
    }

    #[test]
    fn act_to_act_sums_delays() {
        let t = ApaTiming::from_ns(1.5, 3.0);
        assert!((t.act_to_act_ns() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn command_display_and_bank() {
        let b = BankId::new(2);
        let c = Command::Activate {
            bank: b,
            row: RowAddr::new(5),
        };
        assert_eq!(c.to_string(), "ACT B2 R5");
        assert_eq!(c.bank(), b);
        assert_eq!(Command::Refresh { bank: b }.to_string(), "REF B2");
    }
}
