//! Manufacturer profiles matching Table 1/2 of the paper.
//!
//! Three vendors are modelled:
//!
//! * **Mfr. H** (SK Hynix): 4 Gb x8 chips, M or A die revisions, 512-row
//!   (A die, and most M-die modules) or 640-row (some M-die) subarrays.
//!   Supports the Frac operation, so MAJX neutral rows are exact.
//! * **Mfr. M** (Micron): 16 Gb x16 chips, E or B die revisions, 1024-row
//!   subarrays. Frac is *not* supported; its sense amplifiers are biased,
//!   so neutral rows are emulated with all-0/all-1 initialisation
//!   (footnote 5), which costs margin — MAJ9+ drops below 1 % success
//!   (footnote 11).
//! * **Mfr. S** (Samsung): guard circuitry ignores the timing-violating
//!   PRE/ACT, so *no* PUD operation works (§9 Limitation 1).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::geometry::{Geometry, Organization};
use crate::timing::TimingParams;

/// DRAM manufacturer, anonymised as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Manufacturer {
    /// SK Hynix.
    H,
    /// Micron.
    M,
    /// Samsung (no PUD operations observed).
    S,
}

impl fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Manufacturer::H => f.write_str("Mfr. H"),
            Manufacturer::M => f.write_str("Mfr. M"),
            Manufacturer::S => f.write_str("Mfr. S"),
        }
    }
}

/// Die revision letters from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DieRevision {
    /// SK Hynix M die.
    M,
    /// SK Hynix A die.
    A,
    /// Micron E die.
    E,
    /// Micron B die.
    B,
    /// Unspecified (Samsung control group).
    Unknown,
}

impl fmt::Display for DieRevision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DieRevision::M => "M",
            DieRevision::A => "A",
            DieRevision::E => "E",
            DieRevision::B => "B",
            DieRevision::Unknown => "?",
        };
        f.write_str(s)
    }
}

/// Everything the model needs to know about one kind of DRAM module.
///
/// The analog tweak fields are the per-vendor calibration levers: the
/// paper's Mfr. H and Mfr. M differ measurably (e.g. MAJ9 works on H but
/// not on M), which the model expresses as a sense-offset scale factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VendorProfile {
    /// The manufacturer.
    pub manufacturer: Manufacturer,
    /// Die revision.
    pub die: DieRevision,
    /// Chip density in Gbit.
    pub density_gbit: u8,
    /// Device geometry (already reduced-column; see [`Geometry`]).
    pub geometry: Geometry,
    /// Nominal timing parameters for the module's speed bin.
    pub timing: TimingParams,
    /// Whether the chip supports storing fractional values (FracDRAM).
    pub supports_frac: bool,
    /// Whether the sense amplifiers have a systematic bias (Mfr. M).
    /// Biased amps resolve a dead-even bitline deterministically, which is
    /// what makes all-0/all-1 neutral-row emulation possible.
    pub biased_sense_amps: bool,
    /// Whether internal guard circuitry ignores timing-violating
    /// PRE/second-ACT commands (Samsung): APA then behaves like a plain
    /// re-activation of the first row and no multi-row activation occurs.
    pub apa_guard: bool,
    /// Multiplier on the sense-amplifier offset sigma relative to the
    /// calibrated Mfr. H baseline. > 1 means noisier sensing.
    pub sense_offset_scale: f32,
    /// Multiplier on per-cell capacitance variation sigma.
    pub cell_variation_scale: f32,
}

impl VendorProfile {
    /// SK Hynix 4 Gb M-die x8 (512-row subarrays; the 640-row variant is
    /// [`VendorProfile::mfr_h_m_die_640`]).
    pub fn mfr_h_m_die() -> Self {
        VendorProfile {
            manufacturer: Manufacturer::H,
            die: DieRevision::M,
            density_gbit: 4,
            geometry: Geometry {
                banks: 16,
                rows_per_subarray: 512,
                subarrays_per_bank: 8,
                cols_per_row: 256,
                organization: Organization::X8,
            },
            timing: TimingParams::ddr4_2666(),
            supports_frac: true,
            biased_sense_amps: false,
            apa_guard: false,
            sense_offset_scale: 1.0,
            cell_variation_scale: 1.0,
        }
    }

    /// SK Hynix 4 Gb M-die x8 with 640-row subarrays (Table 1 lists both).
    pub fn mfr_h_m_die_640() -> Self {
        let mut p = Self::mfr_h_m_die();
        p.geometry.rows_per_subarray = 640;
        p
    }

    /// SK Hynix 4 Gb A-die x8 (512-row subarrays, 2133 MT/s TeamGroup).
    pub fn mfr_h_a_die() -> Self {
        let mut p = Self::mfr_h_m_die();
        p.die = DieRevision::A;
        p.timing = TimingParams::ddr4_2133();
        // A-die sensing is marginally noisier in our calibration; the
        // paper reports slightly wider success-rate boxes for these parts.
        p.sense_offset_scale = 1.08;
        p
    }

    /// Micron 16 Gb E-die x16 (1024-row subarrays, 3200 MT/s).
    pub fn mfr_m_e_die() -> Self {
        VendorProfile {
            manufacturer: Manufacturer::M,
            die: DieRevision::E,
            density_gbit: 16,
            geometry: Geometry {
                banks: 16,
                rows_per_subarray: 1024,
                subarrays_per_bank: 8,
                cols_per_row: 256,
                organization: Organization::X16,
            },
            timing: TimingParams::ddr4_3200(),
            supports_frac: false,
            biased_sense_amps: true,
            apa_guard: false,
            // Calibrated so MAJ7 still works but MAJ9 collapses (<1 %).
            sense_offset_scale: 1.55,
            cell_variation_scale: 1.35,
        }
    }

    /// Micron 16 Gb B-die x16 (1024-row subarrays, 2666 MT/s).
    pub fn mfr_m_b_die() -> Self {
        let mut p = Self::mfr_m_e_die();
        p.die = DieRevision::B;
        p.timing = TimingParams::ddr4_2666();
        p.sense_offset_scale = 1.6;
        p.cell_variation_scale = 1.4;
        p
    }

    /// Samsung control-group profile: APA guard active, no PUD possible.
    pub fn mfr_s() -> Self {
        let mut p = Self::mfr_h_m_die();
        p.manufacturer = Manufacturer::S;
        p.die = DieRevision::Unknown;
        p.supports_frac = false;
        p.apa_guard = true;
        p
    }

    /// Short human-readable label, e.g. `"Mfr. H (M die, 4Gb x8)"`.
    pub fn label(&self) -> String {
        format!(
            "{} ({} die, {}Gb {})",
            self.manufacturer, self.die, self.density_gbit, self.geometry.organization
        )
    }
}

/// One entry of the tested-module fleet (Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetEntry {
    /// The module profile.
    pub profile: VendorProfile,
    /// How many modules of this kind the paper tested.
    pub modules: u8,
    /// How many chips those modules contain in total.
    pub chips: u8,
}

/// The 18-module / 120-chip fleet of Table 1/2 (Samsung excluded, as the
/// paper's detailed evaluations are H + M only).
pub fn paper_fleet() -> Vec<FleetEntry> {
    vec![
        FleetEntry {
            profile: VendorProfile::mfr_h_m_die(),
            modules: 7,
            chips: 56,
        },
        FleetEntry {
            profile: VendorProfile::mfr_h_a_die(),
            modules: 5,
            chips: 40,
        },
        FleetEntry {
            profile: VendorProfile::mfr_m_e_die(),
            modules: 4,
            chips: 16,
        },
        FleetEntry {
            profile: VendorProfile::mfr_m_b_die(),
            modules: 2,
            chips: 8,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_totals_match_table_1() {
        let fleet = paper_fleet();
        let modules: u32 = fleet.iter().map(|e| e.modules as u32).sum();
        let chips: u32 = fleet.iter().map(|e| e.chips as u32).sum();
        assert_eq!(modules, 18);
        assert_eq!(chips, 120);
    }

    #[test]
    fn subarray_sizes_match_table_1() {
        assert_eq!(VendorProfile::mfr_h_m_die().geometry.rows_per_subarray, 512);
        assert_eq!(
            VendorProfile::mfr_h_m_die_640().geometry.rows_per_subarray,
            640
        );
        assert_eq!(VendorProfile::mfr_h_a_die().geometry.rows_per_subarray, 512);
        assert_eq!(
            VendorProfile::mfr_m_e_die().geometry.rows_per_subarray,
            1024
        );
        assert_eq!(
            VendorProfile::mfr_m_b_die().geometry.rows_per_subarray,
            1024
        );
    }

    #[test]
    fn organizations_match_table_1() {
        assert_eq!(
            VendorProfile::mfr_h_a_die().geometry.organization,
            Organization::X8
        );
        assert_eq!(
            VendorProfile::mfr_m_b_die().geometry.organization,
            Organization::X16
        );
    }

    #[test]
    fn vendor_quirks() {
        assert!(VendorProfile::mfr_h_m_die().supports_frac);
        assert!(!VendorProfile::mfr_m_e_die().supports_frac);
        assert!(VendorProfile::mfr_m_e_die().biased_sense_amps);
        assert!(VendorProfile::mfr_s().apa_guard);
        assert!(!VendorProfile::mfr_h_m_die().apa_guard);
    }

    #[test]
    fn labels_are_informative() {
        let l = VendorProfile::mfr_m_e_die().label();
        assert!(l.contains("Mfr. M") && l.contains("16Gb") && l.contains("x16"));
    }
}
