//! Distributed auto-refresh scheduling (JESD79-4: 8192 REF commands per
//! 64 ms retention window, one every tREFI ≈ 7.8 µs).
//!
//! The scheduler tracks elapsed time, tells the controller when a REF is
//! due, and applies the refresh (plus the intervening decay) to the
//! storage — closing the loop between [`crate::retention`] and the
//! command stream. It also quantifies the paper-relevant cost context:
//! refresh is the hungriest standard operation (Fig. 5), and HiRA-style
//! tricks exist precisely because these REFs steal bank time.

use serde::{Deserialize, Serialize};

use crate::bank::Bank;
use crate::geometry::SubarrayId;
use crate::retention::RetentionParams;
use crate::timing::TimingParams;

/// REF commands per retention window (JESD79-4, 8K mode).
pub const REFS_PER_WINDOW: u32 = 8192;

/// The distributed refresh scheduler for one bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefreshScheduler {
    t_refi_ns: f64,
    rows_per_ref: u32,
    next_row: u32,
    now_ns: f64,
    next_ref_ns: f64,
    refs_issued: u64,
}

impl RefreshScheduler {
    /// A scheduler for a bank with `rows_per_bank` rows under `timing`.
    pub fn new(timing: &TimingParams, rows_per_bank: u32) -> Self {
        RefreshScheduler {
            t_refi_ns: timing.t_refi_ns,
            rows_per_ref: rows_per_bank.div_ceil(REFS_PER_WINDOW),
            next_row: 0,
            now_ns: 0.0,
            next_ref_ns: timing.t_refi_ns,
            refs_issued: 0,
        }
    }

    /// Current scheduler time (ns).
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// REF commands issued so far.
    pub fn refs_issued(&self) -> u64 {
        self.refs_issued
    }

    /// Advances time by `ns` *without* refreshing (e.g. the bank was busy
    /// with PUD work). Returns how many REFs became overdue.
    pub fn skip(&mut self, ns: f64) -> u32 {
        self.now_ns += ns;
        let mut overdue = 0;
        while self.now_ns >= self.next_ref_ns {
            self.next_ref_ns += self.t_refi_ns;
            overdue += 1;
        }
        overdue
    }

    /// Advances time by `ns`, applying decay to the bank's materialised
    /// subarrays and issuing every due REF (each refreshes the next
    /// `rows_per_ref` rows, round-robin). Returns REFs issued.
    pub fn advance(
        &mut self,
        bank: &mut Bank,
        ns: f64,
        temperature_c: f64,
        retention: RetentionParams,
    ) -> u32 {
        let target_ns = self.now_ns + ns;
        let mut issued = 0;
        while self.next_ref_ns <= target_ns {
            let slice_ns = self.next_ref_ns - self.now_ns;
            self.decay_bank(bank, slice_ns, temperature_c, retention);
            self.now_ns = self.next_ref_ns;
            self.refresh_next_rows(bank);
            self.next_ref_ns += self.t_refi_ns;
            self.refs_issued += 1;
            issued += 1;
        }
        let tail = target_ns - self.now_ns;
        if tail > 0.0 {
            self.decay_bank(bank, tail, temperature_c, retention);
            self.now_ns = target_ns;
        }
        issued
    }

    fn decay_bank(&self, bank: &mut Bank, ns: f64, temperature_c: f64, retention: RetentionParams) {
        if ns <= 0.0 {
            return;
        }
        let ms = ns / 1e6;
        let geometry = *bank.geometry();
        for sa in 0..geometry.subarrays_per_bank {
            let id = SubarrayId::new(sa);
            if bank.subarray_if_materialized(id).is_some() {
                bank.subarray(id).decay(ms, temperature_c, retention);
            }
        }
    }

    fn refresh_next_rows(&mut self, bank: &mut Bank) {
        let geometry = *bank.geometry();
        let total_rows = geometry.rows_per_bank();
        for _ in 0..self.rows_per_ref {
            let row = self.next_row;
            self.next_row = (self.next_row + 1) % total_rows;
            let (sa, local) = geometry
                .split_row(crate::geometry::RowAddr::new(row))
                .expect("round-robin row is in range");
            if bank.subarray_if_materialized(sa).is_some() {
                bank.subarray(sa).refresh_row(local);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::BitRow;
    use crate::geometry::{Geometry, RowAddr};
    use crate::subarray::VariationParams;

    fn bank() -> Bank {
        Bank::new(Geometry::default(), VariationParams::default(), 3)
    }

    fn scheduler() -> RefreshScheduler {
        RefreshScheduler::new(
            &TimingParams::ddr4_2666(),
            Geometry::default().rows_per_bank(),
        )
    }

    #[test]
    fn ref_cadence_matches_trefi() {
        let mut s = scheduler();
        let mut b = bank();
        let issued = s.advance(&mut b, 78_000.0, 50.0, RetentionParams::typical());
        assert_eq!(issued, 10, "78 µs at tREFI = 7.8 µs");
        assert_eq!(s.refs_issued(), 10);
    }

    #[test]
    fn refreshed_data_survives_a_full_window() {
        // A small synthetic geometry keeps the 8192-slice decay loop fast.
        let geometry = Geometry {
            rows_per_subarray: 64,
            subarrays_per_bank: 2,
            cols_per_row: 64,
            ..Geometry::default()
        };
        let mut b = Bank::new(geometry, VariationParams::default(), 3);
        let mut s = RefreshScheduler::new(&TimingParams::ddr4_2666(), geometry.rows_per_bank());
        let cols = geometry.cols_per_row as usize;
        let img = BitRow::ones(cols);
        b.write_row_nominal(RowAddr::new(0), &img).unwrap();
        // 64 ms with refresh at 85 °C: data intact.
        s.advance(&mut b, 64e6, 85.0, RetentionParams::typical());
        assert_eq!(b.read_row_nominal(RowAddr::new(0)).unwrap(), img);
    }

    #[test]
    fn unrefreshed_data_decays() {
        let mut s = scheduler();
        let mut b = bank();
        let cols = b.geometry().cols_per_row as usize;
        b.write_row_nominal(RowAddr::new(0), &BitRow::ones(cols))
            .unwrap();
        // Two minutes with refresh *skipped* (power loss), then decay
        // applied manually at high temperature.
        let overdue = s.skip(120e6);
        assert!(overdue > 10_000, "thousands of REFs missed: {overdue}");
        let sa = b.subarray(crate::geometry::SubarrayId::new(0));
        sa.decay(120_000.0, 85.0, RetentionParams::typical());
        let read = b.read_row_nominal(RowAddr::new(0)).unwrap();
        assert!(read.count_ones() < cols, "unrefreshed data must decay");
    }

    #[test]
    fn round_robin_covers_all_rows_each_window() {
        let timing = TimingParams::ddr4_2666();
        let rows = Geometry::default().rows_per_bank();
        let s = RefreshScheduler::new(&timing, rows);
        // rows_per_ref × 8192 must cover the bank.
        assert!(s.rows_per_ref * REFS_PER_WINDOW >= rows);
    }
}
