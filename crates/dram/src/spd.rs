//! Serial-presence-detect-style module metadata: the full Table 2 of the
//! paper (module/chip identifiers, frequencies, manufacturing dates).

use serde::{Deserialize, Serialize};

use crate::vendor::VendorProfile;

/// Manufacturing date in the paper's week–year form (`ww-yy`), or
/// unknown (the SK Hynix modules' dates are not printed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MfrDate {
    /// Known week/year.
    WeekYear {
        /// ISO week (1–53).
        week: u8,
        /// Two-digit year.
        year: u8,
    },
    /// Not printed on the module.
    Unknown,
}

impl std::fmt::Display for MfrDate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MfrDate::WeekYear { week, year } => write!(f, "{week:02}-{year:02}"),
            MfrDate::Unknown => f.write_str("unknown"),
        }
    }
}

/// One Table 2 row: a purchasable module with its chip part numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleSpd {
    /// Module vendor (may differ from the chip vendor).
    pub module_vendor: &'static str,
    /// Module part number.
    pub module_identifier: &'static str,
    /// DRAM chip part number.
    pub chip_identifier: &'static str,
    /// Modules of this kind in the tested fleet.
    pub modules: u8,
    /// Chips across those modules.
    pub chips: u8,
    /// Access frequency in MT/s.
    pub freq_mts: u16,
    /// Manufacturing date.
    pub mfr_date: MfrDate,
    /// The behavioural profile this hardware maps to.
    pub profile: VendorProfile,
}

/// The paper's Table 2, verbatim.
pub fn table2() -> Vec<ModuleSpd> {
    vec![
        ModuleSpd {
            module_vendor: "TimeTec",
            module_identifier: "TLRD44G2666HC18F-SBK",
            chip_identifier: "H5AN4G8NMFR-TFC",
            modules: 7,
            chips: 56,
            freq_mts: 2666,
            mfr_date: MfrDate::Unknown,
            profile: VendorProfile::mfr_h_m_die(),
        },
        ModuleSpd {
            module_vendor: "TeamGroup",
            module_identifier: "76TT21NUS1R8-4G",
            chip_identifier: "H5AN4G8NAFR-TFC",
            modules: 5,
            chips: 40,
            freq_mts: 2133,
            mfr_date: MfrDate::Unknown,
            profile: VendorProfile::mfr_h_a_die(),
        },
        ModuleSpd {
            module_vendor: "Micron",
            module_identifier: "MTA4ATF1G64HZ-3G2E1",
            chip_identifier: "MT40A1G16KD-062E:E",
            modules: 4,
            chips: 16,
            freq_mts: 3200,
            mfr_date: MfrDate::WeekYear { week: 46, year: 20 },
            profile: VendorProfile::mfr_m_e_die(),
        },
        ModuleSpd {
            module_vendor: "Micron",
            module_identifier: "MTA4ATF1G64HZ-3G2B2",
            chip_identifier: "MT40A1G16RC-062E:B",
            modules: 2,
            chips: 8,
            freq_mts: 2666,
            mfr_date: MfrDate::WeekYear { week: 26, year: 21 },
            profile: VendorProfile::mfr_m_b_die(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_match_table1() {
        let t = table2();
        assert_eq!(t.iter().map(|m| m.modules as u32).sum::<u32>(), 18);
        assert_eq!(t.iter().map(|m| m.chips as u32).sum::<u32>(), 120);
    }

    #[test]
    fn frequencies_match_profiles() {
        for spd in table2() {
            let t_ck = spd.profile.timing.t_ck_ns;
            // MT/s × tCK(ns) ≈ 2000 (DDR: two transfers per clock).
            let product = spd.freq_mts as f64 * t_ck;
            assert!(
                (product - 2000.0).abs() < 15.0,
                "{}: {product}",
                spd.module_identifier
            );
        }
    }

    #[test]
    fn dates_render_like_the_paper() {
        assert_eq!(
            MfrDate::WeekYear { week: 46, year: 20 }.to_string(),
            "46-20"
        );
        assert_eq!(MfrDate::Unknown.to_string(), "unknown");
    }

    #[test]
    fn chip_identifiers_are_distinct() {
        let t = table2();
        let mut ids: Vec<_> = t.iter().map(|m| m.chip_identifier).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }
}
