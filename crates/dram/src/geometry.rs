//! Typed addresses and device geometry.
//!
//! Newtypes (C-NEWTYPE) keep row addresses, bank ids, column addresses and
//! subarray indices statically distinct: the characterization code juggles
//! all four at once and mixing them up is the classic bug in this domain.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A DRAM row address within a bank.
///
/// The low bits index a row inside a subarray; the high bits select the
/// subarray (the split is defined by [`Geometry`], mirroring §7.1 of the
/// paper where RA\[0:8\] indexes within a 512-row subarray and RA\[9:15\]
/// selects one of 128 subarrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowAddr(u32);

impl RowAddr {
    /// Creates a row address from its raw integer value.
    pub const fn new(raw: u32) -> Self {
        RowAddr(raw)
    }

    /// Raw integer value of the address.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u32> for RowAddr {
    fn from(raw: u32) -> Self {
        RowAddr(raw)
    }
}

/// A bank id within a module (DDR4 modules tested in the paper have 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BankId(u16);

impl BankId {
    /// Creates a bank id.
    pub const fn new(raw: u16) -> Self {
        BankId(raw)
    }

    /// Raw integer value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A column (bitline) index within a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColAddr(u32);

impl ColAddr {
    /// Creates a column address.
    pub const fn new(raw: u32) -> Self {
        ColAddr(raw)
    }

    /// Raw integer value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ColAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A subarray index within a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubarrayId(u16);

impl SubarrayId {
    /// Creates a subarray id.
    pub const fn new(raw: u16) -> Self {
        SubarrayId(raw)
    }

    /// Raw integer value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for SubarrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SA{}", self.0)
    }
}

/// Chip data-bus organisation (Table 1: x8 for Mfr. H, x16 for Mfr. M).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Organization {
    /// 8 DQ pins per chip.
    X8,
    /// 16 DQ pins per chip.
    X16,
}

impl Organization {
    /// Number of DQ pins.
    pub const fn dq_pins(self) -> u32 {
        match self {
            Organization::X8 => 8,
            Organization::X16 => 16,
        }
    }
}

impl fmt::Display for Organization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.dq_pins())
    }
}

/// Static geometry of a modelled DRAM device.
///
/// The defaults model a full bank's row space but a reduced number of
/// bitlines per row (`cols_per_row`) — success-rate statistics converge
/// long before the 8192 bitlines a real x8 chip row has, and the reduction
/// keeps a 48-subarray experiment in a few hundred MB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Banks per module (rank-collapsed; the paper tests per-bank).
    pub banks: u16,
    /// Rows per subarray (512 or 640 for Mfr. H dies, 1024 for Mfr. M).
    pub rows_per_subarray: u32,
    /// Subarrays per bank.
    pub subarrays_per_bank: u16,
    /// Modelled bitlines (columns) per row.
    pub cols_per_row: u32,
    /// Chip data-bus organisation.
    pub organization: Organization,
}

impl Geometry {
    /// Total rows in one bank.
    pub const fn rows_per_bank(&self) -> u32 {
        self.rows_per_subarray * self.subarrays_per_bank as u32
    }

    /// Number of row-address bits used *within* a subarray.
    ///
    /// For power-of-two subarrays this is `log2(rows_per_subarray)`; the
    /// 640-row Hynix M-die subarrays still decode 10 in-subarray bits with
    /// part of the space unused, mirroring how real non-power-of-two
    /// subarrays are driven.
    pub fn in_subarray_bits(&self) -> u32 {
        let mut bits = 0;
        while (1u32 << bits) < self.rows_per_subarray {
            bits += 1;
        }
        bits
    }

    /// Splits a bank-level row address into (subarray, in-subarray row).
    ///
    /// # Errors
    ///
    /// Returns [`crate::DramError::RowOutOfRange`] if `row` exceeds the bank.
    pub fn split_row(&self, row: RowAddr) -> Result<(SubarrayId, u32), crate::DramError> {
        if row.raw() >= self.rows_per_bank() {
            return Err(crate::DramError::RowOutOfRange {
                row,
                rows_in_bank: self.rows_per_bank(),
            });
        }
        let sa = row.raw() / self.rows_per_subarray;
        let local = row.raw() % self.rows_per_subarray;
        Ok((SubarrayId::new(sa as u16), local))
    }

    /// Combines a subarray id and an in-subarray row into a bank-level address.
    pub fn join_row(&self, sa: SubarrayId, local: u32) -> RowAddr {
        RowAddr::new(sa.raw() as u32 * self.rows_per_subarray + local)
    }
}

impl Default for Geometry {
    fn default() -> Self {
        // SK Hynix M-die-like defaults (Table 1), reduced column count.
        Geometry {
            banks: 16,
            rows_per_subarray: 512,
            subarrays_per_bank: 8,
            cols_per_row: 256,
            organization: Organization::X8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_join_roundtrip() {
        let g = Geometry::default();
        for raw in [0u32, 1, 511, 512, 513, 4095] {
            let row = RowAddr::new(raw);
            let (sa, local) = g.split_row(row).unwrap();
            assert_eq!(g.join_row(sa, local), row);
        }
    }

    #[test]
    fn split_rejects_out_of_range() {
        let g = Geometry::default();
        let too_big = RowAddr::new(g.rows_per_bank());
        assert!(g.split_row(too_big).is_err());
    }

    #[test]
    fn in_subarray_bits_for_paper_sizes() {
        let bits = |rows: u32| {
            Geometry {
                rows_per_subarray: rows,
                ..Geometry::default()
            }
            .in_subarray_bits()
        };
        assert_eq!(bits(512), 9);
        assert_eq!(bits(640), 10);
        assert_eq!(bits(1024), 10);
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(RowAddr::new(7).to_string(), "R7");
        assert_eq!(BankId::new(3).to_string(), "B3");
        assert_eq!(SubarrayId::new(2).to_string(), "SA2");
        assert_eq!(Organization::X16.to_string(), "x16");
    }

    #[test]
    fn organization_pins() {
        assert_eq!(Organization::X8.dq_pins(), 8);
        assert_eq!(Organization::X16.dq_pins(), 16);
    }
}
