//! Deterministic cell-fault overlays.
//!
//! Real modules are not pristine: the paper's reliability sweeps run on
//! chips with stuck cells, leaky cells, and sense amplifiers whose offset
//! drifted from the fab's corner. This module models those defects as a
//! seed-driven *overlay* on top of the healthy silicon planes:
//! [`CellFaultSpec`] describes defect densities, and [`CellFaultSpec::derive`]
//! expands them into the concrete per-subarray defect map
//! ([`SubarrayFaults`]) from a **dedicated RNG stream**.
//!
//! The stream isolation is the load-bearing guarantee: fault derivation
//! never touches the silicon-stamping stream
//! ([`crate::silicon::SiliconPlanes::stamp`]) or any experiment stream, so
//! installing an *empty* spec (or none) leaves every fault-free
//! experiment byte-identical — the golden tests of the fleet rely on it.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Domain-separation constant mixed into every fault stream so a fault
/// seed that happens to equal a silicon seed still draws independently.
const FAULT_STREAM_SALT: u64 = 0xFA17_FA17_FA17_FA17;

/// Seed-driven specification of cell-level defects, applied uniformly to
/// every subarray of a module (each subarray expands it with its own
/// silicon seed, so defect *positions* differ per subarray while the
/// *densities* match).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellFaultSpec {
    /// Seed of the dedicated fault stream.
    pub seed: u64,
    /// Expected stuck-at cells per million (each stuck at 0 or 1 with
    /// equal probability).
    pub stuck_per_million: f64,
    /// Expected weak (leaky) cells per million.
    pub weak_per_million: f64,
    /// Mean leakage multiplier of a weak cell (> 1 decays faster than
    /// the healthy retention model).
    pub weak_leak_multiplier: f64,
    /// Additive shift applied to every sense-amplifier offset in the
    /// subarray (normalized bitline-voltage units, like the offsets
    /// themselves) — models a module whose amps drifted off-corner.
    pub sense_offset_shift: f32,
}

impl Default for CellFaultSpec {
    fn default() -> Self {
        CellFaultSpec {
            seed: 0,
            stuck_per_million: 0.0,
            weak_per_million: 0.0,
            weak_leak_multiplier: 1.0,
            sense_offset_shift: 0.0,
        }
    }
}

impl CellFaultSpec {
    /// Whether the spec injects nothing (deriving it yields an overlay
    /// with no observable effect).
    pub fn is_empty(&self) -> bool {
        self.stuck_per_million <= 0.0
            && self.weak_per_million <= 0.0
            && self.sense_offset_shift == 0.0
    }

    /// Expands the spec into one subarray's concrete defect map. Pure
    /// function of `(self, rows, cols, subarray_seed)`: the same subarray
    /// always grows the same defects, independently of every other RNG
    /// stream in the model.
    pub fn derive(&self, rows: u32, cols: u32, subarray_seed: u64) -> SubarrayFaults {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ subarray_seed.rotate_left(23) ^ FAULT_STREAM_SALT);
        let n_cells = rows as u64 * cols as u64;
        let mut stuck_cells: BTreeMap<(u32, u32), bool> = BTreeMap::new();
        for _ in 0..deterministic_count(n_cells, self.stuck_per_million, &mut rng) {
            let row = rng.gen_range(0..rows);
            let col = rng.gen_range(0..cols);
            let bit = rng.gen::<bool>();
            stuck_cells.entry((row, col)).or_insert(bit);
        }
        let mut weak_cells: BTreeMap<(u32, u32), f32> = BTreeMap::new();
        for _ in 0..deterministic_count(n_cells, self.weak_per_million, &mut rng) {
            let row = rng.gen_range(0..rows);
            let col = rng.gen_range(0..cols);
            // Per-cell leakage varies around the spec's mean multiplier;
            // never below the healthy rate.
            let jitter = 1.0 + 0.2 * crate::silicon::gaussian(&mut rng) as f64;
            let mult = (self.weak_leak_multiplier * jitter).max(1.0) as f32;
            weak_cells.entry((row, col)).or_insert(mult);
        }
        let mut stuck: BTreeMap<u32, Vec<(u32, bool)>> = BTreeMap::new();
        for ((row, col), bit) in stuck_cells {
            stuck.entry(row).or_default().push((col, bit));
        }
        let mut weak: BTreeMap<u32, Vec<(u32, f32)>> = BTreeMap::new();
        for ((row, col), mult) in weak_cells {
            weak.entry(row).or_default().push((col, mult));
        }
        SubarrayFaults {
            stuck,
            weak,
            sense_offset_shift: self.sense_offset_shift,
        }
    }
}

/// Rounds an expected defect count to an integer deterministically: the
/// integer part always, plus one more with probability equal to the
/// fractional part (drawn from the fault stream).
fn deterministic_count(n_cells: u64, per_million: f64, rng: &mut StdRng) -> u64 {
    let expected = n_cells as f64 * per_million.max(0.0) / 1e6;
    if expected <= 0.0 {
        return 0;
    }
    let base = expected.floor();
    let fract = expected - base;
    base as u64 + u64::from(fract > 0.0 && rng.gen_bool(fract.min(1.0)))
}

/// One subarray's concrete defect map, as derived from a
/// [`CellFaultSpec`]. Rows are keyed so the restore/retention hot paths
/// can re-assert defects per touched row without scanning the plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SubarrayFaults {
    /// Stuck-at cells per row: `(column, stuck value)`.
    stuck: BTreeMap<u32, Vec<(u32, bool)>>,
    /// Weak cells per row: `(column, leakage multiplier)`.
    weak: BTreeMap<u32, Vec<(u32, f32)>>,
    /// Additive shift on every sense-amplifier offset.
    pub sense_offset_shift: f32,
}

impl SubarrayFaults {
    /// Whether the overlay has no observable effect.
    pub fn is_empty(&self) -> bool {
        self.stuck.is_empty() && self.weak.is_empty() && self.sense_offset_shift == 0.0
    }

    /// Stuck cells in one row: `(column, stuck value)` pairs.
    pub fn stuck_in_row(&self, row: u32) -> &[(u32, bool)] {
        self.stuck.get(&row).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Weak cells in one row: `(column, leakage multiplier)` pairs.
    pub fn weak_in_row(&self, row: u32) -> &[(u32, f32)] {
        self.weak.get(&row).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates rows that contain stuck cells.
    pub fn stuck_rows(&self) -> impl Iterator<Item = (&u32, &Vec<(u32, bool)>)> {
        self.stuck.iter()
    }

    /// Iterates rows that contain weak cells.
    pub fn weak_rows(&self) -> impl Iterator<Item = (&u32, &Vec<(u32, f32)>)> {
        self.weak.iter()
    }

    /// Total stuck cells.
    pub fn stuck_count(&self) -> usize {
        self.stuck.values().map(Vec::len).sum()
    }

    /// Total weak cells.
    pub fn weak_count(&self) -> usize {
        self.weak.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_spec() -> CellFaultSpec {
        CellFaultSpec {
            seed: 0xBAD,
            stuck_per_million: 5_000.0,
            weak_per_million: 5_000.0,
            weak_leak_multiplier: 8.0,
            sense_offset_shift: 0.002,
        }
    }

    #[test]
    fn derivation_is_seed_deterministic() {
        let spec = dense_spec();
        let a = spec.derive(512, 256, 77);
        let b = spec.derive(512, 256, 77);
        assert_eq!(a, b);
        let c = spec.derive(512, 256, 78);
        assert_ne!(a, c, "different subarrays must grow different defects");
    }

    #[test]
    fn densities_roughly_match_spec() {
        let spec = dense_spec();
        let f = spec.derive(512, 256, 1);
        let cells = 512.0 * 256.0;
        let expected = cells * 5_000.0 / 1e6;
        let stuck = f.stuck_count() as f64;
        // Dedup can only lose a handful of colliding positions.
        assert!(
            (stuck - expected).abs() < expected * 0.05,
            "stuck {stuck} vs expected {expected}"
        );
        assert!(f.weak_count() > 0);
        for (_, cells) in f.weak_rows() {
            for &(_, mult) in cells {
                assert!(mult >= 1.0, "weak multiplier {mult} below healthy rate");
            }
        }
    }

    #[test]
    fn empty_spec_derives_empty_overlay() {
        let spec = CellFaultSpec::default();
        assert!(spec.is_empty());
        let f = spec.derive(512, 256, 3);
        assert!(f.is_empty());
        assert_eq!(f.stuck_count(), 0);
        assert_eq!(f.weak_count(), 0);
    }

    #[test]
    fn row_lookup_matches_totals() {
        let f = dense_spec().derive(64, 64, 9);
        let by_rows: usize = (0..64).map(|r| f.stuck_in_row(r).len()).sum();
        assert_eq!(by_rows, f.stuck_count());
        assert_eq!(f.stuck_in_row(64), &[], "out-of-range row has no defects");
    }

    #[test]
    fn fault_stream_is_independent_of_silicon_stream() {
        // Stamping silicon before or after deriving faults must not
        // change either result: the streams share no state.
        let spec = dense_spec();
        let v = crate::subarray::VariationParams::default();
        let f_before = spec.derive(32, 32, 5);
        let s = crate::silicon::SiliconPlanes::stamp(32, 32, v, 5);
        let f_after = spec.derive(32, 32, 5);
        let s_again = crate::silicon::SiliconPlanes::stamp(32, 32, v, 5);
        assert_eq!(f_before, f_after);
        assert_eq!(s, s_again);
    }
}
