//! Charge retention and refresh.
//!
//! DRAM cells leak: without refresh, a cell's stored voltage drifts
//! toward the precharge midpoint and the data eventually becomes
//! unreadable. Two paper-relevant consequences are modelled:
//!
//! * the JEDEC refresh contract (all rows refreshed within tREFW = 64 ms
//!   at ≤ 85 °C) keeps every cell's digital value intact;
//! * *cold-boot attacks* (§8.2) exist because retention is seconds-to-
//!   minutes at low temperature: leakage roughly doubles every ~10 °C,
//!   so chilling a module stretches the window in which an attacker can
//!   hot-swap it and read the remanent data.
//!
//! The model is a first-order exponential decay of the cell's deviation
//! from VDD/2 with a temperature-dependent time constant.

use serde::{Deserialize, Serialize};

use crate::subarray::Subarray;

/// Retention model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionParams {
    /// Decay time constant at the reference temperature (ms). With the
    /// default 8 s, a cell retains a readable value for tens of seconds
    /// at 20 °C — matching the cold-boot literature's observations.
    pub tau_ms_at_ref: f64,
    /// Reference temperature for `tau_ms_at_ref` (°C).
    pub ref_temperature_c: f64,
    /// Leakage doubles every this many °C.
    pub doubling_c: f64,
}

impl RetentionParams {
    /// Defaults matching the cold-boot literature's qualitative numbers.
    pub fn typical() -> Self {
        RetentionParams {
            tau_ms_at_ref: 8_000.0,
            ref_temperature_c: 45.0,
            doubling_c: 10.0,
        }
    }

    /// Decay time constant at `temperature_c` (ms).
    pub fn tau_ms(&self, temperature_c: f64) -> f64 {
        let octaves = (temperature_c - self.ref_temperature_c) / self.doubling_c;
        self.tau_ms_at_ref / 2f64.powf(octaves)
    }

    /// The voltage-deviation survival factor after `elapsed_ms` at
    /// `temperature_c`: `exp(−t/τ)`.
    pub fn survival(&self, elapsed_ms: f64, temperature_c: f64) -> f64 {
        (-elapsed_ms / self.tau_ms(temperature_c)).exp()
    }
}

impl Default for RetentionParams {
    fn default() -> Self {
        RetentionParams::typical()
    }
}

impl Subarray {
    /// Ages every cell by `elapsed_ms` at `temperature_c`: deviations
    /// from VDD/2 decay exponentially (per-cell leakage scales inversely
    /// with the cell's capacitance factor — small cells leak faster).
    pub fn decay(&mut self, elapsed_ms: f64, temperature_c: f64, params: RetentionParams) {
        let base = params.survival(elapsed_ms, temperature_c);
        for row in 0..self.rows() {
            let (volts, caps, _) = self.row_split_mut(row);
            for (v, &cap) in volts.iter_mut().zip(caps) {
                // Leakage current is roughly cap-independent, so the
                // voltage decay rate goes as 1/C.
                let factor = base.powf(1.0 / cap.max(0.05) as f64);
                *v = (0.5 + (*v - 0.5) * factor as f32).clamp(0.0, 1.0);
            }
        }
        // Fault overlay: weak cells leak faster than the healthy model,
        // and stuck cells never leak at all (they are tied to a rail).
        self.apply_weak_decay(base);
        self.pin_faulted_cells();
    }

    /// Refreshes one row: a nominal activate-restore that pulls every
    /// still-readable cell back to its rail. Cells that already decayed
    /// past the sensing midpoint are restored to the *wrong* rail — a
    /// refresh cannot resurrect lost data.
    pub fn refresh_row(&mut self, row: u32) {
        for v in self.row_voltages_mut(row) {
            *v = if *v > 0.5 { 1.0 } else { 0.0 };
        }
        self.pin_row_faults(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::BitRow;
    use crate::subarray::VariationParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn subarray() -> Subarray {
        Subarray::new(8, 64, VariationParams::default(), 21)
    }

    #[test]
    fn leakage_doubles_per_decade() {
        let p = RetentionParams::typical();
        let tau45 = p.tau_ms(45.0);
        let tau55 = p.tau_ms(55.0);
        let tau85 = p.tau_ms(85.0);
        assert!((tau45 / tau55 - 2.0).abs() < 1e-9);
        assert!((tau45 / tau85 - 16.0).abs() < 1e-6);
    }

    #[test]
    fn data_survives_a_refresh_window() {
        let mut sa = subarray();
        let mut rng = StdRng::seed_from_u64(1);
        let img = BitRow::random(&mut rng, 64);
        sa.write_row(0, &img).unwrap();
        // One 64 ms JEDEC refresh window at 85 °C.
        sa.decay(64.0, 85.0, RetentionParams::typical());
        assert_eq!(sa.read_row(0).unwrap(), img, "data must survive tREFW");
    }

    #[test]
    fn data_decays_to_midpoint_after_minutes_when_hot() {
        let mut sa = subarray();
        sa.write_row(0, &BitRow::ones(64)).unwrap();
        sa.decay(600_000.0, 85.0, RetentionParams::typical());
        // Deviations shrink by e^{-1200}: everything is at the midpoint.
        for col in 0..64 {
            assert!(sa.cell(0, col).is_neutral(0.01), "col {col}");
        }
    }

    #[test]
    fn chilling_extends_the_cold_boot_window() {
        let p = RetentionParams::typical();
        let after_10s_cold = p.survival(10_000.0, 5.0);
        let after_10s_warm = p.survival(10_000.0, 45.0);
        assert!(
            after_10s_cold > 0.9,
            "chilled module retains: {after_10s_cold}"
        );
        assert!(after_10s_warm < after_10s_cold);
    }

    #[test]
    fn refresh_restores_rails_but_cannot_resurrect() {
        let mut sa = subarray();
        sa.write_row(0, &BitRow::ones(64)).unwrap();
        // Mild decay: still readable; refresh restores full charge.
        sa.decay(2_000.0, 45.0, RetentionParams::typical());
        sa.refresh_row(0);
        for col in 0..64 {
            assert_eq!(sa.cell(0, col).voltage(), 1.0);
        }
        // Catastrophic decay: refresh locks in the midpoint read-out,
        // it does not bring the 1s back.
        sa.write_row(1, &BitRow::ones(64)).unwrap();
        sa.decay(120_000.0, 85.0, RetentionParams::typical());
        sa.refresh_row(1);
        let restored = sa.read_row(1).unwrap();
        assert!(restored.count_ones() < 64, "lost cells must not resurrect");
    }

    #[test]
    fn small_cells_leak_faster() {
        let v = VariationParams {
            cell_cap_sigma: 0.3,
            cell_strength_sigma: 0.0,
            sense_offset_sigma: 0.0,
        };
        let mut sa = Subarray::new(2, 256, v, 9);
        sa.write_row(0, &BitRow::ones(256)).unwrap();
        sa.decay(20_000.0, 45.0, RetentionParams::typical());
        // Find a small-cap and a large-cap cell and compare residuals.
        let mut small = (f32::MAX, 0.0f32);
        let mut large = (f32::MIN, 0.0f32);
        for col in 0..256 {
            let c = sa.cell(0, col);
            if c.cap_factor() < small.0 {
                small = (c.cap_factor(), c.voltage());
            }
            if c.cap_factor() > large.0 {
                large = (c.cap_factor(), c.voltage());
            }
        }
        assert!(
            large.1 > small.1,
            "large cap {large:?} should retain more than {small:?}"
        );
    }

    #[test]
    fn weak_cells_decay_faster_and_stuck_cells_never_decay() {
        let mut sa = subarray();
        let overlay = crate::faults::CellFaultSpec {
            seed: 3,
            stuck_per_million: 30_000.0,
            weak_per_million: 30_000.0,
            weak_leak_multiplier: 12.0,
            sense_offset_shift: 0.0,
        }
        .derive(sa.rows(), sa.cols(), 17);
        assert!(overlay.stuck_count() > 0 && overlay.weak_count() > 0);
        sa.set_faults(overlay.clone());
        // A healthy twin with the same silicon for comparison.
        let mut twin = subarray();
        sa.write_row(0, &BitRow::ones(64)).unwrap();
        twin.write_row(0, &BitRow::ones(64)).unwrap();
        sa.decay(4_000.0, 45.0, RetentionParams::typical());
        twin.decay(4_000.0, 45.0, RetentionParams::typical());
        let after = sa.row_voltages(0);
        let healthy = twin.row_voltages(0);
        let stuck_cols: std::collections::BTreeSet<u32> =
            overlay.stuck_in_row(0).iter().map(|&(c, _)| c).collect();
        for &(col, mult) in overlay.weak_in_row(0) {
            if stuck_cols.contains(&col) {
                continue;
            }
            assert!(mult > 1.0);
            assert!(
                after[col as usize] < healthy[col as usize],
                "weak cell ({col}) must decay faster than its healthy twin"
            );
        }
        for &(col, bit) in overlay.stuck_in_row(0) {
            assert_eq!(
                after[col as usize],
                if bit { 1.0 } else { 0.0 },
                "stuck cell ({col}) must stay pinned through decay"
            );
        }
    }

    #[test]
    fn faultless_decay_is_unchanged_by_empty_overlay() {
        let mut healthy = subarray();
        let mut faulted = subarray();
        faulted.set_faults(crate::faults::SubarrayFaults::default());
        for sa in [&mut healthy, &mut faulted] {
            sa.write_row(0, &BitRow::ones(64)).unwrap();
            sa.decay(10_000.0, 60.0, RetentionParams::typical());
        }
        assert_eq!(healthy.row_voltages(0), faulted.row_voltages(0));
    }
}
