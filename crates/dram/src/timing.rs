//! JEDEC DDR4 timing parameters and the tester's 1.5 ns issue grid.
//!
//! The paper's infrastructure (DRAM Bender on an Alveo U200) can issue
//! DRAM commands at intervals that are multiples of 1.5 ns; every timing
//! delay it sweeps (t1 between ACT and PRE, t2 between PRE and ACT) sits on
//! that grid. [`IssueGrid`] encodes the constraint so experiment configs
//! cannot request delays the hardware could not produce (§9 Limitation 2).

use serde::{Deserialize, Serialize};

/// The command-issue granularity of the modelled tester, in nanoseconds.
pub const ISSUE_GRID_NS: f64 = 1.5;

/// Manufacturer-recommended DDR4 timing parameters (JESD79-4C) in ns.
///
/// Only the parameters relevant to the paper's experiments are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// ACT→PRE minimum: sensing plus full charge restoration.
    pub t_ras_ns: f64,
    /// PRE→ACT minimum: wordline de-assertion plus bitline precharge.
    pub t_rp_ns: f64,
    /// ACT→RD/WR minimum.
    pub t_rcd_ns: f64,
    /// Write recovery time.
    pub t_wr_ns: f64,
    /// Refresh cycle time (per REF command).
    pub t_rfc_ns: f64,
    /// Average refresh interval.
    pub t_refi_ns: f64,
    /// Clock period (derived from the speed bin).
    pub t_ck_ns: f64,
}

impl TimingParams {
    /// DDR4-2666 speed-bin values (the TimeTec/Micron 2666 MT/s modules).
    pub const fn ddr4_2666() -> Self {
        TimingParams {
            t_ras_ns: 32.0,
            t_rp_ns: 13.5,
            t_rcd_ns: 13.5,
            t_wr_ns: 15.0,
            t_rfc_ns: 350.0,
            t_refi_ns: 7800.0,
            t_ck_ns: 0.75,
        }
    }

    /// DDR4-2133 speed-bin values (the TeamGroup modules).
    pub const fn ddr4_2133() -> Self {
        TimingParams {
            t_ras_ns: 33.0,
            t_rp_ns: 14.06,
            t_rcd_ns: 14.06,
            t_wr_ns: 15.0,
            t_rfc_ns: 350.0,
            t_refi_ns: 7800.0,
            t_ck_ns: 0.938,
        }
    }

    /// DDR4-3200 speed-bin values (the Micron 3200 MT/s modules).
    pub const fn ddr4_3200() -> Self {
        TimingParams {
            t_ras_ns: 32.0,
            t_rp_ns: 13.75,
            t_rcd_ns: 13.75,
            t_wr_ns: 15.0,
            t_rfc_ns: 350.0,
            t_refi_ns: 7800.0,
            t_ck_ns: 0.625,
        }
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr4_2666()
    }
}

/// The tester's command-issue grid.
///
/// All experiment timing delays are expressed as grid steps; the paper
/// sweeps t1, t2 ∈ {1.5 ns, 3 ns, 6 ns, …, 36 ns}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IssueGrid {
    steps: u32,
}

impl IssueGrid {
    /// A delay of `steps` grid ticks (each [`ISSUE_GRID_NS`] long).
    pub const fn from_steps(steps: u32) -> Self {
        IssueGrid { steps }
    }

    /// Snaps a nanosecond delay onto the grid (rounding to nearest step).
    ///
    /// Mirrors what the real infrastructure does with a requested delay:
    /// it can only issue on 1.5 ns boundaries.
    pub fn from_ns(ns: f64) -> Self {
        let steps = (ns / ISSUE_GRID_NS).round().max(1.0) as u32;
        IssueGrid { steps }
    }

    /// Delay in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.steps as f64 * ISSUE_GRID_NS
    }

    /// Delay in grid steps.
    pub const fn steps(self) -> u32 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_snaps_to_multiples_of_1_5() {
        assert_eq!(IssueGrid::from_ns(1.5).as_ns(), 1.5);
        assert_eq!(IssueGrid::from_ns(3.0).as_ns(), 3.0);
        assert_eq!(IssueGrid::from_ns(2.0).as_ns(), 1.5);
        assert_eq!(IssueGrid::from_ns(2.3).as_ns(), 3.0);
        assert_eq!(IssueGrid::from_ns(36.0).as_ns(), 36.0);
    }

    #[test]
    fn grid_never_returns_zero_delay() {
        assert_eq!(IssueGrid::from_ns(0.0).as_ns(), 1.5);
        assert_eq!(IssueGrid::from_ns(0.2).as_ns(), 1.5);
    }

    #[test]
    fn speed_bins_are_distinct_and_sane() {
        let b2133 = TimingParams::ddr4_2133();
        let b2666 = TimingParams::ddr4_2666();
        let b3200 = TimingParams::ddr4_3200();
        assert!(b2133.t_ck_ns > b2666.t_ck_ns);
        assert!(b2666.t_ck_ns > b3200.t_ck_ns);
        for b in [b2133, b2666, b3200] {
            assert!(b.t_ras_ns > b.t_rp_ns);
            assert!(b.t_refi_ns > b.t_rfc_ns);
        }
    }

    #[test]
    fn violated_t1_t2_of_the_paper_sit_on_grid() {
        // The paper's swept values must be representable exactly.
        for ns in [1.5, 3.0, 6.0, 36.0] {
            let g = IssueGrid::from_ns(ns);
            assert!((g.as_ns() - ns).abs() < 1e-9);
        }
    }
}
