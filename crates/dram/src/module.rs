//! The DRAM module: a vendor profile plus a set of banks.
//!
//! Ranks and chips are collapsed: the paper's per-chip results are
//! per-bank/per-subarray statistics, and lockstep chips behave identically
//! at the abstraction level of this model. A "module" here is the unit the
//! tester plugs in and sweeps.

use serde::{Deserialize, Serialize};

use crate::bank::Bank;
use crate::error::DramError;
use crate::faults::CellFaultSpec;
use crate::geometry::{BankId, Geometry};
use crate::subarray::VariationParams;
use crate::vendor::VendorProfile;

/// A modelled DDR4 module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramModule {
    profile: VendorProfile,
    seed: u64,
    banks: Vec<Bank>,
}

impl DramModule {
    /// Creates a module with the given vendor `profile`; `seed` stamps the
    /// process variation of every subarray in the module.
    pub fn new(profile: VendorProfile, seed: u64) -> Self {
        let variation = VariationParams {
            cell_cap_sigma: VariationParams::default().cell_cap_sigma
                * profile.cell_variation_scale,
            cell_strength_sigma: VariationParams::default().cell_strength_sigma
                * profile.cell_variation_scale,
            sense_offset_sigma: VariationParams::default().sense_offset_sigma
                * profile.sense_offset_scale,
        };
        let banks = (0..profile.geometry.banks)
            .map(|b| {
                let bank_seed = seed
                    .wrapping_mul(0xD1B5_4A32_D192_ED03)
                    .wrapping_add(b as u64 + 1);
                Bank::new(profile.geometry, variation, bank_seed)
            })
            .collect();
        DramModule {
            profile,
            seed,
            banks,
        }
    }

    /// The module's vendor profile.
    pub fn profile(&self) -> &VendorProfile {
        &self.profile
    }

    /// The module's geometry (shortcut for `profile().geometry`).
    pub fn geometry(&self) -> &Geometry {
        &self.profile.geometry
    }

    /// The seed this module's silicon was stamped from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of banks.
    pub fn bank_count(&self) -> u16 {
        self.banks.len() as u16
    }

    /// Immutable access to a bank.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankOutOfRange`] for a bad bank id.
    pub fn bank(&self, id: BankId) -> Result<&Bank, DramError> {
        self.banks
            .get(id.raw() as usize)
            .ok_or(DramError::BankOutOfRange {
                bank: id,
                banks: self.bank_count(),
            })
    }

    /// Mutable access to a bank.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankOutOfRange`] for a bad bank id.
    pub fn bank_mut(&mut self, id: BankId) -> Result<&mut Bank, DramError> {
        let banks = self.bank_count();
        self.banks
            .get_mut(id.raw() as usize)
            .ok_or(DramError::BankOutOfRange { bank: id, banks })
    }

    /// Iterates over bank ids.
    pub fn bank_ids(&self) -> impl Iterator<Item = BankId> {
        (0..self.bank_count()).map(BankId::new)
    }

    /// Returns every bank to its exact just-constructed state while
    /// keeping the materialised subarrays (and their fault overlays)
    /// alive, so a pooled module rig can be reused across sweep points
    /// without re-allocating voltage planes or re-deriving overlays.
    /// After this call the module is observationally identical to a fresh
    /// [`DramModule::new`] with the same `(profile, seed)` and fault spec.
    pub fn reset_for_reuse(&mut self) {
        for bank in &mut self.banks {
            bank.reset_for_reuse();
        }
    }

    /// Installs (or, with `None`, clears) a cell-fault spec on every bank
    /// of the module. Defect positions are keyed by each subarray's
    /// silicon seed, so the same `(module seed, spec)` pair always grows
    /// the same defects — and the derivation draws from a dedicated
    /// stream, leaving all fault-free RNG streams untouched.
    pub fn set_fault_spec(&mut self, spec: Option<CellFaultSpec>) {
        for bank in &mut self.banks {
            bank.set_fault_spec(spec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::VendorProfile;

    #[test]
    fn module_has_profile_bank_count() {
        let m = DramModule::new(VendorProfile::mfr_h_m_die(), 1);
        assert_eq!(m.bank_count(), 16);
        assert_eq!(m.bank_ids().count(), 16);
    }

    #[test]
    fn bank_access_bounds_checked() {
        let mut m = DramModule::new(VendorProfile::mfr_h_m_die(), 1);
        assert!(m.bank(BankId::new(15)).is_ok());
        assert!(m.bank(BankId::new(16)).is_err());
        assert!(m.bank_mut(BankId::new(16)).is_err());
    }

    #[test]
    fn module_silicon_is_seed_deterministic() {
        let mut a = DramModule::new(VendorProfile::mfr_h_m_die(), 77);
        let mut b = DramModule::new(VendorProfile::mfr_h_m_die(), 77);
        let sa_a = a
            .bank_mut(BankId::new(0))
            .unwrap()
            .subarray(crate::geometry::SubarrayId::new(0))
            .clone();
        let sa_b = b
            .bank_mut(BankId::new(0))
            .unwrap()
            .subarray(crate::geometry::SubarrayId::new(0))
            .clone();
        assert_eq!(sa_a, sa_b);
    }

    #[test]
    fn different_banks_different_silicon() {
        let mut m = DramModule::new(VendorProfile::mfr_h_m_die(), 77);
        let s0 = m
            .bank_mut(BankId::new(0))
            .unwrap()
            .subarray(crate::geometry::SubarrayId::new(0))
            .clone();
        let s1 = m
            .bank_mut(BankId::new(1))
            .unwrap()
            .subarray(crate::geometry::SubarrayId::new(0))
            .clone();
        assert_ne!(s0, s1);
    }

    #[test]
    fn reset_for_reuse_matches_fresh_module() {
        use crate::data::BitRow;
        use crate::geometry::RowAddr;
        let mut used = DramModule::new(VendorProfile::mfr_h_m_die(), 77);
        let cols = used.geometry().cols_per_row as usize;
        used.bank_mut(BankId::new(2))
            .unwrap()
            .write_row_nominal(RowAddr::new(600), &BitRow::ones(cols))
            .unwrap();
        used.reset_for_reuse();
        let mut fresh = DramModule::new(VendorProfile::mfr_h_m_die(), 77);
        let sa_id = crate::geometry::SubarrayId::new(1);
        assert_eq!(
            used.bank_mut(BankId::new(2)).unwrap().subarray(sa_id),
            fresh.bank_mut(BankId::new(2)).unwrap().subarray(sa_id),
        );
    }

    #[test]
    fn fault_spec_reaches_every_bank() {
        let mut m = DramModule::new(VendorProfile::mfr_h_m_die(), 9);
        m.set_fault_spec(Some(CellFaultSpec {
            seed: 0xFA,
            stuck_per_million: 10_000.0,
            weak_per_million: 0.0,
            weak_leak_multiplier: 1.0,
            sense_offset_shift: 0.0,
        }));
        for b in [0u16, 7, 15] {
            let sa = m
                .bank_mut(BankId::new(b))
                .unwrap()
                .subarray(crate::geometry::SubarrayId::new(0));
            assert!(
                sa.faults().is_some_and(|f| f.stuck_count() > 0),
                "bank {b} missing its overlay"
            );
        }
    }

    #[test]
    fn vendor_variation_scales_apply() {
        // Mfr. M has a larger sense-offset scale; check it propagates by
        // comparing offset magnitudes statistically.
        let mut h = DramModule::new(VendorProfile::mfr_h_m_die(), 5);
        let mut m = DramModule::new(VendorProfile::mfr_m_e_die(), 5);
        let sum_abs = |module: &mut DramModule| -> f32 {
            let bank = module.bank_mut(BankId::new(0)).unwrap();
            let sa = bank.subarray(crate::geometry::SubarrayId::new(0));
            (0..sa.cols())
                .map(|c| sa.sense_offset(c).abs())
                .sum::<f32>()
                / sa.cols() as f32
        };
        let h_avg = sum_abs(&mut h);
        let m_avg = sum_abs(&mut m);
        assert!(
            m_avg > h_avg,
            "Mfr. M offsets ({m_avg}) should exceed Mfr. H ({h_avg})"
        );
    }
}
