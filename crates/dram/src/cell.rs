//! The analog DRAM cell model.
//!
//! A cell stores its state as a *normalized* capacitor voltage in `[0, 1]`
//! (1.0 = VDD, 0.5 = the precharge level VDD/2). Normalized units keep the
//! charge-sharing arithmetic in `simra-analog` independent of the actual
//! rail voltage; VPP/temperature effects enter through multiplicative
//! factors on transfer strength, not through the stored value.
//!
//! Each cell carries two process-variation factors fixed at manufacture
//! time (i.e. subarray construction): a capacitance factor and an
//! access-transistor strength factor. These are what make some cells
//! "unstable" for PUD in the paper's sense — their margins are
//! systematically worse, so they fail in every trial batch.

use serde::{Deserialize, Serialize};

/// One DRAM cell: a capacitor plus an access transistor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Normalized capacitor voltage in `[0, 1]`.
    voltage: f32,
    /// Capacitance as a multiple of the nominal cell capacitance.
    cap_factor: f32,
    /// Access-transistor drive strength as a multiple of nominal.
    strength_factor: f32,
}

impl Cell {
    /// A nominal (variation-free) cell holding `voltage`.
    pub fn nominal(voltage: f32) -> Self {
        Cell {
            voltage,
            cap_factor: 1.0,
            strength_factor: 1.0,
        }
    }

    /// A cell with explicit process-variation factors.
    ///
    /// Factors are clamped to `[0.05, 4.0]`; a zero or negative capacitance
    /// is physically meaningless and would poison the charge arithmetic.
    pub fn with_variation(voltage: f32, cap_factor: f32, strength_factor: f32) -> Self {
        Cell {
            voltage,
            cap_factor: cap_factor.clamp(0.05, 4.0),
            strength_factor: strength_factor.clamp(0.05, 4.0),
        }
    }

    /// Normalized stored voltage.
    pub fn voltage(self) -> f32 {
        self.voltage
    }

    /// Capacitance factor (process variation).
    pub fn cap_factor(self) -> f32 {
        self.cap_factor
    }

    /// Access strength factor (process variation).
    pub fn strength_factor(self) -> f32 {
        self.strength_factor
    }

    /// Digital read-out: charged above the VDD/2 sensing midpoint?
    pub fn as_bit(self) -> bool {
        self.voltage > 0.5
    }

    /// Fully writes a digital value (sense-amp/write-driver overdrive
    /// restores the rail).
    pub fn write_bit(&mut self, bit: bool) {
        self.voltage = if bit { 1.0 } else { 0.0 };
    }

    /// Drives the cell towards `target` with a given `coupling` in `[0, 1]`
    /// (1 = full restore). Models partial restoration when a wordline is
    /// only weakly asserted.
    pub fn drive_towards(&mut self, target: f32, coupling: f32) {
        let coupling = coupling.clamp(0.0, 1.0);
        self.voltage += (target - self.voltage) * coupling;
    }

    /// Sets the exact analog voltage (used by the Frac operation to park a
    /// cell at VDD/2).
    pub fn set_voltage(&mut self, voltage: f32) {
        self.voltage = voltage.clamp(0.0, 1.0);
    }

    /// Whether the cell sits in the "neutral" band around VDD/2 after a
    /// Frac operation — it then contributes (almost) nothing to the
    /// bitline perturbation (§3.3 neutral rows).
    pub fn is_neutral(self, tolerance: f32) -> bool {
        (self.voltage - 0.5).abs() <= tolerance
    }
}

impl Default for Cell {
    fn default() -> Self {
        Cell::nominal(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_read_digital() {
        let mut c = Cell::default();
        assert!(!c.as_bit());
        c.write_bit(true);
        assert!(c.as_bit());
        assert_eq!(c.voltage(), 1.0);
        c.write_bit(false);
        assert!(!c.as_bit());
    }

    #[test]
    fn variation_factors_are_clamped() {
        let c = Cell::with_variation(0.0, -1.0, 100.0);
        assert!(c.cap_factor() >= 0.05);
        assert!(c.strength_factor() <= 4.0);
    }

    #[test]
    fn drive_towards_partial() {
        let mut c = Cell::nominal(0.0);
        c.drive_towards(1.0, 0.5);
        assert!((c.voltage() - 0.5).abs() < 1e-6);
        c.drive_towards(1.0, 1.0);
        assert!((c.voltage() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn frac_neutral_band() {
        let mut c = Cell::nominal(1.0);
        c.set_voltage(0.5);
        assert!(c.is_neutral(0.05));
        c.set_voltage(0.6);
        assert!(!c.is_neutral(0.05));
    }

    #[test]
    fn set_voltage_clamps_to_rails() {
        let mut c = Cell::default();
        c.set_voltage(1.7);
        assert_eq!(c.voltage(), 1.0);
        c.set_voltage(-0.3);
        assert_eq!(c.voltage(), 0.0);
    }
}
