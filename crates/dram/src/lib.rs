//! # simra-dram
//!
//! Behavioural DDR4 device model: the storage substrate for the
//! SiMRA-DRAM reproduction.
//!
//! The paper characterizes 120 real DDR4 chips; this crate provides the
//! synthetic stand-in — a module/bank/subarray/cell hierarchy with
//! *analog* per-cell state (stored voltage, capacitance variation,
//! access-transistor strength) so that the charge-sharing model in
//! `simra-analog` can compute bitline perturbations the same way the
//! silicon does.
//!
//! What lives here:
//! * [`geometry`] — typed addresses and chip organisation,
//! * [`timing`] — JEDEC DDR4 timing parameters and the 1.5 ns issue grid,
//! * [`command`] — the DDR command vocabulary,
//! * [`data`] — data patterns and packed row images,
//! * [`cell`], [`subarray`], [`bank`], [`module`] — the storage hierarchy,
//! * [`silicon`] — shared immutable variation planes + the silicon cache,
//! * [`faults`] — deterministic cell-defect overlays (stuck/weak cells,
//!   sense-offset drift) drawn from a dedicated RNG stream,
//! * [`vendor`] — manufacturer profiles (Mfr. H, Mfr. M, Mfr. S) matching
//!   Table 1/2 of the paper.
//!
//! # Example
//!
//! ```
//! use simra_dram::vendor::VendorProfile;
//! use simra_dram::module::DramModule;
//!
//! let module = DramModule::new(VendorProfile::mfr_h_m_die(), 7);
//! assert_eq!(module.geometry().rows_per_subarray, 512);
//! ```

pub mod bank;
pub mod cell;
pub mod command;
pub mod data;
pub mod error;
pub mod faults;
pub mod geometry;
pub mod module;
pub mod protocol;
pub mod refresh;
pub mod retention;
pub mod silicon;
pub mod spd;
pub mod subarray;
pub mod timing;
pub mod vendor;

pub use bank::Bank;
pub use cell::Cell;
pub use command::{ApaTiming, Command};
pub use data::{BitRow, DataPattern};
pub use error::DramError;
pub use faults::{CellFaultSpec, SubarrayFaults};
pub use geometry::{BankId, ColAddr, Geometry, RowAddr, SubarrayId};
pub use module::DramModule;
pub use protocol::{ProtocolChecker, TimingRule, Violation};
pub use retention::RetentionParams;
pub use silicon::SiliconPlanes;
pub use subarray::Subarray;
pub use timing::TimingParams;
pub use vendor::{DieRevision, Manufacturer, VendorProfile};
