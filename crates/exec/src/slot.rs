//! Slot epochs: the determinism boundary for stateful backends.
//!
//! The fleet executor's byte-identity guarantees all rest on one
//! invariant: every (module, point, attempt) task — a *slot* — is a
//! pure function of its seed, independent of worker count, scheduling,
//! retries, checkpoint resume, and sharding. A backend that adapts to
//! its observation history (the hybrid backend) threatens that
//! invariant unless its state is scoped to exactly one slot: state
//! carried across slots would make a trial's answer depend on which
//! slots happened to run earlier on the same thread — which is
//! precisely what changes under a different worker count or a resumed
//! journal.
//!
//! This module provides the scoping mechanism. Executors call
//! [`begin`] at the start of every slot attempt; stateful backends key
//! their thread-local state by [`current`] and drop it the moment the
//! epoch moves on. Epoch *values* are allocation-order artifacts and
//! must never influence results — only the boundaries matter, and those
//! are deterministic because a slot runs start-to-finish on one thread.
//!
//! Callers outside the fleet (sequential loops like the per-die table
//! or the case-study microbenchmarks) call [`begin`] at the start of
//! each independent unit of work for the same reason: without it, a
//! stateful backend would inherit whatever epoch the previous task left
//! on the thread, and pool scheduling would leak into the results.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Next epoch to hand out. Starts at 1 so the "no slot began on this
/// thread yet" state (epoch 0) is distinguishable.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT_EPOCH: Cell<u64> = const { Cell::new(0) };
}

/// Starts a new slot epoch on the calling thread. Every stateful
/// backend's per-point history resets at this boundary. Cheap (one
/// relaxed atomic increment + a thread-local store) and side-effect
/// free for stateless backends.
pub fn begin() {
    let epoch = NEXT_EPOCH.fetch_add(1, Ordering::Relaxed);
    CURRENT_EPOCH.with(|c| c.set(epoch));
}

/// The calling thread's current slot epoch (0 before the first
/// [`begin`] on this thread).
pub fn current() -> u64 {
    CURRENT_EPOCH.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_advances_the_thread_epoch() {
        begin();
        let first = current();
        assert_ne!(first, 0);
        begin();
        assert!(current() > first, "epochs are monotonic per thread");
    }

    #[test]
    fn epochs_are_distinct_across_threads() {
        begin();
        let here = current();
        let there = std::thread::spawn(|| {
            begin();
            current()
        })
        .join()
        .expect("probe thread");
        assert_ne!(here, there, "every begin() allocates a fresh epoch");
    }
}
