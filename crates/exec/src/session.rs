//! Session-scoped execution context: everything a characterization
//! campaign used to reach through process globals for, owned by a
//! value.
//!
//! A process hosts exactly one global telemetry recorder, one global
//! backend set, and one set of global engine counters — which pins one
//! campaign per process. [`ExecSession`] evicts that state into an
//! owned context: a [`Recorder`] handle, a [`BackendSet`] whose
//! surrogate calibration cache and hybrid slot state are instance-owned,
//! the engine op-counter handles every rig inherits, and the campaign's
//! root seed. Two sessions on the same process (even on the same shared
//! fleet pool) are fully isolated: their backends never share mutable
//! state, and their telemetry lands in their own recorders.
//!
//! Determinism is unaffected by where telemetry lands: counters and
//! spans never touch an RNG stream, the surrogate's calibration probes
//! are pure functions of the calibration key, and the hybrid's
//! escalation state is slot-scoped per instance — so a session's output
//! is byte-identical whether it runs alone or next to others.
//!
//! The old globals remain as default shims ([`BackendSet::global`],
//! `simra_telemetry::global`): code that never constructs a session
//! keeps its historical behavior.

use std::fmt;
use std::sync::OnceLock;

use simra_analog::EngineCounters;
use simra_telemetry::Recorder;

use crate::{
    AnalogBackend, BackendChoice, HybridBackend, HybridParams, PudBackend, SurrogateBackend,
};

/// One of each backend, dispatched by [`BackendChoice`].
///
/// Each set owns its surrogate calibration cache and hybrid slot state,
/// so independent sets (one per session) are isolated; within one set
/// the caches stay warm across figures — `check_observations`
/// regenerates every figure and, past the first, runs on cache hits.
#[derive(Debug, Default)]
pub struct BackendSet {
    analog: AnalogBackend,
    surrogate: SurrogateBackend,
    hybrid: HybridBackend,
}

impl BackendSet {
    /// The process-wide default set, reporting to the global recorder —
    /// the shim for code that does not carry an [`ExecSession`].
    pub fn global() -> &'static BackendSet {
        static GLOBAL: OnceLock<BackendSet> = OnceLock::new();
        GLOBAL.get_or_init(BackendSet::default)
    }

    /// A fresh set whose backends report to `recorder`.
    pub fn recorded_by(recorder: &Recorder) -> Self {
        BackendSet {
            analog: AnalogBackend,
            surrogate: SurrogateBackend::recorded_by(recorder),
            hybrid: HybridBackend::recorded_by(recorder),
        }
    }

    /// The backend a choice names.
    pub fn dispatch(&self, choice: BackendChoice) -> &dyn PudBackend {
        match choice {
            BackendChoice::Analog => &self.analog,
            BackendChoice::Surrogate => &self.surrogate,
            BackendChoice::Hybrid => &self.hybrid,
        }
    }

    /// The analog backend.
    pub fn analog(&self) -> &AnalogBackend {
        &self.analog
    }

    /// The surrogate backend (instance-owned calibration cache).
    pub fn surrogate(&self) -> &SurrogateBackend {
        &self.surrogate
    }

    /// The hybrid backend (instance-owned slot state and parameters).
    pub fn hybrid(&self) -> &HybridBackend {
        &self.hybrid
    }

    /// Applies decision parameters to the hybrid backend (new slots
    /// pick them up; running slots keep their snapshot).
    pub fn set_hybrid_params(&self, params: HybridParams) {
        self.hybrid.set_params(params);
    }
}

/// The owned execution context of one characterization session: the
/// telemetry recorder, the backend set (with its calibration cache and
/// hybrid slot state), the engine op-counter handles, and the root
/// seed. See the module docs for the isolation and determinism
/// contract.
pub struct ExecSession {
    recorder: Recorder,
    seed: u64,
    backends: BackendSet,
    engine_counters: EngineCounters,
}

impl fmt::Debug for ExecSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecSession")
            .field("seed", &self.seed)
            .field("backends", &self.backends)
            .finish_non_exhaustive()
    }
}

impl ExecSession {
    /// A session reporting to the process-global recorder — the default
    /// the `repro` CLI constructs, byte- and telemetry-compatible with
    /// the pre-session code path.
    pub fn new(seed: u64) -> Self {
        ExecSession::recorded_by(seed, simra_telemetry::global().clone())
    }

    /// A session with a private recorder. Enable it with
    /// [`Recorder::enable`] if its snapshots should carry data.
    pub fn recorded_by(seed: u64, recorder: Recorder) -> Self {
        let backends = BackendSet::recorded_by(&recorder);
        let engine_counters = EngineCounters::recorded_by(&recorder);
        ExecSession {
            recorder,
            seed,
            backends,
            engine_counters,
        }
    }

    /// The session's telemetry recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The session's root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The session's backend set.
    pub fn backends(&self) -> &BackendSet {
        &self.backends
    }

    /// The backend a choice names, from this session's set.
    pub fn dispatch(&self, choice: BackendChoice) -> &dyn PudBackend {
        self.backends.dispatch(choice)
    }

    /// The engine op-counter handles rigs of this session should report
    /// through (`TestSetup::set_engine_counters`).
    pub fn engine_counters(&self) -> &EngineCounters {
        &self.engine_counters
    }

    /// Applies decision parameters to this session's hybrid backend.
    pub fn set_hybrid_params(&self, params: HybridParams) {
        self.backends.set_hybrid_params(params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simra_bender::TestSetup;
    use simra_core::rowgroup::random_group;
    use simra_dram::{ApaTiming, BankId, DramModule, SubarrayId, VendorProfile};

    use crate::TrialSpec;

    #[test]
    fn dispatch_names_match_choices() {
        let session = ExecSession::new(7);
        assert_eq!(session.dispatch(BackendChoice::Analog).name(), "analog");
        assert_eq!(
            session.dispatch(BackendChoice::Surrogate).name(),
            "surrogate"
        );
        assert_eq!(session.dispatch(BackendChoice::Hybrid).name(), "hybrid");
    }

    #[test]
    fn private_recorders_capture_only_their_sessions_work() {
        let recorder_a = Recorder::new();
        recorder_a.enable();
        let recorder_b = Recorder::new();
        recorder_b.enable();
        let a = ExecSession::recorded_by(7, recorder_a.clone());
        let _b = ExecSession::recorded_by(8, recorder_b.clone());

        // One surrogate trial on session A only: its calibration probe
        // must land in A's recorder and nowhere near B's.
        crate::slot::begin();
        let mut setup = TestSetup::with_module(DramModule::new(VendorProfile::mfr_h_m_die(), 7));
        setup.set_engine_counters(a.engine_counters().clone());
        let mut rng = StdRng::seed_from_u64(21);
        let group = random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            32,
            &mut rng,
        )
        .expect("subarray hosts the group");
        let spec = TrialSpec::activation(ApaTiming::best_for_activation());
        let sample = a
            .dispatch(BackendChoice::Surrogate)
            .run_trial(&spec, &mut setup, &group, &mut rng)
            .expect("feasible trial");
        assert!(sample > 0.9, "calibrated activation success {sample}");

        let probes = |snapshot: simra_telemetry::Snapshot| {
            snapshot
                .counters
                .iter()
                .filter(|c| c.module == "surrogate" && c.name == "calibration_probes")
                .map(|c| c.value)
                .sum::<u64>()
        };
        assert_eq!(probes(recorder_a.snapshot()), 1, "A paid one probe");
        assert_eq!(probes(recorder_b.snapshot()), 0, "B saw nothing");
    }

    #[test]
    fn sessions_do_not_share_hybrid_or_surrogate_state() {
        let a = ExecSession::recorded_by(1, Recorder::new());
        let b = ExecSession::recorded_by(2, Recorder::new());
        crate::slot::begin();
        let mut setup = TestSetup::with_module(DramModule::new(VendorProfile::mfr_h_m_die(), 7));
        let mut rng = StdRng::seed_from_u64(21);
        let group = random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            32,
            &mut rng,
        )
        .expect("subarray hosts the group");
        let spec = TrialSpec::activation(ApaTiming::best_for_activation());
        let _ = a
            .dispatch(BackendChoice::Surrogate)
            .run_trial(&spec, &mut setup, &group, &mut rng);
        assert_eq!(a.backends().surrogate.calibrated_points(), 1);
        assert_eq!(
            b.backends().surrogate.calibrated_points(),
            0,
            "B's calibration cache is untouched by A's probe"
        );
    }
}
