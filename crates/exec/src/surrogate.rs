//! The calibrated fast surrogate backend.
//!
//! # Model
//!
//! The analog pipeline spends its time simulating per-column charge
//! sharing and sense amplification for every (group, trial). The
//! surrogate observes that every figure consumes only the *success
//! fraction* of a trial, and that at the paper's 10⁴ trials per group
//! the observed fraction is a `Binomial(T, p)/T` average — fully
//! characterized by the underlying success probability `p` plus
//! sampling noise.
//!
//! So the surrogate runs the real analog operation **once per distinct
//! configuration** — keyed by (vendor profile, operation, X, N, timing,
//! pattern, temperature, V_PP) — on a small dedicated calibration rig,
//! caches the resulting probability, and per trial returns
//! `clamp(p + σ·z, 0, 1)` with `σ = sqrt(p(1−p)/T)` and `z` a
//! standard normal drawn from the trial's own RNG stream. A whole
//! quick-scale sweep touches each key once and then runs at hash-lookup
//! speed.
//!
//! # Why paired observations survive
//!
//! Two properties are load-bearing for the observation scoreboard:
//!
//! 1. **Fixed per-trial draw count.** Every surrogate trial consumes
//!    exactly two uniforms (one Box–Muller normal), regardless of
//!    parameters. The fleet seeds each (module, point) task's stream
//!    from `(config, module, index, N)` only — so two sweep points at
//!    the same N replay *identical* noise, which cancels exactly in
//!    every paired comparison (the temperature/voltage/pattern
//!    observations 3, 4, 9, 11, 13, 16, 17, 18 all compare points at
//!    equal N).
//! 2. **Shared calibration sample.** The calibration rig's RNG is
//!    seeded from the key *without* the pattern, temperature, and V_PP
//!    components, so paired operating points calibrate on the same
//!    groups and the cached probabilities differ only by physics, not
//!    by group-selection luck.
//!
//! # Error band
//!
//! Calibration measures `CAL_GROUPS` groups at `CAL_COLS` columns
//! instead of the full population, so absolute success rates carry a
//! group-to-group spread of a few percentage points (the analog model's
//! per-group strength factor spans roughly ±10 %). Paired deltas at
//! equal N are exact up to trial noise (σ ≤ 0.5 pp, ≈ 0.1 pp at
//! p ≈ 0.99). The documented tolerance band for the scoreboard is
//! therefore: **≥ 16 of 18 observations hold** under the surrogate at
//! quick scale — the margin-based observations (1, 2, 6, 7, 8, 10, 14,
//! 15) have ≥ 10 pp slack against a ≤ 5 pp absolute error, and the
//! paired observations see only cancelled noise. CI enforces exactly
//! this band (`.github/workflows/ci.yml`, `repro-surrogate`).

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use simra_analog::EngineCounters;
use simra_bender::TestSetup;
use simra_core::rowgroup::{sample_groups, GroupSpec};
use simra_dram::{DataPattern, DramModule, Manufacturer, VendorProfile};
use simra_telemetry::Recorder;

use crate::{AnalogBackend, MrcSource, PudBackend, TrialOp, TrialSpec};

/// Groups measured per calibration key (averaged).
const CAL_GROUPS: usize = 2;
/// Columns on the calibration rig. Success is a per-column average, so
/// narrowing the rig shrinks calibration cost without biasing the mean.
const CAL_COLS: u32 = 64;
/// Silicon seed of the calibration rig (shared by every key so repeated
/// calibrations of one profile reuse the same virtual module).
const CAL_RIG_SEED: u64 = 0xCA11_B8A7;
/// Trials per group modelled by the noise term (the paper's 10⁴).
/// Shared with the hybrid backend so its table answers carry the same
/// noise model as pure surrogate answers.
pub(crate) const TRIALS_PER_GROUP: f64 = 10_000.0;

/// Cache key: everything the calibrated probability depends on. Also
/// used by the hybrid backend as its per-point state key — a "point"
/// for escalation accounting is exactly a distinct calibration key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CalKey {
    /// `VendorProfile::label()` — distinct per (manufacturer, die).
    profile: String,
    /// Operation discriminant (0 = activation, 1 = MAJX, 2 = MRC).
    op: u8,
    /// MAJX operand count; 0 for other ops.
    x: u8,
    /// Simultaneously activated rows.
    n: u32,
    /// Timing, exact ns bit patterns (timings are grid-snapped).
    t1_bits: u64,
    t2_bits: u64,
    /// Data pattern / source discriminant.
    pattern: u8,
    /// Operating point, exact f64 bit patterns (sweep values are
    /// grid-snapped by their figure loops); [`NOMINAL_BITS`] encodes
    /// "nominal" (no override). Exact bits matter: if two distinct
    /// operating points ever shared a key, the cached probability would
    /// depend on which caller probed first — and shard workers and
    /// journal-replay processes probe keys in a different order than a
    /// monolithic run.
    temp_bits: u64,
    vpp_bits: u64,
}

fn pattern_code(p: DataPattern) -> u8 {
    match p {
        DataPattern::Solid => 0,
        DataPattern::Checkered => 1,
        DataPattern::ColStripe2 => 2,
        DataPattern::ColStripe2Shifted => 3,
        DataPattern::Random => 4,
    }
}

fn source_code(s: MrcSource) -> u8 {
    match s {
        MrcSource::AllZeros => 0,
        MrcSource::AllOnes => 1,
        // Both random conventions draw from the same distribution; they
        // share a calibrated probability.
        MrcSource::RandomBits | MrcSource::RandomRow => 2,
    }
}

/// Sentinel for "no operating-point override" — an all-ones bit
/// pattern, which is a NaN no sweep ever carries as a real value.
const NOMINAL_BITS: u64 = u64::MAX;

fn op_point_bits(v: Option<f64>) -> u64 {
    match v {
        Some(v) => v.to_bits(),
        None => NOMINAL_BITS,
    }
}

impl CalKey {
    pub(crate) fn new(profile: &VendorProfile, spec: &TrialSpec, n: u32) -> Self {
        let (op, x, t1, t2, pattern) = match spec.op {
            TrialOp::Activation { timing, pattern } => {
                (0u8, 0u8, timing.t1, timing.t2, pattern_code(pattern))
            }
            TrialOp::Majx { x, timing, pattern } => {
                (1, x as u8, timing.t1, timing.t2, pattern_code(pattern))
            }
            TrialOp::MultiRowCopy { timing, source } => {
                (2, 0, timing.t1, timing.t2, source_code(source))
            }
        };
        CalKey {
            profile: profile.label(),
            op,
            x,
            n,
            t1_bits: t1.as_ns().to_bits(),
            t2_bits: t2.as_ns().to_bits(),
            pattern,
            temp_bits: op_point_bits(spec.temperature_c),
            vpp_bits: op_point_bits(spec.vpp_v),
        }
    }

    /// Seed of the calibration stream. Deliberately *excludes* the
    /// pattern and operating-point components so paired sweep points
    /// calibrate on identical groups (see the module docs); the FNV-1a
    /// fold keeps it stable across processes and Rust releases.
    fn physics_seed(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for b in self.profile.bytes() {
            fold(b);
        }
        fold(self.op);
        fold(self.x);
        for b in self.n.to_le_bytes() {
            fold(b);
        }
        h
    }

    /// The spec the calibration probe actually runs: `spec` with the
    /// one component the key still *collapses* — the two random MRC
    /// source conventions — snapped to a canonical representative.
    /// Two specs that share a key can differ in that component, and the
    /// probe must not depend on which caller gets there first: a shard
    /// worker or a journal-replay process probes keys in a different
    /// order than a monolithic run, and the cached probability has to
    /// come out identical everywhere. Snapping to `RandomBits` is safe
    /// because the two conventions draw from the same distribution
    /// (that is why they share a key at all).
    fn canonical_spec(&self, spec: &TrialSpec) -> TrialSpec {
        let mut canonical = *spec;
        if let TrialOp::MultiRowCopy { source, .. } = &mut canonical.op {
            if *source == MrcSource::RandomRow {
                *source = MrcSource::RandomBits;
            }
        }
        canonical
    }
}

/// The calibrated fast surrogate backend. See the module docs for the
/// model, the calibration procedure, and the error band.
///
/// One instance should live for a whole session (an `ExecSession` keeps
/// one per backend set) so the calibration cache stays warm across
/// figures — `check_observations` regenerates every figure and then
/// runs entirely on cache hits. The cache contents are deterministic in
/// the key (the probe rig and its RNG are seeded from the key alone),
/// so a fresh instance recalibrating from scratch lands on identical
/// probabilities — sessions never need to share a table to agree.
#[derive(Debug, Default)]
pub struct SurrogateBackend {
    calibration: Mutex<HashMap<CalKey, f64>>,
    counters: CalCounters,
    /// Counter handles the calibration rig reports engine ops to, so a
    /// session's probe cost lands in that session's recorder.
    engine_counters: EngineCounters,
}

impl SurrogateBackend {
    /// A fresh surrogate with an empty calibration cache, reporting to
    /// the global recorder.
    pub fn new() -> Self {
        SurrogateBackend::default()
    }

    /// A fresh surrogate reporting its calibration cost (and the probe
    /// rig's engine ops) to `recorder`.
    pub fn recorded_by(recorder: &Recorder) -> Self {
        SurrogateBackend {
            calibration: Mutex::new(HashMap::new()),
            counters: CalCounters::recorded_by(recorder),
            engine_counters: EngineCounters::recorded_by(recorder),
        }
    }

    /// Number of calibrated configurations currently cached.
    pub fn calibrated_points(&self) -> usize {
        self.calibration
            .lock()
            .expect("surrogate calibration cache poisoned")
            .len()
    }

    /// The calibrated success probability for `spec` on `profile` at
    /// `n` rows, probing the analog core on a miss. `NaN` marks an
    /// infeasible configuration (every probe returned `None`).
    pub(crate) fn probability(&self, profile: &VendorProfile, spec: &TrialSpec, n: u32) -> f64 {
        let key = CalKey::new(profile, spec, n);
        let mut cache = self
            .calibration
            .lock()
            .expect("surrogate calibration cache poisoned");
        if let Some(&p) = cache.get(&key) {
            return p;
        }
        self.counters.probes.incr();
        self.counters.probe_groups.add(CAL_GROUPS as u64);
        let p = calibrate(
            profile,
            &key.canonical_spec(spec),
            n,
            key.physics_seed(),
            &self.engine_counters,
        );
        cache.insert(key, p);
        p
    }
}

/// Telemetry counters for calibration cost. Every cache miss is one
/// probe (mount rig, sample groups, run `CAL_GROUPS` analog trials), so
/// `calibration_probes × CAL_GROUPS = calibration_probe_groups` analog
/// group-trials were spent building the table — the denominator for any
/// "is the surrogate actually cheaper" accounting. The cache mutex is
/// held across the probe, so each key is counted exactly once no matter
/// how many worker threads race on it.
struct CalCounters {
    probes: simra_telemetry::Counter,
    probe_groups: simra_telemetry::Counter,
}

impl CalCounters {
    fn recorded_by(recorder: &Recorder) -> Self {
        CalCounters {
            probes: recorder.counter("surrogate", "calibration_probes"),
            probe_groups: recorder.counter("surrogate", "calibration_probe_groups"),
        }
    }
}

impl Default for CalCounters {
    fn default() -> Self {
        CalCounters::recorded_by(simra_telemetry::global())
    }
}

impl fmt::Debug for CalCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CalCounters")
            .field("probes", &self.probes.get())
            .field("probe_groups", &self.probe_groups.get())
            .finish()
    }
}

/// One calibration probe: mount a narrow rig of the profile, draw the
/// key's deterministic group sample, and run the *analog* backend over
/// it — the surrogate is calibrated by the very code it replaces.
/// Because the probe goes through [`AnalogBackend`], calibration rides
/// the tiled/batched analog hot path for free (batched MAJX senses,
/// fused commit-survival reductions) without any code here changing.
fn calibrate(
    profile: &VendorProfile,
    spec: &TrialSpec,
    n: u32,
    seed: u64,
    engine_counters: &EngineCounters,
) -> f64 {
    let mut cal_profile = profile.clone();
    cal_profile.geometry.cols_per_row = CAL_COLS.min(cal_profile.geometry.cols_per_row);
    let mut setup = TestSetup::with_module(DramModule::new(cal_profile, CAL_RIG_SEED));
    setup.set_engine_counters(engine_counters.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let groups = sample_groups(setup.module().geometry(), n, 1, 1, CAL_GROUPS, &mut rng);
    let mut sum = 0.0;
    let mut count = 0usize;
    for group in &groups {
        if let Some(s) = AnalogBackend.run_trial(spec, &mut setup, group, &mut rng) {
            sum += s;
            count += 1;
        }
    }
    if count == 0 {
        f64::NAN
    } else {
        sum / count as f64
    }
}

impl PudBackend for SurrogateBackend {
    fn name(&self) -> &'static str {
        "surrogate"
    }

    fn run_trial(
        &self,
        spec: &TrialSpec,
        setup: &mut TestSetup,
        group: &GroupSpec,
        rng: &mut StdRng,
    ) -> Option<f64> {
        // Feasibility guards mirror AnalogBackend (same None points,
        // no stream consumption).
        if let TrialOp::Majx { x, .. } = spec.op {
            if x >= 9 && setup.module().profile().manufacturer == Manufacturer::M {
                return None;
            }
        }
        let p = self.probability(setup.module().profile(), spec, group.n_rows() as u32);
        if p.is_nan() {
            return None;
        }
        Some(noisy_success_sample(p, rng))
    }
}

/// One table-backed trial sample: `clamp(p + σ·z, 0, 1)` with σ the
/// paper-scale binomial noise for `p`. Consumes exactly two uniforms —
/// never more, never fewer — so same-N sweep points replay identical
/// noise (module docs). Shared with the hybrid backend, whose table
/// answers must be byte-identical to what the surrogate would emit for
/// the same probability at the same stream position.
pub(crate) fn noisy_success_sample(p: f64, rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen();
    let u2: f64 = rng.gen();
    let z =
        (-2.0 * (1.0 - u1).max(f64::MIN_POSITIVE).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    let sigma = (p * (1.0 - p) / TRIALS_PER_GROUP).max(0.0).sqrt();
    (p + sigma * z).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simra_core::rowgroup::random_group;
    use simra_dram::{ApaTiming, BankId, SubarrayId};

    fn rig(profile: VendorProfile, seed: u64) -> (TestSetup, StdRng) {
        (
            TestSetup::with_module(DramModule::new(profile, seed)),
            StdRng::seed_from_u64(21),
        )
    }

    fn group_of(setup: &TestSetup, n: u32, rng: &mut StdRng) -> GroupSpec {
        random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            n,
            rng,
        )
        .expect("subarray hosts the group")
    }

    #[test]
    fn surrogate_tracks_the_analog_probability() {
        let surrogate = SurrogateBackend::new();
        let (mut setup, mut rng) = rig(VendorProfile::mfr_h_m_die(), 7);
        let group = group_of(&setup, 32, &mut rng);
        let spec = TrialSpec::activation(ApaTiming::best_for_activation());
        let s = surrogate
            .run_trial(&spec, &mut setup, &group, &mut rng)
            .expect("feasible trial");
        // Best-timing 32-row activation is near-perfect on the analog
        // core; the calibrated surrogate must land in the same regime.
        assert!(s > 0.95, "surrogate activation success {s}");
        assert_eq!(surrogate.calibrated_points(), 1);
        // Second trial of the same configuration: cache hit.
        let _ = surrogate.run_trial(&spec, &mut setup, &group, &mut rng);
        assert_eq!(surrogate.calibrated_points(), 1);
    }

    #[test]
    fn surrogate_is_deterministic_per_stream() {
        let spec = TrialSpec::majx(3, ApaTiming::best_for_majx(), DataPattern::Random);
        let sample = |surrogate: &SurrogateBackend| {
            let (mut setup, mut rng) = rig(VendorProfile::mfr_h_m_die(), 7);
            let group = group_of(&setup, 32, &mut rng);
            surrogate.run_trial(&spec, &mut setup, &group, &mut rng)
        };
        let a = sample(&SurrogateBackend::new());
        let b = sample(&SurrogateBackend::new());
        assert_eq!(a, b, "fresh caches, same stream → same sample");
    }

    #[test]
    fn infeasible_configurations_return_none() {
        let surrogate = SurrogateBackend::new();
        // MAJ9 on Mfr. M: guarded before calibration.
        let (mut setup, mut rng) = rig(VendorProfile::mfr_m_e_die(), 3);
        let group = group_of(&setup, 16, &mut rng);
        let spec = TrialSpec::majx(9, ApaTiming::best_for_majx(), DataPattern::Random);
        assert_eq!(
            surrogate.run_trial(&spec, &mut setup, &group, &mut rng),
            None
        );
        assert_eq!(surrogate.calibrated_points(), 0, "guard precedes probe");
        // N < X: the analog probe fails every group → NaN → None.
        let (mut setup, mut rng) = rig(VendorProfile::mfr_h_m_die(), 7);
        let group = group_of(&setup, 4, &mut rng);
        let spec = TrialSpec::majx(7, ApaTiming::best_for_majx(), DataPattern::Random);
        assert_eq!(
            surrogate.run_trial(&spec, &mut setup, &group, &mut rng),
            None
        );
    }

    #[test]
    fn paired_operating_points_share_trial_noise() {
        // The same stream position at two temperatures must produce
        // samples whose difference is purely the calibrated physics
        // delta — the noise term cancels.
        let surrogate = SurrogateBackend::new();
        let spec_cold =
            TrialSpec::activation(ApaTiming::best_for_activation()).at_temperature(50.0);
        let spec_hot = TrialSpec::activation(ApaTiming::best_for_activation()).at_temperature(90.0);
        let p_cold = {
            let (setup, _) = rig(VendorProfile::mfr_h_m_die(), 7);
            surrogate.probability(setup.module().profile(), &spec_cold, 32)
        };
        let p_hot = {
            let (setup, _) = rig(VendorProfile::mfr_h_m_die(), 7);
            surrogate.probability(setup.module().profile(), &spec_hot, 32)
        };
        let sample = |spec: &TrialSpec| {
            let (mut setup, mut rng) = rig(VendorProfile::mfr_h_m_die(), 7);
            let group = group_of(&setup, 32, &mut rng);
            surrogate
                .run_trial(spec, &mut setup, &group, &mut rng)
                .unwrap()
        };
        let s_cold = sample(&spec_cold);
        let s_hot = sample(&spec_hot);
        // Unclamped samples differ exactly by the probability delta up
        // to the (tiny) sigma difference; allow the clamp some slack.
        assert!(
            ((s_hot - s_cold) - (p_hot - p_cold)).abs() < 5e-3,
            "noise must cancel: Δsample {} vs Δp {}",
            s_hot - s_cold,
            p_hot - p_cold
        );
    }
}
