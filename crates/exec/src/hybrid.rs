//! The adaptive hybrid backend: confidence-gated escalation with
//! sequential early stopping.
//!
//! # Decision rule
//!
//! The analog backend is exact but slow; the surrogate is fast but
//! trusts its calibrated table blindly — and the table, probed on
//! `CAL_GROUPS` narrow-rig groups, carries a few percentage points of
//! absolute error that can flip a threshold-based observation (at quick
//! scale it misreports MAJ7@32 as 0.8 % where the analog core measures
//! 19.9 %, flipping Obs. 8). The hybrid spends analog trials *only
//! where they buy certainty*:
//!
//! For each operating point (the surrogate's calibration key) inside a
//! slot it maintains a [`SequentialEstimate`] — a Wilson-score interval
//! over the analog success fractions observed so far, each weighted by
//! `SAMPLE_WEIGHT` pseudo-trials. Per trial it either **answers from
//! the table** (two RNG draws, no analog work — byte-identical in form
//! to a surrogate answer) or **escalates** (runs the real
//! [`AnalogBackend`] trial and folds the result into the estimate).
//! A point starts answering once all three predicates hold:
//!
//! 1. **converged** — the interval half-width is ≤ ε (default 0.02 at
//!    95 % confidence),
//! 2. **consistent** — the calibrated table probability lies within the
//!    interval widened by `max(ε, TABLE_ERROR_BAND)` (otherwise the
//!    table is *wrong here* and every remaining trial escalates, up to
//!    the budget ceiling; this is what rescues Obs. 8),
//! 3. **clear** — the interval contains none of the observation
//!    thresholds the point's operation feeds
//!    (`decision_thresholds`).
//!
//! A floor/ceiling trial budget clamps the sequential rule: at least
//! `floor` analog trials are always spent (the consistency check needs
//! evidence), and a point that is still ambiguous after `ceiling`
//! analog trials answers anyway from its posterior. The high-confidence
//! bars of Obs. 1/14 (≥ 99 %) are deliberately *not* in the threshold
//! sets: a small-sample Wilson interval can never separate 99.9 % from
//! 99 %, so gating on them would force near-saturated points — the vast
//! majority — to deep-sample forever. Those observations are protected
//! by the consistency gate plus posterior anchoring instead: an answer
//! is the evidence-weighted blend of the observed trials with the
//! (consistency-checked) table prior, so a table entry a hair below a
//! 99 % bar cannot drag a saturated point under it.
//!
//! # Determinism
//!
//! Escalation decisions are a pure function of (params, spec,
//! observation history in slot order): the decision for trial *k* of a
//! point depends only on the outcomes of that point's earlier analog
//! trials *within the same slot*, which are themselves pure functions
//! of the slot's seeded RNG stream. State lives in a per-instance map
//! keyed by worker thread and scoped to the [`crate::slot`] epoch, and
//! is dropped at every slot boundary, so worker count, scheduling,
//! retries, checkpoint resume, and sharding cannot leak history between
//! slots — two same-seed runs are byte-identical, and two backend
//! instances (e.g. two concurrent sessions) never see each other's
//! state. Answer samples consume exactly two uniforms (the
//! surrogate's noise shape) and escalated trials consume exactly the
//! analog backend's draws, so a decided point's stream position matches
//! what a pure table (resp. pure analog) run would produce — and
//! paired same-N sweep points that decide after the same trial count
//! replay identical noise, preserving the paired-observation
//! cancellation the scoreboard relies on.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use std::thread::{self, ThreadId};

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use simra_analog::montecarlo::{SequentialEstimate, Z_95};
use simra_bender::TestSetup;
use simra_core::rowgroup::GroupSpec;
use simra_dram::Manufacturer;
use simra_telemetry::{Counter, Histogram, Recorder};

use crate::surrogate::{noisy_success_sample, CalKey};
use crate::{AnalogBackend, PudBackend, SurrogateBackend, TrialOp, TrialSpec};

/// Pseudo-trials one analog success fraction is worth in the Wilson
/// estimate. An analog trial averages over every column of the group
/// (512–1024 Bernoulli outcomes), so it carries far more evidence than
/// a single coin flip; 512 discounts the raw column count for the
/// per-group strength correlation (columns of one group share a
/// strength factor, so they are not fully independent) while still
/// letting an unambiguous near-saturated point converge after one
/// trial at the default ε = 0.02.
const SAMPLE_WEIGHT: f64 = 512.0;

/// Pseudo-trial weight of the calibrated table prior in a decided
/// point's posterior answer — a quarter of one analog trial, so the
/// observed evidence dominates as soon as it exists.
const PRIOR_WEIGHT: f64 = 32.0;

/// Documented absolute error band of the calibrated table (the
/// surrogate's `CAL_GROUPS`-group probe carries a few percentage points
/// of group-selection spread; see `surrogate`'s module docs). The
/// consistency check widens the Wilson interval by
/// `max(ε, TABLE_ERROR_BAND)`: a table entry within its own error band
/// of the evidence is *agreeing*, not wrong — demanding ε-level
/// agreement from a ±5 pp table would escalate half the fleet for no
/// information gain. A genuinely wrong entry (Obs. 8's MAJ7: table
/// 0.8 % vs measured ~20 %) still fails the widened check by a wide
/// margin.
const TABLE_ERROR_BAND: f64 = 0.05;

/// Tuning knobs of the hybrid decision rule. Serialized into the
/// experiment manifest (so checkpoint journals refuse to resume across
/// a parameter change) and settable from the CLI via
/// `--hybrid-epsilon` / `--hybrid-budget`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridParams {
    /// Target half-width of the 95 % Wilson interval: a point stops
    /// escalating once its estimate is at least this tight (and
    /// consistent with the table, and clear of every observation
    /// threshold). Also the slack of the table-consistency check.
    pub epsilon: f64,
    /// Minimum analog trials per point before the table may answer.
    pub floor: u32,
    /// Maximum analog trials per point; a still-ambiguous point answers
    /// from its posterior once the ceiling is reached.
    pub ceiling: u32,
}

impl Default for HybridParams {
    fn default() -> Self {
        HybridParams {
            epsilon: 0.02,
            floor: 1,
            ceiling: 8,
        }
    }
}

impl HybridParams {
    /// Whether these are exactly the default parameters (used to omit
    /// the field from manifests so pre-hybrid digests stay stable).
    pub fn is_default(&self) -> bool {
        *self == HybridParams::default()
    }
}

/// The observation thresholds a trial of `op` can feed: the success-rate
/// bars the scoreboard compares figures against, plus the 50 % transition
/// midpoint every monotone sweep crosses. An interval straddling one of
/// these must keep sampling; bars ≥ 99 % are intentionally absent (see
/// the module docs).
fn decision_thresholds(op: &TrialOp) -> &'static [f64] {
    match op {
        TrialOp::Activation { .. } => &[0.5],
        // Obs. 8 compares MAJX rates against 1 % / 5 % / 30 % bars.
        TrialOp::Majx { .. } => &[0.01, 0.05, 0.30, 0.5],
        TrialOp::MultiRowCopy { .. } => &[0.5],
    }
}

/// Per-point escalation state within one slot.
#[derive(Default)]
struct PointState {
    estimate: SequentialEstimate,
    analog_trials: u32,
    /// Once decided: the probability every remaining trial answers with.
    answer: Option<f64>,
}

/// One worker thread's hybrid state within this backend instance,
/// valid for exactly one slot epoch; reset on any mismatch.
struct SlotCache {
    epoch: u64,
    params: HybridParams,
    points: HashMap<CalKey, PointState>,
}

impl SlotCache {
    fn vacant() -> Self {
        SlotCache {
            epoch: u64::MAX,
            params: HybridParams::default(),
            points: HashMap::new(),
        }
    }
}

/// What [`HybridBackend::run_trial`] should do for the current trial,
/// computed *before* any RNG consumption.
enum Action {
    Answer(f64),
    Escalate,
}

struct HybridCounters {
    table_hits: Counter,
    escalations: Counter,
    early_stops: Counter,
    budget_capped: Counter,
    analog_trials_per_point: Histogram,
}

impl HybridCounters {
    fn recorded_by(recorder: &Recorder) -> Self {
        HybridCounters {
            table_hits: recorder.counter("hybrid", "table_hits"),
            escalations: recorder.counter("hybrid", "escalations"),
            early_stops: recorder.counter("hybrid", "early_stops"),
            budget_capped: recorder.counter("hybrid", "budget_capped"),
            analog_trials_per_point: recorder.histogram("hybrid", "analog_trials_per_point"),
        }
    }
}

impl Default for HybridCounters {
    fn default() -> Self {
        HybridCounters::recorded_by(simra_telemetry::global())
    }
}

/// The adaptive hybrid backend. See the module docs for the decision
/// rule and the determinism argument.
///
/// Like the surrogate, one instance should live for a whole session so
/// the calibration cache stays warm; the escalation state, by contrast,
/// is slot-scoped and never survives a [`crate::slot::begin`] boundary.
/// All mutable state is owned by the instance — per-worker slot caches
/// live in a map keyed by [`ThreadId`], not in process-wide
/// thread-locals — so independent instances (one per session) are fully
/// isolated.
pub struct HybridBackend {
    surrogate: SurrogateBackend,
    params: Mutex<HybridParams>,
    counters: HybridCounters,
    /// Per-worker slot-scoped escalation state. A slot runs start to
    /// finish on one thread, so keying by thread keeps each slot's
    /// history private without any cross-thread coordination beyond the
    /// map lock (held only for the duration of one decision).
    slots: Mutex<HashMap<ThreadId, SlotCache>>,
}

impl fmt::Debug for HybridBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HybridBackend")
            .field("surrogate", &self.surrogate)
            .field("params", &self.params())
            .finish_non_exhaustive()
    }
}

impl Default for HybridBackend {
    fn default() -> Self {
        HybridBackend::new()
    }
}

impl HybridBackend {
    /// A fresh hybrid backend with default parameters and an empty
    /// calibration cache, reporting to the global recorder.
    pub fn new() -> Self {
        HybridBackend::with_params(HybridParams::default())
    }

    /// A fresh hybrid backend with explicit parameters.
    pub fn with_params(params: HybridParams) -> Self {
        HybridBackend::with_params_recorded(params, simra_telemetry::global())
    }

    /// A fresh hybrid backend reporting to `recorder`.
    pub fn recorded_by(recorder: &Recorder) -> Self {
        HybridBackend::with_params_recorded(HybridParams::default(), recorder)
    }

    /// A fresh hybrid backend with explicit parameters, reporting its
    /// decision telemetry (and the underlying surrogate's calibration
    /// cost) to `recorder`.
    pub fn with_params_recorded(params: HybridParams, recorder: &Recorder) -> Self {
        HybridBackend {
            surrogate: SurrogateBackend::recorded_by(recorder),
            params: Mutex::new(params),
            counters: HybridCounters::recorded_by(recorder),
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Replaces the decision parameters. Takes effect at the next slot
    /// boundary (each slot snapshots the parameters it starts with, so
    /// a mid-slot change cannot split a slot's history).
    pub fn set_params(&self, params: HybridParams) {
        *self.params.lock().expect("hybrid params poisoned") = params;
    }

    /// The current decision parameters.
    pub fn params(&self) -> HybridParams {
        *self.params.lock().expect("hybrid params poisoned")
    }

    /// Number of calibrated configurations in the underlying surrogate
    /// table.
    pub fn calibrated_points(&self) -> usize {
        self.surrogate.calibrated_points()
    }

    /// Decides the current trial of `key` from the slot-local history.
    /// Pure in (params, p_cal, op, history); consumes no RNG.
    fn decide(&self, key: &CalKey, p_cal: f64, op: &TrialOp) -> Action {
        let params_now = self.params();
        let mut slots = self.slots.lock().expect("hybrid slot state poisoned");
        let cache = slots
            .entry(thread::current().id())
            .or_insert_with(SlotCache::vacant);
        let epoch = crate::slot::current();
        if cache.epoch != epoch {
            cache.epoch = epoch;
            cache.params = params_now;
            cache.points.clear();
        }
        let params = cache.params;
        let counters = &self.counters;
        let state = cache.points.entry(key.clone()).or_default();
        if let Some(p) = state.answer {
            counters.table_hits.incr();
            return Action::Answer(p);
        }
        if state.analog_trials < params.floor.max(1) {
            counters.escalations.incr();
            return Action::Escalate;
        }
        let est = state.estimate;
        let slack = params.epsilon.max(TABLE_ERROR_BAND);
        let trusted = est.consistent_with(p_cal, slack, Z_95);
        let decided = (est.converged(params.epsilon, Z_95)
            && trusted
            && est.clear_of(decision_thresholds(op), Z_95))
            || state.analog_trials >= params.ceiling;
        if !decided {
            counters.escalations.incr();
            return Action::Escalate;
        }
        if state.analog_trials >= params.ceiling {
            counters.budget_capped.incr();
        } else {
            counters.early_stops.incr();
        }
        counters
            .analog_trials_per_point
            .observe(state.analog_trials as f64);
        // Anchor the answer to the evidence; pull toward the table
        // only when the table agrees with what was measured.
        let prior_weight = if trusted { PRIOR_WEIGHT } else { 0.0 };
        let p = est.posterior_mean(p_cal, prior_weight);
        state.answer = Some(p);
        counters.table_hits.incr();
        Action::Answer(p)
    }

    /// Folds an escalated trial's observed success fraction into the
    /// point's slot-local estimate.
    fn observe(&self, key: &CalKey, fraction: f64) {
        let mut slots = self.slots.lock().expect("hybrid slot state poisoned");
        if let Some(state) = slots
            .get_mut(&thread::current().id())
            .and_then(|cache| cache.points.get_mut(key))
        {
            state.estimate.observe(fraction, SAMPLE_WEIGHT);
            state.analog_trials += 1;
        }
    }

    /// The analog trials this thread's current slot has spent on `key`
    /// (0 when the point has no state). Test-support introspection.
    #[cfg(test)]
    fn analog_trials_spent(&self, key: &CalKey) -> u32 {
        self.slots
            .lock()
            .expect("hybrid slot state poisoned")
            .get(&thread::current().id())
            .and_then(|cache| cache.points.get(key))
            .map(|state| state.analog_trials)
            .unwrap_or(0)
    }
}

impl PudBackend for HybridBackend {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn run_trial(
        &self,
        spec: &TrialSpec,
        setup: &mut TestSetup,
        group: &GroupSpec,
        rng: &mut StdRng,
    ) -> Option<f64> {
        // Feasibility guards mirror AnalogBackend (same None points,
        // no stream consumption).
        if let TrialOp::Majx { x, .. } = spec.op {
            if x >= 9 && setup.module().profile().manufacturer == Manufacturer::M {
                return None;
            }
        }
        let n = group.n_rows() as u32;
        let p_cal = self
            .surrogate
            .probability(setup.module().profile(), spec, n);
        if p_cal.is_nan() {
            return None;
        }
        let key = CalKey::new(setup.module().profile(), spec, n);
        match self.decide(&key, p_cal, &spec.op) {
            Action::Answer(p) => Some(noisy_success_sample(p, rng)),
            Action::Escalate => {
                let s = AnalogBackend.run_trial(spec, setup, group, rng)?;
                self.observe(&key, s);
                Some(s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use simra_core::rowgroup::random_group;
    use simra_dram::{ApaTiming, BankId, DataPattern, DramModule, SubarrayId, VendorProfile};

    fn rig(profile: VendorProfile, seed: u64) -> (TestSetup, StdRng) {
        (
            TestSetup::with_module(DramModule::new(profile, seed)),
            StdRng::seed_from_u64(21),
        )
    }

    fn group_of(setup: &TestSetup, n: u32, rng: &mut StdRng) -> GroupSpec {
        random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            n,
            rng,
        )
        .expect("subarray hosts the group")
    }

    /// Runs `trials` hybrid trials of one spec inside a fresh slot and
    /// returns (samples, analog trials spent on the point).
    fn run_slot(
        backend: &HybridBackend,
        spec: &TrialSpec,
        n: u32,
        trials: usize,
    ) -> (Vec<Option<f64>>, u32) {
        crate::slot::begin();
        let (mut setup, mut rng) = rig(VendorProfile::mfr_h_m_die(), 7);
        let group = group_of(&setup, n, &mut rng);
        let samples: Vec<_> = (0..trials)
            .map(|_| backend.run_trial(spec, &mut setup, &group, &mut rng))
            .collect();
        let key = CalKey::new(setup.module().profile(), spec, n);
        let spent = backend.analog_trials_spent(&key);
        (samples, spent)
    }

    #[test]
    fn unambiguous_points_early_stop_after_the_floor() {
        // Best-timing 32-row activation: ≈ 100 % success, table agrees,
        // interval clear of 0.5 after one weighted trial → exactly one
        // analog trial, the rest answered from the table.
        let backend = HybridBackend::new();
        let spec = TrialSpec::activation(ApaTiming::best_for_activation());
        let (samples, spent) = run_slot(&backend, &spec, 32, 6);
        assert_eq!(spent, 1, "floor trial only");
        for s in &samples {
            assert!(s.expect("feasible") > 0.9);
        }
    }

    #[test]
    fn ambiguous_points_respect_the_budget_ceiling() {
        // Force permanent ambiguity with an unreachable epsilon: every
        // trial escalates until the ceiling, then the posterior answers.
        let backend = HybridBackend::with_params(HybridParams {
            epsilon: 1e-9,
            floor: 1,
            ceiling: 3,
        });
        let spec = TrialSpec::activation(ApaTiming::best_for_activation());
        let (samples, spent) = run_slot(&backend, &spec, 32, 8);
        assert_eq!(spent, 3, "ceiling caps escalation");
        assert_eq!(samples.len(), 8);
    }

    #[test]
    fn table_inconsistency_forces_escalation() {
        // MAJ7 @ 32 rows on Mfr. H: the calibrated table reads ≈ 0.8 %
        // but the analog core measures ≈ 20 % — the consistency gate
        // must refuse to answer from the table and spend the whole
        // budget on analog trials (this is the Obs. 8 rescue).
        let backend = HybridBackend::new();
        let spec = TrialSpec::majx(7, ApaTiming::best_for_majx(), DataPattern::Random);
        let ceiling = backend.params().ceiling;
        let trials = ceiling as usize + 4;
        let (samples, spent) = run_slot(&backend, &spec, 32, trials);
        assert_eq!(spent, ceiling, "inconsistent table → analog until the cap");
        // Once capped, the answer is the empirical mean (untrusted
        // table gets zero prior weight): far from the table's 0.8 %.
        let last = samples.last().unwrap().expect("feasible");
        assert!(last > 0.05, "capped answer follows the evidence: {last}");
    }

    #[test]
    fn decisions_are_byte_identical_across_instances_and_replays() {
        let spec = TrialSpec::majx(5, ApaTiming::best_for_majx(), DataPattern::Random);
        let (a, _) = run_slot(&HybridBackend::new(), &spec, 32, 10);
        let (b, _) = run_slot(&HybridBackend::new(), &spec, 32, 10);
        assert_eq!(a, b, "same seed, fresh slot → identical samples");
    }

    #[test]
    fn slot_boundaries_reset_the_escalation_state() {
        let backend = HybridBackend::new();
        let spec = TrialSpec::activation(ApaTiming::best_for_activation());
        let (first, spent_first) = run_slot(&backend, &spec, 32, 4);
        // A later slot on the same thread must not inherit the decided
        // state: it re-spends the floor trial and replays identically.
        let (second, spent_second) = run_slot(&backend, &spec, 32, 4);
        assert_eq!(spent_first, spent_second, "state reset at slot boundary");
        assert_eq!(first, second, "replay is exact despite warm caches");
    }

    #[test]
    fn infeasible_configurations_return_none_without_state() {
        let backend = HybridBackend::new();
        crate::slot::begin();
        let (mut setup, mut rng) = rig(VendorProfile::mfr_m_e_die(), 3);
        let group = group_of(&setup, 16, &mut rng);
        let spec = TrialSpec::majx(9, ApaTiming::best_for_majx(), DataPattern::Random);
        assert_eq!(backend.run_trial(&spec, &mut setup, &group, &mut rng), None);
        assert_eq!(backend.calibrated_points(), 0, "guard precedes probe");
    }

    #[test]
    fn params_snapshot_at_the_slot_boundary() {
        let backend = HybridBackend::with_params(HybridParams {
            epsilon: 1e-9,
            floor: 2,
            ceiling: 4,
        });
        let spec = TrialSpec::activation(ApaTiming::best_for_activation());
        let (_, spent) = run_slot(&backend, &spec, 32, 6);
        assert_eq!(spent, 4);
        backend.set_params(HybridParams::default());
        let (_, spent) = run_slot(&backend, &spec, 32, 6);
        assert_eq!(spent, 1, "new params apply from the next slot");
    }

    #[test]
    fn default_params_round_trip_and_compare() {
        let params = HybridParams::default();
        assert!(params.is_default());
        assert!(!HybridParams {
            epsilon: 0.05,
            ..params
        }
        .is_default());
    }
}
