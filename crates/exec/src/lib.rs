//! # simra-exec
//!
//! The execution layer between the PUD operations ([`simra_core`]) and
//! everything that sweeps them (`simra-characterize`, `simra-casestudy`,
//! the `repro` CLI): a single [`PudBackend`] trait that executes one
//! activation / MAJX / Multi-RowCopy trial against a mounted module, and
//! two implementations of it.
//!
//! * [`AnalogBackend`] runs the full analog pipeline — the trial spec is
//!   translated into exactly the `simra_core` op calls (and RNG draws)
//!   the figure runners used to make inline, so a sweep dispatched
//!   through the trait is **byte-identical** to the pre-trait code.
//! * [`SurrogateBackend`] replaces the per-trial cell physics with a
//!   success-probability table calibrated *once* from the analog core
//!   per vendor profile — keyed by (operation, N, timing, pattern,
//!   operating point) — and samples a cheap normal-approximated
//!   Bernoulli average per trial. Orders of magnitude faster; see the
//!   module docs of [`surrogate`] for the calibration procedure and the
//!   documented error band.
//! * [`HybridBackend`] keeps per-point Wilson-score confidence
//!   intervals over observed analog trials and answers from the
//!   surrogate's table only once a point's estimate has converged, is
//!   consistent with the table, and is decisively clear of every
//!   observation threshold — escalating ambiguous points to the analog
//!   core with sequential early stopping. Module docs of [`hybrid`]
//!   give the decision rule and the determinism argument; [`slot`]
//!   provides the epoch boundary its state is scoped to.
//!
//! The trait's contract mirrors the fleet executor's op signature
//! (`Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64>`),
//! so a backend drops into `run_sweep` as a closure capture; the row
//! count N still lives on the sweep point and arrives here via the
//! [`GroupSpec`].

pub mod hybrid;
pub mod manifest;
pub mod session;
pub mod slot;
pub mod surrogate;

use rand::rngs::StdRng;
use rand::Rng;

use simra_bender::TestSetup;
use simra_core::act::activation_success;
use simra_core::maj::{majx_success, MajConfig};
use simra_core::multirowcopy::multirowcopy_success;
use simra_core::rowgroup::GroupSpec;
use simra_dram::{ApaTiming, BitRow, DataPattern, Manufacturer};

pub use hybrid::{HybridBackend, HybridParams};
pub use manifest::{
    stable_digest, ManifestError, PointDigest, ShardSpec, SweepManifest,
    SWEEP_MANIFEST_SCHEMA_VERSION,
};
pub use session::{BackendSet, ExecSession};
pub use surrogate::SurrogateBackend;

use serde::{Deserialize, Serialize};

/// Which backend executes a trial. Carried per sweep point by the
/// characterization layer and selected globally by `repro --backend`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum BackendChoice {
    /// The full analog pipeline (the reference; byte-identical output).
    #[default]
    Analog,
    /// The calibrated fast surrogate.
    Surrogate,
    /// Confidence-gated adaptive mix: table answers where certain,
    /// analog escalation where ambiguous.
    Hybrid,
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendChoice::Analog => "analog",
            BackendChoice::Surrogate => "surrogate",
            BackendChoice::Hybrid => "hybrid",
        })
    }
}

impl std::str::FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "analog" => Ok(BackendChoice::Analog),
            "surrogate" => Ok(BackendChoice::Surrogate),
            "hybrid" => Ok(BackendChoice::Hybrid),
            other => Err(format!(
                "unknown backend: {other:?} (expected analog | surrogate | hybrid)"
            )),
        }
    }
}

/// Source image for a Multi-RowCopy trial.
///
/// The two random variants exist because the pre-trait code had two
/// RNG-consumption conventions and byte-identity requires preserving
/// both: the figure runners drew one `bool` per column
/// ([`MrcSource::RandomBits`]), while the per-die table drew packed
/// 64-bit words ([`MrcSource::RandomRow`]). The distributions are the
/// same; the stream positions are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MrcSource {
    /// All zeros.
    AllZeros,
    /// All ones (the pattern that dips at 31 destinations, Obs. 16).
    AllOnes,
    /// Uniform random, drawn bit by bit (one `bool` per column).
    RandomBits,
    /// Uniform random, drawn word by word (`BitRow::random`).
    RandomRow,
}

impl MrcSource {
    /// Materializes the source image, consuming `rng` exactly as the
    /// pre-trait call sites did.
    pub fn image(self, cols: usize, rng: &mut StdRng) -> BitRow {
        match self {
            MrcSource::AllZeros => BitRow::zeros(cols),
            MrcSource::AllOnes => BitRow::ones(cols),
            MrcSource::RandomBits => BitRow::from_bits((0..cols).map(|_| rng.gen())),
            MrcSource::RandomRow => BitRow::random(rng, cols),
        }
    }
}

/// The operation a trial performs. The simultaneously activated row
/// count N is *not* here — it lives on the sweep point / group spec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrialOp {
    /// N-row activation success (§4).
    Activation {
        /// APA timing pair.
        timing: ApaTiming,
        /// Data pattern written before the activation.
        pattern: DataPattern,
    },
    /// MAJX with input replication (§5).
    Majx {
        /// Operand count (3, 5, 7, 9).
        x: usize,
        /// APA timing pair.
        timing: ApaTiming,
        /// Operand data pattern.
        pattern: DataPattern,
    },
    /// Multi-RowCopy to N − 1 destinations (§6).
    MultiRowCopy {
        /// APA timing pair.
        timing: ApaTiming,
        /// Source-row image.
        source: MrcSource,
    },
}

/// One trial to execute: the operation plus optional operating-point
/// overrides (`None` = the rig's nominal 50 °C / 2.5 V).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialSpec {
    /// The operation under test.
    pub op: TrialOp,
    /// Ambient temperature override (°C).
    pub temperature_c: Option<f64>,
    /// Wordline voltage override (V).
    pub vpp_v: Option<f64>,
}

impl TrialSpec {
    /// An activation trial with random data at nominal conditions.
    pub fn activation(timing: ApaTiming) -> Self {
        TrialSpec {
            op: TrialOp::Activation {
                timing,
                pattern: DataPattern::Random,
            },
            temperature_c: None,
            vpp_v: None,
        }
    }

    /// A MAJX trial at nominal conditions.
    pub fn majx(x: usize, timing: ApaTiming, pattern: DataPattern) -> Self {
        TrialSpec {
            op: TrialOp::Majx { x, timing, pattern },
            temperature_c: None,
            vpp_v: None,
        }
    }

    /// A Multi-RowCopy trial at nominal conditions.
    pub fn multirowcopy(timing: ApaTiming, source: MrcSource) -> Self {
        TrialSpec {
            op: TrialOp::MultiRowCopy { timing, source },
            temperature_c: None,
            vpp_v: None,
        }
    }

    /// The same trial at an ambient temperature (°C).
    pub fn at_temperature(mut self, t: f64) -> Self {
        self.temperature_c = Some(t);
        self
    }

    /// The same trial at a wordline voltage (V).
    pub fn at_vpp(mut self, v: f64) -> Self {
        self.vpp_v = Some(v);
        self
    }
}

/// The single contract for executing a PUD trial against a mounted
/// module: everything above this trait (figure runners, the fleet
/// scheduler, case studies, the CLI) is backend-generic.
///
/// A trial returns the success fraction in `[0, 1]`, or `None` when the
/// part cannot perform the operation (MAJ9 on Mfr. M, N < X, a guarded
/// Samsung APA) — exactly the convention of the fleet executor's op
/// closures, whose samples skip `None`.
pub trait PudBackend: Send + Sync {
    /// Short stable name (`"analog"` / `"surrogate"`), for reports.
    fn name(&self) -> &'static str;

    /// Executes one trial on `group` of the mounted module.
    fn run_trial(
        &self,
        spec: &TrialSpec,
        setup: &mut TestSetup,
        group: &GroupSpec,
        rng: &mut StdRng,
    ) -> Option<f64>;
}

/// The reference backend: the full analog pipeline, dispatched through
/// the trait.
///
/// Byte-identity contract: for every [`TrialOp`] this performs the same
/// calls, in the same order, with the same RNG consumption, as the
/// closures the figure runners inlined before the trait existed —
/// operating-point overrides are applied temperature first, then V_PP,
/// and the Mfr. M MAJ9 guard returns before anything is touched. The
/// golden tests in `tests/backend_identity.rs` pin this down.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalogBackend;

impl PudBackend for AnalogBackend {
    fn name(&self) -> &'static str {
        "analog"
    }

    fn run_trial(
        &self,
        spec: &TrialSpec,
        setup: &mut TestSetup,
        group: &GroupSpec,
        rng: &mut StdRng,
    ) -> Option<f64> {
        match spec.op {
            TrialOp::Activation { timing, pattern } => {
                apply_operating_point(spec, setup);
                activation_success(setup, group, timing, pattern, rng).ok()
            }
            TrialOp::Majx { x, timing, pattern } => {
                // Footnote 11: MAJ9+ never works on Mfr. M parts; the
                // paper omits those points, and so do we — before the
                // operating point is touched or the stream consumed.
                if x >= 9 && setup.module().profile().manufacturer == Manufacturer::M {
                    return None;
                }
                apply_operating_point(spec, setup);
                let maj_config = MajConfig::default();
                majx_success(setup, group, x, timing, pattern, &maj_config, rng).ok()
            }
            TrialOp::MultiRowCopy { timing, source } => {
                apply_operating_point(spec, setup);
                let cols = setup.module().geometry().cols_per_row as usize;
                let img = source.image(cols, rng);
                multirowcopy_success(setup, group, timing, &img).ok()
            }
        }
    }
}

/// Applies a spec's operating-point overrides to the rig, temperature
/// first — the order every pre-trait op closure used.
fn apply_operating_point(spec: &TrialSpec, setup: &mut TestSetup) {
    if let Some(t) = spec.temperature_c {
        setup
            .set_temperature(t)
            .expect("swept temperature is in range");
    }
    if let Some(v) = spec.vpp_v {
        setup.set_vpp(v).expect("swept V_PP is in range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use simra_core::rowgroup::random_group;
    use simra_dram::{BankId, SubarrayId, VendorProfile};

    fn rig(profile: VendorProfile, seed: u64) -> (TestSetup, StdRng) {
        (
            TestSetup::with_module(simra_dram::DramModule::new(profile, seed)),
            StdRng::seed_from_u64(11),
        )
    }

    fn group_of(setup: &TestSetup, n: u32, rng: &mut StdRng) -> GroupSpec {
        random_group(
            setup.module().geometry(),
            BankId::new(0),
            SubarrayId::new(0),
            n,
            rng,
        )
        .expect("subarray hosts the group")
    }

    #[test]
    fn backend_choice_round_trips_display_and_parse() {
        for choice in [
            BackendChoice::Analog,
            BackendChoice::Surrogate,
            BackendChoice::Hybrid,
        ] {
            let parsed: BackendChoice = choice.to_string().parse().unwrap();
            assert_eq!(parsed, choice);
        }
        assert!("fast".parse::<BackendChoice>().is_err());
        assert_eq!(BackendChoice::default(), BackendChoice::Analog);
    }

    #[test]
    fn analog_backend_matches_direct_op_calls() {
        // The trait dispatch must consume the stream exactly like the
        // direct call, so identical seeds give identical samples.
        let (mut setup_a, mut rng_a) = rig(VendorProfile::mfr_h_m_die(), 7);
        let (mut setup_b, mut rng_b) = rig(VendorProfile::mfr_h_m_die(), 7);
        let group_a = group_of(&setup_a, 32, &mut rng_a);
        let group_b = group_of(&setup_b, 32, &mut rng_b);
        assert_eq!(group_a, group_b);

        let spec = TrialSpec::activation(ApaTiming::best_for_activation());
        let via_trait = AnalogBackend.run_trial(&spec, &mut setup_a, &group_a, &mut rng_a);
        let direct = activation_success(
            &mut setup_b,
            &group_b,
            ApaTiming::best_for_activation(),
            DataPattern::Random,
            &mut rng_b,
        )
        .ok();
        assert_eq!(via_trait, direct);

        let spec = TrialSpec::majx(3, ApaTiming::best_for_majx(), DataPattern::Random)
            .at_temperature(70.0);
        let via_trait = AnalogBackend.run_trial(&spec, &mut setup_a, &group_a, &mut rng_a);
        setup_b.set_temperature(70.0).unwrap();
        let direct = majx_success(
            &mut setup_b,
            &group_b,
            3,
            ApaTiming::best_for_majx(),
            DataPattern::Random,
            &MajConfig::default(),
            &mut rng_b,
        )
        .ok();
        assert_eq!(via_trait, direct);
        // Identical residual stream state after the calls.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn maj9_on_mfr_m_is_refused_without_touching_the_stream() {
        let (mut setup, mut rng) = rig(VendorProfile::mfr_m_e_die(), 3);
        let group = group_of(&setup, 16, &mut rng);
        let mut probe = rng.clone();
        let spec = TrialSpec::majx(9, ApaTiming::best_for_majx(), DataPattern::Random)
            .at_temperature(90.0);
        assert_eq!(
            AnalogBackend.run_trial(&spec, &mut setup, &group, &mut rng),
            None
        );
        assert_eq!(rng.gen::<u64>(), probe.gen::<u64>(), "stream untouched");
    }

    #[test]
    fn mrc_sources_cover_both_random_conventions() {
        let mut rng_bits = StdRng::seed_from_u64(5);
        let mut rng_row = StdRng::seed_from_u64(5);
        let bits = MrcSource::RandomBits.image(128, &mut rng_bits);
        let row = MrcSource::RandomRow.image(128, &mut rng_row);
        assert_eq!(bits.len(), 128);
        assert_eq!(row.len(), 128);
        // Same seed, different conventions — different stream positions.
        assert_ne!(rng_bits.gen::<u64>(), rng_row.gen::<u64>());
        assert_eq!(MrcSource::AllZeros.image(64, &mut rng_bits).count_ones(), 0);
        assert_eq!(MrcSource::AllOnes.image(64, &mut rng_bits).count_ones(), 64);
    }
}
