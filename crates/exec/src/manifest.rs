//! Serializable sweep manifests.
//!
//! A [`SweepManifest`] pins down everything that determines a sweep's
//! results — the experiment seed, the backend, the exact fault plan
//! (embedded as its canonical JSON), a digest of the full experiment
//! configuration, and the ordered point list — so a checkpointed run
//! can later *prove* it is resuming the same sweep and refuse anything
//! else with a typed error. It lives here, next to [`TrialSpec`],
//! because it describes execution inputs, not the characterize crate's
//! scheduling machinery.
//!
//! The JSON schema is versioned ([`SWEEP_MANIFEST_SCHEMA_VERSION`]) and
//! follows the `simra-telemetry` conventions: shortest round-trip
//! floats, `u64` values as plain integers, deterministic member order.
//!
//! [`TrialSpec`]: crate::TrialSpec

use serde::{Deserialize, Serialize};
use simra_telemetry::json::{self, Value};

/// Schema version written and required by [`SweepManifest`].
pub const SWEEP_MANIFEST_SCHEMA_VERSION: u32 = 1;

/// FNV-1a 64-bit digest of a string. Stable across runs of the same
/// build (the checkpoint layer digests `Debug` renderings, which are
/// deterministic), cheap, and dependency-free. Not cryptographic — it
/// guards against *accidental* mismatches, not adversaries.
pub fn stable_digest(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One sweep point as the manifest records it: the row count plus a
/// digest of the point's figure-specific parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointDigest {
    /// Rows activated simultaneously at this point.
    pub n: u32,
    /// [`stable_digest`] of the parameters' `Debug` rendering.
    pub params_digest: u64,
}

/// Which shard of a multi-process sweep a journal belongs to. A shard
/// worker owns every `(module, point)` slot whose flattened index is
/// congruent to `index` modulo `count`; the coordinator merges the
/// `count` per-shard journals back into one. Absent (`None` on
/// [`SweepManifest::shard`]) for single-process sweeps — the field is
/// then omitted from the JSON, so unsharded manifests render exactly as
/// they did before sharding existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This shard's index in `0..count`.
    pub index: u32,
    /// Total number of shards the grid was split into.
    pub count: u32,
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Everything that determines a sweep's results, in serializable form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepManifest {
    /// Schema version of this document.
    pub schema_version: u32,
    /// Identifier of the sweep within its checkpoint session (sweeps
    /// are numbered in issue order, which is deterministic).
    pub sweep_id: String,
    /// Experiment RNG seed.
    pub seed: u64,
    /// Backend name (`"analog"` / `"surrogate"`).
    pub backend: String,
    /// The fault plan's canonical JSON (`FaultPlan::to_json`; the empty
    /// plan for fault-free runs).
    pub faults: String,
    /// [`stable_digest`] of the full experiment configuration's `Debug`
    /// rendering — covers module fleet, scale knobs, and anything a
    /// future config field adds.
    pub config_digest: u64,
    /// Number of modules in the fleet.
    pub modules: usize,
    /// The ordered point list.
    pub points: Vec<PointDigest>,
    /// Which shard of a multi-process run this manifest describes;
    /// `None` for single-process sweeps (and omitted from the JSON, so
    /// unsharded documents are unchanged from schema v1 as first
    /// shipped).
    pub shard: Option<ShardSpec>,
}

/// Why a manifest document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestError {
    /// The input is not well-formed JSON.
    Json(json::ParseError),
    /// The document's schema version is not the one this build writes.
    SchemaVersion {
        /// Version found in the document.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// A required field is missing or has the wrong type.
    Field {
        /// Name of the offending field.
        field: String,
        /// What was expected.
        detail: String,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Json(e) => write!(f, "sweep manifest: {e}"),
            ManifestError::SchemaVersion { found, expected } => write!(
                f,
                "sweep manifest schema version {found} (this build reads version {expected})"
            ),
            ManifestError::Field { field, detail } => {
                write!(f, "sweep manifest field '{field}': {detail}")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<json::ParseError> for ManifestError {
    fn from(e: json::ParseError) -> Self {
        ManifestError::Json(e)
    }
}

fn field_error(field: &str, detail: &str) -> ManifestError {
    ManifestError::Field {
        field: field.into(),
        detail: detail.into(),
    }
}

impl SweepManifest {
    /// Renders the manifest as one-line JSON.
    pub fn to_json(&self) -> String {
        let points = json::array(
            self.points
                .iter()
                .map(|p| format!("{{\"n\":{},\"params_digest\":{}}}", p.n, p.params_digest)),
        );
        let shard = match self.shard {
            None => String::new(),
            Some(s) => format!(",\"shard\":{{\"index\":{},\"count\":{}}}", s.index, s.count),
        };
        format!(
            "{{\"schema_version\":{},\"sweep_id\":{},\"seed\":{},\"backend\":{},\
             \"faults\":{},\"config_digest\":{},\"modules\":{},\"points\":{}{}}}",
            self.schema_version,
            json::quote(&self.sweep_id),
            self.seed,
            json::quote(&self.backend),
            json::quote(&self.faults),
            self.config_digest,
            self.modules,
            points,
            shard,
        )
    }

    /// Parses a manifest rendered by [`SweepManifest::to_json`].
    /// Unknown schema versions and malformed fields are typed errors,
    /// never panics.
    pub fn from_json(input: &str) -> Result<SweepManifest, ManifestError> {
        let doc = Value::parse(input)?;
        let version = doc
            .get("schema_version")
            .and_then(Value::as_u32)
            .ok_or_else(|| field_error("schema_version", "expected an unsigned integer"))?;
        if version != SWEEP_MANIFEST_SCHEMA_VERSION {
            return Err(ManifestError::SchemaVersion {
                found: version,
                expected: SWEEP_MANIFEST_SCHEMA_VERSION,
            });
        }
        let str_field = |field: &str| -> Result<String, ManifestError> {
            doc.get(field)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| field_error(field, "expected a string"))
        };
        let u64_field = |field: &str| -> Result<u64, ManifestError> {
            doc.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| field_error(field, "expected an unsigned integer"))
        };
        let points =
            doc.get("points")
                .and_then(Value::as_array)
                .ok_or_else(|| field_error("points", "expected an array"))?
                .iter()
                .map(|p| {
                    Ok(PointDigest {
                        n: p.get("n")
                            .and_then(Value::as_u32)
                            .ok_or_else(|| field_error("points[].n", "expected a u32"))?,
                        params_digest: p.get("params_digest").and_then(Value::as_u64).ok_or_else(
                            || field_error("points[].params_digest", "expected a u64"),
                        )?,
                    })
                })
                .collect::<Result<Vec<_>, ManifestError>>()?;
        let shard = match doc.get("shard") {
            None => None,
            Some(node) => {
                let index = node
                    .get("index")
                    .and_then(Value::as_u32)
                    .ok_or_else(|| field_error("shard.index", "expected a u32"))?;
                let count = node
                    .get("count")
                    .and_then(Value::as_u32)
                    .ok_or_else(|| field_error("shard.count", "expected a u32"))?;
                if count == 0 || index >= count {
                    return Err(field_error("shard", "expected index < count and count > 0"));
                }
                Some(ShardSpec { index, count })
            }
        };
        Ok(SweepManifest {
            schema_version: version,
            sweep_id: str_field("sweep_id")?,
            seed: u64_field("seed")?,
            backend: str_field("backend")?,
            faults: str_field("faults")?,
            config_digest: u64_field("config_digest")?,
            modules: doc
                .get("modules")
                .and_then(Value::as_usize)
                .ok_or_else(|| field_error("modules", "expected an unsigned integer"))?,
            points,
            shard,
        })
    }

    /// The first field on which `self` (the manifest on disk) differs
    /// from `current` (the manifest of the sweep about to run), with
    /// both renderings — `None` when they match. Schema version is
    /// checked at parse time; this compares the execution inputs.
    pub fn mismatch(&self, current: &SweepManifest) -> Option<(&'static str, String, String)> {
        if self.sweep_id != current.sweep_id {
            return Some(("sweep_id", self.sweep_id.clone(), current.sweep_id.clone()));
        }
        if self.seed != current.seed {
            return Some(("seed", self.seed.to_string(), current.seed.to_string()));
        }
        if self.backend != current.backend {
            return Some(("backend", self.backend.clone(), current.backend.clone()));
        }
        if self.faults != current.faults {
            return Some(("faults", self.faults.clone(), current.faults.clone()));
        }
        if self.config_digest != current.config_digest {
            return Some((
                "config_digest",
                format!("{:#018x}", self.config_digest),
                format!("{:#018x}", current.config_digest),
            ));
        }
        if self.modules != current.modules {
            return Some((
                "modules",
                self.modules.to_string(),
                current.modules.to_string(),
            ));
        }
        if self.points != current.points {
            return Some((
                "points",
                format!("{} point(s)", self.points.len()),
                format!("{} point(s)", current.points.len()),
            ));
        }
        if self.shard != current.shard {
            let render =
                |s: Option<ShardSpec>| s.map_or_else(|| "unsharded".into(), |s| s.to_string());
            return Some(("shard", render(self.shard), render(current.shard)));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepManifest {
        SweepManifest {
            schema_version: SWEEP_MANIFEST_SCHEMA_VERSION,
            sweep_id: "sweep-0004".into(),
            seed: 0xD5A,
            backend: "analog".into(),
            faults: "{\"schema_version\":1,\"seed\":0}".into(),
            config_digest: stable_digest("config"),
            modules: 4,
            points: vec![
                PointDigest {
                    n: 2,
                    params_digest: stable_digest("a"),
                },
                PointDigest {
                    n: 64,
                    params_digest: stable_digest("b"),
                },
            ],
            shard: None,
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let parsed = SweepManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.to_json(), m.to_json(), "render is canonical");
        assert_eq!(m.mismatch(&parsed), None);
    }

    #[test]
    fn digest_is_stable_and_spreads() {
        assert_eq!(stable_digest("abc"), stable_digest("abc"));
        assert_ne!(stable_digest("abc"), stable_digest("abd"));
        assert_ne!(stable_digest(""), stable_digest("\0"));
    }

    #[test]
    fn mismatches_name_the_first_differing_field() {
        let m = sample();
        let mut other = m.clone();
        other.seed ^= 1;
        assert_eq!(m.mismatch(&other).unwrap().0, "seed");
        let mut other = m.clone();
        other.backend = "surrogate".into();
        assert_eq!(m.mismatch(&other).unwrap().0, "backend");
        let mut other = m.clone();
        other.points.pop();
        assert_eq!(m.mismatch(&other).unwrap().0, "points");
        let mut other = m.clone();
        other.points[1].params_digest ^= 0xFF;
        assert_eq!(m.mismatch(&other).unwrap().0, "points");
    }

    #[test]
    fn unsharded_render_omits_the_shard_member() {
        let json = sample().to_json();
        assert!(!json.contains("shard"), "unsharded JSON unchanged: {json}");
    }

    #[test]
    fn sharded_manifest_round_trips() {
        let mut m = sample();
        m.shard = Some(ShardSpec { index: 1, count: 4 });
        let json = m.to_json();
        assert!(
            json.ends_with(",\"shard\":{\"index\":1,\"count\":4}}"),
            "{json}"
        );
        let parsed = SweepManifest::from_json(&json).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.to_json(), json, "render is canonical");
    }

    #[test]
    fn shard_mismatch_is_diagnosed() {
        let unsharded = sample();
        let mut sharded = sample();
        sharded.shard = Some(ShardSpec { index: 2, count: 4 });
        let (field, on_disk, current) = unsharded.mismatch(&sharded).unwrap();
        assert_eq!(field, "shard");
        assert_eq!(on_disk, "unsharded");
        assert_eq!(current, "2/4");
        let mut other = sharded.clone();
        other.shard = Some(ShardSpec { index: 3, count: 4 });
        assert_eq!(sharded.mismatch(&other).unwrap().0, "shard");
        assert_eq!(sharded.mismatch(&sharded.clone()), None);
    }

    #[test]
    fn degenerate_shard_specs_are_rejected() {
        let mut m = sample();
        m.shard = Some(ShardSpec { index: 4, count: 4 });
        assert!(matches!(
            SweepManifest::from_json(&m.to_json()),
            Err(ManifestError::Field { .. })
        ));
        m.shard = Some(ShardSpec { index: 0, count: 0 });
        assert!(matches!(
            SweepManifest::from_json(&m.to_json()),
            Err(ManifestError::Field { .. })
        ));
    }

    #[test]
    fn stale_schema_version_is_a_typed_error() {
        let doc = sample()
            .to_json()
            .replacen("\"schema_version\":1", "\"schema_version\":99", 1);
        assert!(matches!(
            SweepManifest::from_json(&doc),
            Err(ManifestError::SchemaVersion {
                found: 99,
                expected: SWEEP_MANIFEST_SCHEMA_VERSION
            })
        ));
        assert!(matches!(
            SweepManifest::from_json("{]"),
            Err(ManifestError::Json(_))
        ));
        assert!(matches!(
            SweepManifest::from_json("{\"schema_version\":1}"),
            Err(ManifestError::Field { .. })
        ));
    }
}
