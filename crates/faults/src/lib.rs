//! # simra-faults
//!
//! Deterministic, seed-driven fault plans for the characterization
//! fleet. A [`FaultPlan`] bundles everything that can go wrong during a
//! sweep:
//!
//! * **cell-level defects** ([`CellFaultSpec`], re-exported from
//!   `simra_dram::faults`) — stuck-at-0/1 cells, weak cells with elevated
//!   retention leakage, per-subarray sense-amplifier offset drift;
//! * **module-level events** ([`ModuleFault`]) — a module that drops out,
//!   panics the harness, or hangs at a chosen task index;
//! * **supply events** ([`VppDroop`]) — the wordline supply sagging over
//!   a window of row groups;
//! * **a per-task deadline** — the wall-clock budget the hardened fleet
//!   executor enforces between groups.
//!
//! Everything is a pure function of the plan (plus, for cell defects,
//! each subarray's silicon seed): fault draws come from a dedicated RNG
//! stream, so an *empty* plan leaves every experiment byte-identical to
//! the fault-free baseline — the executor's golden tests rely on it.

use serde::{Deserialize, Serialize};

pub use simra_dram::faults::{CellFaultSpec, SubarrayFaults};

/// What a module-level fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModuleFaultKind {
    /// The module stops responding at the given group index. With
    /// `recover_after_attempts: Some(k)`, retries after the `k`-th
    /// attempt succeed (a transient seating/contact fault); with `None`
    /// the dropout is permanent and the executor eventually gives the
    /// slot up as failed.
    Dropout {
        /// Group index at which the module goes silent.
        at_group: usize,
        /// Number of attempts after which the fault heals (`None` =
        /// permanent).
        recover_after_attempts: Option<u32>,
    },
    /// The harness thread panics at the given group index on the first
    /// attempt only — exercises the executor's panic isolation and its
    /// retry path (the retry completes normally).
    PanicAt {
        /// Group index at which the panic fires.
        at_group: usize,
    },
    /// The module stalls for `stall_ms` at the given group index, on
    /// every attempt. The stall is *charged* against the task's deadline
    /// budget rather than slept, so hang handling stays deterministic
    /// across machines and thread counts.
    Hang {
        /// Group index at which the stall occurs.
        at_group: usize,
        /// Stall duration charged to the deadline budget (ms).
        stall_ms: f64,
    },
}

/// A module-level fault bound to one fleet slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModuleFault {
    /// Index of the module in `ExperimentConfig::modules`.
    pub module_index: usize,
    /// What happens.
    pub kind: ModuleFaultKind,
}

/// A V_PP droop episode: the wordline supply sags by `delta_v` volts
/// while groups in `[from_group, to_group)` execute, recovering to
/// nominal outside the window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VppDroop {
    /// Sag below nominal V_PP (volts, positive).
    pub delta_v: f64,
    /// First group index inside the droop window.
    pub from_group: usize,
    /// First group index past the droop window.
    pub to_group: usize,
}

/// A complete, deterministic fault-injection plan.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Base seed of the plan (folded into every cell-defect stream).
    pub seed: u64,
    /// Cell-level defect densities, applied to every module.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cells: Option<CellFaultSpec>,
    /// Module-level fault events.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub modules: Vec<ModuleFault>,
    /// Optional supply droop episode.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub vpp_droop: Option<VppDroop>,
    /// Per-module-task wall-clock budget (ms), enforced between groups.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<f64>,
}

impl FaultPlan {
    /// The plan that injects nothing.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.cell_spec().is_none()
            && self.modules.is_empty()
            && self.vpp_droop.is_none()
            && self.deadline_ms.is_none()
    }

    /// The cell-defect spec, `None` when absent *or* empty (so callers
    /// can skip installing a no-op overlay).
    pub fn cell_spec(&self) -> Option<CellFaultSpec> {
        self.cells.filter(|c| !c.is_empty())
    }

    /// The module-level faults aimed at one fleet slot.
    pub fn module_faults(&self, module_index: usize) -> Vec<ModuleFaultKind> {
        self.modules
            .iter()
            .filter(|f| f.module_index == module_index)
            .map(|f| f.kind)
            .collect()
    }

    /// One-line human summary for run headers.
    pub fn describe(&self) -> String {
        if self.is_empty() {
            return "no faults".into();
        }
        let mut parts = Vec::new();
        if let Some(c) = self.cell_spec() {
            parts.push(format!(
                "cells: ~{} stuck + ~{} weak per million, sense shift {:+}",
                c.stuck_per_million, c.weak_per_million, c.sense_offset_shift
            ));
        }
        if !self.modules.is_empty() {
            parts.push(format!("{} module fault(s)", self.modules.len()));
        }
        if let Some(d) = self.vpp_droop {
            parts.push(format!(
                "V_PP droop {:.2} V over groups {}..{}",
                d.delta_v, d.from_group, d.to_group
            ));
        }
        if let Some(ms) = self.deadline_ms {
            parts.push(format!("deadline {ms} ms/task"));
        }
        parts.join("; ")
    }

    /// Named presets for `repro --faults <preset>`. `module_count` sizes
    /// the module-level events to the fleet actually configured.
    ///
    /// * `"quick"` — mild cell defects only; the scoreboard should stay
    ///   at (or within a whisker of) the pristine bar.
    /// * `"dropout"` — mild cells plus one permanently dropped module
    ///   and one first-attempt panic that heals on retry.
    /// * `"chaos"` — denser defects, a dropout, a panic, a hang, a V_PP
    ///   droop, and a deadline: the full degradation path.
    pub fn preset(name: &str, module_count: usize) -> Option<FaultPlan> {
        let last = module_count.saturating_sub(1);
        match name {
            "quick" => Some(FaultPlan {
                seed: 0xFA01,
                cells: Some(CellFaultSpec {
                    seed: 0xFA01,
                    stuck_per_million: 2.0,
                    weak_per_million: 10.0,
                    weak_leak_multiplier: 6.0,
                    sense_offset_shift: 0.0,
                }),
                ..FaultPlan::default()
            }),
            "dropout" => Some(FaultPlan {
                seed: 0xFA02,
                cells: Some(CellFaultSpec {
                    seed: 0xFA02,
                    stuck_per_million: 5.0,
                    weak_per_million: 20.0,
                    weak_leak_multiplier: 8.0,
                    sense_offset_shift: 0.0002,
                }),
                modules: vec![
                    ModuleFault {
                        module_index: last,
                        kind: ModuleFaultKind::Dropout {
                            at_group: 0,
                            recover_after_attempts: None,
                        },
                    },
                    ModuleFault {
                        module_index: 0,
                        kind: ModuleFaultKind::PanicAt { at_group: 0 },
                    },
                ],
                ..FaultPlan::default()
            }),
            "chaos" => Some(FaultPlan {
                seed: 0xFA03,
                cells: Some(CellFaultSpec {
                    seed: 0xFA03,
                    stuck_per_million: 40.0,
                    weak_per_million: 80.0,
                    weak_leak_multiplier: 10.0,
                    sense_offset_shift: 0.001,
                }),
                modules: vec![
                    ModuleFault {
                        module_index: last,
                        kind: ModuleFaultKind::Dropout {
                            at_group: 1,
                            recover_after_attempts: None,
                        },
                    },
                    ModuleFault {
                        module_index: 0,
                        kind: ModuleFaultKind::PanicAt { at_group: 0 },
                    },
                    ModuleFault {
                        module_index: last / 2,
                        kind: ModuleFaultKind::Hang {
                            at_group: 0,
                            stall_ms: 600.0,
                        },
                    },
                ],
                vpp_droop: Some(VppDroop {
                    delta_v: 0.2,
                    from_group: 0,
                    to_group: 2,
                }),
                deadline_ms: Some(500.0),
                ..FaultPlan::default()
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        assert!(p.cell_spec().is_none());
        assert!(p.module_faults(0).is_empty());
        assert_eq!(p.describe(), "no faults");
    }

    #[test]
    fn empty_cell_spec_is_filtered() {
        let p = FaultPlan {
            cells: Some(CellFaultSpec::default()),
            ..FaultPlan::default()
        };
        assert!(p.cell_spec().is_none(), "a no-op spec must not install");
        assert!(p.is_empty());
    }

    #[test]
    fn module_faults_filter_by_slot() {
        let p = FaultPlan::preset("dropout", 4).unwrap();
        assert_eq!(p.module_faults(3).len(), 1);
        assert!(matches!(
            p.module_faults(3)[0],
            ModuleFaultKind::Dropout { at_group: 0, .. }
        ));
        assert!(matches!(
            p.module_faults(0)[0],
            ModuleFaultKind::PanicAt { at_group: 0 }
        ));
        assert!(p.module_faults(1).is_empty());
    }

    #[test]
    fn presets_exist_and_describe() {
        for name in ["quick", "dropout", "chaos"] {
            let p = FaultPlan::preset(name, 18).unwrap();
            assert!(!p.is_empty(), "{name} must inject something");
            assert_ne!(p.describe(), "no faults");
        }
        assert!(FaultPlan::preset("nope", 18).is_none());
    }

    #[test]
    fn single_module_fleet_presets_target_slot_zero() {
        let p = FaultPlan::preset("dropout", 1).unwrap();
        // With one module, both the dropout and the panic land on slot 0.
        assert_eq!(p.module_faults(0).len(), 2);
    }

    #[test]
    fn chaos_sets_a_deadline() {
        let p = FaultPlan::preset("chaos", 4).unwrap();
        assert!(p.deadline_ms.is_some());
        assert!(p.vpp_droop.is_some());
    }
}
