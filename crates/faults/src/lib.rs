//! # simra-faults
//!
//! Deterministic, seed-driven fault plans for the characterization
//! fleet. A [`FaultPlan`] bundles everything that can go wrong during a
//! sweep:
//!
//! * **cell-level defects** ([`CellFaultSpec`], re-exported from
//!   `simra_dram::faults`) — stuck-at-0/1 cells, weak cells with elevated
//!   retention leakage, per-subarray sense-amplifier offset drift;
//! * **module-level events** ([`ModuleFault`]) — a module that drops out,
//!   panics the harness, or hangs at a chosen task index;
//! * **supply events** ([`VppDroop`]) — the wordline supply sagging over
//!   a window of row groups;
//! * **a per-task deadline** — the wall-clock budget the hardened fleet
//!   executor enforces between groups.
//!
//! Everything is a pure function of the plan (plus, for cell defects,
//! each subarray's silicon seed): fault draws come from a dedicated RNG
//! stream, so an *empty* plan leaves every experiment byte-identical to
//! the fault-free baseline — the executor's golden tests rely on it.
//!
//! Plans serialize to versioned JSON ([`FaultPlan::to_json`] /
//! [`FaultPlan::from_json`], schema [`FAULT_PLAN_SCHEMA_VERSION`])
//! following the `simra-telemetry` JSON conventions, so a sweep
//! checkpoint manifest can embed the exact plan it ran under and a
//! resumed run can prove it is applying byte-identical faults.

use serde::{Deserialize, Serialize};
use simra_telemetry::json::{self, Value};

pub use simra_dram::faults::{CellFaultSpec, SubarrayFaults};

/// What a module-level fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModuleFaultKind {
    /// The module stops responding at the given group index. With
    /// `recover_after_attempts: Some(k)`, retries after the `k`-th
    /// attempt succeed (a transient seating/contact fault); with `None`
    /// the dropout is permanent and the executor eventually gives the
    /// slot up as failed.
    Dropout {
        /// Group index at which the module goes silent.
        at_group: usize,
        /// Number of attempts after which the fault heals (`None` =
        /// permanent).
        recover_after_attempts: Option<u32>,
    },
    /// The harness thread panics at the given group index on the first
    /// attempt only — exercises the executor's panic isolation and its
    /// retry path (the retry completes normally).
    PanicAt {
        /// Group index at which the panic fires.
        at_group: usize,
    },
    /// The module stalls for `stall_ms` at the given group index, on
    /// every attempt. The stall is *charged* against the task's deadline
    /// budget rather than slept, so hang handling stays deterministic
    /// across machines and thread counts.
    Hang {
        /// Group index at which the stall occurs.
        at_group: usize,
        /// Stall duration charged to the deadline budget (ms).
        stall_ms: f64,
    },
}

/// A module-level fault bound to one fleet slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModuleFault {
    /// Index of the module in `ExperimentConfig::modules`.
    pub module_index: usize,
    /// What happens.
    pub kind: ModuleFaultKind,
}

/// A V_PP droop episode: the wordline supply sags by `delta_v` volts
/// while groups in `[from_group, to_group)` execute, recovering to
/// nominal outside the window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VppDroop {
    /// Sag below nominal V_PP (volts, positive).
    pub delta_v: f64,
    /// First group index inside the droop window.
    pub from_group: usize,
    /// First group index past the droop window.
    pub to_group: usize,
}

/// A complete, deterministic fault-injection plan.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Base seed of the plan (folded into every cell-defect stream).
    pub seed: u64,
    /// Cell-level defect densities, applied to every module.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cells: Option<CellFaultSpec>,
    /// Module-level fault events.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub modules: Vec<ModuleFault>,
    /// Optional supply droop episode.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub vpp_droop: Option<VppDroop>,
    /// Per-module-task wall-clock budget (ms), enforced between groups.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<f64>,
}

impl FaultPlan {
    /// The plan that injects nothing.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.cell_spec().is_none()
            && self.modules.is_empty()
            && self.vpp_droop.is_none()
            && self.deadline_ms.is_none()
    }

    /// The cell-defect spec, `None` when absent *or* empty (so callers
    /// can skip installing a no-op overlay).
    pub fn cell_spec(&self) -> Option<CellFaultSpec> {
        self.cells.filter(|c| !c.is_empty())
    }

    /// The module-level faults aimed at one fleet slot.
    pub fn module_faults(&self, module_index: usize) -> Vec<ModuleFaultKind> {
        self.modules
            .iter()
            .filter(|f| f.module_index == module_index)
            .map(|f| f.kind)
            .collect()
    }

    /// One-line human summary for run headers.
    pub fn describe(&self) -> String {
        if self.is_empty() {
            return "no faults".into();
        }
        let mut parts = Vec::new();
        if let Some(c) = self.cell_spec() {
            parts.push(format!(
                "cells: ~{} stuck + ~{} weak per million, sense shift {:+}",
                c.stuck_per_million, c.weak_per_million, c.sense_offset_shift
            ));
        }
        if !self.modules.is_empty() {
            parts.push(format!("{} module fault(s)", self.modules.len()));
        }
        if let Some(d) = self.vpp_droop {
            parts.push(format!(
                "V_PP droop {:.2} V over groups {}..{}",
                d.delta_v, d.from_group, d.to_group
            ));
        }
        if let Some(ms) = self.deadline_ms {
            parts.push(format!("deadline {ms} ms/task"));
        }
        parts.join("; ")
    }

    /// Named presets for `repro --faults <preset>`. `module_count` sizes
    /// the module-level events to the fleet actually configured.
    ///
    /// * `"quick"` — mild cell defects only; the scoreboard should stay
    ///   at (or within a whisker of) the pristine bar.
    /// * `"dropout"` — mild cells plus one permanently dropped module
    ///   and one first-attempt panic that heals on retry.
    /// * `"chaos"` — denser defects, a dropout, a panic, a hang, a V_PP
    ///   droop, and a deadline: the full degradation path.
    pub fn preset(name: &str, module_count: usize) -> Option<FaultPlan> {
        let last = module_count.saturating_sub(1);
        match name {
            "quick" => Some(FaultPlan {
                seed: 0xFA01,
                cells: Some(CellFaultSpec {
                    seed: 0xFA01,
                    stuck_per_million: 2.0,
                    weak_per_million: 10.0,
                    weak_leak_multiplier: 6.0,
                    sense_offset_shift: 0.0,
                }),
                ..FaultPlan::default()
            }),
            "dropout" => Some(FaultPlan {
                seed: 0xFA02,
                cells: Some(CellFaultSpec {
                    seed: 0xFA02,
                    stuck_per_million: 5.0,
                    weak_per_million: 20.0,
                    weak_leak_multiplier: 8.0,
                    sense_offset_shift: 0.0002,
                }),
                modules: vec![
                    ModuleFault {
                        module_index: last,
                        kind: ModuleFaultKind::Dropout {
                            at_group: 0,
                            recover_after_attempts: None,
                        },
                    },
                    ModuleFault {
                        module_index: 0,
                        kind: ModuleFaultKind::PanicAt { at_group: 0 },
                    },
                ],
                ..FaultPlan::default()
            }),
            "chaos" => Some(FaultPlan {
                seed: 0xFA03,
                cells: Some(CellFaultSpec {
                    seed: 0xFA03,
                    stuck_per_million: 40.0,
                    weak_per_million: 80.0,
                    weak_leak_multiplier: 10.0,
                    sense_offset_shift: 0.001,
                }),
                modules: vec![
                    ModuleFault {
                        module_index: last,
                        kind: ModuleFaultKind::Dropout {
                            at_group: 1,
                            recover_after_attempts: None,
                        },
                    },
                    ModuleFault {
                        module_index: 0,
                        kind: ModuleFaultKind::PanicAt { at_group: 0 },
                    },
                    ModuleFault {
                        module_index: last / 2,
                        kind: ModuleFaultKind::Hang {
                            at_group: 0,
                            stall_ms: 600.0,
                        },
                    },
                ],
                vpp_droop: Some(VppDroop {
                    delta_v: 0.2,
                    from_group: 0,
                    to_group: 2,
                }),
                deadline_ms: Some(500.0),
            }),
            _ => None,
        }
    }

    /// Renders the plan as one-line versioned JSON. Fields that inject
    /// nothing are omitted (mirroring the serde `skip_serializing_if`
    /// annotations), floats use shortest round-trip formatting, and the
    /// `u64` seeds are written as plain integers — so
    /// [`FaultPlan::from_json`] reconstructs a plan that compares equal
    /// and applies byte-identical faults.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"schema_version\":{FAULT_PLAN_SCHEMA_VERSION}"),
            format!("\"seed\":{}", self.seed),
        ];
        if let Some(c) = self.cells {
            fields.push(format!(
                "\"cells\":{{\"seed\":{},\"stuck_per_million\":{},\"weak_per_million\":{},\
                 \"weak_leak_multiplier\":{},\"sense_offset_shift\":{}}}",
                c.seed,
                json::number(c.stuck_per_million),
                json::number(c.weak_per_million),
                json::number(c.weak_leak_multiplier),
                json::number(f64::from(c.sense_offset_shift)),
            ));
        }
        if !self.modules.is_empty() {
            let rendered = self.modules.iter().map(|m| {
                let kind = match m.kind {
                    ModuleFaultKind::Dropout {
                        at_group,
                        recover_after_attempts,
                    } => match recover_after_attempts {
                        Some(k) => format!(
                            "{{\"type\":\"dropout\",\"at_group\":{at_group},\
                             \"recover_after_attempts\":{k}}}"
                        ),
                        None => format!("{{\"type\":\"dropout\",\"at_group\":{at_group}}}"),
                    },
                    ModuleFaultKind::PanicAt { at_group } => {
                        format!("{{\"type\":\"panic_at\",\"at_group\":{at_group}}}")
                    }
                    ModuleFaultKind::Hang { at_group, stall_ms } => format!(
                        "{{\"type\":\"hang\",\"at_group\":{at_group},\"stall_ms\":{}}}",
                        json::number(stall_ms)
                    ),
                };
                format!("{{\"module_index\":{},\"kind\":{kind}}}", m.module_index)
            });
            fields.push(format!("\"modules\":{}", json::array(rendered)));
        }
        if let Some(d) = self.vpp_droop {
            fields.push(format!(
                "\"vpp_droop\":{{\"delta_v\":{},\"from_group\":{},\"to_group\":{}}}",
                json::number(d.delta_v),
                d.from_group,
                d.to_group
            ));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(format!("\"deadline_ms\":{}", json::number(ms)));
        }
        format!("{{{}}}", fields.join(","))
    }

    /// Parses a plan rendered by [`FaultPlan::to_json`]. Unknown schema
    /// versions and malformed or missing fields are typed errors, never
    /// panics.
    pub fn from_json(input: &str) -> Result<FaultPlan, PlanParseError> {
        let doc = Value::parse(input)?;
        let version = require_u32(&doc, "schema_version")?;
        if version != FAULT_PLAN_SCHEMA_VERSION {
            return Err(PlanParseError::SchemaVersion {
                found: version,
                expected: FAULT_PLAN_SCHEMA_VERSION,
            });
        }
        let seed = require_u64(&doc, "seed")?;
        let cells = match doc.get("cells") {
            None | Some(Value::Null) => None,
            Some(c) => Some(CellFaultSpec {
                seed: require_u64(c, "seed")?,
                stuck_per_million: require_f64(c, "stuck_per_million")?,
                weak_per_million: require_f64(c, "weak_per_million")?,
                weak_leak_multiplier: require_f64(c, "weak_leak_multiplier")?,
                sense_offset_shift: require_f64(c, "sense_offset_shift")? as f32,
            }),
        };
        let modules = match doc.get("modules") {
            None | Some(Value::Null) => Vec::new(),
            Some(list) => {
                let items = list.as_array().ok_or_else(|| PlanParseError::Field {
                    field: "modules".into(),
                    detail: "expected an array".into(),
                })?;
                items
                    .iter()
                    .map(parse_module_fault)
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let vpp_droop = match doc.get("vpp_droop") {
            None | Some(Value::Null) => None,
            Some(d) => Some(VppDroop {
                delta_v: require_f64(d, "delta_v")?,
                from_group: require_usize(d, "from_group")?,
                to_group: require_usize(d, "to_group")?,
            }),
        };
        let deadline_ms = match doc.get("deadline_ms") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_f64().ok_or_else(|| PlanParseError::Field {
                field: "deadline_ms".into(),
                detail: "expected a number".into(),
            })?),
        };
        Ok(FaultPlan {
            seed,
            cells,
            modules,
            vpp_droop,
            deadline_ms,
        })
    }
}

/// Schema version written by [`FaultPlan::to_json`] and required by
/// [`FaultPlan::from_json`].
pub const FAULT_PLAN_SCHEMA_VERSION: u32 = 1;

/// Why [`FaultPlan::from_json`] rejected a document.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanParseError {
    /// The input is not well-formed JSON.
    Json(json::ParseError),
    /// The document's schema version is not the one this build writes.
    SchemaVersion {
        /// Version found in the document.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// A required field is missing or has the wrong type.
    Field {
        /// Dotted path of the offending field.
        field: String,
        /// What was expected.
        detail: String,
    },
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanParseError::Json(e) => write!(f, "fault plan: {e}"),
            PlanParseError::SchemaVersion { found, expected } => write!(
                f,
                "fault plan schema version {found} (this build reads version {expected})"
            ),
            PlanParseError::Field { field, detail } => {
                write!(f, "fault plan field '{field}': {detail}")
            }
        }
    }
}

impl std::error::Error for PlanParseError {}

impl From<json::ParseError> for PlanParseError {
    fn from(e: json::ParseError) -> Self {
        PlanParseError::Json(e)
    }
}

fn field_error(field: &str, detail: &str) -> PlanParseError {
    PlanParseError::Field {
        field: field.into(),
        detail: detail.into(),
    }
}

fn require_u64(doc: &Value, field: &str) -> Result<u64, PlanParseError> {
    doc.get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| field_error(field, "expected an unsigned integer"))
}

fn require_u32(doc: &Value, field: &str) -> Result<u32, PlanParseError> {
    doc.get(field)
        .and_then(Value::as_u32)
        .ok_or_else(|| field_error(field, "expected an unsigned 32-bit integer"))
}

fn require_usize(doc: &Value, field: &str) -> Result<usize, PlanParseError> {
    doc.get(field)
        .and_then(Value::as_usize)
        .ok_or_else(|| field_error(field, "expected an unsigned integer"))
}

fn require_f64(doc: &Value, field: &str) -> Result<f64, PlanParseError> {
    doc.get(field)
        .and_then(Value::as_f64)
        .ok_or_else(|| field_error(field, "expected a number"))
}

fn parse_module_fault(item: &Value) -> Result<ModuleFault, PlanParseError> {
    let module_index = require_usize(item, "module_index")?;
    let kind = item
        .get("kind")
        .ok_or_else(|| field_error("modules[].kind", "missing"))?;
    let tag = kind
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| field_error("modules[].kind.type", "expected a string tag"))?;
    let kind = match tag {
        "dropout" => ModuleFaultKind::Dropout {
            at_group: require_usize(kind, "at_group")?,
            recover_after_attempts: match kind.get("recover_after_attempts") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_u32().ok_or_else(|| {
                    field_error(
                        "modules[].kind.recover_after_attempts",
                        "expected an unsigned 32-bit integer",
                    )
                })?),
            },
        },
        "panic_at" => ModuleFaultKind::PanicAt {
            at_group: require_usize(kind, "at_group")?,
        },
        "hang" => ModuleFaultKind::Hang {
            at_group: require_usize(kind, "at_group")?,
            stall_ms: require_f64(kind, "stall_ms")?,
        },
        other => {
            return Err(field_error(
                "modules[].kind.type",
                &format!("unknown fault kind '{other}'"),
            ))
        }
    };
    Ok(ModuleFault { module_index, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        assert!(p.cell_spec().is_none());
        assert!(p.module_faults(0).is_empty());
        assert_eq!(p.describe(), "no faults");
    }

    #[test]
    fn empty_cell_spec_is_filtered() {
        let p = FaultPlan {
            cells: Some(CellFaultSpec::default()),
            ..FaultPlan::default()
        };
        assert!(p.cell_spec().is_none(), "a no-op spec must not install");
        assert!(p.is_empty());
    }

    #[test]
    fn module_faults_filter_by_slot() {
        let p = FaultPlan::preset("dropout", 4).unwrap();
        assert_eq!(p.module_faults(3).len(), 1);
        assert!(matches!(
            p.module_faults(3)[0],
            ModuleFaultKind::Dropout { at_group: 0, .. }
        ));
        assert!(matches!(
            p.module_faults(0)[0],
            ModuleFaultKind::PanicAt { at_group: 0 }
        ));
        assert!(p.module_faults(1).is_empty());
    }

    #[test]
    fn presets_exist_and_describe() {
        for name in ["quick", "dropout", "chaos"] {
            let p = FaultPlan::preset(name, 18).unwrap();
            assert!(!p.is_empty(), "{name} must inject something");
            assert_ne!(p.describe(), "no faults");
        }
        assert!(FaultPlan::preset("nope", 18).is_none());
    }

    #[test]
    fn single_module_fleet_presets_target_slot_zero() {
        let p = FaultPlan::preset("dropout", 1).unwrap();
        // With one module, both the dropout and the panic land on slot 0.
        assert_eq!(p.module_faults(0).len(), 2);
    }

    #[test]
    fn chaos_sets_a_deadline() {
        let p = FaultPlan::preset("chaos", 4).unwrap();
        assert!(p.deadline_ms.is_some());
        assert!(p.vpp_droop.is_some());
    }

    #[test]
    fn presets_round_trip_through_json() {
        for name in ["quick", "dropout", "chaos"] {
            for module_count in [1usize, 4, 18] {
                let plan = FaultPlan::preset(name, module_count).unwrap();
                let parsed = FaultPlan::from_json(&plan.to_json()).unwrap();
                assert_eq!(parsed, plan, "{name}/{module_count}");
                // Render is canonical: a second round trip is byte-stable.
                assert_eq!(parsed.to_json(), plan.to_json());
            }
        }
    }

    #[test]
    fn empty_plan_round_trips_minimal_document() {
        let plan = FaultPlan::empty();
        let doc = plan.to_json();
        assert_eq!(doc, "{\"schema_version\":1,\"seed\":0}");
        assert_eq!(FaultPlan::from_json(&doc).unwrap(), plan);
    }

    #[test]
    fn every_fault_kind_round_trips() {
        let plan = FaultPlan {
            seed: u64::MAX - 1,
            cells: Some(CellFaultSpec {
                seed: 7,
                stuck_per_million: 0.1,
                weak_per_million: 1.0 / 3.0,
                weak_leak_multiplier: 2.5,
                sense_offset_shift: -0.000_12,
            }),
            modules: vec![
                ModuleFault {
                    module_index: 3,
                    kind: ModuleFaultKind::Dropout {
                        at_group: 2,
                        recover_after_attempts: Some(4),
                    },
                },
                ModuleFault {
                    module_index: 0,
                    kind: ModuleFaultKind::Dropout {
                        at_group: 0,
                        recover_after_attempts: None,
                    },
                },
                ModuleFault {
                    module_index: 1,
                    kind: ModuleFaultKind::PanicAt { at_group: 1 },
                },
                ModuleFault {
                    module_index: 2,
                    kind: ModuleFaultKind::Hang {
                        at_group: 5,
                        stall_ms: 12.75,
                    },
                },
            ],
            vpp_droop: Some(VppDroop {
                delta_v: 0.2,
                from_group: 1,
                to_group: 3,
            }),
            deadline_ms: Some(500.5),
        };
        let parsed = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(parsed, plan);
        // Float fields must round-trip bit for bit, not just compare
        // equal — resume determinism depends on byte-identical faults.
        let c = parsed.cells.unwrap();
        assert_eq!(
            c.sense_offset_shift.to_bits(),
            plan.cells.unwrap().sense_offset_shift.to_bits()
        );
    }

    #[test]
    fn malformed_plan_documents_are_typed_errors() {
        assert!(matches!(
            FaultPlan::from_json("not json"),
            Err(PlanParseError::Json(_))
        ));
        assert!(matches!(
            FaultPlan::from_json("{\"schema_version\":99,\"seed\":0}"),
            Err(PlanParseError::SchemaVersion {
                found: 99,
                expected: FAULT_PLAN_SCHEMA_VERSION
            })
        ));
        assert!(matches!(
            FaultPlan::from_json("{\"schema_version\":1}"),
            Err(PlanParseError::Field { .. })
        ));
        let bad_kind = "{\"schema_version\":1,\"seed\":0,\
             \"modules\":[{\"module_index\":0,\"kind\":{\"type\":\"gremlin\"}}]}";
        let err = FaultPlan::from_json(bad_kind).unwrap_err();
        assert!(err.to_string().contains("gremlin"), "{err}");
    }
}
