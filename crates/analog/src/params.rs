//! Circuit constants, operating conditions, and the timing-derived
//! strength/weight model.
//!
//! Everything the calibration can turn is here, in one place, with the
//! paper observation each constant is tuned against. Two distinct
//! timing-dependent strengths matter:
//!
//! * **assertion strength** — how completely the (many) wordlines rise
//!   during the charge-sharing window; scales the *sensing* margins.
//!   Degrades only when `t2` is at the 1.5 ns grid minimum (the decoder's
//!   intermediate signals cannot assert — Obs. 7 hypothesis 2).
//! * **restore strength** — how hard the sense amps / write drivers can
//!   overdrive the open cells afterwards; this is what the WR-overdrive
//!   *activation* experiments and Multi-RowCopy stress. Degrades when
//!   `t1` or `t2` sit at the grid minimum (Obs. 2, Obs. 15).
//!
//! This split is why MAJX *prefers* `t1 = 1.5 ns` (less first-row
//! over-share, sensing unharmed) while the activation test prefers
//! `t1 = 3 ns` (restore unharmed) — exactly the asymmetry in Figs. 3 vs 6.

use serde::{Deserialize, Serialize};

use simra_dram::ApaTiming;

/// Nominal wordline voltage of DDR4 (V).
pub const NOMINAL_VPP: f64 = 2.5;
/// Nominal chip temperature for all experiments unless swept (°C).
pub const NOMINAL_TEMPERATURE_C: f64 = 50.0;

/// Temperature and wordline-voltage operating point of the test rig
/// (the paper's rubber heaters + TTi PL068-P supply).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingConditions {
    /// Chip temperature in °C (paper sweeps 50–90).
    pub temperature_c: f64,
    /// Wordline voltage V_PP in volts (paper sweeps 2.5 down to 2.1).
    pub vpp_v: f64,
}

impl OperatingConditions {
    /// The paper's default operating point: 50 °C, 2.5 V.
    pub fn nominal() -> Self {
        OperatingConditions {
            temperature_c: NOMINAL_TEMPERATURE_C,
            vpp_v: NOMINAL_VPP,
        }
    }

    /// Nominal temperature with a specific V_PP.
    pub fn with_vpp(vpp_v: f64) -> Self {
        OperatingConditions {
            vpp_v,
            ..Self::nominal()
        }
    }

    /// Nominal V_PP with a specific temperature.
    pub fn with_temperature(temperature_c: f64) -> Self {
        OperatingConditions {
            temperature_c,
            ..Self::nominal()
        }
    }
}

impl Default for OperatingConditions {
    fn default() -> Self {
        OperatingConditions::nominal()
    }
}

/// All calibration constants of the analog model.
///
/// The defaults ([`CircuitParams::calibrated`]) are fitted so that the
/// characterization runners land in-band on the paper's headline numbers;
/// each field's doc comment names the observation it is tuned against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitParams {
    /// Bitline-to-cell capacitance ratio `C_b / C_c`.
    pub beta: f64,
    /// Amplification of the per-cell access-strength spread during PUD
    /// (violated-timing) charge sharing *at 32-row activation*: the
    /// violated window never settles and the shared wordline boost droops
    /// with every extra open row, so the per-cell transfer factor inherits
    /// a variation that grows with N. The effective amplification is
    /// `pud_transfer_amp · N / 32` (see [`CircuitParams::transfer_amp`]).
    /// Multiplies `(strength_factor − 1)`. Tuned against the MAJ3
    /// 4-row vs 32-row gap (Obs. 6) jointly with MAJ9@32 (Obs. 8).
    pub pud_transfer_amp: f64,
    /// Sense-amplifier dead zone: the systematic margin (normalized volts)
    /// a bitline must clear for reliable same-direction resolution.
    /// Tuned against MAJ3@32 = 99.0 % (Obs. 7).
    pub sense_deadzone: f64,
    /// Per-trial sensing noise sigma, normalized volts.
    pub trial_noise_sigma: f64,
    /// Number of trials a cell must survive (the paper runs 10⁴).
    pub effective_trials: u32,
    /// Sigma of the residual |V − VDD/2| of a cell parked by Frac
    /// (neutral rows are not perfectly neutral; footnote 4).
    pub frac_residual_sigma: f64,
    /// Assertion strength at t2 = 1.5 ns (vs 1.0 at ≥ 3 ns).
    pub weak_t2_assertion: f64,
    /// Restore-strength factor when t1 = 1.5 ns (Obs. 2).
    pub weak_t1_restore: f64,
    /// Restore-strength factor when t2 = 1.5 ns (Obs. 2).
    pub weak_t2_restore: f64,
    /// First-row over-share per nanosecond of ACT→ACT delay beyond the
    /// 4.5 ns minimum (Obs. 7 hypothesis 1; drives the 45.5 % MAJ3 gap
    /// between (1.5, 3) and (3, 3)).
    pub overshare_per_ns: f64,
    /// Sense-amp latch quality for the Multi-RowCopy source phase at
    /// t1 = 1.5 ns (Obs. 15).
    pub mrc_latch_q_1_5: f64,
    /// Same, at t1 = 3 ns.
    pub mrc_latch_q_3: f64,
    /// Same, at t1 = 6 ns (≥ tRCD saturates at 1.0).
    pub mrc_latch_q_6: f64,
    /// Minimum cell drive (restore strength × cell strength factor) for a
    /// full rail restore during commit. Tuned against ≥ 99.85 %
    /// activation at best timing (Obs. 1) given the 0.05 cell-strength
    /// sigma: z = (1 − threshold) / 0.05 ≈ 3.76.
    pub restore_threshold: f64,
    /// Per-open-row droop of the restore drive when writing a logical 1
    /// (V_PP headroom shared by N wordlines): tuned against the all-1s
    /// Multi-RowCopy dip at 31 destinations (Obs. 16).
    pub restore_one_droop_per_row: f64,
    /// Sigma of the multiplicative group-to-group margin spread: row
    /// groups sit at different distances from the local wordline drivers
    /// and sense-amp stripes, so whole groups are systematically stronger
    /// or weaker. This is what makes the paper's box plots wide (huge
    /// IQRs for MAJ7/MAJ9) and lets best-group selection (§8.1) find
    /// outliers far above the mean.
    pub group_spread_sigma: f64,
    /// Fractional transistor-drive gain per °C above 50 °C (Obs. 11).
    pub temp_strength_per_c: f64,
    /// Fractional WR-driver quality loss per °C above 50 °C (the tiny
    /// *negative* temperature slope of the activation test, Obs. 3).
    pub temp_write_penalty_per_c: f64,
    /// Fractional transistor-drive loss per volt of V_PP underscale
    /// (Obs. 4 / 13 / 18).
    pub vpp_strength_per_v: f64,
}

impl CircuitParams {
    /// The calibrated constants used by every experiment.
    pub fn calibrated() -> Self {
        CircuitParams {
            beta: 2.5,
            pud_transfer_amp: 4.6,
            sense_deadzone: 0.0344,
            trial_noise_sigma: 0.0045,
            effective_trials: 10_000,
            frac_residual_sigma: 0.12,
            weak_t2_assertion: 0.90,
            weak_t1_restore: 0.96,
            weak_t2_restore: 0.875,
            overshare_per_ns: 4.0,
            mrc_latch_q_1_5: 0.50,
            mrc_latch_q_3: 0.965,
            mrc_latch_q_6: 0.995,
            restore_threshold: 0.812,
            restore_one_droop_per_row: 0.0015,
            group_spread_sigma: 0.22,
            temp_strength_per_c: 0.0006,
            temp_write_penalty_per_c: 0.00002,
            vpp_strength_per_v: 0.012,
        }
    }

    /// Effective per-cell transfer-variation amplification for an
    /// `n_rows`-row activation: grows linearly with the open-row count
    /// (wordline-boost droop), anchored at `pud_transfer_amp` for 32 rows.
    pub fn transfer_amp(&self, n_rows: usize) -> f64 {
        // A floor of 30 % keeps small-N activations noticeably noisy (the
        // violated window itself), with the droop term growing toward the
        // full amplification at 32 rows.
        self.pud_transfer_amp * (0.3 + 0.7 * n_rows as f64 / 32.0)
    }

    /// Assertion (charge-sharing) strength for an APA's simultaneously
    /// activated rows, scaling every sensing margin.
    pub fn assertion_strength(&self, timing: ApaTiming, cond: OperatingConditions) -> f64 {
        let mut s = 1.0;
        if timing.t2.as_ns() < 3.0 - 1e-9 {
            s *= self.weak_t2_assertion;
        }
        s * self.env_strength(cond)
    }

    /// Restore (overdrive) strength after an APA: how hard the amps /
    /// write drivers can rewrite the open cells.
    pub fn restore_strength(&self, timing: ApaTiming, cond: OperatingConditions) -> f64 {
        let mut s = 1.0;
        if timing.t1.as_ns() < 3.0 - 1e-9 {
            s *= self.weak_t1_restore;
        }
        if timing.t2.as_ns() < 3.0 - 1e-9 {
            s *= self.weak_t2_restore;
        }
        s * self.env_strength(cond)
    }

    /// The temperature/V_PP multiplier on transistor drive.
    pub fn env_strength(&self, cond: OperatingConditions) -> f64 {
        let temp = 1.0 + self.temp_strength_per_c * (cond.temperature_c - NOMINAL_TEMPERATURE_C);
        let vpp = 1.0 - self.vpp_strength_per_v * (NOMINAL_VPP - cond.vpp_v);
        (temp * vpp).max(0.0)
    }

    /// WR-driver quality (the tiny negative temperature slope of the
    /// WR-overdrive activation experiments, Obs. 3).
    pub fn write_quality(&self, cond: OperatingConditions) -> f64 {
        (1.0 - self.temp_write_penalty_per_c * (cond.temperature_c - NOMINAL_TEMPERATURE_C))
            .clamp(0.0, 1.0)
    }

    /// Per-row charge-share weights for a simultaneous activation where
    /// `first_index` is the position of `R_F` in the open-row list.
    ///
    /// `R_F`'s wordline has been asserted since the first ACT, so it keeps
    /// sharing charge for the whole `t1 + t2` window while the others only
    /// join at the second ACT: its weight grows with the ACT→ACT delay.
    pub fn share_weights(&self, n_rows: usize, first_index: usize, timing: ApaTiming) -> Vec<f64> {
        let mut w = vec![1.0; n_rows];
        if n_rows > 1 {
            w[first_index] = self.first_row_weight(n_rows, timing);
        }
        w
    }

    /// `R_F`'s charge-share weight alone (1.0 for every other row, and for
    /// single-row activations): the non-allocating form of
    /// [`CircuitParams::share_weights`] used by the sense hot path.
    pub fn first_row_weight(&self, n_rows: usize, timing: ApaTiming) -> f64 {
        if n_rows <= 1 {
            return 1.0;
        }
        let extra_ns = (timing.act_to_act_ns() - 4.5).max(0.0);
        1.0 + self.overshare_per_ns * extra_ns
    }

    /// Sense-amp latch quality for the Multi-RowCopy source phase as a
    /// function of t1 (Obs. 14/15): ≥ tRCD fully latches, shorter t1
    /// leaves the bitlines only partially driven.
    pub fn mrc_latch_quality(&self, t1_ns: f64) -> f64 {
        if t1_ns < 3.0 - 1e-9 {
            self.mrc_latch_q_1_5
        } else if t1_ns < 6.0 - 1e-9 {
            self.mrc_latch_q_3
        } else if t1_ns < 13.5 - 1e-9 {
            self.mrc_latch_q_6
        } else {
            1.0
        }
    }

    /// Restore drive multiplier when committing a logical `bit` to one of
    /// `n_open` simultaneously open rows while `frac_ones` of the row
    /// image is 1s.
    ///
    /// Restoring a 1 pulls on the V_PP-boosted wordline headroom; the
    /// droop scales with the *total* 1-restore load (open rows × fraction
    /// of 1s in the data), which is why copying all-1s to 31 rows dips
    /// while random data barely moves (Obs. 16).
    pub fn restore_drive(&self, bit: bool, n_open: usize, frac_ones: f64) -> f64 {
        if bit {
            (1.0 - self.restore_one_droop_per_row * n_open as f64 * frac_ones.clamp(0.0, 1.0))
                .max(0.0)
        } else {
            1.0
        }
    }

    /// The systematic margin (normalized volts) a bitline must exceed so
    /// that its cells survive all `effective_trials` trials of per-trial
    /// Gaussian noise with ≥ 50 % probability: dead zone + noise quantile.
    pub fn stability_threshold(&self) -> f64 {
        let p_per_trial = 0.5f64.powf(1.0 / self.effective_trials as f64);
        self.sense_deadzone + crate::math::phi_inv(p_per_trial) * self.trial_noise_sigma
    }
}

impl Default for CircuitParams {
    fn default() -> Self {
        CircuitParams::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_conditions() {
        let c = OperatingConditions::nominal();
        assert_eq!(c.temperature_c, 50.0);
        assert_eq!(c.vpp_v, 2.5);
    }

    #[test]
    fn assertion_strength_only_penalises_weak_t2() {
        let p = CircuitParams::calibrated();
        let nom = OperatingConditions::nominal();
        assert_eq!(p.assertion_strength(ApaTiming::from_ns(1.5, 3.0), nom), 1.0);
        assert!(p.assertion_strength(ApaTiming::from_ns(3.0, 1.5), nom) < 1.0);
    }

    #[test]
    fn restore_strength_penalises_both_grid_minimums() {
        let p = CircuitParams::calibrated();
        let nom = OperatingConditions::nominal();
        let best = p.restore_strength(ApaTiming::from_ns(3.0, 3.0), nom);
        let weak_t1 = p.restore_strength(ApaTiming::from_ns(1.5, 3.0), nom);
        let weak_t2 = p.restore_strength(ApaTiming::from_ns(3.0, 1.5), nom);
        let weak_both = p.restore_strength(ApaTiming::from_ns(1.5, 1.5), nom);
        assert_eq!(best, 1.0);
        assert!(weak_t1 < best && weak_t2 < weak_t1);
        assert!(weak_both < weak_t2);
    }

    #[test]
    fn env_strength_monotone_in_temp_and_vpp() {
        let p = CircuitParams::calibrated();
        let hot = p.env_strength(OperatingConditions::with_temperature(90.0));
        let cold = p.env_strength(OperatingConditions::with_temperature(50.0));
        assert!(hot > cold);
        let low_v = p.env_strength(OperatingConditions::with_vpp(2.1));
        let high_v = p.env_strength(OperatingConditions::with_vpp(2.5));
        assert!(low_v < high_v);
        // Both effects are small (a few percent at the extremes).
        assert!((hot / cold - 1.0).abs() < 0.05);
        assert!((1.0 - low_v / high_v).abs() < 0.05);
    }

    #[test]
    fn first_row_overshares_with_long_act_to_act() {
        let p = CircuitParams::calibrated();
        let tight = p.share_weights(4, 0, ApaTiming::from_ns(1.5, 3.0));
        let loose = p.share_weights(4, 0, ApaTiming::from_ns(3.0, 3.0));
        assert_eq!(tight[0], 1.0, "minimum ACT→ACT has equal shares");
        assert!(loose[0] > 1.0);
        assert_eq!(loose[1], 1.0);
        assert_eq!(
            p.share_weights(1, 0, ApaTiming::from_ns(36.0, 6.0)),
            vec![1.0]
        );
    }

    #[test]
    fn first_row_weight_agrees_with_share_weights() {
        let p = CircuitParams::calibrated();
        for (n, first) in [(1usize, 0usize), (2, 1), (8, 3), (32, 0)] {
            for t in [ApaTiming::from_ns(1.5, 3.0), ApaTiming::from_ns(3.0, 3.0)] {
                let w = p.share_weights(n, first, t);
                assert_eq!(w[first], p.first_row_weight(n, t));
                assert!(w.iter().enumerate().all(|(i, &x)| i == first || x == 1.0));
            }
        }
    }

    #[test]
    fn mrc_latch_quality_ordering() {
        let p = CircuitParams::calibrated();
        let q15 = p.mrc_latch_quality(1.5);
        let q3 = p.mrc_latch_quality(3.0);
        let q6 = p.mrc_latch_quality(6.0);
        let q36 = p.mrc_latch_quality(36.0);
        assert!(q15 < q3 && q3 < q6 && q6 < q36);
        assert_eq!(q36, 1.0);
    }

    #[test]
    fn restore_drive_droops_for_ones_at_high_n() {
        let p = CircuitParams::calibrated();
        assert_eq!(p.restore_drive(false, 32, 1.0), 1.0);
        assert!(p.restore_drive(true, 32, 1.0) < p.restore_drive(true, 2, 1.0));
        // Droop scales with the 1-fraction of the image.
        assert!(p.restore_drive(true, 32, 1.0) < p.restore_drive(true, 32, 0.5));
        assert_eq!(p.restore_drive(true, 32, 0.0), 1.0);
    }

    #[test]
    fn stability_threshold_above_deadzone() {
        let p = CircuitParams::calibrated();
        assert!(p.stability_threshold() > p.sense_deadzone);
        let z = (p.stability_threshold() - p.sense_deadzone) / p.trial_noise_sigma;
        assert!(z > 3.0 && z < 4.5, "z = {z}");
    }
}
