//! Small numeric helpers: the standard normal CDF, its inverse, and the
//! Box–Muller transform behind every Gaussian draw in the analog model.

use rand::Rng;

/// One Box–Muller transform: maps uniforms `u1 ∈ (0, 1]` and
/// `u2 ∈ [0, 1)` to a standard normal sample.
///
/// This is the single shared form of the transform — [`standard_normal`]
/// (the engine's sampled-noise draws), the engine's hashed per-group
/// spread, and the Monte-Carlo sampler all route through it. The `TAU`
/// constant is bit-identical to the `2.0 * PI` the call sites
/// historically spelled out (doubling only bumps the exponent), so
/// consolidating here changed no output.
#[inline]
pub fn box_muller(u1: f64, u2: f64) -> f64 {
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One standard normal sample from `rng`, consuming exactly two uniform
/// draws: `gen_range(EPSILON..1.0)` then `gen_range(0.0..1.0)`.
///
/// The draw forms are load-bearing: every pre-existing Box–Muller site
/// that samples from a caller RNG used exactly this pair, so the stream
/// position after a call is unchanged from the historical inline code.
/// (The surrogate backend keeps its own `(1 − u)`-flavored convention —
/// its raw `gen()` draws are part of its replay contract.)
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = rng.gen_range(f64::EPSILON..1.0);
    let u2 = rng.gen_range(0.0..1.0);
    box_muller(u1, u2)
}

/// Fills `out` with standard normal samples, drawing in slice order —
/// element `i` consumes the same two uniforms a loop of
/// [`standard_normal`] calls would, so batched callers replay the exact
/// scalar stream.
pub fn fill_standard_normals<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    for z in out.iter_mut() {
        *z = standard_normal(rng);
    }
}

/// Error function, Abramowitz–Stegun 7.1.26 (max error ≈ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// relative error < 1.2e-9 over (0, 1)).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn phi_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "phi_inv requires p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!((phi(1.0) - 0.8413447).abs() < 1e-5);
        assert!((phi(-1.0) - 0.1586553).abs() < 1e-5);
        assert!((phi(2.33) - 0.99010).abs() < 1e-4);
        assert!(phi(8.0) > 0.9999999);
    }

    #[test]
    fn phi_inv_roundtrip() {
        for p in [0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999] {
            let x = phi_inv(p);
            assert!((phi(x) - p).abs() < 1e-5, "p={p} x={x} phi={}", phi(x));
        }
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.1, 0.5, 1.0, 2.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "phi_inv requires")]
    fn phi_inv_rejects_bounds() {
        phi_inv(0.0);
    }

    #[test]
    fn box_muller_known_points() {
        // u2 = 0.25 → cos(π/2) ≈ 0 (exactly 0 up to cos rounding).
        assert!(box_muller(1.0, 0.25).abs() < 1e-15);
        // u1 = e^{-1/2} → radius 1; u2 = 0 → cos(0) = 1.
        assert!((box_muller((-0.5f64).exp(), 0.0) - 1.0).abs() < 1e-12);
        // u2 = 0.5 flips the sign.
        assert!((box_muller((-0.5f64).exp(), 0.5) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn box_muller_is_bit_identical_to_the_inline_form() {
        // The historical call sites spelled `2.0 * PI`; the helper uses
        // `TAU`. Doubling PI is exact in f64, so the two must agree to
        // the last bit for arbitrary uniforms.
        let mut u = 0.123_456_789_f64;
        for _ in 0..1000 {
            let u1 = u.max(f64::EPSILON);
            let u2 = (u * 7.77).fract();
            let inline = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            assert_eq!(inline.to_bits(), box_muller(u1, u2).to_bits());
            u = (u * 997.0).fract();
        }
    }

    #[test]
    fn standard_normal_pins_the_draw_convention() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Exactly two uniforms per sample, in the historical forms, so
        // the stream position matches the pre-consolidation inline code.
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            let z = standard_normal(&mut a);
            let u1: f64 = b.gen_range(f64::EPSILON..1.0);
            let u2: f64 = b.gen_range(0.0..1.0);
            let inline = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            assert_eq!(z.to_bits(), inline.to_bits());
        }
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "same residual stream");
    }

    #[test]
    fn fill_matches_a_loop_of_scalar_draws() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut batch = [0.0; 33];
        fill_standard_normals(&mut a, &mut batch);
        for (i, &z) in batch.iter().enumerate() {
            assert_eq!(z.to_bits(), standard_normal(&mut b).to_bits(), "lane {i}");
        }
        // Sanity: the samples look like a standard normal.
        let mean = batch.iter().sum::<f64>() / batch.len() as f64;
        assert!(mean.abs() < 1.0, "mean {mean}");
    }
}
