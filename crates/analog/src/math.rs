//! Small numeric helpers: the standard normal CDF and its inverse.

/// Error function, Abramowitz–Stegun 7.1.26 (max error ≈ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// relative error < 1.2e-9 over (0, 1)).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn phi_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "phi_inv requires p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!((phi(1.0) - 0.8413447).abs() < 1e-5);
        assert!((phi(-1.0) - 0.1586553).abs() < 1e-5);
        assert!((phi(2.33) - 0.99010).abs() < 1e-4);
        assert!(phi(8.0) > 0.9999999);
    }

    #[test]
    fn phi_inv_roundtrip() {
        for p in [0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999] {
            let x = phi_inv(p);
            assert!((phi(x) - p).abs() < 1e-5, "p={p} x={x} phi={}", phi(x));
        }
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.1, 0.5, 1.0, 2.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "phi_inv requires")]
    fn phi_inv_rejects_bounds() {
        phi_inv(0.0);
    }
}
