//! Bitline charge-sharing arithmetic.

use simra_dram::Subarray;

/// Computes the normalized bitline perturbation on every column when the
/// given `(local_row, weight)` pairs are simultaneously connected.
///
/// Per column `c`:
///
/// ```text
/// ΔV_c = assertion · Σ_i w_i · cap_i · xfer_i · (v_i − ½)  /  (β + Σ_i w_i · cap_i)
/// ```
///
/// `xfer_i = max(0, 1 + (strength_i − 1) · transfer_amp)` amplifies the
/// per-cell access-strength spread: in the violated-timing window the
/// charge transfer never settles, so cells with weak transistors
/// contribute disproportionately little (this is the dominant systematic
/// variation behind "unstable" PUD cells).
///
/// A fully charged nominal cell in a single-row activation perturbs the
/// bitline by `+0.5 / (β + 1)` — with the calibrated `β = 6` that is about
/// 86 mV at VDD = 1.2 V, matching the scale real sense amplifiers see.
///
/// Allocates the result; the hot path is [`bitline_deltas_into`], which
/// reuses caller-owned buffers.
pub fn bitline_deltas(
    subarray: &Subarray,
    rows_weights: &[(u32, f64)],
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
) -> Vec<f64> {
    let mut cap_scratch = Vec::new();
    let mut out = Vec::new();
    bitline_deltas_into(
        subarray,
        rows_weights,
        transfer_amp,
        assertion,
        beta,
        &mut cap_scratch,
        &mut out,
    );
    out
}

/// Vector lane granularity of the chunked kernels: the column-block
/// width [`BATCH_TILE`] is a whole multiple of `LANES`, so every full
/// block subdivides exactly into lane groups the autovectorizer turns
/// into packed f64 operations at any SIMD width up to 8 lanes (one
/// AVX-512 register, four NEON ones).
pub const LANES: usize = 8;

/// Column-block width of the chunked kernels [`bitline_deltas_into`]
/// and [`bitline_deltas_batch_into`]: wide enough that the inner sweeps
/// are long contiguous autovectorizable runs, small enough that the
/// block accumulators (and, for the batched kernel, the per-row
/// `k = cap · xfer` factors) stay L1-resident while the row loop — or
/// every trial of the batch — sweeps the block.
pub const BATCH_TILE: usize = 64;

/// Frozen scalar reference for [`bitline_deltas_into`].
///
/// This is the pre-vectorization kernel, kept verbatim: the tiled kernel
/// and the trial-batched kernel are required (and proptest-enforced, see
/// `crates/analog/tests/hotpath_identity.rs`) to reproduce its output
/// **bit for bit**. Do not "clean it up" — every expression shape here
/// (the left-associated `cap * xfer * (v − ½)`, the accumulate-then-
/// finalize split) is the bit-identity contract the fast paths are held
/// to.
#[allow(clippy::too_many_arguments)]
pub fn bitline_deltas_into_scalar(
    subarray: &Subarray,
    rows_weights: &[(u32, f64)],
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
    cap_scratch: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    let cols = subarray.cols() as usize;
    out.clear();
    out.resize(cols, 0.0);
    cap_scratch.clear();
    cap_scratch.resize(cols, 0.0);
    let num = &mut out[..];
    let cap_sum = &mut cap_scratch[..];
    for &(row, weight) in rows_weights {
        let volts = &subarray.row_voltages(row)[..cols];
        let caps = &subarray.row_cap_factors(row)[..cols];
        let strengths = &subarray.row_strength_factors(row)[..cols];
        for c in 0..cols {
            let cap = caps[c] as f64 * weight;
            let xfer = (1.0 + (strengths[c] as f64 - 1.0) * transfer_amp).max(0.0);
            num[c] += cap * xfer * (volts[c] as f64 - 0.5);
            cap_sum[c] += cap;
        }
    }
    for c in 0..cols {
        num[c] = assertion * num[c] / (beta + cap_sum[c]);
    }
}

/// Per-row plane views of one kernel invocation: the row's voltage,
/// capacitance-factor, and strength-factor slices plus its contribution
/// weight. Hoisted once per call so the accessor's row bounds check and
/// range computation run per row, not per (row, block).
type RowPlanes<'a> = (&'a [f32], &'a [f32], &'a [f32], f64);

/// Portable body of the chunked single-shot kernel; `#[inline(always)]`
/// so every dispatch target compiles its own copy under its own target
/// features (the AVX2 twin widens these very loops to 256-bit lanes).
///
/// Columns are processed in [`BATCH_TILE`]-wide blocks whose numerator
/// and capacitance accumulators live in fixed-size stack arrays: they
/// stay L1-resident across the whole row loop instead of streaming the
/// full-width `out`/`cap_scratch` vectors through the cache hierarchy
/// once per row. The inner sweeps are plain contiguous slice loops —
/// the shape the loop vectorizer handles on stable.
#[inline(always)]
fn deltas_blocks(
    planes: &[RowPlanes<'_>],
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
    num: &mut [f64],
    cap_sum: &mut [f64],
) {
    let cols = num.len();
    // Full blocks run with the constant width so the inlined block body
    // specializes: the inner sweeps unroll completely, with no per-entry
    // loop guards or vector tail code. Only the last partial block pays
    // the runtime-width form.
    let mut base = 0;
    while base + BATCH_TILE <= cols {
        deltas_one_block(
            planes,
            transfer_amp,
            assertion,
            beta,
            base,
            BATCH_TILE,
            num,
            cap_sum,
        );
        base += BATCH_TILE;
    }
    if base < cols {
        deltas_one_block(
            planes,
            transfer_amp,
            assertion,
            beta,
            base,
            cols - base,
            num,
            cap_sum,
        );
    }
}

/// One [`BATCH_TILE`]-wide (or tail-width `w`) column block of
/// [`deltas_blocks`]; `#[inline(always)]` so the constant-width call
/// site compiles to straight-line vector code.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn deltas_one_block(
    planes: &[RowPlanes<'_>],
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
    base: usize,
    w: usize,
    num: &mut [f64],
    cap_sum: &mut [f64],
) {
    debug_assert!(w <= BATCH_TILE);
    let mut acc_num = [0.0f64; BATCH_TILE];
    let mut acc_cap = [0.0f64; BATCH_TILE];
    {
        let an = &mut acc_num[..w];
        let ac = &mut acc_cap[..w];
        let mut i = 0;
        while i < planes.len() {
            // Runs of unit-weight rows (everything but the first
            // activated row in practice) take a four-row sweep: the
            // `· weight` multiply drops out (`x · 1.0 == x` bit for bit
            // for the finite plane values) and the accumulator is
            // loaded and stored once per four rows instead of once per
            // row. The nested `(((a + x0) + x1) + x2) + x3` shape is
            // exactly the reference's `a += x0; a += x1; ...` order.
            if i + 4 <= planes.len() && planes[i..i + 4].iter().all(|p| p.3 == 1.0) {
                let (v0, c0, s0, _) = planes[i];
                let (v1, c1, s1, _) = planes[i + 1];
                let (v2, c2, s2, _) = planes[i + 2];
                let (v3, c3, s3, _) = planes[i + 3];
                let (v0, c0, s0) = (
                    &v0[base..base + w],
                    &c0[base..base + w],
                    &s0[base..base + w],
                );
                let (v1, c1, s1) = (
                    &v1[base..base + w],
                    &c1[base..base + w],
                    &s1[base..base + w],
                );
                let (v2, c2, s2) = (
                    &v2[base..base + w],
                    &c2[base..base + w],
                    &s2[base..base + w],
                );
                let (v3, c3, s3) = (
                    &v3[base..base + w],
                    &c3[base..base + w],
                    &s3[base..base + w],
                );
                for c in 0..w {
                    let cap0 = c0[c] as f64;
                    let xf0 = (1.0 + (s0[c] as f64 - 1.0) * transfer_amp).max(0.0);
                    let cap1 = c1[c] as f64;
                    let xf1 = (1.0 + (s1[c] as f64 - 1.0) * transfer_amp).max(0.0);
                    let cap2 = c2[c] as f64;
                    let xf2 = (1.0 + (s2[c] as f64 - 1.0) * transfer_amp).max(0.0);
                    let cap3 = c3[c] as f64;
                    let xf3 = (1.0 + (s3[c] as f64 - 1.0) * transfer_amp).max(0.0);
                    an[c] = (((an[c] + cap0 * xf0 * (v0[c] as f64 - 0.5))
                        + cap1 * xf1 * (v1[c] as f64 - 0.5))
                        + cap2 * xf2 * (v2[c] as f64 - 0.5))
                        + cap3 * xf3 * (v3[c] as f64 - 0.5);
                    ac[c] = (((ac[c] + cap0) + cap1) + cap2) + cap3;
                }
                i += 4;
            } else {
                let (volts, caps, strengths, weight) = planes[i];
                let volts = &volts[base..base + w];
                let caps = &caps[base..base + w];
                let strengths = &strengths[base..base + w];
                if weight == 1.0 {
                    for c in 0..w {
                        let cap = caps[c] as f64;
                        let xfer = (1.0 + (strengths[c] as f64 - 1.0) * transfer_amp).max(0.0);
                        an[c] += cap * xfer * (volts[c] as f64 - 0.5);
                        ac[c] += cap;
                    }
                } else {
                    for c in 0..w {
                        let cap = caps[c] as f64 * weight;
                        let xfer = (1.0 + (strengths[c] as f64 - 1.0) * transfer_amp).max(0.0);
                        an[c] += cap * xfer * (volts[c] as f64 - 0.5);
                        ac[c] += cap;
                    }
                }
                i += 1;
            }
        }
    }
    for c in 0..w {
        num[base + c] = assertion * acc_num[c] / (beta + acc_cap[c]);
        cap_sum[base + c] = acc_cap[c];
    }
}

/// AVX2-compiled twin of [`deltas_blocks`]: same Rust expressions, so —
/// because Rust never contracts floating-point operations — the results
/// are bit-identical; only the instruction encoding widens.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn deltas_blocks_avx2(
    planes: &[RowPlanes<'_>],
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
    num: &mut [f64],
    cap_sum: &mut [f64],
) {
    deltas_blocks(planes, transfer_amp, assertion, beta, num, cap_sum)
}

#[inline]
fn deltas_blocks_dispatch(
    planes: &[RowPlanes<'_>],
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
    num: &mut [f64],
    cap_sum: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was verified at runtime on the line
        // above; the feature gate changes code generation only, not
        // semantics.
        return unsafe { deltas_blocks_avx2(planes, transfer_amp, assertion, beta, num, cap_sum) };
    }
    deltas_blocks(planes, transfer_amp, assertion, beta, num, cap_sum)
}

/// [`bitline_deltas`] into reusable buffers: `out` receives the per-column
/// perturbations, `cap_scratch` accumulates the per-column capacitance sum.
/// Both are cleared and resized; capacity is reused across calls.
///
/// # Layout
///
/// Columns are processed in [`BATCH_TILE`]-wide blocks with the
/// numerator and capacitance accumulators held in fixed-size stack
/// arrays that stay L1-resident across the whole row loop, instead of
/// round-tripping the full-width `out`/`cap_scratch` vectors through
/// the cache once per row. The contiguous fixed-width inner sweeps
/// autovectorize on stable, and on x86-64 the kernel body is compiled a
/// second time under `#[target_feature(enable = "avx2")]` and selected
/// by runtime feature detection, widening the same loops to 256-bit
/// lanes.
///
/// # Bit identity
///
/// Per column, additions happen in the row order of `rows_weights` with
/// exactly the expression shapes of [`bitline_deltas_into_scalar`]
/// (chunking only regroups *columns*, never the per-column sum, and the
/// AVX2 twin compiles the identical expressions — Rust never contracts
/// floating point), so the output is bit-identical to the frozen scalar
/// reference — enforced by the proptests in
/// `crates/analog/tests/hotpath_identity.rs`.
#[allow(clippy::too_many_arguments)]
pub fn bitline_deltas_into(
    subarray: &Subarray,
    rows_weights: &[(u32, f64)],
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
    cap_scratch: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    let cols = subarray.cols() as usize;
    out.clear();
    out.resize(cols, 0.0);
    cap_scratch.clear();
    cap_scratch.resize(cols, 0.0);
    // Plane views hoisted into a stack buffer (no per-call allocation
    // for realistic activation counts; the paper tops out at 32 rows).
    let mut planes_buf = [(&[][..], &[][..], &[][..], 0.0f64); MAX_STACK_ROWS];
    let mut planes_vec: Vec<RowPlanes<'_>> = Vec::new();
    let planes = hoist_row_planes(
        subarray,
        rows_weights,
        cols,
        &mut planes_buf,
        &mut planes_vec,
    );
    deltas_blocks_dispatch(
        planes,
        transfer_amp,
        assertion,
        beta,
        &mut out[..],
        &mut cap_scratch[..],
    );
}

/// Row count the kernel wrappers hoist plane views for on the stack;
/// larger activations (never seen in practice — the paper tops out at
/// 32 simultaneous rows) fall back to a heap buffer.
const MAX_STACK_ROWS: usize = 64;

/// Hoists each activated row's plane views once, into `buf` when the
/// activation fits ([`MAX_STACK_ROWS`]) and into `overflow` otherwise,
/// so the accessor's bounds check and range computation run per row,
/// not per (row, block).
#[inline]
fn hoist_row_planes<'a>(
    subarray: &'a Subarray,
    rows_weights: &[(u32, f64)],
    cols: usize,
    buf: &'a mut [RowPlanes<'a>; MAX_STACK_ROWS],
    overflow: &'a mut Vec<RowPlanes<'a>>,
) -> &'a [RowPlanes<'a>] {
    let view = |&(row, weight): &(u32, f64)| {
        (
            &subarray.row_voltages(row)[..cols],
            &subarray.row_cap_factors(row)[..cols],
            &subarray.row_strength_factors(row)[..cols],
            weight,
        )
    };
    if rows_weights.len() <= MAX_STACK_ROWS {
        for (slot, rw) in buf.iter_mut().zip(rows_weights) {
            *slot = view(rw);
        }
        &buf[..rows_weights.len()]
    } else {
        overflow.extend(rows_weights.iter().map(view));
        overflow
    }
}

/// Batch-invariant plane views for the trial-batched kernel: the row's
/// capacitance and strength slices plus its weight (voltages come from
/// the per-trial snapshots instead).
type BatchPlanes<'a> = (&'a [f32], &'a [f32], f64);

/// Portable body of the trial-batched kernel; see
/// [`bitline_deltas_batch_into`] for the layout contract.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn deltas_batch_blocks(
    planes: &[BatchPlanes<'_>],
    voltages: &[f32],
    trials: usize,
    cols: usize,
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
    out: &mut [f64],
    cap_sum: &mut [f64],
) {
    let n_rows = planes.len();
    // The per-row `k = cap · xfer` factors for one column block: the
    // batch-invariant part of the kernel, computed once per block and
    // reused by every trial. `n_rows · BATCH_TILE` f64s stay
    // cache-resident while the trials sweep the block. Full blocks run
    // with the constant width so the inlined block body specializes
    // (fully unrolled sweeps, no loop guards); only the last partial
    // block pays the runtime-width form.
    let mut k_rows = vec![0.0f64; n_rows * BATCH_TILE];
    let mut base = 0;
    while base + BATCH_TILE <= cols {
        #[rustfmt::skip]
        deltas_batch_one_block(
            planes, voltages, trials, cols, transfer_amp, assertion, beta,
            base, BATCH_TILE, &mut k_rows, out, cap_sum,
        );
        base += BATCH_TILE;
    }
    if base < cols {
        #[rustfmt::skip]
        deltas_batch_one_block(
            planes, voltages, trials, cols, transfer_amp, assertion, beta,
            base, cols - base, &mut k_rows, out, cap_sum,
        );
    }
}

/// One [`BATCH_TILE`]-wide (or tail-width `w`) column block of
/// [`deltas_batch_blocks`]; `#[inline(always)]` so the constant-width
/// call site compiles to straight-line vector code.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn deltas_batch_one_block(
    planes: &[BatchPlanes<'_>],
    voltages: &[f32],
    trials: usize,
    cols: usize,
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
    base: usize,
    w: usize,
    k_rows: &mut [f64],
    out: &mut [f64],
    cap_sum: &mut [f64],
) {
    debug_assert!(w <= BATCH_TILE);
    let n_rows = planes.len();
    let mut acc = [0.0f64; BATCH_TILE];
    let mut denom = [0.0f64; BATCH_TILE];
    {
        for (i, &(caps, strengths, weight)) in planes.iter().enumerate() {
            let caps = &caps[base..base + w];
            let strengths = &strengths[base..base + w];
            let cap_acc = &mut cap_sum[base..base + w];
            let k = &mut k_rows[i * BATCH_TILE..][..w];
            for c in 0..w {
                let cap = caps[c] as f64 * weight;
                let xfer = (1.0 + (strengths[c] as f64 - 1.0) * transfer_amp).max(0.0);
                k[c] = cap * xfer;
                cap_acc[c] += cap;
            }
        }
        // `β + Σcap` is batch-invariant: computed once per block so each
        // trial's finalize pays only the (bit-identity-mandated) divide.
        for c in 0..w {
            denom[c] = beta + cap_sum[base + c];
        }
        // Trial-outer sweeps: each trial walks its own voltage
        // snapshot (L1-resident) row by row; rows come four at a time
        // so the accumulator is loaded and stored once per four rows.
        // The nested `(((a + x0) + x1) + x2) + x3` shape is exactly the
        // reference's per-column `a += x0; a += x1; ...` row order.
        for trial in 0..trials {
            acc[..w].fill(0.0);
            let at = &mut acc[..w];
            let mut i = 0;
            while i + 4 <= n_rows {
                let k0 = &k_rows[i * BATCH_TILE..][..w];
                let k1 = &k_rows[(i + 1) * BATCH_TILE..][..w];
                let k2 = &k_rows[(i + 2) * BATCH_TILE..][..w];
                let k3 = &k_rows[(i + 3) * BATCH_TILE..][..w];
                let v0 = &voltages[(trial * n_rows + i) * cols + base..][..w];
                let v1 = &voltages[(trial * n_rows + i + 1) * cols + base..][..w];
                let v2 = &voltages[(trial * n_rows + i + 2) * cols + base..][..w];
                let v3 = &voltages[(trial * n_rows + i + 3) * cols + base..][..w];
                for c in 0..w {
                    at[c] = (((at[c] + k0[c] * (v0[c] as f64 - 0.5))
                        + k1[c] * (v1[c] as f64 - 0.5))
                        + k2[c] * (v2[c] as f64 - 0.5))
                        + k3[c] * (v3[c] as f64 - 0.5);
                }
                i += 4;
            }
            while i < n_rows {
                let k0 = &k_rows[i * BATCH_TILE..][..w];
                let volts = &voltages[(trial * n_rows + i) * cols + base..][..w];
                for c in 0..w {
                    at[c] += k0[c] * (volts[c] as f64 - 0.5);
                }
                i += 1;
            }
            let num = &mut out[trial * cols + base..][..w];
            for c in 0..w {
                num[c] = assertion * at[c] / denom[c];
            }
        }
    }
}

/// AVX2-compiled twin of [`deltas_batch_blocks`]; bit-identical, see
/// [`deltas_blocks_avx2`].
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn deltas_batch_blocks_avx2(
    planes: &[BatchPlanes<'_>],
    voltages: &[f32],
    trials: usize,
    cols: usize,
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
    out: &mut [f64],
    cap_sum: &mut [f64],
) {
    deltas_batch_blocks(
        planes,
        voltages,
        trials,
        cols,
        transfer_amp,
        assertion,
        beta,
        out,
        cap_sum,
    )
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn deltas_batch_blocks_dispatch(
    planes: &[BatchPlanes<'_>],
    voltages: &[f32],
    trials: usize,
    cols: usize,
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
    out: &mut [f64],
    cap_sum: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was verified at runtime on the line
        // above; the feature gate changes code generation only, not
        // semantics.
        return unsafe {
            deltas_batch_blocks_avx2(
                planes,
                voltages,
                trials,
                cols,
                transfer_amp,
                assertion,
                beta,
                out,
                cap_sum,
            )
        };
    }
    deltas_batch_blocks(
        planes,
        voltages,
        trials,
        cols,
        transfer_amp,
        assertion,
        beta,
        out,
        cap_sum,
    )
}

/// Trial-batched [`bitline_deltas_into`]: evaluates the charge-sharing
/// kernel for `trials` voltage snapshots of the same rows in one pass.
///
/// `voltages` holds the per-trial snapshots, trial-major then row-major
/// (`voltages[(t · R + i) · cols + c]` is trial `t`'s voltage of
/// `rows_weights[i]` at column `c`, `R = rows_weights.len()`); `out`
/// receives the per-trial deltas in the same trial-major layout
/// (`trials · cols` values). `cap_scratch` receives the per-column
/// capacitance sums, which — like the transfer factors — depend only on
/// the subarray's variation planes, not on the written data. That is
/// the point of batching: the capacitance/strength traversal, the
/// `cap · xfer` products, and the denominators are computed **once** and
/// amortized over every trial, so a batch of N data redraws costs one
/// plane walk plus N cheap multiply-add sweeps.
///
/// Bit identity: per (trial, column) the additions run in the row order
/// of `rows_weights` with the scalar reference's expression shapes
/// (`cap * xfer` is the scalar kernel's own left-assoc prefix), so each
/// trial's output equals a [`bitline_deltas_into_scalar`] call on that
/// trial's snapshot, bit for bit — proptest-enforced.
#[allow(clippy::too_many_arguments)]
pub fn bitline_deltas_batch_into(
    subarray: &Subarray,
    rows_weights: &[(u32, f64)],
    voltages: &[f32],
    trials: usize,
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
    cap_scratch: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    let cols = subarray.cols() as usize;
    let n_rows = rows_weights.len();
    assert_eq!(
        voltages.len(),
        trials * n_rows * cols,
        "voltage snapshot shape mismatch"
    );
    out.clear();
    out.resize(trials * cols, 0.0);
    cap_scratch.clear();
    cap_scratch.resize(cols, 0.0);
    // One accessor call per row for the batch-invariant variation planes.
    let planes: Vec<BatchPlanes<'_>> = rows_weights
        .iter()
        .map(|&(row, weight)| {
            (
                &subarray.row_cap_factors(row)[..cols],
                &subarray.row_strength_factors(row)[..cols],
                weight,
            )
        })
        .collect();
    deltas_batch_blocks_dispatch(
        &planes,
        voltages,
        trials,
        cols,
        transfer_amp,
        assertion,
        beta,
        &mut out[..],
        &mut cap_scratch[..],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use simra_dram::subarray::VariationParams;
    use simra_dram::BitRow;

    fn ideal_subarray() -> Subarray {
        // No variation: analytic expectations hold exactly.
        let v = VariationParams {
            cell_cap_sigma: 0.0,
            cell_strength_sigma: 0.0,
            sense_offset_sigma: 0.0,
        };
        Subarray::new(8, 16, v, 0)
    }

    #[test]
    fn single_charged_cell_perturbation() {
        let mut sa = ideal_subarray();
        sa.write_row(0, &BitRow::ones(16)).unwrap();
        let d = bitline_deltas(&sa, &[(0, 1.0)], 6.8, 1.0, 6.0);
        for &x in &d {
            assert!((x - 0.5 / 7.0).abs() < 1e-9, "got {x}");
        }
    }

    #[test]
    fn discharged_cell_perturbs_negative() {
        let sa = ideal_subarray(); // all cells start at 0 V
        let d = bitline_deltas(&sa, &[(0, 1.0)], 6.8, 1.0, 6.0);
        assert!(d.iter().all(|&x| (x + 0.5 / 7.0).abs() < 1e-9));
    }

    #[test]
    fn balanced_rows_cancel() {
        let mut sa = ideal_subarray();
        sa.write_row(0, &BitRow::ones(16)).unwrap();
        sa.write_row(1, &BitRow::zeros(16)).unwrap();
        let d = bitline_deltas(&sa, &[(0, 1.0), (1, 1.0)], 6.8, 1.0, 6.0);
        assert!(d.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn majority_sign_wins() {
        let mut sa = ideal_subarray();
        sa.write_row(0, &BitRow::ones(16)).unwrap();
        sa.write_row(1, &BitRow::ones(16)).unwrap();
        sa.write_row(2, &BitRow::zeros(16)).unwrap();
        let d = bitline_deltas(&sa, &[(0, 1.0), (1, 1.0), (2, 1.0)], 6.8, 1.0, 6.0);
        assert!(d.iter().all(|&x| x > 0.0));
        // 2 charged − 1 discharged = +0.5/(6+3).
        assert!((d[0] - 0.5 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn overshare_weight_tips_a_tie() {
        let mut sa = ideal_subarray();
        sa.write_row(0, &BitRow::zeros(16)).unwrap();
        sa.write_row(1, &BitRow::ones(16)).unwrap();
        // Equal weights: tie. First row over-sharing: negative wins.
        let d = bitline_deltas(&sa, &[(0, 2.0), (1, 1.0)], 6.8, 1.0, 6.0);
        assert!(d.iter().all(|&x| x < 0.0));
    }

    #[test]
    fn neutral_cells_contribute_nothing() {
        let mut sa = ideal_subarray();
        sa.write_row(0, &BitRow::ones(16)).unwrap();
        sa.set_row_voltage(1, 0.5).unwrap();
        let with_neutral = bitline_deltas(&sa, &[(0, 1.0), (1, 1.0)], 6.8, 1.0, 6.0);
        // Numerator unchanged, denominator grows: smaller but same sign.
        assert!(with_neutral.iter().all(|&x| x > 0.0));
        assert!((with_neutral[0] - 0.5 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let mut sa = Subarray::new(8, 16, VariationParams::default(), 77);
        sa.write_row(0, &BitRow::ones(16)).unwrap();
        sa.write_row(2, &BitRow::zeros(16)).unwrap();
        let rows = [(0u32, 2.0), (2u32, 1.0), (5u32, 1.0)];
        let reference = bitline_deltas(&sa, &rows, 6.8, 0.97, 6.0);
        let mut cap = vec![99.0; 3]; // stale contents must not leak through
        let mut out = vec![-1.0; 40];
        bitline_deltas_into(&sa, &rows, 6.8, 0.97, 6.0, &mut cap, &mut out);
        assert_eq!(out, reference);
        assert_eq!(cap.len(), 16);
        // Buffers are reusable: a second call with different inputs.
        bitline_deltas_into(&sa, &[(2, 1.0)], 6.8, 1.0, 6.0, &mut cap, &mut out);
        assert_eq!(out, bitline_deltas(&sa, &[(2, 1.0)], 6.8, 1.0, 6.0));
    }

    #[test]
    fn tiled_kernel_matches_the_frozen_scalar_reference() {
        // Widths straddling the tile boundary, including the pathological
        // ones from the issue: 1, 7 (pure tail), 129 (tiles + 1).
        for cols in [1u32, 7, 8, 9, 16, 129] {
            let mut sa = Subarray::new(8, cols, VariationParams::default(), 1234 + cols as u64);
            sa.write_row(0, &BitRow::ones(cols as usize)).unwrap();
            sa.write_row(3, &BitRow::zeros(cols as usize)).unwrap();
            let rows = [(0u32, 1.7), (3u32, 1.0), (6u32, 1.0)];
            let (mut cap_s, mut out_s) = (Vec::new(), Vec::new());
            let (mut cap_v, mut out_v) = (Vec::new(), Vec::new());
            bitline_deltas_into_scalar(&sa, &rows, 4.6, 0.97, 2.5, &mut cap_s, &mut out_s);
            bitline_deltas_into(&sa, &rows, 4.6, 0.97, 2.5, &mut cap_v, &mut out_v);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out_v), bits(&out_s), "cols={cols}");
            assert_eq!(bits(&cap_v), bits(&cap_s), "cols={cols} cap sums");
        }
    }

    #[test]
    fn batched_kernel_matches_scalar_per_trial() {
        for cols in [1u32, 7, 24, 129] {
            let c = cols as usize;
            let mut sa = Subarray::new(8, cols, VariationParams::default(), 99 + cols as u64);
            let rows = [(1u32, 1.3), (4u32, 1.0)];
            // Three trials: three different data states of the same rows.
            let images: [&dyn Fn(usize) -> bool; 3] = [&|_| true, &|_| false, &|col| col % 3 == 0];
            let mut voltages = Vec::new();
            let mut per_trial_scalar = Vec::new();
            for img in images {
                for (i, &(row, _)) in rows.iter().enumerate() {
                    sa.write_row(row, &BitRow::from_bits((0..c).map(|x| img(x + i))))
                        .unwrap();
                }
                for &(row, _) in &rows {
                    voltages.extend_from_slice(&sa.row_voltages(row)[..c]);
                }
                let (mut cap, mut out) = (Vec::new(), Vec::new());
                bitline_deltas_into_scalar(&sa, &rows, 4.6, 0.97, 2.5, &mut cap, &mut out);
                per_trial_scalar.push(out);
            }
            let (mut cap_b, mut out_b) = (Vec::new(), Vec::new());
            bitline_deltas_batch_into(
                &sa, &rows, &voltages, 3, 4.6, 0.97, 2.5, &mut cap_b, &mut out_b,
            );
            assert_eq!(out_b.len(), 3 * c);
            for (t, scalar) in per_trial_scalar.iter().enumerate() {
                let batch = &out_b[t * c..(t + 1) * c];
                for (col, (b, s)) in batch.iter().zip(scalar).enumerate() {
                    assert_eq!(b.to_bits(), s.to_bits(), "cols={cols} trial={t} col={col}");
                }
            }
        }
    }

    #[test]
    fn assertion_scales_linearly() {
        let mut sa = ideal_subarray();
        sa.write_row(0, &BitRow::ones(16)).unwrap();
        let full = bitline_deltas(&sa, &[(0, 1.0)], 6.8, 1.0, 6.0);
        let weak = bitline_deltas(&sa, &[(0, 1.0)], 6.8, 0.9, 6.0);
        assert!((weak[0] / full[0] - 0.9).abs() < 1e-9);
    }
}
