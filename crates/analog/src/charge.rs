//! Bitline charge-sharing arithmetic.

use simra_dram::Subarray;

/// Computes the normalized bitline perturbation on every column when the
/// given `(local_row, weight)` pairs are simultaneously connected.
///
/// Per column `c`:
///
/// ```text
/// ΔV_c = assertion · Σ_i w_i · cap_i · xfer_i · (v_i − ½)  /  (β + Σ_i w_i · cap_i)
/// ```
///
/// `xfer_i = max(0, 1 + (strength_i − 1) · transfer_amp)` amplifies the
/// per-cell access-strength spread: in the violated-timing window the
/// charge transfer never settles, so cells with weak transistors
/// contribute disproportionately little (this is the dominant systematic
/// variation behind "unstable" PUD cells).
///
/// A fully charged nominal cell in a single-row activation perturbs the
/// bitline by `+0.5 / (β + 1)` — with the calibrated `β = 6` that is about
/// 86 mV at VDD = 1.2 V, matching the scale real sense amplifiers see.
///
/// Allocates the result; the hot path is [`bitline_deltas_into`], which
/// reuses caller-owned buffers.
pub fn bitline_deltas(
    subarray: &Subarray,
    rows_weights: &[(u32, f64)],
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
) -> Vec<f64> {
    let mut cap_scratch = Vec::new();
    let mut out = Vec::new();
    bitline_deltas_into(
        subarray,
        rows_weights,
        transfer_amp,
        assertion,
        beta,
        &mut cap_scratch,
        &mut out,
    );
    out
}

/// [`bitline_deltas`] into reusable buffers: `out` receives the per-column
/// perturbations, `cap_scratch` accumulates the per-column capacitance sum.
/// Both are cleared and resized; capacity is reused across calls.
///
/// The accumulation runs row-major over the subarray's contiguous voltage
/// and variation slices — one bounds check per row, unit-stride inner
/// loops the compiler can vectorize. Per-column addition order is the row
/// order of `rows_weights`, identical to the column-major formulation, so
/// results are bit-identical.
#[allow(clippy::too_many_arguments)]
pub fn bitline_deltas_into(
    subarray: &Subarray,
    rows_weights: &[(u32, f64)],
    transfer_amp: f64,
    assertion: f64,
    beta: f64,
    cap_scratch: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    let cols = subarray.cols() as usize;
    out.clear();
    out.resize(cols, 0.0);
    cap_scratch.clear();
    cap_scratch.resize(cols, 0.0);
    let num = &mut out[..];
    let cap_sum = &mut cap_scratch[..];
    for &(row, weight) in rows_weights {
        let volts = &subarray.row_voltages(row)[..cols];
        let caps = &subarray.row_cap_factors(row)[..cols];
        let strengths = &subarray.row_strength_factors(row)[..cols];
        for c in 0..cols {
            let cap = caps[c] as f64 * weight;
            let xfer = (1.0 + (strengths[c] as f64 - 1.0) * transfer_amp).max(0.0);
            num[c] += cap * xfer * (volts[c] as f64 - 0.5);
            cap_sum[c] += cap;
        }
    }
    for c in 0..cols {
        num[c] = assertion * num[c] / (beta + cap_sum[c]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simra_dram::subarray::VariationParams;
    use simra_dram::BitRow;

    fn ideal_subarray() -> Subarray {
        // No variation: analytic expectations hold exactly.
        let v = VariationParams {
            cell_cap_sigma: 0.0,
            cell_strength_sigma: 0.0,
            sense_offset_sigma: 0.0,
        };
        Subarray::new(8, 16, v, 0)
    }

    #[test]
    fn single_charged_cell_perturbation() {
        let mut sa = ideal_subarray();
        sa.write_row(0, &BitRow::ones(16)).unwrap();
        let d = bitline_deltas(&sa, &[(0, 1.0)], 6.8, 1.0, 6.0);
        for &x in &d {
            assert!((x - 0.5 / 7.0).abs() < 1e-9, "got {x}");
        }
    }

    #[test]
    fn discharged_cell_perturbs_negative() {
        let sa = ideal_subarray(); // all cells start at 0 V
        let d = bitline_deltas(&sa, &[(0, 1.0)], 6.8, 1.0, 6.0);
        assert!(d.iter().all(|&x| (x + 0.5 / 7.0).abs() < 1e-9));
    }

    #[test]
    fn balanced_rows_cancel() {
        let mut sa = ideal_subarray();
        sa.write_row(0, &BitRow::ones(16)).unwrap();
        sa.write_row(1, &BitRow::zeros(16)).unwrap();
        let d = bitline_deltas(&sa, &[(0, 1.0), (1, 1.0)], 6.8, 1.0, 6.0);
        assert!(d.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn majority_sign_wins() {
        let mut sa = ideal_subarray();
        sa.write_row(0, &BitRow::ones(16)).unwrap();
        sa.write_row(1, &BitRow::ones(16)).unwrap();
        sa.write_row(2, &BitRow::zeros(16)).unwrap();
        let d = bitline_deltas(&sa, &[(0, 1.0), (1, 1.0), (2, 1.0)], 6.8, 1.0, 6.0);
        assert!(d.iter().all(|&x| x > 0.0));
        // 2 charged − 1 discharged = +0.5/(6+3).
        assert!((d[0] - 0.5 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn overshare_weight_tips_a_tie() {
        let mut sa = ideal_subarray();
        sa.write_row(0, &BitRow::zeros(16)).unwrap();
        sa.write_row(1, &BitRow::ones(16)).unwrap();
        // Equal weights: tie. First row over-sharing: negative wins.
        let d = bitline_deltas(&sa, &[(0, 2.0), (1, 1.0)], 6.8, 1.0, 6.0);
        assert!(d.iter().all(|&x| x < 0.0));
    }

    #[test]
    fn neutral_cells_contribute_nothing() {
        let mut sa = ideal_subarray();
        sa.write_row(0, &BitRow::ones(16)).unwrap();
        sa.set_row_voltage(1, 0.5).unwrap();
        let with_neutral = bitline_deltas(&sa, &[(0, 1.0), (1, 1.0)], 6.8, 1.0, 6.0);
        // Numerator unchanged, denominator grows: smaller but same sign.
        assert!(with_neutral.iter().all(|&x| x > 0.0));
        assert!((with_neutral[0] - 0.5 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let mut sa = Subarray::new(8, 16, VariationParams::default(), 77);
        sa.write_row(0, &BitRow::ones(16)).unwrap();
        sa.write_row(2, &BitRow::zeros(16)).unwrap();
        let rows = [(0u32, 2.0), (2u32, 1.0), (5u32, 1.0)];
        let reference = bitline_deltas(&sa, &rows, 6.8, 0.97, 6.0);
        let mut cap = vec![99.0; 3]; // stale contents must not leak through
        let mut out = vec![-1.0; 40];
        bitline_deltas_into(&sa, &rows, 6.8, 0.97, 6.0, &mut cap, &mut out);
        assert_eq!(out, reference);
        assert_eq!(cap.len(), 16);
        // Buffers are reusable: a second call with different inputs.
        bitline_deltas_into(&sa, &[(2, 1.0)], 6.8, 1.0, 6.0, &mut cap, &mut out);
        assert_eq!(out, bitline_deltas(&sa, &[(2, 1.0)], 6.8, 1.0, 6.0));
    }

    #[test]
    fn assertion_scales_linearly() {
        let mut sa = ideal_subarray();
        sa.write_row(0, &BitRow::ones(16)).unwrap();
        let full = bitline_deltas(&sa, &[(0, 1.0)], 6.8, 1.0, 6.0);
        let weak = bitline_deltas(&sa, &[(0, 1.0)], 6.8, 0.9, 6.0);
        assert!((weak[0] / full[0] - 0.9).abs() < 1e-9);
    }
}
