//! Sense amplification: resolution, stability, and survival probability.

use crate::math::phi;
use crate::params::CircuitParams;

/// Probability that a bitline with systematic `margin` toward the correct
/// value resolves correctly in *every one* of `trials` trials, each with
/// Gaussian noise `sigma` and the amplifier's `deadzone`.
///
/// This is the smooth analytic form of the paper's success-rate metric: a
/// cell is "stable" iff it never errs across 10⁴ trials, and the expected
/// fraction of stable cells is the mean of this survival probability.
pub fn survival_probability(margin: f64, deadzone: f64, sigma: f64, trials: u32) -> f64 {
    let p_single = phi((margin - deadzone) / sigma);
    if p_single <= 0.0 {
        return 0.0;
    }
    // Saturated cells (the common case on healthy margins) short-circuit
    // the ln/exp pair: when p_single is exactly 1.0 the long form is
    // (T · ln 1).exp() = 1.0, so the early return is bit-identical.
    if p_single >= 1.0 {
        return 1.0;
    }
    // p^T via exp(T · ln p); ln p underflows gracefully for hopeless cells.
    (trials as f64 * p_single.ln()).exp()
}

/// Deterministic resolution of a bitline: the sign of the perturbation
/// plus the column offset, with the biased-amp tiebreak for Mfr. M parts.
pub fn resolve(delta: f64, offset: f64, noise: f64, biased: bool, bias_direction: bool) -> bool {
    let v = delta + offset + noise;
    if biased && v.abs() < 1e-12 {
        bias_direction
    } else {
        v > 0.0
    }
}

/// Probability that a cell takes a full restore given its total `drive`
/// (restore strength × cell strength × droop), against the calibrated
/// restore threshold, surviving all trials.
pub fn restore_probability(drive: f64, params: &CircuitParams) -> f64 {
    // The restore race is far less noisy than sensing: model it as a
    // threshold with the trial noise scaled down an order of magnitude.
    let sigma = params.trial_noise_sigma;
    survival_probability(
        drive - params.restore_threshold,
        0.0,
        sigma,
        params.effective_trials,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_extremes() {
        // Far above threshold: certain survival.
        assert!(survival_probability(0.5, 0.03, 0.0045, 10_000) > 0.999);
        // Far below: certain death.
        assert!(survival_probability(-0.5, 0.03, 0.0045, 10_000) < 1e-9);
        // Exactly at deadzone: p_single = 0.5, dead after many trials.
        assert!(survival_probability(0.03, 0.03, 0.0045, 10_000) < 1e-9);
    }

    #[test]
    fn survival_monotone_in_margin() {
        let p = |m| survival_probability(m, 0.03, 0.0045, 10_000);
        assert!(p(0.06) > p(0.05));
        assert!(p(0.05) > p(0.045));
    }

    #[test]
    fn saturated_margin_returns_exactly_one() {
        // phi saturates to exactly 1.0 for large arguments; the fast
        // path must return the same exact 1.0 the ln/exp form produced.
        let p = survival_probability(10.0, 0.03, 0.0045, 10_000);
        assert_eq!(p.to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn more_trials_is_harder() {
        let m = 0.042;
        assert!(
            survival_probability(m, 0.03, 0.0045, 100_000)
                < survival_probability(m, 0.03, 0.0045, 1_000)
        );
    }

    #[test]
    fn resolve_sign_and_bias() {
        assert!(resolve(0.01, 0.0, 0.0, false, false));
        assert!(!resolve(-0.01, 0.0, 0.0, false, true));
        // Dead even: unbiased resolves false (v > 0 fails), biased follows
        // the column's bias direction.
        assert!(!resolve(0.0, 0.0, 0.0, false, true));
        assert!(resolve(0.0, 0.0, 0.0, true, true));
        assert!(!resolve(0.0, 0.0, 0.0, true, false));
        // Offset can flip a marginal bitline.
        assert!(!resolve(0.005, -0.01, 0.0, false, false));
    }

    #[test]
    fn restore_probability_thresholds() {
        let p = CircuitParams::calibrated();
        assert!(restore_probability(1.0, &p) > 0.999);
        assert!(restore_probability(0.5, &p) < 1e-9);
    }
}
