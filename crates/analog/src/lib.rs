//! # simra-analog
//!
//! The circuit-level model behind the SiMRA-DRAM reproduction: bitline
//! charge sharing, sense amplification, restore dynamics, and Monte-Carlo
//! process variation. This crate is the stand-in for both the silicon's
//! analog behaviour and the paper's SPICE simulations (§3.5, §7.2).
//!
//! ## Model summary
//!
//! When an APA sequence leaves `N` wordlines asserted, each connected cell
//! shares charge with its bitline. The normalized perturbation on column
//! `c` is a charge-conservation sum:
//!
//! ```text
//! ΔV_c = Σ_i w_i · cap_i · xfer_i · (v_i − ½)  /  (β + Σ_i w_i · cap_i)
//! ```
//!
//! where `β = C_bitline / C_cell`, `w_i` is the per-row contribution weight
//! (the first-activated row over-shares when `t1 + t2` is long — the
//! paper's hypothesis for why MAJX prefers `t1 = 1.5 ns`), and `xfer_i` is
//! a per-cell transfer factor whose variation is *amplified* in PUD mode
//! because the violated-timing charge-sharing window never settles.
//!
//! The sense amplifier resolves `ΔV_c + offset_c + noise` against a
//! dead-zone threshold; cells whose systematic margin clears the
//! noise-quantile of all trials are the paper's "stable" cells, everything
//! else is unstable. Success rates are computed analytically from margins
//! (fast, smooth, deterministic) while functional execution samples noise
//! and commits results back to the cells.
//!
//! All calibration constants live in [`params::CircuitParams::calibrated`]
//! and are validated against the paper's headline numbers by the
//! characterization crate's tests.

pub mod charge;
pub mod engine;
pub mod math;
pub mod montecarlo;
pub mod params;
pub mod sense;

pub use engine::{ApaEngine, EngineCounters, SenseBatch, SenseResult};
pub use params::{CircuitParams, OperatingConditions};
