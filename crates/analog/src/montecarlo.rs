//! The SPICE-equivalent Monte-Carlo study (§3.5, §7.2, Fig. 15).
//!
//! The paper runs LTspice with the Rambus 55 nm array model scaled to
//! 22 nm, varying capacitor and transistor parameters by 10–40 % over 10⁴
//! Monte-Carlo iterations, and reports (a) the bitline perturbation right
//! before sensing for MAJ3(1,1,0) under N-row activation and (b) the MAJ3
//! success rate. This module reproduces both with the same
//! charge-conservation arithmetic as the live engine, standalone from any
//! `Subarray` (the SPICE deck knows nothing of our modelled silicon
//! either).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::math::{fill_standard_normals, standard_normal};
use crate::params::CircuitParams;

/// VDD used to convert normalized perturbations to millivolts in reports.
pub const VDD_VOLTS: f64 = 1.2;

/// Configuration of one Monte-Carlo experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of independent cell sets per (N, variation) point
    /// (the paper uses 1000 sets; Fig. 15 also cites 10⁴ iterations).
    pub sets: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            sets: 1000,
            seed: 0x51CE,
        }
    }
}

/// Distribution summary of the bitline perturbation (in mV) plus the MAJ3
/// success rate for one (N, variation) point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloPoint {
    /// Number of simultaneously activated rows.
    pub n_rows: u32,
    /// Component variation in percent (10–40).
    pub variation_pct: u32,
    /// Mean perturbation (mV).
    pub mean_mv: f64,
    /// First quartile (mV).
    pub q1_mv: f64,
    /// Median (mV).
    pub median_mv: f64,
    /// Third quartile (mV).
    pub q3_mv: f64,
    /// Minimum (mV).
    pub min_mv: f64,
    /// Maximum (mV).
    pub max_mv: f64,
    /// Fraction of sets whose perturbation clears the sensing dead zone in
    /// the correct (positive) direction — the MAJ3 success rate.
    pub success_rate: f64,
}

/// Cell voltages for MAJ3(1, 1, 0) under `n`-row activation: each operand
/// replicated `⌊n/3⌋` times, remainder rows neutral at VDD/2. For `n = 1`
/// a single fully charged cell (the single-row activation baseline box of
/// Fig. 15a).
pub fn maj3_110_voltages(n: u32) -> Vec<f64> {
    if n == 1 {
        return vec![1.0];
    }
    let r = (n / 3) as usize;
    let mut v = Vec::with_capacity(n as usize);
    v.extend(std::iter::repeat_n(1.0, 2 * r)); // operands A = B = 1
    v.extend(std::iter::repeat_n(0.0, r)); // operand C = 0
    v.extend(std::iter::repeat_n(0.5, n as usize - 3 * r)); // neutral
    v
}

/// Sets evaluated together by the batched [`run_point`] path: the normal
/// draws for a whole block are buffered up front and the independent
/// per-set accumulators then run as fixed-width lanes the compiler can
/// vectorize.
const SET_LANES: usize = 8;

/// Runs the Monte-Carlo study for one (N, variation) point.
///
/// Sets are independent, so they are evaluated `SET_LANES` at a time:
/// each block draws its normals into a buffer in the exact scalar order
/// (set-major; capacitor before transistor per voltage) and then sweeps
/// the voltage ladder once with per-set lane accumulators. Bit-identical
/// to the frozen [`run_point_scalar`] — same draws, same per-set
/// accumulation order, same expression shapes — which the proptests in
/// `crates/analog/tests/hotpath_identity.rs` enforce.
pub fn run_point(
    params: &CircuitParams,
    n_rows: u32,
    variation_pct: u32,
    config: MonteCarloConfig,
) -> MonteCarloPoint {
    let voltages = maj3_110_voltages(n_rows);
    let sigma = variation_pct as f64 / 100.0;
    // Distinct stream per point so points are independently reproducible.
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ ((n_rows as u64) << 32) ^ variation_pct as u64);
    // A zero-set study has no distribution to summarise; clamp rather
    // than panic on the degenerate configuration.
    let sets = config.sets.max(1);
    let mut perturbations = Vec::with_capacity(sets);
    let mut successes = 0usize;
    let draws_per_set = 2 * voltages.len();
    let mut normals = vec![0.0f64; draws_per_set * SET_LANES];
    let mut base = 0;
    while base < sets {
        let width = SET_LANES.min(sets - base);
        let block = &mut normals[..draws_per_set * width];
        fill_standard_normals(&mut rng, block);
        let mut num = [0.0f64; SET_LANES];
        let mut cap_sum = [0.0f64; SET_LANES];
        for (i, &v) in voltages.iter().enumerate() {
            for (lane, (num, cap_sum)) in num.iter_mut().zip(&mut cap_sum).enumerate().take(width) {
                // Capacitor and transistor parameters each varied by
                // ±sigma, drawn in the scalar order within the lane.
                let z_cap = block[lane * draws_per_set + 2 * i];
                let z_xfer = block[lane * draws_per_set + 2 * i + 1];
                let cap = (1.0 + z_cap * sigma).max(0.05);
                let xfer = (1.0 + z_xfer * sigma).max(0.0);
                *num += cap * xfer * (v - 0.5);
                *cap_sum += cap;
            }
        }
        for lane in 0..width {
            let delta = num[lane] / (params.beta + cap_sum[lane]);
            perturbations.push(delta * VDD_VOLTS * 1000.0);
            if delta > params.sense_deadzone {
                successes += 1;
            }
        }
        base += width;
    }
    summarize(n_rows, variation_pct, perturbations, successes, sets)
}

/// Frozen scalar reference for [`run_point`]: the pre-batching set loop,
/// kept verbatim as the bit-identity contract of the vectorized path.
pub fn run_point_scalar(
    params: &CircuitParams,
    n_rows: u32,
    variation_pct: u32,
    config: MonteCarloConfig,
) -> MonteCarloPoint {
    let voltages = maj3_110_voltages(n_rows);
    let sigma = variation_pct as f64 / 100.0;
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ ((n_rows as u64) << 32) ^ variation_pct as u64);
    let sets = config.sets.max(1);
    let mut perturbations = Vec::with_capacity(sets);
    let mut successes = 0usize;
    for _ in 0..sets {
        let mut num = 0.0;
        let mut cap_sum = 0.0;
        for &v in &voltages {
            // Capacitor and transistor parameters each varied by ±sigma.
            let cap = (1.0 + standard_normal(&mut rng) * sigma).max(0.05);
            let xfer = (1.0 + standard_normal(&mut rng) * sigma).max(0.0);
            num += cap * xfer * (v - 0.5);
            cap_sum += cap;
        }
        let delta = num / (params.beta + cap_sum);
        perturbations.push(delta * VDD_VOLTS * 1000.0);
        if delta > params.sense_deadzone {
            successes += 1;
        }
    }
    summarize(n_rows, variation_pct, perturbations, successes, sets)
}

/// Shared distribution summary of a point's perturbation samples.
fn summarize(
    n_rows: u32,
    variation_pct: u32,
    mut perturbations: Vec<f64>,
    successes: usize,
    sets: usize,
) -> MonteCarloPoint {
    perturbations.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        let idx = ((perturbations.len() - 1) as f64 * p).round() as usize;
        perturbations[idx]
    };
    MonteCarloPoint {
        n_rows,
        variation_pct,
        mean_mv: perturbations.iter().sum::<f64>() / perturbations.len() as f64,
        q1_mv: q(0.25),
        median_mv: q(0.5),
        q3_mv: q(0.75),
        min_mv: perturbations[0],
        max_mv: *perturbations.last().expect("sets >= 1 guarantees a sample"),
        success_rate: successes as f64 / sets as f64,
    }
}

/// Runs the full Fig. 15 grid: N ∈ {1, 4, 8, 16, 32} ×
/// variation ∈ {10, 20, 30, 40} %.
pub fn run_fig15(params: &CircuitParams, config: MonteCarloConfig) -> Vec<MonteCarloPoint> {
    let mut out = Vec::new();
    for &n in &[1u32, 4, 8, 16, 32] {
        for &pct in &[10u32, 20, 30, 40] {
            out.push(run_point(params, n, pct, config));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_layout_matches_replication_rule() {
        // N = 32 ⇒ 10 copies of each of 3 operands + 2 neutral rows.
        let v = maj3_110_voltages(32);
        assert_eq!(v.len(), 32);
        assert_eq!(v.iter().filter(|x| **x == 1.0).count(), 20);
        assert_eq!(v.iter().filter(|x| **x == 0.0).count(), 10);
        assert_eq!(v.iter().filter(|x| **x == 0.5).count(), 2);
        // N = 4 ⇒ one copy each + 1 neutral.
        let v4 = maj3_110_voltages(4);
        assert_eq!(v4.iter().filter(|x| **x == 0.5).count(), 1);
    }

    #[test]
    fn perturbation_grows_with_n() {
        let p = CircuitParams::calibrated();
        let cfg = MonteCarloConfig { sets: 400, seed: 7 };
        let p4 = run_point(&p, 4, 20, cfg);
        let p32 = run_point(&p, 32, 20, cfg);
        assert!(
            p32.mean_mv > p4.mean_mv * 1.5,
            "{} vs {}",
            p32.mean_mv,
            p4.mean_mv
        );
        // Paper: 32-row has ~159 % higher perturbation than 4-row; with the
        // calibrated β the model lands at ~+90 % (same direction, smaller
        // factor — recorded in EXPERIMENTS.md).
        let gain = p32.mean_mv / p4.mean_mv - 1.0;
        assert!(gain > 0.5 && gain < 2.5, "gain {gain}");
    }

    #[test]
    fn success_collapses_with_variation_at_n4_but_not_n32() {
        let p = CircuitParams::calibrated();
        let cfg = MonteCarloConfig { sets: 600, seed: 9 };
        let n4_low = run_point(&p, 4, 10, cfg).success_rate;
        let n4_high = run_point(&p, 4, 40, cfg).success_rate;
        let n32_low = run_point(&p, 32, 10, cfg).success_rate;
        let n32_high = run_point(&p, 32, 40, cfg).success_rate;
        assert!(
            n4_low - n4_high > 0.1,
            "N=4 should degrade: {n4_low} → {n4_high}"
        );
        assert!(
            n32_low - n32_high < 0.02,
            "N=32 should hold: {n32_low} → {n32_high}"
        );
        assert!(n32_high > 0.97);
    }

    #[test]
    fn grid_covers_the_figure() {
        let p = CircuitParams::calibrated();
        let pts = run_fig15(&p, MonteCarloConfig { sets: 50, seed: 1 });
        assert_eq!(pts.len(), 20);
    }

    #[test]
    fn points_are_reproducible() {
        let p = CircuitParams::calibrated();
        let cfg = MonteCarloConfig { sets: 100, seed: 5 };
        assert_eq!(run_point(&p, 8, 20, cfg), run_point(&p, 8, 20, cfg));
    }

    #[test]
    fn batched_point_matches_the_frozen_scalar_reference() {
        let p = CircuitParams::calibrated();
        // Set counts straddling the lane width, incl. a partial block.
        for sets in [1usize, 7, 8, 9, 100] {
            let cfg = MonteCarloConfig { sets, seed: 5 };
            for n in [1u32, 4, 32] {
                assert_eq!(
                    run_point(&p, n, 30, cfg),
                    run_point_scalar(&p, n, 30, cfg),
                    "sets={sets} n={n}"
                );
            }
        }
    }

    #[test]
    fn quartiles_are_ordered() {
        let p = CircuitParams::calibrated();
        let pt = run_point(&p, 16, 30, MonteCarloConfig { sets: 500, seed: 2 });
        assert!(pt.min_mv <= pt.q1_mv);
        assert!(pt.q1_mv <= pt.median_mv);
        assert!(pt.median_mv <= pt.q3_mv);
        assert!(pt.q3_mv <= pt.max_mv);
    }
}
