//! The SPICE-equivalent Monte-Carlo study (§3.5, §7.2, Fig. 15).
//!
//! The paper runs LTspice with the Rambus 55 nm array model scaled to
//! 22 nm, varying capacitor and transistor parameters by 10–40 % over 10⁴
//! Monte-Carlo iterations, and reports (a) the bitline perturbation right
//! before sensing for MAJ3(1,1,0) under N-row activation and (b) the MAJ3
//! success rate. This module reproduces both with the same
//! charge-conservation arithmetic as the live engine, standalone from any
//! `Subarray` (the SPICE deck knows nothing of our modelled silicon
//! either).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::math::{fill_standard_normals, standard_normal};
use crate::params::CircuitParams;

/// VDD used to convert normalized perturbations to millivolts in reports.
pub const VDD_VOLTS: f64 = 1.2;

/// Configuration of one Monte-Carlo experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of independent cell sets per (N, variation) point
    /// (the paper uses 1000 sets; Fig. 15 also cites 10⁴ iterations).
    pub sets: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            sets: 1000,
            seed: 0x51CE,
        }
    }
}

/// Distribution summary of the bitline perturbation (in mV) plus the MAJ3
/// success rate for one (N, variation) point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloPoint {
    /// Number of simultaneously activated rows.
    pub n_rows: u32,
    /// Component variation in percent (10–40).
    pub variation_pct: u32,
    /// Mean perturbation (mV).
    pub mean_mv: f64,
    /// First quartile (mV).
    pub q1_mv: f64,
    /// Median (mV).
    pub median_mv: f64,
    /// Third quartile (mV).
    pub q3_mv: f64,
    /// Minimum (mV).
    pub min_mv: f64,
    /// Maximum (mV).
    pub max_mv: f64,
    /// Fraction of sets whose perturbation clears the sensing dead zone in
    /// the correct (positive) direction — the MAJ3 success rate.
    pub success_rate: f64,
}

/// Cell voltages for MAJ3(1, 1, 0) under `n`-row activation: each operand
/// replicated `⌊n/3⌋` times, remainder rows neutral at VDD/2. For `n = 1`
/// a single fully charged cell (the single-row activation baseline box of
/// Fig. 15a).
pub fn maj3_110_voltages(n: u32) -> Vec<f64> {
    if n == 1 {
        return vec![1.0];
    }
    let r = (n / 3) as usize;
    let mut v = Vec::with_capacity(n as usize);
    v.extend(std::iter::repeat_n(1.0, 2 * r)); // operands A = B = 1
    v.extend(std::iter::repeat_n(0.0, r)); // operand C = 0
    v.extend(std::iter::repeat_n(0.5, n as usize - 3 * r)); // neutral
    v
}

/// Sets evaluated together by the batched [`run_point`] path: the normal
/// draws for a whole block are buffered up front and the independent
/// per-set accumulators then run as fixed-width lanes the compiler can
/// vectorize.
const SET_LANES: usize = 8;

/// Runs the Monte-Carlo study for one (N, variation) point.
///
/// Sets are independent, so they are evaluated `SET_LANES` at a time:
/// each block draws its normals into a buffer in the exact scalar order
/// (set-major; capacitor before transistor per voltage) and then sweeps
/// the voltage ladder once with per-set lane accumulators. Bit-identical
/// to the frozen [`run_point_scalar`] — same draws, same per-set
/// accumulation order, same expression shapes — which the proptests in
/// `crates/analog/tests/hotpath_identity.rs` enforce.
pub fn run_point(
    params: &CircuitParams,
    n_rows: u32,
    variation_pct: u32,
    config: MonteCarloConfig,
) -> MonteCarloPoint {
    let voltages = maj3_110_voltages(n_rows);
    let sigma = variation_pct as f64 / 100.0;
    // Distinct stream per point so points are independently reproducible.
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ ((n_rows as u64) << 32) ^ variation_pct as u64);
    // A zero-set study has no distribution to summarise; clamp rather
    // than panic on the degenerate configuration.
    let sets = config.sets.max(1);
    let mut perturbations = Vec::with_capacity(sets);
    let mut successes = 0usize;
    let draws_per_set = 2 * voltages.len();
    let mut normals = vec![0.0f64; draws_per_set * SET_LANES];
    let mut base = 0;
    while base < sets {
        let width = SET_LANES.min(sets - base);
        let block = &mut normals[..draws_per_set * width];
        fill_standard_normals(&mut rng, block);
        let mut num = [0.0f64; SET_LANES];
        let mut cap_sum = [0.0f64; SET_LANES];
        for (i, &v) in voltages.iter().enumerate() {
            for (lane, (num, cap_sum)) in num.iter_mut().zip(&mut cap_sum).enumerate().take(width) {
                // Capacitor and transistor parameters each varied by
                // ±sigma, drawn in the scalar order within the lane.
                let z_cap = block[lane * draws_per_set + 2 * i];
                let z_xfer = block[lane * draws_per_set + 2 * i + 1];
                let cap = (1.0 + z_cap * sigma).max(0.05);
                let xfer = (1.0 + z_xfer * sigma).max(0.0);
                *num += cap * xfer * (v - 0.5);
                *cap_sum += cap;
            }
        }
        for lane in 0..width {
            let delta = num[lane] / (params.beta + cap_sum[lane]);
            perturbations.push(delta * VDD_VOLTS * 1000.0);
            if delta > params.sense_deadzone {
                successes += 1;
            }
        }
        base += width;
    }
    summarize(n_rows, variation_pct, perturbations, successes, sets)
}

/// Frozen scalar reference for [`run_point`]: the pre-batching set loop,
/// kept verbatim as the bit-identity contract of the vectorized path.
pub fn run_point_scalar(
    params: &CircuitParams,
    n_rows: u32,
    variation_pct: u32,
    config: MonteCarloConfig,
) -> MonteCarloPoint {
    let voltages = maj3_110_voltages(n_rows);
    let sigma = variation_pct as f64 / 100.0;
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ ((n_rows as u64) << 32) ^ variation_pct as u64);
    let sets = config.sets.max(1);
    let mut perturbations = Vec::with_capacity(sets);
    let mut successes = 0usize;
    for _ in 0..sets {
        let mut num = 0.0;
        let mut cap_sum = 0.0;
        for &v in &voltages {
            // Capacitor and transistor parameters each varied by ±sigma.
            let cap = (1.0 + standard_normal(&mut rng) * sigma).max(0.05);
            let xfer = (1.0 + standard_normal(&mut rng) * sigma).max(0.0);
            num += cap * xfer * (v - 0.5);
            cap_sum += cap;
        }
        let delta = num / (params.beta + cap_sum);
        perturbations.push(delta * VDD_VOLTS * 1000.0);
        if delta > params.sense_deadzone {
            successes += 1;
        }
    }
    summarize(n_rows, variation_pct, perturbations, successes, sets)
}

/// Shared distribution summary of a point's perturbation samples.
fn summarize(
    n_rows: u32,
    variation_pct: u32,
    mut perturbations: Vec<f64>,
    successes: usize,
    sets: usize,
) -> MonteCarloPoint {
    perturbations.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        let idx = ((perturbations.len() - 1) as f64 * p).round() as usize;
        perturbations[idx]
    };
    MonteCarloPoint {
        n_rows,
        variation_pct,
        mean_mv: perturbations.iter().sum::<f64>() / perturbations.len() as f64,
        q1_mv: q(0.25),
        median_mv: q(0.5),
        q3_mv: q(0.75),
        min_mv: perturbations[0],
        max_mv: *perturbations.last().expect("sets >= 1 guarantees a sample"),
        success_rate: successes as f64 / sets as f64,
    }
}

/// Runs the full Fig. 15 grid: N ∈ {1, 4, 8, 16, 32} ×
/// variation ∈ {10, 20, 30, 40} %.
pub fn run_fig15(params: &CircuitParams, config: MonteCarloConfig) -> Vec<MonteCarloPoint> {
    let mut out = Vec::new();
    for &n in &[1u32, 4, 8, 16, 32] {
        for &pct in &[10u32, 20, 30, 40] {
            out.push(run_point(params, n, pct, config));
        }
    }
    out
}

/// The z value of a two-sided 95 % confidence interval — the default
/// confidence level of the hybrid backend's sequential early-stop rule.
pub const Z_95: f64 = 1.959_963_984_540_054;

/// Wilson score interval for `successes` out of `trials` Bernoulli
/// draws at critical value `z` (e.g. [`Z_95`]).
///
/// Unlike the naive Wald interval, the Wilson interval stays inside
/// `[0, 1]` and behaves sensibly at the extremes (all successes / all
/// failures), which is exactly where the characterization spends most
/// of its trials. Weighted (fractional) counts are accepted: a trial
/// that reports a success *fraction* over `w` columns contributes
/// `fraction · w` successes out of `w` pseudo-trials.
///
/// With `trials == 0` the interval is the vacuous `(0, 1)` — never NaN
/// — so callers can evaluate the rule before the first observation.
pub fn wilson_interval(successes: f64, trials: f64, z: f64) -> (f64, f64) {
    if trials.is_nan() || trials <= 0.0 {
        return (0.0, 1.0);
    }
    let n = trials;
    let p = (successes / n).clamp(0.0, 1.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z / denom * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Half the width of [`wilson_interval`] — the convergence measure of
/// the sequential early-stop rule (`0.5` while no trials were observed).
pub fn wilson_half_width(successes: f64, trials: f64, z: f64) -> f64 {
    let (lo, hi) = wilson_interval(successes, trials, z);
    (hi - lo) / 2.0
}

/// A sequential success-rate estimate over weighted Bernoulli evidence:
/// the accumulator behind the hybrid backend's per-point early-stop
/// rule. Every update is a success *fraction* with a weight (the
/// effective independent-column count of one analog trial); the
/// estimate exposes its Wilson interval and the three predicates the
/// decision rule combines.
///
/// All methods are NaN-free at zero observations: the mean defaults to
/// the midpoint `0.5` and the interval to the vacuous `(0, 1)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SequentialEstimate {
    weighted_successes: f64,
    weighted_trials: f64,
    samples: u32,
}

impl SequentialEstimate {
    /// A fresh estimate with no evidence.
    pub fn new() -> Self {
        SequentialEstimate::default()
    }

    /// Folds in one observed success fraction with `weight`
    /// pseudo-trials. Non-positive weights and non-finite fractions are
    /// ignored (the estimate only ever aggregates real evidence).
    pub fn observe(&mut self, fraction: f64, weight: f64) {
        if weight.is_nan() || weight <= 0.0 || !fraction.is_finite() {
            return;
        }
        self.weighted_successes += fraction.clamp(0.0, 1.0) * weight;
        self.weighted_trials += weight;
        self.samples += 1;
    }

    /// Number of observations folded in (unweighted).
    pub fn samples(&self) -> u32 {
        self.samples
    }

    /// Point estimate of the success rate; `0.5` (the interval
    /// midpoint) while no evidence was observed.
    pub fn mean(&self) -> f64 {
        if self.weighted_trials > 0.0 {
            (self.weighted_successes / self.weighted_trials).clamp(0.0, 1.0)
        } else {
            0.5
        }
    }

    /// Wilson score interval of the evidence at critical value `z`.
    pub fn interval(&self, z: f64) -> (f64, f64) {
        wilson_interval(self.weighted_successes, self.weighted_trials, z)
    }

    /// Half-width of [`SequentialEstimate::interval`].
    pub fn half_width(&self, z: f64) -> f64 {
        wilson_half_width(self.weighted_successes, self.weighted_trials, z)
    }

    /// Whether the estimate has converged: at least one observation and
    /// an interval half-width of at most `epsilon`.
    pub fn converged(&self, epsilon: f64, z: f64) -> bool {
        self.samples > 0 && self.half_width(z) <= epsilon
    }

    /// Whether the interval is decisively clear of every threshold in
    /// `thresholds` — no threshold falls inside the (closed) interval.
    /// Vacuously true for an empty threshold list.
    pub fn clear_of(&self, thresholds: &[f64], z: f64) -> bool {
        let (lo, hi) = self.interval(z);
        thresholds.iter().all(|&t| t < lo || t > hi)
    }

    /// Whether an external probability `p` (e.g. a calibrated table
    /// entry) is consistent with the evidence: inside the interval
    /// widened by `slack` on both sides. A non-finite `p` is never
    /// consistent.
    pub fn consistent_with(&self, p: f64, slack: f64, z: f64) -> bool {
        if !p.is_finite() {
            return false;
        }
        let (lo, hi) = self.interval(z);
        p >= lo - slack && p <= hi + slack
    }

    /// Posterior mean blending the evidence with a prior probability of
    /// weight `prior_weight` pseudo-trials — the answer a decided point
    /// reports: anchored to the observed trials, pulled toward the
    /// calibrated table only as far as the prior weight justifies.
    /// With no evidence this is exactly `prior` (NaN-free for finite
    /// inputs); with no prior weight it is the empirical mean.
    pub fn posterior_mean(&self, prior: f64, prior_weight: f64) -> f64 {
        let w0 = prior_weight.max(0.0);
        let denom = w0 + self.weighted_trials;
        if denom <= 0.0 {
            return 0.5;
        }
        ((w0 * prior.clamp(0.0, 1.0) + self.weighted_successes) / denom).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_layout_matches_replication_rule() {
        // N = 32 ⇒ 10 copies of each of 3 operands + 2 neutral rows.
        let v = maj3_110_voltages(32);
        assert_eq!(v.len(), 32);
        assert_eq!(v.iter().filter(|x| **x == 1.0).count(), 20);
        assert_eq!(v.iter().filter(|x| **x == 0.0).count(), 10);
        assert_eq!(v.iter().filter(|x| **x == 0.5).count(), 2);
        // N = 4 ⇒ one copy each + 1 neutral.
        let v4 = maj3_110_voltages(4);
        assert_eq!(v4.iter().filter(|x| **x == 0.5).count(), 1);
    }

    #[test]
    fn perturbation_grows_with_n() {
        let p = CircuitParams::calibrated();
        let cfg = MonteCarloConfig { sets: 400, seed: 7 };
        let p4 = run_point(&p, 4, 20, cfg);
        let p32 = run_point(&p, 32, 20, cfg);
        assert!(
            p32.mean_mv > p4.mean_mv * 1.5,
            "{} vs {}",
            p32.mean_mv,
            p4.mean_mv
        );
        // Paper: 32-row has ~159 % higher perturbation than 4-row; with the
        // calibrated β the model lands at ~+90 % (same direction, smaller
        // factor — recorded in EXPERIMENTS.md).
        let gain = p32.mean_mv / p4.mean_mv - 1.0;
        assert!(gain > 0.5 && gain < 2.5, "gain {gain}");
    }

    #[test]
    fn success_collapses_with_variation_at_n4_but_not_n32() {
        let p = CircuitParams::calibrated();
        let cfg = MonteCarloConfig { sets: 600, seed: 9 };
        let n4_low = run_point(&p, 4, 10, cfg).success_rate;
        let n4_high = run_point(&p, 4, 40, cfg).success_rate;
        let n32_low = run_point(&p, 32, 10, cfg).success_rate;
        let n32_high = run_point(&p, 32, 40, cfg).success_rate;
        assert!(
            n4_low - n4_high > 0.1,
            "N=4 should degrade: {n4_low} → {n4_high}"
        );
        assert!(
            n32_low - n32_high < 0.02,
            "N=32 should hold: {n32_low} → {n32_high}"
        );
        assert!(n32_high > 0.97);
    }

    #[test]
    fn grid_covers_the_figure() {
        let p = CircuitParams::calibrated();
        let pts = run_fig15(&p, MonteCarloConfig { sets: 50, seed: 1 });
        assert_eq!(pts.len(), 20);
    }

    #[test]
    fn points_are_reproducible() {
        let p = CircuitParams::calibrated();
        let cfg = MonteCarloConfig { sets: 100, seed: 5 };
        assert_eq!(run_point(&p, 8, 20, cfg), run_point(&p, 8, 20, cfg));
    }

    #[test]
    fn batched_point_matches_the_frozen_scalar_reference() {
        let p = CircuitParams::calibrated();
        // Set counts straddling the lane width, incl. a partial block.
        for sets in [1usize, 7, 8, 9, 100] {
            let cfg = MonteCarloConfig { sets, seed: 5 };
            for n in [1u32, 4, 32] {
                assert_eq!(
                    run_point(&p, n, 30, cfg),
                    run_point_scalar(&p, n, 30, cfg),
                    "sets={sets} n={n}"
                );
            }
        }
    }

    #[test]
    fn quartiles_are_ordered() {
        let p = CircuitParams::calibrated();
        let pt = run_point(&p, 16, 30, MonteCarloConfig { sets: 500, seed: 2 });
        assert!(pt.min_mv <= pt.q1_mv);
        assert!(pt.q1_mv <= pt.median_mv);
        assert!(pt.median_mv <= pt.q3_mv);
        assert!(pt.q3_mv <= pt.max_mv);
    }

    // --- Wilson interval + sequential early-stop rule ---

    fn assert_close(actual: (f64, f64), expected: (f64, f64), label: &str) {
        assert!(
            (actual.0 - expected.0).abs() < 1e-3 && (actual.1 - expected.1).abs() < 1e-3,
            "{label}: got ({:.4}, {:.4}), expected ({:.4}, {:.4})",
            actual.0,
            actual.1,
            expected.0,
            expected.1
        );
    }

    #[test]
    fn wilson_matches_known_vectors() {
        // Classic textbook values at 95 % confidence.
        assert_close(wilson_interval(5.0, 10.0, Z_95), (0.2366, 0.7634), "5/10");
        assert_close(wilson_interval(0.0, 10.0, Z_95), (0.0000, 0.2775), "0/10");
        assert_close(wilson_interval(10.0, 10.0, Z_95), (0.7225, 1.0000), "10/10");
        assert_close(wilson_interval(9.0, 10.0, Z_95), (0.5958, 0.9821), "9/10");
        assert_close(
            wilson_interval(90.0, 100.0, Z_95),
            (0.8255, 0.9445),
            "90/100",
        );
    }

    #[test]
    fn wilson_is_nan_free_and_bounded_at_the_edges() {
        let (lo, hi) = wilson_interval(0.0, 0.0, Z_95);
        assert_eq!((lo, hi), (0.0, 1.0), "zero trials = vacuous interval");
        assert_eq!(wilson_half_width(0.0, 0.0, Z_95), 0.5);
        // Out-of-range success counts are clamped, never NaN.
        let (lo, hi) = wilson_interval(20.0, 10.0, Z_95);
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi && hi <= 1.0);
        let (lo, hi) = wilson_interval(-5.0, 10.0, Z_95);
        assert!(lo.is_finite() && (0.0..=1.0).contains(&lo) && hi >= lo);
        // Negative trial counts behave like zero.
        assert_eq!(wilson_interval(1.0, -3.0, Z_95), (0.0, 1.0));
    }

    #[test]
    fn wilson_narrows_with_evidence() {
        let mut last = 0.5;
        for n in [10.0, 100.0, 1000.0, 10_000.0] {
            let hw = wilson_half_width(0.9 * n, n, Z_95);
            assert!(hw < last, "half-width must shrink: {hw} at n={n}");
            last = hw;
        }
        assert!(last < 0.01, "10⁴ trials pin p to within a point: {last}");
    }

    #[test]
    fn estimate_starts_vacuous_and_nan_free() {
        let e = SequentialEstimate::new();
        assert_eq!(e.samples(), 0);
        assert_eq!(e.mean(), 0.5);
        assert_eq!(e.interval(Z_95), (0.0, 1.0));
        assert_eq!(e.half_width(Z_95), 0.5);
        assert!(!e.converged(0.02, Z_95), "no evidence is never converged");
        assert!(
            !e.converged(0.6, Z_95),
            "even a huge epsilon needs a sample"
        );
        assert!(e.clear_of(&[], Z_95), "no thresholds = vacuously clear");
        assert!(!e.clear_of(&[0.5], Z_95), "vacuous interval contains 0.5");
        assert!(e.posterior_mean(0.97, 32.0).is_finite());
        assert_eq!(e.posterior_mean(0.97, 32.0), 0.97, "prior only");
        assert_eq!(e.posterior_mean(0.97, 0.0), 0.5, "no prior, no evidence");
    }

    #[test]
    fn estimate_aggregates_weighted_fractions() {
        let mut e = SequentialEstimate::new();
        e.observe(1.0, 128.0);
        e.observe(0.5, 128.0);
        assert_eq!(e.samples(), 2);
        assert!((e.mean() - 0.75).abs() < 1e-12);
        let (lo, hi) = e.interval(Z_95);
        assert_close((lo, hi), wilson_interval(192.0, 256.0, Z_95), "weighted");
        // Ignored updates: zero/negative weight, non-finite fraction.
        e.observe(1.0, 0.0);
        e.observe(1.0, -5.0);
        e.observe(f64::NAN, 128.0);
        assert_eq!(e.samples(), 2, "bogus evidence is not evidence");
    }

    #[test]
    fn convergence_tracks_epsilon() {
        let mut e = SequentialEstimate::new();
        e.observe(1.0, 128.0);
        // All-success at n=128: half-width ≈ 0.0146.
        assert!(e.converged(0.02, Z_95));
        assert!(!e.converged(0.01, Z_95), "tighter epsilon needs more");
        // A transition-region estimate stays unconverged far longer.
        let mut mid = SequentialEstimate::new();
        mid.observe(0.5, 128.0);
        assert!(!mid.converged(0.02, Z_95));
        for _ in 0..20 {
            mid.observe(0.5, 128.0);
        }
        assert!(
            mid.converged(0.02, Z_95),
            "n=2688 at p=0.5: hw {:.4}",
            mid.half_width(Z_95)
        );
    }

    #[test]
    fn threshold_clearance_and_consistency() {
        let mut e = SequentialEstimate::new();
        e.observe(1.0, 128.0);
        e.observe(1.0, 128.0);
        // Interval ≈ (0.985, 1.0): clear of 0.5, not of 0.99.
        assert!(e.clear_of(&[0.5], Z_95));
        assert!(!e.clear_of(&[0.99], Z_95));
        assert!(e.consistent_with(0.999, 0.0, Z_95));
        assert!(e.consistent_with(0.97, 0.02, Z_95), "slack widens the band");
        assert!(
            !e.consistent_with(0.8, 0.02, Z_95),
            "a biased table is caught"
        );
        assert!(!e.consistent_with(f64::NAN, 1.0, Z_95));
    }

    #[test]
    fn posterior_blends_prior_toward_evidence() {
        let mut e = SequentialEstimate::new();
        e.observe(0.2, 128.0);
        e.observe(0.2, 128.0);
        // A badly biased prior (the Obs. 8 MAJ7 case: table says ~0.01,
        // silicon says ~0.2) is pulled to the evidence.
        let p = e.posterior_mean(0.01, 32.0);
        assert!((0.15..=0.2).contains(&p), "posterior {p}");
        // An agreeing prior barely moves the answer.
        let q = e.posterior_mean(0.21, 32.0);
        assert!((q - 0.2).abs() < 0.01, "posterior {q}");
        // Degenerate prior weights are safe.
        assert!((e.posterior_mean(0.5, -1.0) - 0.2).abs() < 1e-12);
    }
}
