//! The APA analog engine: glue between a subarray's stored state and the
//! charge/sense/restore primitives.
//!
//! The engine is deliberately stateless (parameters + operating conditions
//! only); the mutable state lives in the [`Subarray`]. Operations in
//! `simra-core` compose engine calls into full PUD operations.

use std::cell::RefCell;
use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::Rng;

use simra_dram::{ApaTiming, BitRow, Subarray, VendorProfile};
use simra_telemetry::Counter;

use crate::charge::bitline_deltas_into;
use crate::params::{CircuitParams, OperatingConditions};
use crate::sense::{resolve, restore_probability, survival_probability};

/// Telemetry counters for the engine's three analog primitives, reported
/// to the global recorder. Resolved once per process; each recording is
/// a relaxed load (plus one relaxed add when telemetry is enabled), so
/// the multi-million-call sense hot path stays unperturbed when
/// telemetry is off.
struct EngineOpCounters {
    sense: Counter,
    charge_share: Counter,
    commit: Counter,
}

fn op_counters() -> &'static EngineOpCounters {
    static COUNTERS: OnceLock<EngineOpCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let recorder = simra_telemetry::global();
        EngineOpCounters {
            sense: recorder.counter("engine", "sense_ops"),
            charge_share: recorder.counter("engine", "charge_share_ops"),
            commit: recorder.counter("engine", "commit_ops"),
        }
    })
}

/// Reusable per-thread buffers for [`ApaEngine::sense`]: characterization
/// sweeps call it millions of times, and the row-weight list and the
/// capacitance accumulator would otherwise be allocated on every call.
#[derive(Default)]
struct SenseScratch {
    rows_weights: Vec<(u32, f64)>,
    cap_sum: Vec<f64>,
}

thread_local! {
    static SENSE_SCRATCH: RefCell<SenseScratch> = RefCell::new(SenseScratch::default());
}

/// The analog outcome of connecting a set of rows to the bitlines.
#[derive(Debug, Clone, PartialEq)]
pub struct SenseResult {
    /// Normalized bitline perturbation per column (before offsets).
    pub deltas: Vec<f64>,
    /// The value each sense amplifier resolves to with zero trial noise.
    pub resolved: BitRow,
}

/// The analog engine for one module's chips.
#[derive(Debug, Clone, PartialEq)]
pub struct ApaEngine {
    params: CircuitParams,
    cond: OperatingConditions,
    biased_amps: bool,
}

impl ApaEngine {
    /// An engine with explicit parameters.
    pub fn new(params: CircuitParams, cond: OperatingConditions, biased_amps: bool) -> Self {
        ApaEngine {
            params,
            cond,
            biased_amps,
        }
    }

    /// An engine configured for a vendor profile at given conditions.
    pub fn for_profile(profile: &VendorProfile, cond: OperatingConditions) -> Self {
        ApaEngine::new(CircuitParams::calibrated(), cond, profile.biased_sense_amps)
    }

    /// The engine's circuit parameters.
    pub fn params(&self) -> &CircuitParams {
        &self.params
    }

    /// The operating conditions.
    pub fn conditions(&self) -> OperatingConditions {
        self.cond
    }

    /// Whether this part's sense amplifiers are biased (Mfr. M).
    pub fn biased_amps(&self) -> bool {
        self.biased_amps
    }

    /// Senses the simultaneously open `rows` (local indices), where
    /// `first_row` is the APA's `R_F` (it over-shares for long ACT→ACT
    /// windows). Returns per-column perturbations and the zero-noise
    /// resolution.
    pub fn sense(
        &self,
        subarray: &Subarray,
        rows: &[u32],
        first_row: u32,
        timing: ApaTiming,
    ) -> SenseResult {
        let ops = op_counters();
        ops.sense.incr();
        // One charge-share event per simultaneously opened row.
        ops.charge_share.add(rows.len() as u64);
        let first_index = rows.iter().position(|r| *r == first_row).unwrap_or(0);
        let first_weight = self.params.first_row_weight(rows.len(), timing);
        let assertion =
            self.params.assertion_strength(timing, self.cond) * self.group_factor(subarray, rows);
        let mut deltas = Vec::new();
        SENSE_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.rows_weights.clear();
            scratch.rows_weights.extend(
                rows.iter()
                    .enumerate()
                    .map(|(i, &row)| (row, if i == first_index { first_weight } else { 1.0 })),
            );
            bitline_deltas_into(
                subarray,
                &scratch.rows_weights,
                self.params.transfer_amp(rows.len()),
                assertion,
                self.params.beta,
                &mut scratch.cap_sum,
                &mut deltas,
            );
        });
        let offsets = subarray.sense_offsets();
        let biases = subarray.bias_directions();
        let resolved = BitRow::from_bits(deltas.iter().enumerate().map(|(c, &delta)| {
            resolve(delta, offsets[c] as f64, 0.0, self.biased_amps, biases[c])
        }));
        SenseResult { deltas, resolved }
    }

    /// Deterministic multiplicative margin factor for a row group:
    /// groups far from their local wordline drivers / sense-amp stripes
    /// are systematically weaker. Hashed from the group's rows plus the
    /// subarray's silicon so the same group always measures the same.
    fn group_factor(&self, subarray: &Subarray, rows: &[u32]) -> f64 {
        if rows.len() <= 1 {
            return 1.0;
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ subarray.sense_offset(0).to_bits() as u64;
        for &r in rows {
            h = (h ^ (r as u64 + 1)).wrapping_mul(0x1000_0000_01b3);
        }
        // Two splitmix-style uniforms → one Gaussian (Box–Muller).
        let mut z = h;
        let mut next = || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (x ^ (x >> 31)) as f64 / u64::MAX as f64
        };
        let u1 = next().max(f64::EPSILON);
        let u2 = next();
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        // Asymmetric: weak-side outliers are common (long lower whiskers in
        // the paper's box plots) but the strong side saturates — which is
        // why even best-group MAJ9 stays uneconomical (Fig. 16).
        (1.0 + self.params.group_spread_sigma * g).clamp(0.35, 1.28)
    }

    /// Senses with sampled per-trial noise (functional mode; used where a
    /// single concrete trial outcome is needed rather than a statistic).
    pub fn sense_sampled(
        &self,
        subarray: &Subarray,
        rows: &[u32],
        first_row: u32,
        timing: ApaTiming,
        rng: &mut StdRng,
    ) -> SenseResult {
        let mut result = self.sense(subarray, rows, first_row, timing);
        let sigma = self.params.trial_noise_sigma;
        let offsets = subarray.sense_offsets();
        let biases = subarray.bias_directions();
        let resolved = BitRow::from_bits(result.deltas.iter().enumerate().map(|(c, &delta)| {
            let noise = {
                // Box–Muller on two uniforms.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sigma
            };
            resolve(delta, offsets[c] as f64, noise, self.biased_amps, biases[c])
        }));
        result.resolved = resolved;
        result
    }

    /// Per-column *signed margin* toward `expected`: perturbation plus
    /// column offset, positive when the amplifier would resolve the
    /// expected way. Characterization accumulates the minimum margin over
    /// data redraws before converting to a survival probability.
    pub fn margins_toward(
        &self,
        subarray: &Subarray,
        deltas: &[f64],
        expected: &BitRow,
    ) -> Vec<f64> {
        deltas
            .iter()
            .zip(subarray.sense_offsets())
            .enumerate()
            .map(|(c, (&delta, &offset))| {
                let sign = if expected.get(c) { 1.0 } else { -1.0 };
                sign * (delta + offset as f64)
            })
            .collect()
    }

    /// Converts a systematic margin into the all-trials survival
    /// probability with this engine's calibration.
    pub fn margin_survival(&self, margin: f64) -> f64 {
        survival_probability(
            margin,
            self.params.sense_deadzone,
            self.params.trial_noise_sigma,
            self.params.effective_trials,
        )
    }

    /// Per-column probability that the amplifier resolves toward
    /// `expected` in *all* of the calibrated trial count — the smooth form
    /// of the paper's success-rate metric for sensing-limited operations
    /// (MAJX).
    pub fn survival_toward(
        &self,
        subarray: &Subarray,
        deltas: &[f64],
        expected: &BitRow,
    ) -> Vec<f64> {
        deltas
            .iter()
            .zip(subarray.sense_offsets())
            .enumerate()
            .map(|(c, (&delta, &offset))| {
                let sign = if expected.get(c) { 1.0 } else { -1.0 };
                let margin = sign * (delta + offset as f64);
                survival_probability(
                    margin,
                    self.params.sense_deadzone,
                    self.params.trial_noise_sigma,
                    self.params.effective_trials,
                )
            })
            .collect()
    }

    /// Commits `values` into every open row with the given restore
    /// strength: cells whose total drive clears the restore threshold take
    /// the new value, the rest keep their old charge. Returns the number
    /// of cells that failed to take the write.
    pub fn commit(
        &self,
        subarray: &mut Subarray,
        rows: &[u32],
        values: &BitRow,
        restore_strength: f64,
    ) -> usize {
        op_counters().commit.incr();
        let n_open = rows.len();
        let frac_ones = values.count_ones() as f64 / values.len().max(1) as f64;
        let wq = self.params.write_quality(self.cond);
        let threshold = self.params.restore_threshold;
        let mut failures = 0;
        for &row in rows {
            let (volts, _, strengths) = subarray.row_split_mut(row);
            for (col, v) in volts.iter_mut().enumerate() {
                let bit = values.get(col);
                let drive = restore_strength
                    * wq
                    * strengths[col] as f64
                    * self.params.restore_drive(bit, n_open, frac_ones);
                if drive >= threshold {
                    *v = if bit { 1.0 } else { 0.0 };
                } else {
                    let old = *v > 0.5;
                    if drive >= threshold * 0.6 {
                        // Partial restore: the cell's charge moves toward
                        // the target but the insufficiently asserted
                        // wordline cannot push it across the midpoint —
                        // the stored digital value survives.
                        let target: f32 = if bit { 1.0 } else { 0.0 };
                        let coupling =
                            (0.45 * (drive - threshold * 0.6) / (threshold * 0.4)) as f32;
                        *v += (target - *v) * coupling.clamp(0.0, 1.0);
                        // Clamp back if the drift would flip the read-out.
                        if (*v > 0.5) != old {
                            *v = 0.5 + if old { 0.01 } else { -0.01 };
                        }
                    }
                    if old != bit {
                        failures += 1;
                    }
                }
            }
            // A fault overlay's stuck cells shrug off the restore drive
            // entirely; re-assert them after the row's write completes.
            subarray.pin_row_faults(row);
        }
        failures
    }

    /// Per-cell probability that a commit with `restore_strength` sticks,
    /// across all trials — the smooth success metric for restore-limited
    /// operations (WR-overdrive activation tests, Multi-RowCopy).
    pub fn commit_survival(
        &self,
        subarray: &Subarray,
        rows: &[u32],
        values: &BitRow,
        restore_strength: f64,
    ) -> Vec<f64> {
        let n_open = rows.len();
        let frac_ones = values.count_ones() as f64 / values.len().max(1) as f64;
        let wq = self.params.write_quality(self.cond);
        let mut probs = Vec::with_capacity(rows.len() * subarray.cols() as usize);
        for &row in rows {
            for (col, &strength) in subarray.row_strength_factors(row).iter().enumerate() {
                let bit = values.get(col);
                let drive = restore_strength
                    * wq
                    * strength as f64
                    * self.params.restore_drive(bit, n_open, frac_ones);
                probs.push(restore_probability(drive, &self.params));
            }
        }
        probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use simra_dram::subarray::VariationParams;

    fn subarray() -> Subarray {
        Subarray::new(64, 128, VariationParams::default(), 5)
    }

    fn engine() -> ApaEngine {
        ApaEngine::new(
            CircuitParams::calibrated(),
            OperatingConditions::nominal(),
            false,
        )
    }

    #[test]
    fn sense_resolves_clear_majority() {
        let mut sa = subarray();
        let e = engine();
        sa.write_row(0, &BitRow::ones(128)).unwrap();
        sa.write_row(1, &BitRow::ones(128)).unwrap();
        sa.write_row(2, &BitRow::zeros(128)).unwrap();
        sa.write_row(3, &BitRow::ones(128)).unwrap();
        let r = e.sense(&sa, &[0, 1, 2, 3], 0, ApaTiming::best_for_majx());
        // 3-vs-1: every column should resolve to 1.
        assert_eq!(r.resolved.count_ones(), 128);
    }

    #[test]
    fn survival_high_for_wide_margin() {
        let mut sa = subarray();
        let e = engine();
        for row in 0..8 {
            sa.write_row(row, &BitRow::ones(128)).unwrap();
        }
        let rows: Vec<u32> = (0..8).collect();
        let r = e.sense(&sa, &rows, 0, ApaTiming::best_for_majx());
        let surv = e.survival_toward(&sa, &r.deltas, &BitRow::ones(128));
        let mean: f64 = surv.iter().sum::<f64>() / surv.len() as f64;
        assert!(mean > 0.99, "mean survival {mean}");
    }

    #[test]
    fn survival_low_against_the_majority() {
        let mut sa = subarray();
        let e = engine();
        for row in 0..8 {
            sa.write_row(row, &BitRow::ones(128)).unwrap();
        }
        let rows: Vec<u32> = (0..8).collect();
        let r = e.sense(&sa, &rows, 0, ApaTiming::best_for_majx());
        let surv = e.survival_toward(&sa, &r.deltas, &BitRow::zeros(128));
        let mean: f64 = surv.iter().sum::<f64>() / surv.len() as f64;
        assert!(mean < 0.01, "mean survival {mean}");
    }

    #[test]
    fn commit_full_strength_sticks() {
        let mut sa = subarray();
        let e = engine();
        let img = BitRow::ones(128);
        let failures = e.commit(&mut sa, &[3, 4], &img, 1.0);
        assert_eq!(failures, 0);
        assert_eq!(sa.read_row(3).unwrap(), img);
        assert_eq!(sa.read_row(4).unwrap(), img);
    }

    #[test]
    fn commit_weak_strength_fails_cells() {
        let mut sa = subarray();
        let e = engine();
        let img = BitRow::ones(128);
        // Far below the restore threshold: nothing should take the write.
        let failures = e.commit(&mut sa, &[3], &img, 0.3);
        assert_eq!(failures, 128);
        assert_eq!(sa.read_row(3).unwrap().count_ones(), 0);
    }

    #[test]
    fn commit_survival_tracks_strength() {
        let sa = subarray();
        let e = engine();
        let img = BitRow::ones(128);
        let strong = e.commit_survival(&sa, &[0], &img, 1.0);
        let weak = e.commit_survival(&sa, &[0], &img, 0.85);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&strong) > mean(&weak));
        assert!(mean(&strong) > 0.99);
    }

    #[test]
    fn sampled_sense_is_seed_deterministic() {
        let mut sa = subarray();
        let e = engine();
        sa.write_row(0, &BitRow::ones(128)).unwrap();
        sa.write_row(1, &BitRow::zeros(128)).unwrap();
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let a = e.sense_sampled(&sa, &[0, 1], 0, ApaTiming::best_for_majx(), &mut r1);
        let b = e.sense_sampled(&sa, &[0, 1], 0, ApaTiming::best_for_majx(), &mut r2);
        assert_eq!(a.resolved, b.resolved);
    }

    #[test]
    fn biased_amps_break_ties_deterministically() {
        // A perfectly balanced bitline with zero offset: unbiased resolves
        // by sign (false), biased follows the column bias.
        let v = VariationParams {
            cell_cap_sigma: 0.0,
            cell_strength_sigma: 0.0,
            sense_offset_sigma: 0.0,
        };
        let mut sa = Subarray::new(4, 32, v, 9);
        sa.write_row(0, &BitRow::ones(32)).unwrap();
        sa.write_row(1, &BitRow::zeros(32)).unwrap();
        let biased = ApaEngine::new(
            CircuitParams::calibrated(),
            OperatingConditions::nominal(),
            true,
        );
        let r = biased.sense(&sa, &[0, 1], 0, ApaTiming::best_for_majx());
        for c in 0..32 {
            assert_eq!(r.resolved.get(c), sa.bias_direction(c as u32));
        }
    }
}
