//! The APA analog engine: glue between a subarray's stored state and the
//! charge/sense/restore primitives.
//!
//! The engine is deliberately stateless (parameters + operating conditions
//! only); the mutable state lives in the [`Subarray`]. Operations in
//! `simra-core` compose engine calls into full PUD operations.

use std::cell::RefCell;
use std::fmt;

use rand::rngs::StdRng;

use simra_dram::{ApaTiming, BitRow, Subarray, VendorProfile};
use simra_telemetry::{Counter, Recorder};

use crate::charge::{bitline_deltas_batch_into, bitline_deltas_into, bitline_deltas_into_scalar};
use crate::math::{box_muller, standard_normal};
use crate::params::{CircuitParams, OperatingConditions};
use crate::sense::{resolve, restore_probability, survival_probability};

/// Telemetry counters for the engine's three analog primitives. Each
/// engine owns a handle set bound to one [`Recorder`]; each recording is
/// a relaxed load (plus one relaxed add when telemetry is enabled), so
/// the multi-million-call sense hot path stays unperturbed when
/// telemetry is off.
///
/// The counters are observational only: two engines that differ solely
/// in where they report compare equal and compute identical results.
#[derive(Clone)]
pub struct EngineCounters {
    sense: Counter,
    charge_share: Counter,
    commit: Counter,
}

impl EngineCounters {
    /// Counter handles bound to `recorder` under the `engine` module.
    pub fn recorded_by(recorder: &Recorder) -> Self {
        EngineCounters {
            sense: recorder.counter("engine", "sense_ops"),
            charge_share: recorder.counter("engine", "charge_share_ops"),
            commit: recorder.counter("engine", "commit_ops"),
        }
    }
}

impl Default for EngineCounters {
    /// Binds to the process-global recorder — the shim that keeps
    /// standalone engines reporting where they always have.
    fn default() -> Self {
        EngineCounters::recorded_by(simra_telemetry::global())
    }
}

impl fmt::Debug for EngineCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineCounters")
            .field("sense", &self.sense.get())
            .field("charge_share", &self.charge_share.get())
            .field("commit", &self.commit.get())
            .finish()
    }
}

/// Reusable per-thread buffers for [`ApaEngine::sense`]: characterization
/// sweeps call it millions of times, and the row-weight list and the
/// capacitance accumulator would otherwise be allocated on every call.
#[derive(Default)]
struct SenseScratch {
    rows_weights: Vec<(u32, f64)>,
    cap_sum: Vec<f64>,
    /// Flat per-trial delta buffer for [`ApaEngine::sense_batch`]: at
    /// `trials · cols` f64s it crosses the allocator's mmap threshold,
    /// so a fresh allocation per batch would pay page faults on every
    /// call.
    batch_deltas: Vec<f64>,
}

impl SenseScratch {
    /// Disjoint borrows of the scratch fields one batched sense needs.
    #[allow(clippy::type_complexity)]
    fn split_for_batch(&mut self) -> (&[(u32, f64)], &mut Vec<f64>, &mut Vec<f64>) {
        (
            &self.rows_weights,
            &mut self.cap_sum,
            &mut self.batch_deltas,
        )
    }
}

thread_local! {
    static SENSE_SCRATCH: RefCell<SenseScratch> = RefCell::new(SenseScratch::default());
}

/// The analog outcome of connecting a set of rows to the bitlines.
#[derive(Debug, Clone, PartialEq)]
pub struct SenseResult {
    /// Normalized bitline perturbation per column (before offsets).
    pub deltas: Vec<f64>,
    /// The value each sense amplifier resolves to with zero trial noise.
    pub resolved: BitRow,
}

/// A stack of per-trial voltage snapshots of one row group, consumed by
/// [`ApaEngine::sense_batch`].
///
/// Characterization redraws the *data* of a row group several times and
/// senses after each redraw; only the voltage plane changes between
/// redraws (writes never touch the capacitance/strength variation
/// planes). Callers snapshot the voltages of the group's rows after each
/// write ([`SenseBatch::snapshot_trial`]) and then sense every trial in
/// one batched kernel pass, which walks the variation planes once for
/// the whole batch.
#[derive(Debug, Clone)]
pub struct SenseBatch {
    rows: Vec<u32>,
    cols: usize,
    voltages: Vec<f32>,
}

impl SenseBatch {
    /// An empty batch over `rows` (local indices) of a `cols`-wide
    /// subarray.
    pub fn new(rows: &[u32], cols: usize) -> Self {
        SenseBatch {
            rows: rows.to_vec(),
            cols,
            voltages: Vec::new(),
        }
    }

    /// The row group the snapshots cover.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// Number of snapshots taken so far.
    pub fn trials(&self) -> usize {
        if self.rows.is_empty() {
            return 0;
        }
        self.voltages.len() / (self.rows.len() * self.cols)
    }

    /// Drops all snapshots, keeping the row group and the capacity.
    pub fn clear(&mut self) {
        self.voltages.clear();
    }

    /// Re-targets the batch at a new row group, keeping the capacity.
    pub fn reset(&mut self, rows: &[u32], cols: usize) {
        self.rows.clear();
        self.rows.extend_from_slice(rows);
        self.cols = cols;
        self.voltages.clear();
    }

    /// Appends one trial: the current voltages of the batch's rows.
    pub fn snapshot_trial(&mut self, subarray: &Subarray) {
        assert_eq!(
            subarray.cols() as usize,
            self.cols,
            "snapshot subarray width differs from the batch"
        );
        for &row in &self.rows {
            self.voltages
                .extend_from_slice(&subarray.row_voltages(row)[..self.cols]);
        }
    }
}

/// The analog engine for one module's chips.
#[derive(Debug, Clone)]
pub struct ApaEngine {
    params: CircuitParams,
    cond: OperatingConditions,
    biased_amps: bool,
    counters: EngineCounters,
}

/// Engines compare by physics (parameters, conditions, amp bias) only —
/// the telemetry destination is observational and never affects results.
impl PartialEq for ApaEngine {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params
            && self.cond == other.cond
            && self.biased_amps == other.biased_amps
    }
}

impl ApaEngine {
    /// An engine with explicit parameters, reporting to the global
    /// recorder.
    pub fn new(params: CircuitParams, cond: OperatingConditions, biased_amps: bool) -> Self {
        ApaEngine::with_counters(params, cond, biased_amps, EngineCounters::default())
    }

    /// An engine with explicit parameters reporting to `counters` —
    /// the session-owned path. Cloning a handle set is three `Arc`
    /// bumps, so trial loops that build an engine per trial stay off
    /// the recorder's registry lock.
    pub fn with_counters(
        params: CircuitParams,
        cond: OperatingConditions,
        biased_amps: bool,
        counters: EngineCounters,
    ) -> Self {
        ApaEngine {
            params,
            cond,
            biased_amps,
            counters,
        }
    }

    /// An engine configured for a vendor profile at given conditions.
    pub fn for_profile(profile: &VendorProfile, cond: OperatingConditions) -> Self {
        ApaEngine::new(CircuitParams::calibrated(), cond, profile.biased_sense_amps)
    }

    /// The engine's circuit parameters.
    pub fn params(&self) -> &CircuitParams {
        &self.params
    }

    /// The operating conditions.
    pub fn conditions(&self) -> OperatingConditions {
        self.cond
    }

    /// Whether this part's sense amplifiers are biased (Mfr. M).
    pub fn biased_amps(&self) -> bool {
        self.biased_amps
    }

    /// Senses the simultaneously open `rows` (local indices), where
    /// `first_row` is the APA's `R_F` (it over-shares for long ACT→ACT
    /// windows). Returns per-column perturbations and the zero-noise
    /// resolution.
    ///
    /// # Contract
    ///
    /// `first_row` must be a member of `rows` — R_F is by definition one
    /// of the simultaneously opened rows. A violation trips a
    /// `debug_assert`; release builds fall back to treating the first
    /// listed row as R_F (the historical behavior), which silently
    /// misattributes the over-share weight.
    pub fn sense(
        &self,
        subarray: &Subarray,
        rows: &[u32],
        first_row: u32,
        timing: ApaTiming,
    ) -> SenseResult {
        self.sense_with(subarray, rows, first_row, timing, bitline_deltas_into)
    }

    /// [`sense`](Self::sense) through the frozen pre-vectorization
    /// scalar kernel ([`bitline_deltas_into_scalar`]) instead of the
    /// chunked one. Bit-identical to `sense` by the kernel's bit-identity
    /// contract; exists as the anchor the identity proptests compare
    /// against and as the seed baseline the `analog_hotpath` bench
    /// measures the SIMD/batched trajectory from.
    pub fn sense_reference(
        &self,
        subarray: &Subarray,
        rows: &[u32],
        first_row: u32,
        timing: ApaTiming,
    ) -> SenseResult {
        self.sense_with(
            subarray,
            rows,
            first_row,
            timing,
            bitline_deltas_into_scalar,
        )
    }

    /// Shared body of [`sense`](Self::sense) and
    /// [`sense_reference`](Self::sense_reference): everything but the
    /// charge-share kernel choice.
    #[allow(clippy::type_complexity)]
    fn sense_with(
        &self,
        subarray: &Subarray,
        rows: &[u32],
        first_row: u32,
        timing: ApaTiming,
        kernel: fn(&Subarray, &[(u32, f64)], f64, f64, f64, &mut Vec<f64>, &mut Vec<f64>),
    ) -> SenseResult {
        let ops = &self.counters;
        ops.sense.incr();
        // One charge-share event per simultaneously opened row.
        ops.charge_share.add(rows.len() as u64);
        let first_index = first_row_index(rows, first_row);
        let first_weight = self.params.first_row_weight(rows.len(), timing);
        let assertion =
            self.params.assertion_strength(timing, self.cond) * self.group_factor(subarray, rows);
        let mut deltas = Vec::new();
        SENSE_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.rows_weights.clear();
            scratch.rows_weights.extend(
                rows.iter()
                    .enumerate()
                    .map(|(i, &row)| (row, if i == first_index { first_weight } else { 1.0 })),
            );
            kernel(
                subarray,
                &scratch.rows_weights,
                self.params.transfer_amp(rows.len()),
                assertion,
                self.params.beta,
                &mut scratch.cap_sum,
                &mut deltas,
            );
        });
        let offsets = subarray.sense_offsets();
        let biases = subarray.bias_directions();
        let resolved = BitRow::from_bits(deltas.iter().enumerate().map(|(c, &delta)| {
            resolve(delta, offsets[c] as f64, 0.0, self.biased_amps, biases[c])
        }));
        SenseResult { deltas, resolved }
    }

    /// Deterministic multiplicative margin factor for a row group:
    /// groups far from their local wordline drivers / sense-amp stripes
    /// are systematically weaker. Hashed from the group's rows plus the
    /// subarray's silicon so the same group always measures the same.
    fn group_factor(&self, subarray: &Subarray, rows: &[u32]) -> f64 {
        if rows.len() <= 1 {
            return 1.0;
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ subarray.sense_offset(0).to_bits() as u64;
        for &r in rows {
            h = (h ^ (r as u64 + 1)).wrapping_mul(0x1000_0000_01b3);
        }
        // Two splitmix-style uniforms → one Gaussian (Box–Muller).
        let mut z = h;
        let mut next = || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (x ^ (x >> 31)) as f64 / u64::MAX as f64
        };
        let u1 = next().max(f64::EPSILON);
        let u2 = next();
        let g = box_muller(u1, u2);
        // Asymmetric: weak-side outliers are common (long lower whiskers in
        // the paper's box plots) but the strong side saturates — which is
        // why even best-group MAJ9 stays uneconomical (Fig. 16).
        (1.0 + self.params.group_spread_sigma * g).clamp(0.35, 1.28)
    }

    /// Senses with sampled per-trial noise (functional mode; used where a
    /// single concrete trial outcome is needed rather than a statistic).
    pub fn sense_sampled(
        &self,
        subarray: &Subarray,
        rows: &[u32],
        first_row: u32,
        timing: ApaTiming,
        rng: &mut StdRng,
    ) -> SenseResult {
        let mut result = self.sense(subarray, rows, first_row, timing);
        let sigma = self.params.trial_noise_sigma;
        let offsets = subarray.sense_offsets();
        let biases = subarray.bias_directions();
        let resolved = BitRow::from_bits(result.deltas.iter().enumerate().map(|(c, &delta)| {
            let noise = standard_normal(rng) * sigma;
            resolve(delta, offsets[c] as f64, noise, self.biased_amps, biases[c])
        }));
        result.resolved = resolved;
        result
    }

    /// [`sense_sampled`](Self::sense_sampled) over `trials` independent
    /// noise redraws of the *same* data state: the deterministic
    /// perturbations are computed once and only the per-trial amplifier
    /// noise is redrawn, so a batch costs one kernel pass plus `trials`
    /// cheap resolve sweeps.
    ///
    /// Equivalent — bit for bit, including the RNG stream position — to
    /// calling `sense_sampled` `trials` times in a loop: the noise draws
    /// happen in the identical (trial-major, column-major) order, and
    /// the deltas are deterministic in the subarray state.
    pub fn sense_sampled_batch(
        &self,
        subarray: &Subarray,
        rows: &[u32],
        first_row: u32,
        timing: ApaTiming,
        trials: usize,
        rng: &mut StdRng,
    ) -> Vec<SenseResult> {
        if trials == 0 {
            return Vec::new();
        }
        let base = self.sense(subarray, rows, first_row, timing);
        // `sense` counted one sense / one set of charge shares; account
        // for the remaining logical trials of the batch.
        let ops = &self.counters;
        ops.sense.add(trials as u64 - 1);
        ops.charge_share
            .add(rows.len() as u64 * (trials as u64 - 1));
        let sigma = self.params.trial_noise_sigma;
        let offsets = subarray.sense_offsets();
        let biases = subarray.bias_directions();
        (0..trials)
            .map(|_| {
                let resolved =
                    BitRow::from_bits(base.deltas.iter().enumerate().map(|(c, &delta)| {
                        let noise = standard_normal(rng) * sigma;
                        resolve(delta, offsets[c] as f64, noise, self.biased_amps, biases[c])
                    }));
                SenseResult {
                    deltas: base.deltas.clone(),
                    resolved,
                }
            })
            .collect()
    }

    /// Senses every snapshot in `batch` in one batched kernel pass.
    ///
    /// Result `t` is bit-identical to what [`sense`](Self::sense) would
    /// have returned with the subarray's voltage plane in the state of
    /// snapshot `t`: the capacitance/strength planes (and everything
    /// derived from them — the group factor, the transfer factors, the
    /// denominators) are data-independent, so the batched kernel
    /// computes them once and amortizes one plane traversal plus one
    /// instruction decode over the whole batch.
    ///
    /// `first_row` follows the [`sense`](Self::sense) membership
    /// contract.
    pub fn sense_batch(
        &self,
        subarray: &Subarray,
        batch: &SenseBatch,
        first_row: u32,
        timing: ApaTiming,
    ) -> Vec<SenseResult> {
        let trials = batch.trials();
        if trials == 0 {
            return Vec::new();
        }
        let rows = batch.rows();
        let ops = &self.counters;
        ops.sense.add(trials as u64);
        ops.charge_share.add(rows.len() as u64 * trials as u64);
        let first_index = first_row_index(rows, first_row);
        let first_weight = self.params.first_row_weight(rows.len(), timing);
        let assertion =
            self.params.assertion_strength(timing, self.cond) * self.group_factor(subarray, rows);
        SENSE_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.rows_weights.clear();
            scratch.rows_weights.extend(
                rows.iter()
                    .enumerate()
                    .map(|(i, &row)| (row, if i == first_index { first_weight } else { 1.0 })),
            );
            let (rows_weights, cap_sum, flat) = scratch.split_for_batch();
            bitline_deltas_batch_into(
                subarray,
                rows_weights,
                &batch.voltages,
                trials,
                self.params.transfer_amp(rows.len()),
                assertion,
                self.params.beta,
                cap_sum,
                flat,
            );
            let cols = batch.cols;
            let offsets = subarray.sense_offsets();
            let biases = subarray.bias_directions();
            // The column offsets are trial-invariant: widen them once per
            // batch instead of once per (trial, column).
            let offsets_f64: Vec<f64> = offsets.iter().map(|&o| o as f64).collect();
            (0..trials)
                .map(|t| {
                    let deltas = flat[t * cols..(t + 1) * cols].to_vec();
                    let resolved = if self.biased_amps {
                        BitRow::from_bits(deltas.iter().enumerate().map(|(c, &delta)| {
                            resolve(delta, offsets_f64[c], 0.0, true, biases[c])
                        }))
                    } else {
                        // resolve(δ, o, 0, false, _) ≡ δ + o + 0 > 0, and
                        // adding zero never changes the comparison — the
                        // packed form below is boolean-identical.
                        BitRow::from_bits(
                            deltas
                                .iter()
                                .zip(&offsets_f64)
                                .map(|(&delta, &o)| delta + o > 0.0),
                        )
                    };
                    SenseResult { deltas, resolved }
                })
                .collect()
        })
    }

    /// Folds a batch of sense results into the per-column **minimum**
    /// signed margin toward each trial's expected image — the exact
    /// reduction the MAJX characterization loop performs, fused so the
    /// per-trial margin vectors are never materialized.
    ///
    /// Bit-identical to folding
    /// [`margins_toward`](Self::margins_toward) trial by trial with
    /// `f64::min` from an `INFINITY` accumulator, in batch order.
    pub fn margins_batch(
        &self,
        subarray: &Subarray,
        results: &[SenseResult],
        expecteds: &[BitRow],
    ) -> Vec<f64> {
        assert_eq!(
            results.len(),
            expecteds.len(),
            "one expected image per sense result"
        );
        let offsets = subarray.sense_offsets();
        let cols = offsets.len();
        let mut min_margins = vec![f64::INFINITY; cols];
        for (result, expected) in results.iter().zip(expecteds) {
            for (c, (acc, &offset)) in min_margins.iter_mut().zip(offsets).enumerate() {
                let sign = if expected.get(c) { 1.0 } else { -1.0 };
                let m = sign * (result.deltas[c] + offset as f64);
                *acc = acc.min(m);
            }
        }
        min_margins
    }

    /// Per-column *signed margin* toward `expected`: perturbation plus
    /// column offset, positive when the amplifier would resolve the
    /// expected way. Characterization accumulates the minimum margin over
    /// data redraws before converting to a survival probability.
    pub fn margins_toward(
        &self,
        subarray: &Subarray,
        deltas: &[f64],
        expected: &BitRow,
    ) -> Vec<f64> {
        deltas
            .iter()
            .zip(subarray.sense_offsets())
            .enumerate()
            .map(|(c, (&delta, &offset))| {
                let sign = if expected.get(c) { 1.0 } else { -1.0 };
                sign * (delta + offset as f64)
            })
            .collect()
    }

    /// Converts a systematic margin into the all-trials survival
    /// probability with this engine's calibration.
    pub fn margin_survival(&self, margin: f64) -> f64 {
        survival_probability(
            margin,
            self.params.sense_deadzone,
            self.params.trial_noise_sigma,
            self.params.effective_trials,
        )
    }

    /// Per-column probability that the amplifier resolves toward
    /// `expected` in *all* of the calibrated trial count — the smooth form
    /// of the paper's success-rate metric for sensing-limited operations
    /// (MAJX).
    pub fn survival_toward(
        &self,
        subarray: &Subarray,
        deltas: &[f64],
        expected: &BitRow,
    ) -> Vec<f64> {
        deltas
            .iter()
            .zip(subarray.sense_offsets())
            .enumerate()
            .map(|(c, (&delta, &offset))| {
                let sign = if expected.get(c) { 1.0 } else { -1.0 };
                let margin = sign * (delta + offset as f64);
                survival_probability(
                    margin,
                    self.params.sense_deadzone,
                    self.params.trial_noise_sigma,
                    self.params.effective_trials,
                )
            })
            .collect()
    }

    /// Commits `values` into every open row with the given restore
    /// strength: cells whose total drive clears the restore threshold take
    /// the new value, the rest keep their old charge. Returns the number
    /// of cells that failed to take the write.
    pub fn commit(
        &self,
        subarray: &mut Subarray,
        rows: &[u32],
        values: &BitRow,
        restore_strength: f64,
    ) -> usize {
        self.counters.commit.incr();
        let n_open = rows.len();
        let frac_ones = values.count_ones() as f64 / values.len().max(1) as f64;
        let wq = self.params.write_quality(self.cond);
        let threshold = self.params.restore_threshold;
        let mut failures = 0;
        for &row in rows {
            let (volts, _, strengths) = subarray.row_split_mut(row);
            for (col, v) in volts.iter_mut().enumerate() {
                let bit = values.get(col);
                let drive = restore_strength
                    * wq
                    * strengths[col] as f64
                    * self.params.restore_drive(bit, n_open, frac_ones);
                if drive >= threshold {
                    *v = if bit { 1.0 } else { 0.0 };
                } else {
                    let old = *v > 0.5;
                    if drive >= threshold * 0.6 {
                        // Partial restore: the cell's charge moves toward
                        // the target but the insufficiently asserted
                        // wordline cannot push it across the midpoint —
                        // the stored digital value survives.
                        let target: f32 = if bit { 1.0 } else { 0.0 };
                        let coupling =
                            (0.45 * (drive - threshold * 0.6) / (threshold * 0.4)) as f32;
                        *v += (target - *v) * coupling.clamp(0.0, 1.0);
                        // Clamp back if the drift would flip the read-out.
                        if (*v > 0.5) != old {
                            *v = 0.5 + if old { 0.01 } else { -0.01 };
                        }
                    }
                    if old != bit {
                        failures += 1;
                    }
                }
            }
            // A fault overlay's stuck cells shrug off the restore drive
            // entirely; re-assert them after the row's write completes.
            subarray.pin_row_faults(row);
        }
        failures
    }

    /// Visits every (row, column) restore probability of a commit, in
    /// the row-major order [`commit_survival`](Self::commit_survival)
    /// returns them — the one traversal behind the allocating, buffered,
    /// and summing variants.
    fn for_each_restore_probability(
        &self,
        subarray: &Subarray,
        rows: &[u32],
        values: &BitRow,
        restore_strength: f64,
        mut visit: impl FnMut(f64),
    ) {
        let n_open = rows.len();
        let frac_ones = values.count_ones() as f64 / values.len().max(1) as f64;
        let wq = self.params.write_quality(self.cond);
        for &row in rows {
            for (col, &strength) in subarray.row_strength_factors(row).iter().enumerate() {
                let bit = values.get(col);
                let drive = restore_strength
                    * wq
                    * strength as f64
                    * self.params.restore_drive(bit, n_open, frac_ones);
                visit(restore_probability(drive, &self.params));
            }
        }
    }

    /// Per-cell probability that a commit with `restore_strength` sticks,
    /// across all trials — the smooth success metric for restore-limited
    /// operations (WR-overdrive activation tests, Multi-RowCopy).
    pub fn commit_survival(
        &self,
        subarray: &Subarray,
        rows: &[u32],
        values: &BitRow,
        restore_strength: f64,
    ) -> Vec<f64> {
        let mut probs = Vec::with_capacity(rows.len() * subarray.cols() as usize);
        self.commit_survival_into(subarray, rows, values, restore_strength, &mut probs);
        probs
    }

    /// [`commit_survival`](Self::commit_survival) into a caller-owned
    /// buffer (cleared first; capacity reused across calls) — for trial
    /// loops that would otherwise allocate the probability vector per
    /// iteration.
    pub fn commit_survival_into(
        &self,
        subarray: &Subarray,
        rows: &[u32],
        values: &BitRow,
        restore_strength: f64,
        probs: &mut Vec<f64>,
    ) {
        probs.clear();
        self.for_each_restore_probability(subarray, rows, values, restore_strength, |p| {
            probs.push(p)
        });
    }

    /// Sum of [`commit_survival`](Self::commit_survival)'s probabilities
    /// without materializing them, added in the same row-major order —
    /// bit-identical to `commit_survival(..).iter().sum()`.
    pub fn commit_survival_sum(
        &self,
        subarray: &Subarray,
        rows: &[u32],
        values: &BitRow,
        restore_strength: f64,
    ) -> f64 {
        let mut sum = 0.0;
        self.for_each_restore_probability(subarray, rows, values, restore_strength, |p| sum += p);
        sum
    }
}

/// Resolves `first_row` to its index in `rows` under the
/// [`ApaEngine::sense`] membership contract: debug builds assert, the
/// release fallback is index 0 (the historical behavior).
fn first_row_index(rows: &[u32], first_row: u32) -> usize {
    let pos = rows.iter().position(|r| *r == first_row);
    debug_assert!(
        pos.is_some(),
        "sense: first_row {first_row} is not in rows {rows:?}; falling back to index 0"
    );
    pos.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use simra_dram::subarray::VariationParams;

    fn subarray() -> Subarray {
        Subarray::new(64, 128, VariationParams::default(), 5)
    }

    fn engine() -> ApaEngine {
        ApaEngine::new(
            CircuitParams::calibrated(),
            OperatingConditions::nominal(),
            false,
        )
    }

    #[test]
    fn sense_resolves_clear_majority() {
        let mut sa = subarray();
        let e = engine();
        sa.write_row(0, &BitRow::ones(128)).unwrap();
        sa.write_row(1, &BitRow::ones(128)).unwrap();
        sa.write_row(2, &BitRow::zeros(128)).unwrap();
        sa.write_row(3, &BitRow::ones(128)).unwrap();
        let r = e.sense(&sa, &[0, 1, 2, 3], 0, ApaTiming::best_for_majx());
        // 3-vs-1: every column should resolve to 1.
        assert_eq!(r.resolved.count_ones(), 128);
    }

    #[test]
    fn survival_high_for_wide_margin() {
        let mut sa = subarray();
        let e = engine();
        for row in 0..8 {
            sa.write_row(row, &BitRow::ones(128)).unwrap();
        }
        let rows: Vec<u32> = (0..8).collect();
        let r = e.sense(&sa, &rows, 0, ApaTiming::best_for_majx());
        let surv = e.survival_toward(&sa, &r.deltas, &BitRow::ones(128));
        let mean: f64 = surv.iter().sum::<f64>() / surv.len() as f64;
        assert!(mean > 0.99, "mean survival {mean}");
    }

    #[test]
    fn survival_low_against_the_majority() {
        let mut sa = subarray();
        let e = engine();
        for row in 0..8 {
            sa.write_row(row, &BitRow::ones(128)).unwrap();
        }
        let rows: Vec<u32> = (0..8).collect();
        let r = e.sense(&sa, &rows, 0, ApaTiming::best_for_majx());
        let surv = e.survival_toward(&sa, &r.deltas, &BitRow::zeros(128));
        let mean: f64 = surv.iter().sum::<f64>() / surv.len() as f64;
        assert!(mean < 0.01, "mean survival {mean}");
    }

    #[test]
    fn commit_full_strength_sticks() {
        let mut sa = subarray();
        let e = engine();
        let img = BitRow::ones(128);
        let failures = e.commit(&mut sa, &[3, 4], &img, 1.0);
        assert_eq!(failures, 0);
        assert_eq!(sa.read_row(3).unwrap(), img);
        assert_eq!(sa.read_row(4).unwrap(), img);
    }

    #[test]
    fn commit_weak_strength_fails_cells() {
        let mut sa = subarray();
        let e = engine();
        let img = BitRow::ones(128);
        // Far below the restore threshold: nothing should take the write.
        let failures = e.commit(&mut sa, &[3], &img, 0.3);
        assert_eq!(failures, 128);
        assert_eq!(sa.read_row(3).unwrap().count_ones(), 0);
    }

    #[test]
    fn commit_survival_tracks_strength() {
        let sa = subarray();
        let e = engine();
        let img = BitRow::ones(128);
        let strong = e.commit_survival(&sa, &[0], &img, 1.0);
        let weak = e.commit_survival(&sa, &[0], &img, 0.85);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&strong) > mean(&weak));
        assert!(mean(&strong) > 0.99);
    }

    #[test]
    fn sampled_sense_is_seed_deterministic() {
        let mut sa = subarray();
        let e = engine();
        sa.write_row(0, &BitRow::ones(128)).unwrap();
        sa.write_row(1, &BitRow::zeros(128)).unwrap();
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let a = e.sense_sampled(&sa, &[0, 1], 0, ApaTiming::best_for_majx(), &mut r1);
        let b = e.sense_sampled(&sa, &[0, 1], 0, ApaTiming::best_for_majx(), &mut r2);
        assert_eq!(a.resolved, b.resolved);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "is not in rows")]
    fn sense_rejects_a_foreign_first_row_in_debug() {
        let mut sa = subarray();
        let e = engine();
        sa.write_row(0, &BitRow::ones(128)).unwrap();
        // 7 is not a member of the activated group: contract violation.
        e.sense(&sa, &[0, 1], 7, ApaTiming::best_for_majx());
    }

    #[test]
    fn sense_batch_matches_sense_per_trial() {
        let mut sa = subarray();
        let e = engine();
        let rows = [2u32, 3, 6, 7];
        let images = [
            BitRow::ones(128),
            BitRow::zeros(128),
            BitRow::from_bits((0..128).map(|c| c % 2 == 0)),
        ];
        let mut batch = SenseBatch::new(&rows, 128);
        let mut reference = Vec::new();
        for img in &images {
            for (i, &row) in rows.iter().enumerate() {
                let mut img = img.clone();
                if i % 2 == 1 {
                    img = img.complement();
                }
                sa.write_row(row, &img).unwrap();
            }
            batch.snapshot_trial(&sa);
            reference.push(e.sense(&sa, &rows, 3, ApaTiming::best_for_majx()));
        }
        assert_eq!(batch.trials(), images.len());
        let batched = e.sense_batch(&sa, &batch, 3, ApaTiming::best_for_majx());
        assert_eq!(batched.len(), reference.len());
        for (t, (b, r)) in batched.iter().zip(&reference).enumerate() {
            assert_eq!(b.resolved, r.resolved, "trial {t}");
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&b.deltas), bits(&r.deltas), "trial {t} deltas");
        }
    }

    #[test]
    fn sense_sampled_batch_replays_the_scalar_loop() {
        let mut sa = subarray();
        let e = engine();
        sa.write_row(0, &BitRow::ones(128)).unwrap();
        sa.write_row(1, &BitRow::zeros(128)).unwrap();
        let mut loop_rng = StdRng::seed_from_u64(17);
        let mut batch_rng = StdRng::seed_from_u64(17);
        let batched = e.sense_sampled_batch(
            &sa,
            &[0, 1],
            0,
            ApaTiming::best_for_majx(),
            5,
            &mut batch_rng,
        );
        for (t, b) in batched.iter().enumerate() {
            let scalar =
                e.sense_sampled(&sa, &[0, 1], 0, ApaTiming::best_for_majx(), &mut loop_rng);
            assert_eq!(b.resolved, scalar.resolved, "trial {t}");
            assert_eq!(b.deltas, scalar.deltas, "trial {t}");
        }
        use rand::Rng;
        assert_eq!(
            batch_rng.gen::<u64>(),
            loop_rng.gen::<u64>(),
            "same residual stream position"
        );
    }

    #[test]
    fn margins_batch_is_the_min_fold_of_margins_toward() {
        let mut sa = subarray();
        let e = engine();
        let rows = [0u32, 1, 2];
        let images = [BitRow::ones(128), BitRow::zeros(128)];
        let mut batch = SenseBatch::new(&rows, 128);
        let mut expecteds = Vec::new();
        let mut min_ref = vec![f64::INFINITY; 128];
        for img in &images {
            for &row in &rows {
                sa.write_row(row, img).unwrap();
            }
            batch.snapshot_trial(&sa);
            let sense = e.sense(&sa, &rows, 0, ApaTiming::best_for_majx());
            for (acc, m) in min_ref
                .iter_mut()
                .zip(e.margins_toward(&sa, &sense.deltas, img))
            {
                *acc = acc.min(m);
            }
            expecteds.push(img.clone());
        }
        let results = e.sense_batch(&sa, &batch, 0, ApaTiming::best_for_majx());
        let fused = e.margins_batch(&sa, &results, &expecteds);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&fused), bits(&min_ref));
    }

    #[test]
    fn commit_survival_variants_agree() {
        let sa = subarray();
        let e = engine();
        let img = BitRow::from_bits((0..128).map(|c| c % 5 != 0));
        let probs = e.commit_survival(&sa, &[1, 4, 9], &img, 0.93);
        let mut buffered = vec![0.25; 3];
        e.commit_survival_into(&sa, &[1, 4, 9], &img, 0.93, &mut buffered);
        assert_eq!(probs, buffered);
        let sum = e.commit_survival_sum(&sa, &[1, 4, 9], &img, 0.93);
        assert_eq!(sum.to_bits(), probs.iter().sum::<f64>().to_bits());
    }

    #[test]
    fn biased_amps_break_ties_deterministically() {
        // A perfectly balanced bitline with zero offset: unbiased resolves
        // by sign (false), biased follows the column bias.
        let v = VariationParams {
            cell_cap_sigma: 0.0,
            cell_strength_sigma: 0.0,
            sense_offset_sigma: 0.0,
        };
        let mut sa = Subarray::new(4, 32, v, 9);
        sa.write_row(0, &BitRow::ones(32)).unwrap();
        sa.write_row(1, &BitRow::zeros(32)).unwrap();
        let biased = ApaEngine::new(
            CircuitParams::calibrated(),
            OperatingConditions::nominal(),
            true,
        );
        let r = biased.sense(&sa, &[0, 1], 0, ApaTiming::best_for_majx());
        for c in 0..32 {
            assert_eq!(r.resolved.get(c), sa.bias_direction(c as u32));
        }
    }
}
