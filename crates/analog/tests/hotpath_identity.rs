//! Bit-identity properties of the vectorized analog hot path.
//!
//! The chunked kernel ([`bitline_deltas_into`]), its trial-batched twin
//! ([`bitline_deltas_batch_into`]), and the batched engine entry points
//! (`sense_batch`, `sense_sampled_batch`) are all required to reproduce
//! the frozen scalar reference ([`bitline_deltas_into_scalar`]) **bit
//! for bit** — not approximately. These properties are what lets the
//! repro binary keep its byte-identical stdout while the hot path
//! underneath it is rewritten.
//!
//! Column widths deliberately include 1 (all tail), 7 (pure tail), 129
//! (full blocks + 1) — the shapes that break chunked kernels.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use simra_analog::charge::{
    bitline_deltas_batch_into, bitline_deltas_into, bitline_deltas_into_scalar,
};
use simra_analog::{ApaEngine, CircuitParams, OperatingConditions, SenseBatch};
use simra_dram::subarray::VariationParams;
use simra_dram::{ApaTiming, BitRow, Subarray};

const ROWS: u32 = 16;

/// Deterministic per-case data stream (splitmix64): proptest drives the
/// seed, the body expands it into row images without burning strategy
/// entropy on every column.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A subarray with the calibrated (non-zero) variation planes and random
/// data in the given rows.
fn random_subarray(cols: usize, seed: u64, data_rows: &[u32]) -> Subarray {
    let mut sa = Subarray::new(ROWS, cols as u32, VariationParams::default(), seed);
    let mut s = seed ^ 0xD6E8_FEB8_6659_FD93;
    for &row in data_rows {
        let image = BitRow::from_bits((0..cols).map(|_| splitmix(&mut s) & 1 == 1));
        sa.write_row(row, &image).unwrap();
    }
    sa
}

/// Distinct local rows: odd strides are units mod 16, so the first
/// `n` multiples are distinct.
fn row_group(n: usize, stride: u32) -> Vec<u32> {
    (0..n as u32).map(|i| (i * stride) % ROWS).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The chunked single-shot kernel reproduces the frozen scalar
    /// reference bit for bit across widths, row counts, weights, and
    /// parameters — including a `transfer_amp` large enough to clamp
    /// weak cells' `xfer` to exactly 0.0, where a careless "skip the
    /// first accumulate" rewrite would flip −0.0 to +0.0.
    #[test]
    fn chunked_kernel_is_bit_identical_to_the_frozen_scalar(
        cols in proptest::sample::select(vec![1usize, 7, 24, 64, 65, 128, 129, 256]),
        seed in 0u64..1 << 48,
        n_rows in 1usize..=12,
        stride in proptest::sample::select(vec![1u32, 3, 5, 7]),
        weights in proptest::collection::vec(0.25f64..3.0, 12),
        transfer_amp in proptest::sample::select(vec![1.0f64, 4.6, 6.8, 30.0]),
        assertion in 0.5f64..1.5,
        beta in 2.0f64..8.0,
    ) {
        let rows = row_group(n_rows, stride);
        let sa = random_subarray(cols, seed, &rows);
        let rows_weights: Vec<(u32, f64)> = rows
            .iter()
            .zip(&weights)
            .map(|(&r, &w)| (r, w))
            .collect();
        let (mut cap_s, mut out_s) = (Vec::new(), Vec::new());
        let (mut cap_c, mut out_c) = (Vec::new(), Vec::new());
        bitline_deltas_into_scalar(
            &sa, &rows_weights, transfer_amp, assertion, beta, &mut cap_s, &mut out_s,
        );
        bitline_deltas_into(
            &sa, &rows_weights, transfer_amp, assertion, beta, &mut cap_c, &mut out_c,
        );
        prop_assert_eq!(bits(&out_c), bits(&out_s));
        prop_assert_eq!(bits(&cap_c), bits(&cap_s));
    }

    /// Row lists longer than the kernel's stack hoist buffer (64 planes)
    /// take the heap-overflow path; it must be just as bit-identical.
    /// Rows may legally repeat — the kernel contract is a weighted sum
    /// over list entries, not over distinct rows.
    #[test]
    fn row_plane_hoist_overflow_path_is_bit_identical(
        cols in proptest::sample::select(vec![7usize, 65, 129]),
        seed in 0u64..1 << 48,
        n_entries in 60usize..=80,
    ) {
        let all_rows: Vec<u32> = (0..ROWS).collect();
        let sa = random_subarray(cols, seed, &all_rows);
        let mut s = seed ^ 0xA076_1D64_78BD_642F;
        let rows_weights: Vec<(u32, f64)> = (0..n_entries)
            .map(|_| {
                let row = (splitmix(&mut s) % ROWS as u64) as u32;
                let weight = 0.5 + (splitmix(&mut s) % 1000) as f64 / 500.0;
                (row, weight)
            })
            .collect();
        let (mut cap_s, mut out_s) = (Vec::new(), Vec::new());
        let (mut cap_c, mut out_c) = (Vec::new(), Vec::new());
        bitline_deltas_into_scalar(&sa, &rows_weights, 4.6, 0.97, 6.0, &mut cap_s, &mut out_s);
        bitline_deltas_into(&sa, &rows_weights, 4.6, 0.97, 6.0, &mut cap_c, &mut out_c);
        prop_assert_eq!(bits(&out_c), bits(&out_s));
        prop_assert_eq!(bits(&cap_c), bits(&cap_s));
    }

    /// Every trial of the batched kernel is bit-identical to running the
    /// frozen scalar kernel against the subarray in that trial's data
    /// state.
    #[test]
    fn batched_kernel_matches_the_scalar_reference_per_trial(
        cols in proptest::sample::select(vec![1usize, 7, 64, 129]),
        seed in 0u64..1 << 48,
        n_rows in 1usize..=8,
        trials in 1usize..=5,
        transfer_amp in proptest::sample::select(vec![4.6f64, 30.0]),
    ) {
        let rows = row_group(n_rows, 3);
        let mut sa = random_subarray(cols, seed, &rows);
        let mut s = seed ^ 0xE703_7ED1_A0B4_28DB;
        let rows_weights: Vec<(u32, f64)> = rows
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, if i == 0 { 1.7 } else { 1.0 }))
            .collect();
        // Redraw the group's data `trials` times, capturing the voltage
        // snapshot and the scalar answer for each state.
        let mut voltages = Vec::new();
        let mut per_trial = Vec::new();
        for _ in 0..trials {
            for &row in &rows {
                let image = BitRow::from_bits((0..cols).map(|_| splitmix(&mut s) & 1 == 1));
                sa.write_row(row, &image).unwrap();
            }
            for &row in &rows {
                voltages.extend_from_slice(&sa.row_voltages(row)[..cols]);
            }
            let (mut cap, mut out) = (Vec::new(), Vec::new());
            bitline_deltas_into_scalar(
                &sa, &rows_weights, transfer_amp, 0.97, 6.0, &mut cap, &mut out,
            );
            per_trial.push(out);
        }
        let (mut cap_b, mut out_b) = (Vec::new(), Vec::new());
        bitline_deltas_batch_into(
            &sa, &rows_weights, &voltages, trials, transfer_amp, 0.97, 6.0,
            &mut cap_b, &mut out_b,
        );
        prop_assert_eq!(out_b.len(), trials * cols);
        for (t, scalar) in per_trial.iter().enumerate() {
            prop_assert_eq!(
                bits(&out_b[t * cols..(t + 1) * cols]),
                bits(scalar),
                "trial {}", t
            );
        }
    }

    /// `ApaEngine::sense` (chunked kernel) and `sense_reference` (frozen
    /// scalar kernel) are the same function, bit for bit.
    #[test]
    fn sense_is_bit_identical_to_sense_reference(
        cols in proptest::sample::select(vec![7usize, 129, 256]),
        seed in 0u64..1 << 48,
        n_rows in 1usize..=9,
        biased in any::<bool>(),
        timing in proptest::sample::select(vec![
            ApaTiming::best_for_majx(),
            ApaTiming::best_for_activation(),
        ]),
    ) {
        let rows = row_group(n_rows, 5);
        let sa = random_subarray(cols, seed, &rows);
        let engine = ApaEngine::new(CircuitParams::calibrated(), OperatingConditions::nominal(), biased);
        let fast = engine.sense(&sa, &rows, rows[0], timing);
        let reference = engine.sense_reference(&sa, &rows, rows[0], timing);
        prop_assert_eq!(bits(&fast.deltas), bits(&reference.deltas));
        prop_assert_eq!(fast.resolved, reference.resolved);
    }

    /// Result `t` of `sense_batch` is bit-identical to `sense` with the
    /// subarray's voltage plane in the state of snapshot `t`.
    #[test]
    fn sense_batch_matches_sense_per_trial(
        cols in proptest::sample::select(vec![7usize, 129, 256]),
        seed in 0u64..1 << 48,
        n_rows in 1usize..=8,
        trials in 1usize..=4,
        biased in any::<bool>(),
    ) {
        let rows = row_group(n_rows, 7);
        let mut sa = random_subarray(cols, seed, &rows);
        let engine = ApaEngine::new(CircuitParams::calibrated(), OperatingConditions::nominal(), biased);
        let timing = ApaTiming::best_for_majx();
        let mut s = seed ^ 0x2545_F491_4F6C_DD1D;
        let mut batch = SenseBatch::new(&rows, cols);
        let mut expected = Vec::new();
        for _ in 0..trials {
            for &row in &rows {
                let image = BitRow::from_bits((0..cols).map(|_| splitmix(&mut s) & 1 == 1));
                sa.write_row(row, &image).unwrap();
            }
            batch.snapshot_trial(&sa);
            expected.push(engine.sense(&sa, &rows, rows[0], timing));
        }
        let results = engine.sense_batch(&sa, &batch, rows[0], timing);
        prop_assert_eq!(results.len(), trials);
        for (t, (got, want)) in results.iter().zip(&expected).enumerate() {
            prop_assert_eq!(bits(&got.deltas), bits(&want.deltas), "trial {}", t);
            prop_assert_eq!(&got.resolved, &want.resolved, "trial {}", t);
        }
    }

    /// `sense_sampled_batch` is equivalent — results *and* RNG stream
    /// position — to calling `sense_sampled` in a loop.
    #[test]
    fn sense_sampled_batch_matches_the_sampled_loop(
        cols in proptest::sample::select(vec![7usize, 129]),
        seed in 0u64..1 << 48,
        n_rows in 1usize..=7,
        trials in 0usize..=4,
        biased in any::<bool>(),
    ) {
        let rows = row_group(n_rows, 3);
        let sa = random_subarray(cols, seed, &rows);
        let engine = ApaEngine::new(CircuitParams::calibrated(), OperatingConditions::nominal(), biased);
        let timing = ApaTiming::best_for_majx();
        let mut rng_loop = StdRng::seed_from_u64(seed);
        let mut rng_batch = StdRng::seed_from_u64(seed);
        let looped: Vec<_> = (0..trials)
            .map(|_| engine.sense_sampled(&sa, &rows, rows[0], timing, &mut rng_loop))
            .collect();
        let batched = engine.sense_sampled_batch(&sa, &rows, rows[0], timing, trials, &mut rng_batch);
        prop_assert_eq!(batched.len(), looped.len());
        for (t, (got, want)) in batched.iter().zip(&looped).enumerate() {
            prop_assert_eq!(bits(&got.deltas), bits(&want.deltas), "trial {}", t);
            prop_assert_eq!(&got.resolved, &want.resolved, "trial {}", t);
        }
        // Identical stream position afterwards: the next draw agrees.
        use rand::Rng;
        prop_assert_eq!(rng_loop.gen::<u64>(), rng_batch.gen::<u64>());
    }
}
