//! Concurrent-session isolation: several sessions with different seeds
//! and backends share one process — and the one global [`FleetPool`] —
//! yet each produces output byte-identical to running alone, with
//! disjoint telemetry and coverage.
//!
//! This is the payoff contract of the session refactor: nothing a
//! sibling campaign does (its RNG streams, its surrogate calibration,
//! its hybrid slot state, its fault plan) may perturb another session's
//! tables or counters.
//!
//! [`FleetPool`]: simra_characterize::pool::FleetPool

use std::thread;

use simra_characterize::{
    fig7_majx_patterns, run_fleet_with, ExperimentConfig, FleetPolicy, MockClock, Session,
};
use simra_exec::BackendChoice;
use simra_faults::{FaultPlan, ModuleFault, ModuleFaultKind};
use simra_telemetry::Recorder;

/// One campaign: a backend and a seed of its own.
struct Campaign {
    backend: BackendChoice,
    seed: u64,
}

const CAMPAIGNS: [Campaign; 3] = [
    Campaign {
        backend: BackendChoice::Analog,
        seed: 11,
    },
    Campaign {
        backend: BackendChoice::Surrogate,
        seed: 22,
    },
    Campaign {
        backend: BackendChoice::Hybrid,
        seed: 33,
    },
];

/// A fresh quick-scale session for one campaign, with a private enabled
/// recorder so its telemetry can be inspected in isolation.
fn session_for(campaign: &Campaign) -> (Session, Recorder) {
    let mut config = ExperimentConfig::quick();
    config.backend = campaign.backend;
    config.seed = campaign.seed;
    let recorder = Recorder::new();
    recorder.enable();
    (Session::recorded_by(config, recorder.clone()), recorder)
}

fn counter_value(recorder: &Recorder, module: &str, name: &str) -> u64 {
    recorder
        .snapshot()
        .counters
        .iter()
        .find(|c| c.module == module && c.name == name)
        .map(|c| c.value)
        .unwrap_or(0)
}

#[test]
fn concurrent_sessions_match_their_solo_runs_with_disjoint_telemetry() {
    // Solo baselines: each campaign alone in a fresh session.
    let solo: Vec<(String, u64)> = CAMPAIGNS
        .iter()
        .map(|campaign| {
            let (session, recorder) = session_for(campaign);
            let table = fig7_majx_patterns(&session).to_string();
            let probes = counter_value(&recorder, "surrogate", "calibration_probes");
            (table, probes)
        })
        .collect();
    assert!(
        solo[1].1 > 0,
        "the surrogate campaign must calibrate, or the disjointness check below is vacuous"
    );

    // The same three campaigns at once, from separate threads, all
    // borrowing the shared global fleet pool.
    let concurrent: Vec<(String, Recorder)> = thread::scope(|scope| {
        let handles: Vec<_> = CAMPAIGNS
            .iter()
            .map(|campaign| {
                scope.spawn(move || {
                    let (session, recorder) = session_for(campaign);
                    (fig7_majx_patterns(&session).to_string(), recorder)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign thread panicked"))
            .collect()
    });

    for ((campaign, (solo_table, solo_probes)), (table, recorder)) in
        CAMPAIGNS.iter().zip(&solo).zip(&concurrent)
    {
        assert_eq!(
            table, solo_table,
            "{} campaign diverged from its solo run",
            campaign.backend
        );
        // Calibration traffic stays with the session that caused it: the
        // analog campaign records none, the others exactly their solo
        // counts, sibling sessions notwithstanding.
        let probes = counter_value(recorder, "surrogate", "calibration_probes");
        match campaign.backend {
            BackendChoice::Analog => {
                assert_eq!(probes, 0, "the analog session must not calibrate")
            }
            _ => assert_eq!(
                probes, *solo_probes,
                "{}'s calibration count changed under concurrency",
                campaign.backend
            ),
        }
        // Each recorder saw its own figure exactly once — no sibling's
        // span leaked in.
        let spans = recorder.snapshot().spans;
        let span = spans
            .iter()
            .find(|s| s.module == "figure" && s.name == "fig7")
            .expect("figure/fig7 span recorded");
        assert_eq!(span.count, 1);
    }
}

#[test]
fn fault_coverage_stays_with_the_session_that_ran_it() {
    let mut faulted_config = ExperimentConfig::quick();
    faulted_config.faults = Some(FaultPlan {
        modules: vec![ModuleFault {
            module_index: 0,
            kind: ModuleFaultKind::Dropout {
                at_group: 0,
                recover_after_attempts: None,
            },
        }],
        ..FaultPlan::default()
    });
    let faulty = Session::recorded_by(faulted_config, Recorder::new());
    let clean = Session::recorded_by(ExperimentConfig::quick(), Recorder::new());

    thread::scope(|scope| {
        scope.spawn(|| {
            let clock = MockClock::new();
            let outcome =
                run_fleet_with(&faulty, 4, FleetPolicy::default(), &clock, 2, |_, g, _| {
                    Some(g.n_rows() as f64)
                });
            assert_eq!(outcome.ok_modules(), 0, "the dropout never recovers");
        });
        scope.spawn(|| {
            let clock = MockClock::new();
            let outcome =
                run_fleet_with(&clean, 4, FleetPolicy::default(), &clock, 2, |_, g, _| {
                    Some(g.n_rows() as f64)
                });
            assert_eq!(outcome.ok_modules(), 1);
        });
    });

    let (faulty_coverage, failures) = faulty.take_coverage();
    assert_eq!(faulty_coverage.tasks, 1);
    assert_eq!(faulty_coverage.failed, 1);
    assert_eq!(failures.len(), 1);
    assert!(failures[0].contains("dropped out"), "{}", failures[0]);

    let (clean_coverage, clean_failures) = clean.take_coverage();
    assert_eq!(clean_coverage.tasks, 1);
    assert_eq!(clean_coverage.completed, 1);
    assert_eq!(clean_coverage.failed, 0);
    assert!(
        clean_failures.is_empty(),
        "the sibling's failure leaked: {clean_failures:?}"
    );
}
