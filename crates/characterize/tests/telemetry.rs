//! Integration tests for the telemetry wiring.
//!
//! Two invariants: fleet telemetry is a pure function of
//! `(config, n, policy)` — identical across worker counts — and a
//! disabled recorder leaves the scientific output byte-identical.
//!
//! The tests share the process-global recorder, so each one holds
//! [`guard`] for its whole body (tests within one binary run on
//! parallel threads by default).

use std::sync::{Mutex, MutexGuard};

use simra_characterize::config::ModuleUnderTest;
use simra_characterize::{
    fig5_power, run_fleet_with, run_sweep_with, ExperimentConfig, FleetPolicy, MockClock, Session,
    SweepPoint,
};
use simra_faults::{FaultPlan, ModuleFault, ModuleFaultKind};

fn guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Quick-scale config widened to four modules so multi-worker runs
/// actually schedule concurrently (≤ 1 module forces the serial path).
fn four_module_quick() -> ExperimentConfig {
    let mut config = ExperimentConfig::quick();
    while config.modules.len() < 4 {
        let seed = 100 + config.modules.len() as u64;
        config.modules.push(ModuleUnderTest {
            profile: simra_dram::VendorProfile::mfr_h_a_die(),
            seed,
        });
    }
    config
}

#[test]
fn fleet_telemetry_is_identical_across_worker_counts() {
    let _guard = guard();
    let recorder = simra_telemetry::global();
    recorder.enable();

    // A transient dropout on module 1 exercises the retry/backoff
    // events; recovery after the 2nd attempt keeps the run green.
    let mut config = four_module_quick();
    config.faults = Some(FaultPlan {
        modules: vec![ModuleFault {
            module_index: 1,
            kind: ModuleFaultKind::Dropout {
                at_group: 0,
                recover_after_attempts: Some(2),
            },
        }],
        ..FaultPlan::default()
    });
    let policy = FleetPolicy {
        max_attempts: 4,
        backoff_base_ms: 10.0,
        deadline_ms: None,
    };

    let mut snapshots = Vec::new();
    for workers in [1usize, 2, 4] {
        recorder.reset();
        // A fresh session per worker count: its coverage ledger (and any
        // lazily built backend state) dies with it, so nothing leaks
        // between iterations or into other tests.
        let session = Session::new(config.clone());
        let clock = MockClock::new();
        let outcome = run_fleet_with(&session, 4, policy, &clock, workers, |_, g, _| {
            Some(g.n_rows() as f64)
        });
        assert_eq!(outcome.ok_modules(), 4, "workers={workers}");
        snapshots.push((workers, recorder.snapshot()));
    }

    let (_, reference) = &snapshots[0];
    for (workers, snapshot) in &snapshots {
        assert_eq!(
            snapshot.counters, reference.counters,
            "counter values diverged at workers={workers}"
        );
        assert_eq!(
            snapshot.histograms, reference.histograms,
            "histogram values diverged at workers={workers}"
        );
    }

    let counter = |name: &str| {
        reference
            .counters
            .iter()
            .find(|c| c.module == "fleet" && c.name == name)
            .unwrap_or_else(|| panic!("fleet counter {name} missing"))
            .value
    };
    assert_eq!(counter("task_queued"), 4);
    assert_eq!(counter("task_completed"), 4);
    // Module 1 fails attempts 1 and 2, succeeds on attempt 3.
    assert_eq!(counter("task_retried"), 2);
    assert_eq!(counter("task_started"), 6);
    assert_eq!(counter("task_failed"), 0);
    assert_eq!(counter("task_panicked"), 0);
    // Grid/pool accounting: a single-point run is a 1 × 4 grid served by
    // the persistent executor. Every module chain's first acquisition
    // constructs its rig (4 misses); module 1's attempts 2 and 3 reuse
    // the rig its non-panicking earlier attempts returned (2 hits).
    assert_eq!(counter("grid_tasks"), 4);
    assert_eq!(counter("executor_reuse"), 1);
    assert_eq!(counter("pool_miss"), 4);
    assert_eq!(counter("pool_hit"), 2);
    let backoff = reference
        .histograms
        .iter()
        .find(|h| h.module == "fleet" && h.name == "backoff_charged_ms")
        .expect("backoff histogram missing");
    // Charges 10 · 2⁰ before attempt 2 and 10 · 2¹ before attempt 3.
    assert_eq!(backoff.count, 2);
    assert!((backoff.sum - 30.0).abs() < 1e-9);

    recorder.disable();
    recorder.reset();
}

#[test]
fn sweep_grid_and_rig_pool_counters_are_deterministic() {
    let _guard = guard();
    let recorder = simra_telemetry::global();
    recorder.enable();

    let mut config = four_module_quick();
    config.faults = Some(FaultPlan {
        modules: vec![ModuleFault {
            module_index: 1,
            kind: ModuleFaultKind::Dropout {
                at_group: 0,
                recover_after_attempts: Some(2),
            },
        }],
        ..FaultPlan::default()
    });
    let policy = FleetPolicy {
        max_attempts: 4,
        backoff_base_ms: 10.0,
        deadline_ms: None,
    };
    let points: Vec<SweepPoint<()>> = [2u32, 4, 8]
        .iter()
        .map(|&n| SweepPoint::new(n, ()))
        .collect();

    let mut snapshots = Vec::new();
    for workers in [1usize, 2, 4] {
        recorder.reset();
        let session = Session::new(config.clone());
        let clock = MockClock::new();
        let outcomes = run_sweep_with(
            &session,
            &points,
            policy,
            &clock,
            workers,
            |_: &(), _, g, _| Some(g.n_rows() as f64),
        );
        assert_eq!(outcomes.len(), 3, "workers={workers}");
        for outcome in &outcomes {
            assert_eq!(outcome.ok_modules(), 4, "workers={workers}");
        }
        snapshots.push((workers, recorder.snapshot()));
    }

    let (_, reference) = &snapshots[0];
    for (workers, snapshot) in &snapshots {
        assert_eq!(
            snapshot.counters, reference.counters,
            "counter values diverged at workers={workers}"
        );
        assert_eq!(
            snapshot.histograms, reference.histograms,
            "histogram values diverged at workers={workers}"
        );
    }

    let counter = |name: &str| {
        reference
            .counters
            .iter()
            .find(|c| c.module == "fleet" && c.name == name)
            .unwrap_or_else(|| panic!("fleet counter {name} missing"))
            .value
    };
    // The whole 3 × 4 grid is one submission to one borrowed executor.
    assert_eq!(counter("grid_tasks"), 12);
    assert_eq!(counter("task_queued"), 12);
    assert_eq!(counter("executor_reuse"), 1);
    // Each chain constructs its rig once (4 misses). Module 1 retries
    // twice per point (attempts 2 and 3 reuse the returned rig) and then
    // carries the rig to the next point: 9 acquisitions, 8 of them hits.
    // The three healthy chains each reuse across points: 3 acquisitions,
    // 2 hits. Totals: 4 misses, 8 + 3·2 = 14 hits.
    assert_eq!(counter("pool_miss"), 4);
    assert_eq!(counter("pool_hit"), 14);
    // Module 1: 2 retries per point; everyone completes in the end.
    assert_eq!(counter("task_retried"), 6);
    assert_eq!(counter("task_started"), 18);
    assert_eq!(counter("task_completed"), 12);
    assert_eq!(counter("task_failed"), 0);
    let backoff = reference
        .histograms
        .iter()
        .find(|h| h.module == "fleet" && h.name == "backoff_charged_ms")
        .expect("backoff histogram missing");
    // (10 + 20) ms charged per point for module 1's two retries.
    assert_eq!(backoff.count, 6);
    assert!((backoff.sum - 90.0).abs() < 1e-9);

    recorder.disable();
    recorder.reset();
}

#[test]
fn disabled_recorder_leaves_figure_output_byte_identical() {
    let _guard = guard();
    let recorder = simra_telemetry::global();
    let config = ExperimentConfig::quick();

    recorder.disable();
    recorder.reset();
    let session = Session::new(config);
    let baseline_fig3 = simra_characterize::fig3_activation_timing(&session).to_string();
    let baseline_fig5 = fig5_power(&session).to_string();
    assert_eq!(
        recorder
            .snapshot()
            .spans
            .iter()
            .map(|s| s.count)
            .sum::<u64>(),
        0,
        "disabled recorder must not record spans"
    );

    recorder.enable();
    recorder.reset();
    let instrumented_fig3 = simra_characterize::fig3_activation_timing(&session).to_string();
    let instrumented_fig5 = fig5_power(&session).to_string();
    let snapshot = recorder.snapshot();
    recorder.disable();
    recorder.reset();

    assert_eq!(baseline_fig3, instrumented_fig3);
    assert_eq!(baseline_fig5, instrumented_fig5);
    for figure in ["fig3", "fig5"] {
        let span = snapshot
            .spans
            .iter()
            .find(|s| s.module == "figure" && s.name == figure)
            .unwrap_or_else(|| panic!("span figure/{figure} missing"));
        assert_eq!(span.count, 1);
    }
}
