//! Figures 3 and 4: robustness of simultaneous many-row activation under
//! timing, temperature, and wordline voltage.
//!
//! Each figure submits its whole parameter grid as one [`run_sweep`](crate::fleet::run_sweep)
//! call, so the fleet walks every (module, point) task without per-point
//! thread spawns or module rebuilds; rows are then assembled from the
//! per-point sample sets, which arrive in exactly the nested-loop order
//! the points were enumerated in.
//!
//! The per-trial analog work dispatched by these points runs on the
//! tiled/batched hot path (`simra_analog::charge`,
//! [`ApaEngine::commit_survival_sum`]-style fused reductions) via the
//! core ops behind [`crate::backend`] — the figure code itself never
//! touches the kernel.
//!
//! [`ApaEngine::commit_survival_sum`]: simra_analog::ApaEngine::commit_survival_sum

use simra_core::metrics::{mean, pct, BoxStats};
use simra_dram::ApaTiming;
use simra_exec::TrialSpec;

use crate::backend::{sweep_trial_samples, trial_point, TrialPoint};
use crate::fleet::SweepPoint;
use crate::report::Table;
use crate::session::Session;

/// Row counts swept for activation experiments (the only N values COTS
/// chips can produce — Limitation 2).
pub const ACTIVATION_NS: [u32; 5] = [2, 4, 8, 16, 32];
/// t1 values of the Fig. 3 grid (ns).
pub const FIG3_T1: [f64; 3] = [1.5, 3.0, 6.0];
/// t2 values of the Fig. 3 grid (ns); larger t2 leaves the simultaneous
/// regime entirely (footnote 6).
pub const FIG3_T2: [f64; 2] = [1.5, 3.0];
/// Temperature sweep of Fig. 4a (°C).
pub const TEMPERATURES_C: [f64; 5] = [50.0, 60.0, 70.0, 80.0, 90.0];
/// V_PP sweep of Fig. 4b (V).
pub const VPP_LEVELS_V: [f64; 5] = [2.5, 2.4, 2.3, 2.2, 2.1];

/// Fig. 3: success-rate distribution of N-row activation for every (t1,
/// t2) combination. Rows are `(t1, t2)` pairs plus the distribution
/// statistic; columns are N. Values in percent.
pub fn fig3_activation_timing(session: &Session) -> Table {
    session.run_figure("fig3", |session| {
        let config = session.config();
        let columns = ACTIVATION_NS.iter().map(|n| format!("N={n}")).collect();
        let mut table = Table::new(
            "Fig. 3: simultaneous many-row activation success vs (t1, t2)",
            config.describe_scale(),
            columns,
        );
        let points: Vec<SweepPoint<TrialPoint>> = FIG3_T1
            .iter()
            .flat_map(|&t1| {
                FIG3_T2.iter().flat_map(move |&t2| {
                    let timing = ApaTiming::from_ns(t1, t2);
                    ACTIVATION_NS
                        .iter()
                        .map(move |&n| (n, TrialSpec::activation(timing)))
                })
            })
            .map(|(n, spec)| trial_point(config, n, spec))
            .collect();
        let mut sweeps = sweep_trial_samples(session, &points).into_iter();
        for &t1 in &FIG3_T1 {
            for &t2 in &FIG3_T2 {
                let mut means = Vec::new();
                let mut mins = Vec::new();
                for _ in &ACTIVATION_NS {
                    let samples = sweeps.next().expect("one sample set per sweep point");
                    let stats = BoxStats::from_samples(&samples);
                    means.push(pct(stats.mean));
                    mins.push(pct(stats.min));
                }
                table.push_row(format!("t1={t1} t2={t2} mean"), means);
                table.push_row(format!("t1={t1} t2={t2} min"), mins);
            }
        }
        table
    })
}

/// Fig. 4a: average activation success vs temperature (rows) per N
/// (columns), in percent.
pub fn fig4a_activation_temperature(session: &Session) -> Table {
    session.run_figure("fig4a", |session| {
        let config = session.config();
        let columns = ACTIVATION_NS.iter().map(|n| format!("N={n}")).collect();
        let mut table = Table::new(
            "Fig. 4a: many-row activation success vs temperature",
            config.describe_scale(),
            columns,
        );
        let points: Vec<SweepPoint<TrialPoint>> = TEMPERATURES_C
            .iter()
            .flat_map(|&t| {
                ACTIVATION_NS.iter().map(move |&n| {
                    (
                        n,
                        TrialSpec::activation(ApaTiming::best_for_activation()).at_temperature(t),
                    )
                })
            })
            .map(|(n, spec)| trial_point(config, n, spec))
            .collect();
        let mut sweeps = sweep_trial_samples(session, &points).into_iter();
        for &t in &TEMPERATURES_C {
            let values = ACTIVATION_NS
                .iter()
                .map(|_| {
                    let samples = sweeps.next().expect("one sample set per sweep point");
                    pct(mean(&samples))
                })
                .collect();
            table.push_row(format!("{t} C"), values);
        }
        table
    })
}

/// Fig. 4b: average activation success vs V_PP (rows) per N (columns),
/// in percent.
pub fn fig4b_activation_voltage(session: &Session) -> Table {
    session.run_figure("fig4b", |session| {
        let config = session.config();
        let columns = ACTIVATION_NS.iter().map(|n| format!("N={n}")).collect();
        let mut table = Table::new(
            "Fig. 4b: many-row activation success vs wordline voltage",
            config.describe_scale(),
            columns,
        );
        let points: Vec<SweepPoint<TrialPoint>> = VPP_LEVELS_V
            .iter()
            .flat_map(|&v| {
                ACTIVATION_NS.iter().map(move |&n| {
                    (
                        n,
                        TrialSpec::activation(ApaTiming::best_for_activation()).at_vpp(v),
                    )
                })
            })
            .map(|(n, spec)| trial_point(config, n, spec))
            .collect();
        let mut sweeps = sweep_trial_samples(session, &points).into_iter();
        for &v in &VPP_LEVELS_V {
            let values = ACTIVATION_NS
                .iter()
                .map(|_| {
                    let samples = sweeps.next().expect("one sample set per sweep point");
                    pct(mean(&samples))
                })
                .collect();
            table.push_row(format!("{v} V"), values);
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    fn quick_session() -> Session {
        Session::new(ExperimentConfig::quick())
    }

    #[test]
    fn fig3_best_timing_is_high_and_weak_timing_is_lower() {
        let t = fig3_activation_timing(&quick_session());
        let best = t.get("t1=3 t2=3 mean", "N=32").unwrap();
        let weak = t.get("t1=1.5 t2=1.5 mean", "N=32").unwrap();
        assert!(best > 99.0, "Obs. 1: best timing ≥ 99.85 %, got {best}");
        assert!(
            best - weak > 5.0,
            "Obs. 2: grid-minimum drop, {best} vs {weak}"
        );
    }

    #[test]
    fn fig4a_temperature_effect_is_small() {
        let t = fig4a_activation_temperature(&quick_session());
        for n in ACTIVATION_NS {
            let col = format!("N={n}");
            let at50 = t.get("50 C", &col).unwrap();
            let at90 = t.get("90 C", &col).unwrap();
            assert!(
                (at50 - at90).abs() < 1.0,
                "Obs. 3: small temp effect, {at50} vs {at90}"
            );
        }
    }

    #[test]
    fn fig4b_voltage_effect_is_small_and_monotone() {
        let t = fig4b_activation_voltage(&quick_session());
        let at25 = t.get("2.5 V", "N=32").unwrap();
        let at21 = t.get("2.1 V", "N=32").unwrap();
        assert!(at25 >= at21, "lower V_PP cannot help");
        assert!(
            at25 - at21 < 2.0,
            "Obs. 4: ≤ ~0.41 % drop, got {}",
            at25 - at21
        );
    }
}
