//! Figures 6–9: MAJX robustness under timing, data pattern, temperature,
//! and wordline voltage.
//!
//! Each figure submits its whole (X, N, timing, pattern, operating-point)
//! grid as one [`run_sweep`](crate::fleet::run_sweep) call; rows are assembled from the per-point
//! sample sets, which arrive in the enumeration order of the points.
//!
//! MAJX trial batches execute on the batched sense rig
//! ([`simra_analog::SenseBatch`] → `sense_batch`/`margins_batch` inside
//! `simra_core::maj`): operand images for a whole batch are written and
//! snapshotted first, then sensed in one batched kernel pass.

use simra_core::metrics::{mean, pct, BoxStats};
use simra_dram::{ApaTiming, DataPattern};
use simra_exec::TrialSpec;

use crate::backend::{sweep_trial_samples, trial_point, TrialPoint};
use crate::config::ExperimentConfig;
use crate::fleet::SweepPoint;
use crate::report::Table;
use crate::session::Session;

/// The MAJX operand counts characterized (§5).
pub const MAJ_XS: [usize; 4] = [3, 5, 7, 9];
/// t1 grid of Fig. 6 (ns).
pub const FIG6_T1: [f64; 3] = [1.5, 3.0, 6.0];
/// t2 grid of Fig. 6 (ns).
pub const FIG6_T2: [f64; 2] = [1.5, 3.0];

/// N values on which MAJX is feasible (N ≥ X, N a reachable power of two).
pub fn feasible_ns(x: usize) -> Vec<u32> {
    [4u32, 8, 16, 32]
        .into_iter()
        .filter(|n| *n as usize >= x)
        .collect()
}

fn maj_point(
    config: &ExperimentConfig,
    n: u32,
    x: usize,
    timing: ApaTiming,
    pattern: DataPattern,
    temperature_c: Option<f64>,
    vpp_v: Option<f64>,
) -> SweepPoint<TrialPoint> {
    let mut spec = TrialSpec::majx(x, timing, pattern);
    if let Some(t) = temperature_c {
        spec = spec.at_temperature(t);
    }
    if let Some(v) = vpp_v {
        spec = spec.at_vpp(v);
    }
    trial_point(config, n, spec)
}

/// Fig. 6: MAJ3 success distribution vs (t1, t2) and N ∈ {4, 8, 16, 32}.
/// Values in percent.
pub fn fig6_maj3_timing(session: &Session) -> Table {
    session.run_figure("fig6", |session| {
        let config = session.config();
        let ns = feasible_ns(3);
        let columns = ns.iter().map(|n| format!("N={n}")).collect();
        let mut table = Table::new(
            "Fig. 6: MAJ3 success vs (t1, t2) and row count (input replication)",
            config.describe_scale(),
            columns,
        );
        let points: Vec<SweepPoint<TrialPoint>> = FIG6_T1
            .iter()
            .flat_map(|&t1| {
                let ns = &ns;
                FIG6_T2.iter().flat_map(move |&t2| {
                    let timing = ApaTiming::from_ns(t1, t2);
                    ns.iter().map(move |&n| {
                        maj_point(config, n, 3, timing, DataPattern::Random, None, None)
                    })
                })
            })
            .collect();
        let mut sweeps = sweep_trial_samples(session, &points).into_iter();
        for &t1 in &FIG6_T1 {
            for &t2 in &FIG6_T2 {
                let mut means = Vec::new();
                let mut medians = Vec::new();
                for _ in &ns {
                    let samples = sweeps.next().expect("one sample set per sweep point");
                    let stats = BoxStats::from_samples(&samples);
                    means.push(pct(stats.mean));
                    medians.push(pct(stats.median));
                }
                table.push_row(format!("t1={t1} t2={t2} mean"), means);
                table.push_row(format!("t1={t1} t2={t2} median"), medians);
            }
        }
        table
    })
}

/// Fig. 7: MAJX success per data pattern, at the best MAJX timing,
/// with the maximum feasible replication (N = 32). Values in percent.
pub fn fig7_majx_patterns(session: &Session) -> Table {
    session.run_figure("fig7", |session| {
        let config = session.config();
        let columns = MAJ_XS.iter().map(|x| format!("MAJ{x}")).collect();
        let mut table = Table::new(
            "Fig. 7: MAJX success per data pattern (N = 32, best timing)",
            config.describe_scale(),
            columns,
        );
        let timing = ApaTiming::best_for_majx();
        let mut points: Vec<SweepPoint<TrialPoint>> = DataPattern::ALL
            .iter()
            .flat_map(|&pattern| {
                MAJ_XS
                    .iter()
                    .map(move |&x| maj_point(config, 32, x, timing, pattern, None, None))
            })
            .collect();
        // The replication sweep of Fig. 7's x-axis: random pattern per N.
        points.extend(MAJ_XS.iter().flat_map(|&x| {
            feasible_ns(x)
                .into_iter()
                .map(move |n| maj_point(config, n, x, timing, DataPattern::Random, None, None))
        }));
        let mut sweeps = sweep_trial_samples(session, &points).into_iter();
        for pattern in DataPattern::ALL {
            let values = MAJ_XS
                .iter()
                .map(|_| {
                    let samples = sweeps.next().expect("one sample set per sweep point");
                    pct(mean(&samples))
                })
                .collect();
            table.push_row(pattern.to_string(), values);
        }
        for &x in &MAJ_XS {
            for n in feasible_ns(x) {
                let samples = sweeps.next().expect("one sample set per sweep point");
                let s = pct(mean(&samples));
                // Per-N sweep rows carry one value in the matching MAJX
                // column; the rest is NaN (infeasible/not measured here).
                let mut row = vec![f64::NAN; MAJ_XS.len()];
                let xi = MAJ_XS.iter().position(|v| *v == x).expect("x from MAJ_XS");
                row[xi] = s;
                table.push_row(format!("random N={n} MAJ{x}"), row);
            }
        }
        table
    })
}

/// Fig. 8: MAJX success vs temperature (random pattern, N = 32 and the
/// no-replication N = 4 for MAJ3, to show Obs. 12). Values in percent.
pub fn fig8_majx_temperature(session: &Session) -> Table {
    session.run_figure("fig8", |session| {
        let config = session.config();
        let temps = crate::activation::TEMPERATURES_C;
        let columns = temps.iter().map(|t| format!("{t}C")).collect();
        let mut table = Table::new(
            "Fig. 8: MAJX success vs temperature",
            config.describe_scale(),
            columns,
        );
        let timing = ApaTiming::best_for_majx();
        let mut points: Vec<SweepPoint<TrialPoint>> = MAJ_XS
            .iter()
            .flat_map(|&x| {
                temps.iter().map(move |&t| {
                    maj_point(config, 32, x, timing, DataPattern::Random, Some(t), None)
                })
            })
            .collect();
        points.extend(
            temps
                .iter()
                .map(|&t| maj_point(config, 4, 3, timing, DataPattern::Random, Some(t), None)),
        );
        let mut sweeps = sweep_trial_samples(session, &points).into_iter();
        for &x in &MAJ_XS {
            let values = temps
                .iter()
                .map(|_| {
                    let samples = sweeps.next().expect("one sample set per sweep point");
                    pct(mean(&samples))
                })
                .collect();
            table.push_row(format!("MAJ{x} N=32"), values);
        }
        let maj3_n4 = temps
            .iter()
            .map(|_| {
                let samples = sweeps.next().expect("one sample set per sweep point");
                pct(mean(&samples))
            })
            .collect();
        table.push_row("MAJ3 N=4", maj3_n4);
        table
    })
}

/// Fig. 9: MAJX success vs wordline voltage (random pattern, N = 32).
/// Values in percent.
pub fn fig9_majx_voltage(session: &Session) -> Table {
    session.run_figure("fig9", |session| {
        let config = session.config();
        let vpps = crate::activation::VPP_LEVELS_V;
        let columns = vpps.iter().map(|v| format!("{v}V")).collect();
        let mut table = Table::new(
            "Fig. 9: MAJX success vs wordline voltage",
            config.describe_scale(),
            columns,
        );
        let timing = ApaTiming::best_for_majx();
        let points: Vec<SweepPoint<TrialPoint>> = MAJ_XS
            .iter()
            .flat_map(|&x| {
                vpps.iter().map(move |&v| {
                    maj_point(config, 32, x, timing, DataPattern::Random, None, Some(v))
                })
            })
            .collect();
        let mut sweeps = sweep_trial_samples(session, &points).into_iter();
        for &x in &MAJ_XS {
            let values = vpps
                .iter()
                .map(|_| {
                    let samples = sweeps.next().expect("one sample set per sweep point");
                    pct(mean(&samples))
                })
                .collect();
            table.push_row(format!("MAJ{x} N=32"), values);
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_session() -> Session {
        Session::new(ExperimentConfig::quick())
    }

    #[test]
    fn feasible_ns_respects_x() {
        assert_eq!(feasible_ns(3), vec![4, 8, 16, 32]);
        assert_eq!(feasible_ns(5), vec![8, 16, 32]);
        assert_eq!(feasible_ns(9), vec![16, 32]);
    }

    #[test]
    fn fig7_success_ordering_and_feasibility() {
        let t = fig7_majx_patterns(&quick_session());
        let mut p = crate::observations::SeriesProbe::default();
        let maj3 = p.get(&t, "random", "MAJ3");
        let maj5 = p.get(&t, "random", "MAJ5");
        let maj7 = p.get(&t, "random", "MAJ7");
        let maj9 = p.get(&t, "random", "MAJ9");
        assert!(p.missing().is_empty(), "missing series: {:?}", p.missing());
        assert!(
            maj3 > maj5 && maj5 > maj7 && maj7 > maj9,
            "{maj3} {maj5} {maj7} {maj9}"
        );
        assert!(maj3 > 95.0, "Obs. 7 ballpark (paper 99.0), got {maj3}");
        assert!(maj9 < 25.0, "Obs. 8 ballpark (paper 5.91), got {maj9}");
    }

    #[test]
    fn fig7_random_is_worst_pattern() {
        let t = fig7_majx_patterns(&quick_session());
        let mut p = crate::observations::SeriesProbe::default();
        for x in ["MAJ5", "MAJ7"] {
            let random = p.get(&t, "random", x);
            let solid = p.get(&t, "0x00/0xFF", x);
            assert!(p.missing().is_empty(), "missing series: {:?}", p.missing());
            assert!(
                solid >= random,
                "Obs. 9: {x} solid {solid} ≥ random {random}"
            );
        }
    }

    #[test]
    fn fig6_replication_beats_no_replication() {
        let t = fig6_maj3_timing(&quick_session());
        let mut p = crate::observations::SeriesProbe::default();
        let n32 = p.get(&t, "t1=1.5 t2=3 mean", "N=32");
        let n4 = p.get(&t, "t1=1.5 t2=3 mean", "N=4");
        // Obs. 7: (1.5, 3) beats (3, 3) clearly at N = 32.
        let t33 = p.get(&t, "t1=3 t2=3 mean", "N=32");
        assert!(p.missing().is_empty(), "missing series: {:?}", p.missing());
        assert!(n32 - n4 > 10.0, "Obs. 6: {n32} vs {n4}");
        assert!(n32 - t33 > 20.0, "Obs. 7: {n32} vs {t33}");
    }
}
