//! Multi-process sharded sweep execution: the coordinator side.
//!
//! A sharded campaign splits every sweep's (module × point) grid across
//! `N` worker *processes*. Each worker is the `repro` binary re-invoked
//! in its hidden `--shard-worker i/N` mode: it runs the full campaign
//! serially — so its sweep numbering matches every other process — but
//! each sweep schedules and journals only the slots
//! [`slot_shard`] assigns to shard `i`,
//! into the worker's own checkpoint directory (`<root>/shard-i`). The
//! [`ShardCoordinator`] spawns the workers, respawns crashed ones with
//! the fleet's charged-backoff policy (a killed worker resumes from its
//! own journal, exactly like a single-process kill), then merges the
//! per-shard journals with [`merge_sweep_journals`]
//! into `<root>/merged` — journals byte-identical to an unsharded run's
//! — and merges the workers' telemetry snapshots into
//! `<root>/telemetry-merged.json`.
//!
//! The caller (the `repro` binary's `--shards N` mode) finishes by
//! arming `<root>/merged` as an ordinary checkpoint session and running
//! the campaign in-process: every sweep replays instantly from the
//! merged journals, so the coordinator's stdout and metrics scoreboard
//! are byte-identical to a single-process run.
//!
//! # Worker exit-code contract
//!
//! * `0` — the shard's slots are all journaled and compacted; done.
//! * `2` — configuration or manifest error (CLI rejection, checkpoint
//!   mismatch, corrupt journal). Deterministic, so the coordinator
//!   fails fast instead of retrying.
//! * anything else (including death by signal) — transient; the
//!   coordinator respawns the worker, up to the policy's
//!   `max_attempts`, sleeping the fleet's charged backoff between
//!   attempts. The respawn passes `--resume` iff the shard directory
//!   already holds a session, so first-attempt crashes before arming
//!   restart cleanly.

use std::fs::{self, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitStatus, Stdio};
use std::time::Duration;

use simra_telemetry::Snapshot;

use crate::checkpoint::{merge_sweep_journals, CheckpointError};
use crate::fleet::{backoff_charge_ms, FleetPolicy};

pub use crate::checkpoint::slot_shard;

/// Why a sharded campaign could not complete.
#[derive(Debug)]
pub enum ShardError {
    /// A worker process could not be spawned at all.
    Spawn {
        /// The shard whose worker failed to spawn.
        shard: u32,
        /// The underlying error.
        source: io::Error,
    },
    /// A worker kept failing transiently until its attempts ran out.
    WorkerFailed {
        /// The shard whose worker failed.
        shard: u32,
        /// Attempts consumed.
        attempts: u32,
        /// Rendering of the final exit status.
        status: String,
    },
    /// A worker exited with code 2: a configuration or manifest error
    /// that a retry cannot fix (see its `worker.log`).
    WorkerRejected {
        /// The shard whose worker refused to run.
        shard: u32,
        /// The worker's stderr log path.
        log: PathBuf,
    },
    /// A shard directory is missing a journal that other shards have —
    /// the shard sets must be identical before merging.
    MissingJournal {
        /// The shard missing (or holding an extra) journal.
        shard: u32,
        /// The journal file name involved.
        name: String,
    },
    /// No journals were found to merge.
    NoJournals {
        /// The (first) shard directory that was scanned.
        dir: PathBuf,
    },
    /// Journal loading, validation, or merging failed.
    Checkpoint(CheckpointError),
    /// A filesystem operation failed.
    Io {
        /// What was being attempted.
        context: String,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A worker's telemetry snapshot could not be parsed.
    Telemetry {
        /// The shard whose snapshot is bad.
        shard: u32,
        /// What is wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Spawn { shard, source } => {
                write!(f, "spawning shard {shard} worker: {source}")
            }
            ShardError::WorkerFailed {
                shard,
                attempts,
                status,
            } => write!(
                f,
                "shard {shard} worker failed after {attempts} attempt(s) ({status})"
            ),
            ShardError::WorkerRejected { shard, log } => write!(
                f,
                "shard {shard} worker exited with a configuration error (exit 2); \
                 see {}",
                log.display()
            ),
            ShardError::MissingJournal { shard, name } => write!(
                f,
                "shard {shard} disagrees with shard 0 about journal {name}; \
                 all shards must run the identical campaign"
            ),
            ShardError::NoJournals { dir } => {
                write!(f, "no sweep journals found under {}", dir.display())
            }
            ShardError::Checkpoint(e) => write!(f, "{e}"),
            ShardError::Io {
                context,
                path,
                source,
            } => write!(f, "{context} {}: {source}", path.display()),
            ShardError::Telemetry { shard, detail } => {
                write!(f, "shard {shard} telemetry snapshot: {detail}")
            }
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Spawn { source, .. } | ShardError::Io { source, .. } => Some(source),
            ShardError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ShardError {
    fn from(e: CheckpointError) -> Self {
        ShardError::Checkpoint(e)
    }
}

fn io_err(context: &str, path: &Path, source: io::Error) -> ShardError {
    ShardError::Io {
        context: context.to_string(),
        path: path.to_path_buf(),
        source,
    }
}

fn describe_status(status: &ExitStatus) -> String {
    match status.code() {
        Some(code) => format!("exit code {code}"),
        None => format!("{status}"), // killed by signal; Display names it
    }
}

/// What a completed merge produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeReport {
    /// Number of sweeps merged.
    pub sweeps: usize,
    /// Total records across all merged journals.
    pub records: usize,
    /// Where the merged worker telemetry landed, when any worker wrote
    /// a snapshot.
    pub telemetry: Option<PathBuf>,
}

/// Spawns, supervises, and merges a fleet of shard-worker processes.
/// See the module docs for the protocol.
#[derive(Debug)]
pub struct ShardCoordinator {
    exe: PathBuf,
    base_args: Vec<String>,
    root: PathBuf,
    shards: u32,
    policy: FleetPolicy,
}

impl ShardCoordinator {
    /// A coordinator that re-invokes `exe` (the current binary) with
    /// `base_args` (scale/backend/faults flags) plus the shard-worker
    /// flags, journaling under `root`, with the default retry policy.
    pub fn new(exe: PathBuf, base_args: Vec<String>, root: PathBuf, shards: u32) -> Self {
        assert!(shards > 0, "a sharded run needs at least one shard");
        ShardCoordinator {
            exe,
            base_args,
            root,
            shards,
            policy: FleetPolicy::default(),
        }
    }

    /// Overrides the respawn policy (`max_attempts` bounds worker
    /// respawns, `backoff_base_ms` seeds the inter-attempt sleep).
    pub fn with_policy(mut self, policy: FleetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shard `i`'s private checkpoint directory.
    pub fn shard_dir(&self, shard: u32) -> PathBuf {
        self.root.join(format!("shard-{shard}"))
    }

    /// Where the merged journals land; arm this as an ordinary
    /// checkpoint session to replay the full campaign in-process.
    pub fn merged_dir(&self) -> PathBuf {
        self.root.join("merged")
    }

    /// Where the merged worker telemetry snapshot lands.
    pub fn telemetry_path(&self) -> PathBuf {
        self.root.join("telemetry-merged.json")
    }

    /// Runs all workers to completion (one supervisor thread each),
    /// respawning transient failures per the policy. Returns the first
    /// shard's error if any shard ultimately fails.
    pub fn run_workers(&self) -> Result<(), ShardError> {
        std::thread::scope(|scope| {
            let monitors: Vec<_> = (0..self.shards)
                .map(|shard| scope.spawn(move || self.run_worker(shard)))
                .collect();
            monitors
                .into_iter()
                .map(|m| m.join().expect("shard monitor thread panicked"))
                .collect::<Result<Vec<()>, ShardError>>()
                .map(|_| ())
        })
    }

    /// Supervises one shard's worker process through its attempts.
    fn run_worker(&self, shard: u32) -> Result<(), ShardError> {
        let dir = self.shard_dir(shard);
        fs::create_dir_all(&dir).map_err(|e| io_err("creating shard dir", &dir, e))?;
        let log_path = dir.join("worker.log");
        let max_attempts = self.policy.max_attempts.max(1);
        for attempt in 1..=max_attempts {
            // Auto-detect resume: a crash before the session file became
            // durable restarts fresh; anything later resumes.
            let resume = dir.join("session.json").exists();
            let log = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&log_path)
                .map_err(|e| io_err("opening worker log", &log_path, e))?;
            let mut cmd = Command::new(&self.exe);
            cmd.args(&self.base_args)
                .arg("--shard-worker")
                .arg(format!("{shard}/{}", self.shards))
                .arg("--checkpoint-dir")
                .arg(&dir)
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::from(log));
            if resume {
                cmd.arg("--resume");
            }
            let status = cmd
                .status()
                .map_err(|e| ShardError::Spawn { shard, source: e })?;
            match status.code() {
                Some(0) => return Ok(()),
                Some(2) => {
                    return Err(ShardError::WorkerRejected {
                        shard,
                        log: log_path,
                    })
                }
                _ => {
                    if attempt == max_attempts {
                        return Err(ShardError::WorkerFailed {
                            shard,
                            attempts: attempt,
                            status: describe_status(&status),
                        });
                    }
                    let charge = backoff_charge_ms(self.policy.backoff_base_ms, attempt + 1);
                    std::thread::sleep(Duration::from_millis(charge as u64));
                }
            }
        }
        unreachable!("the attempt loop returns on success, rejection, or exhaustion")
    }

    /// Merges the per-shard journals into [`ShardCoordinator::merged_dir`]
    /// and the workers' telemetry snapshots into
    /// [`ShardCoordinator::telemetry_path`]. All shards must hold the
    /// identical set of sweep journals, each complete for its slots.
    pub fn merge(&self) -> Result<MergeReport, ShardError> {
        let reference = sweep_journal_names(&self.shard_dir(0))?;
        if reference.is_empty() {
            return Err(ShardError::NoJournals {
                dir: self.shard_dir(0),
            });
        }
        for shard in 1..self.shards {
            let names = sweep_journal_names(&self.shard_dir(shard))?;
            if names != reference {
                let name = reference
                    .iter()
                    .find(|n| !names.contains(n))
                    .or_else(|| names.iter().find(|n| !reference.contains(n)))
                    .expect("unequal sorted sets differ in at least one element")
                    .clone();
                return Err(ShardError::MissingJournal { shard, name });
            }
        }
        let merged_dir = self.merged_dir();
        fs::create_dir_all(&merged_dir)
            .map_err(|e| io_err("creating merged dir", &merged_dir, e))?;
        let mut records = 0usize;
        for name in &reference {
            let inputs: Vec<PathBuf> = (0..self.shards)
                .map(|shard| self.shard_dir(shard).join(name))
                .collect();
            records += merge_sweep_journals(&inputs, &merged_dir.join(name))?;
        }
        let mut snapshots = Vec::new();
        for shard in 0..self.shards {
            let path = self.shard_dir(shard).join("telemetry.json");
            if !path.exists() {
                continue;
            }
            let text =
                fs::read_to_string(&path).map_err(|e| io_err("reading telemetry", &path, e))?;
            snapshots.push(
                Snapshot::parse(text.trim()).map_err(|e| ShardError::Telemetry {
                    shard,
                    detail: e.to_string(),
                })?,
            );
        }
        let telemetry = if snapshots.is_empty() {
            None
        } else {
            let merged = Snapshot::merge_all(&snapshots);
            let path = self.telemetry_path();
            fs::write(&path, merged.to_json() + "\n")
                .map_err(|e| io_err("writing merged telemetry", &path, e))?;
            Some(path)
        };
        Ok(MergeReport {
            sweeps: reference.len(),
            records,
            telemetry,
        })
    }

    /// Runs the workers, then merges: the whole coordinator lifecycle
    /// short of the final in-process replay (which needs the campaign
    /// closure and so lives with the caller).
    pub fn execute(&self) -> Result<MergeReport, ShardError> {
        self.run_workers()?;
        self.merge()
    }
}

/// Sorted `*.journal` file names under a shard directory. Lexicographic
/// order is sweep order because ids are zero-padded (`sweep-0007`).
fn sweep_journal_names(dir: &Path) -> Result<Vec<String>, ShardError> {
    let entries = fs::read_dir(dir).map_err(|e| io_err("reading shard dir", dir, e))?;
    let mut names: Vec<String> = entries
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.ends_with(".journal").then_some(name)
        })
        .collect();
    names.sort();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "simra-shard-{}-{}-{tag}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn slot_shard_partitions_the_grid_completely_and_evenly() {
        for (modules, points, count) in [(1usize, 1usize, 1u32), (2, 4, 4), (3, 5, 4), (4, 7, 16)] {
            let mut per_shard = vec![0usize; count as usize];
            for module in 0..modules {
                for point in 0..points {
                    let shard = slot_shard(module, point, points, count);
                    assert!(shard < count);
                    per_shard[shard as usize] += 1;
                }
            }
            assert_eq!(per_shard.iter().sum::<usize>(), modules * points);
            let (lo, hi) = (
                per_shard.iter().min().unwrap(),
                per_shard.iter().max().unwrap(),
            );
            assert!(hi - lo <= 1, "balanced to within one slot: {per_shard:?}");
        }
    }

    #[test]
    fn merge_refuses_an_empty_shard_directory() {
        let dir = scratch("empty");
        let coord = ShardCoordinator::new(PathBuf::from("/bin/true"), vec![], dir.clone(), 2);
        fs::create_dir_all(coord.shard_dir(0)).unwrap();
        fs::create_dir_all(coord.shard_dir(1)).unwrap();
        assert!(matches!(coord.merge(), Err(ShardError::NoJournals { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_refuses_disagreeing_journal_sets() {
        let dir = scratch("disagree");
        let coord = ShardCoordinator::new(PathBuf::from("/bin/true"), vec![], dir.clone(), 2);
        fs::create_dir_all(coord.shard_dir(0)).unwrap();
        fs::create_dir_all(coord.shard_dir(1)).unwrap();
        fs::write(coord.shard_dir(0).join("sweep-0000.journal"), b"").unwrap();
        match coord.merge() {
            Err(ShardError::MissingJournal { shard: 1, name }) => {
                assert_eq!(name, "sweep-0000.journal");
            }
            other => panic!("expected MissingJournal, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    mod process {
        use super::*;
        use std::os::unix::fs::PermissionsExt;

        /// Writes an executable shell script that logs each invocation
        /// (its args, one line per run) to `<dir>/calls` and exits with
        /// `code`.
        fn fake_worker(dir: &Path, code: i32) -> PathBuf {
            let path = dir.join("fake-worker.sh");
            let calls = dir.join("calls");
            fs::write(
                &path,
                format!(
                    "#!/bin/sh\necho \"$@\" >> {}\nexit {code}\n",
                    calls.display()
                ),
            )
            .unwrap();
            fs::set_permissions(&path, fs::Permissions::from_mode(0o755)).unwrap();
            path
        }

        fn call_count(dir: &Path) -> usize {
            fs::read_to_string(dir.join("calls"))
                .map(|s| s.lines().count())
                .unwrap_or(0)
        }

        #[test]
        fn transient_failures_are_retried_to_exhaustion() {
            let dir = scratch("retry");
            let exe = fake_worker(&dir, 7);
            let policy = FleetPolicy {
                max_attempts: 3,
                backoff_base_ms: 0.0,
                ..FleetPolicy::default()
            };
            let coord = ShardCoordinator::new(exe, vec!["quick".into()], dir.clone(), 1)
                .with_policy(policy);
            match coord.run_workers() {
                Err(ShardError::WorkerFailed {
                    shard: 0,
                    attempts: 3,
                    status,
                }) => assert!(status.contains("7"), "{status}"),
                other => panic!("expected WorkerFailed after 3 attempts, got {other:?}"),
            }
            assert_eq!(call_count(&dir), 3, "one spawn per attempt");
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn config_errors_fail_fast_without_retry() {
            let dir = scratch("reject");
            let exe = fake_worker(&dir, 2);
            let coord = ShardCoordinator::new(exe, vec![], dir.clone(), 1);
            match coord.run_workers() {
                Err(ShardError::WorkerRejected { shard: 0, log }) => {
                    assert!(log.ends_with("worker.log"));
                }
                other => panic!("expected WorkerRejected, got {other:?}"),
            }
            assert_eq!(call_count(&dir), 1, "exit 2 must not be retried");
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn successful_workers_receive_the_shard_protocol_args() {
            let dir = scratch("protocol");
            let exe = fake_worker(&dir, 0);
            let coord = ShardCoordinator::new(
                exe,
                vec!["quick".into(), "--backend".into(), "surrogate".into()],
                dir.clone(),
                2,
            );
            coord.run_workers().expect("exit 0 workers succeed");
            let calls = fs::read_to_string(dir.join("calls")).unwrap();
            let mut lines: Vec<&str> = calls.lines().collect();
            lines.sort();
            assert_eq!(lines.len(), 2);
            for (shard, line) in lines.iter().enumerate() {
                assert!(
                    line.starts_with("quick --backend surrogate --shard-worker"),
                    "{line}"
                );
                assert!(
                    line.contains(&format!("--shard-worker {shard}/2")),
                    "{line}"
                );
                assert!(
                    line.contains(&format!(
                        "--checkpoint-dir {}",
                        coord.shard_dir(shard as u32).display()
                    )),
                    "{line}"
                );
                assert!(
                    !line.contains("--resume"),
                    "no session yet, so no --resume: {line}"
                );
            }
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn respawn_resumes_once_a_session_exists() {
            let dir = scratch("respawn");
            // The fake worker "arms" its session by creating
            // session.json, then crashes — the second attempt must pass
            // --resume.
            let path = dir.join("fake-worker.sh");
            let calls = dir.join("calls");
            fs::write(
                &path,
                format!(
                    "#!/bin/sh\necho \"$@\" >> {}\nwhile [ $# -gt 1 ]; do\n  if [ \"$1\" = \"--checkpoint-dir\" ]; then touch \"$2/session.json\"; fi\n  shift\ndone\nexit 9\n",
                    calls.display()
                ),
            )
            .unwrap();
            fs::set_permissions(&path, fs::Permissions::from_mode(0o755)).unwrap();
            let policy = FleetPolicy {
                max_attempts: 2,
                backoff_base_ms: 0.0,
                ..FleetPolicy::default()
            };
            let coord = ShardCoordinator::new(path, vec![], dir.clone(), 1).with_policy(policy);
            assert!(matches!(
                coord.run_workers(),
                Err(ShardError::WorkerFailed { attempts: 2, .. })
            ));
            let calls = fs::read_to_string(dir.join("calls")).unwrap();
            let lines: Vec<&str> = calls.lines().collect();
            assert_eq!(lines.len(), 2);
            assert!(!lines[0].contains("--resume"), "{}", lines[0]);
            assert!(lines[1].contains("--resume"), "{}", lines[1]);
            let _ = fs::remove_dir_all(&dir);
        }
    }
}
