//! Programmatic evaluation of the paper's 18 observations.
//!
//! Each observation is re-stated as a measurable predicate over the
//! characterization runners and evaluated at the configured scale; the
//! result records what was measured so the repro binary can print a
//! paper-vs-model scoreboard (the data behind EXPERIMENTS.md).
//!
//! Lookups go through `SeriesProbe` so a series missing from a figure
//! table is reported as such (`data_missing = true`, counted separately
//! in the scoreboard) instead of silently comparing against NaN.

use serde::{Deserialize, Serialize};
use simra_telemetry::{Counter, Recorder};

use crate::activation::{
    fig3_activation_timing, fig4a_activation_temperature, fig4b_activation_voltage,
};
use crate::majx::{fig6_maj3_timing, fig7_majx_patterns, fig8_majx_temperature, fig9_majx_voltage};
use crate::mrc::{
    fig10_mrc_timing, fig11_mrc_patterns, fig12a_mrc_temperature, fig12b_mrc_voltage,
};
use crate::power::fig5_power;
use crate::report::Table;
use crate::session::Session;

/// One evaluated observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationReport {
    /// Observation number (1–18).
    pub id: u8,
    /// The paper's claim, condensed.
    pub claim: String,
    /// What this model measured.
    pub measured: String,
    /// Whether the claim holds in the model.
    pub holds: bool,
    /// True when the verdict could not be measured because one or more
    /// input series were missing from the figure tables. Such reports
    /// always have `holds == false` and are counted separately from
    /// genuine mismatches in the scoreboard.
    pub data_missing: bool,
}

impl std::fmt::Display for ObservationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verdict = if self.data_missing {
            "??"
        } else if self.holds {
            "ok"
        } else {
            "XX"
        };
        write!(
            f,
            "Obs. {:>2} [{}] {} — measured: {}",
            self.id, verdict, self.claim, self.measured
        )
    }
}

/// Collects the series lookups behind one observation (or one figure
/// test), recording any that are missing from their table. Shared with
/// the figure runners' tests, which used to `.unwrap()` lookups and
/// panic with no hint of *which* series vanished.
pub(crate) struct SeriesProbe {
    missing: Vec<String>,
    data_missing: Counter,
}

impl Default for SeriesProbe {
    /// A probe reporting misses to the process-global recorder — what
    /// the figure tests construct.
    fn default() -> Self {
        SeriesProbe::recorded_by(simra_telemetry::global())
    }
}

impl SeriesProbe {
    /// A probe whose `observations/data_missing` counter reports to
    /// `recorder` — one per session in [`check_observations`].
    pub(crate) fn recorded_by(recorder: &Recorder) -> Self {
        SeriesProbe {
            missing: Vec::new(),
            data_missing: recorder.counter("observations", "data_missing"),
        }
    }

    /// Looks up one cell. A hit returns the value; a miss records the
    /// series, ticks the `observations/data_missing` telemetry counter,
    /// and returns NaN (the verdict is discarded in that case).
    pub(crate) fn get(&mut self, table: &Table, row: &str, col: &str) -> f64 {
        match table.get(row, col) {
            Some(v) => v,
            None => {
                self.data_missing.incr();
                self.missing.push(format!("series '{row}'/'{col}' missing"));
                f64::NAN
            }
        }
    }

    /// Every miss recorded so far, in lookup order.
    pub(crate) fn missing(&self) -> &[String] {
        &self.missing
    }

    /// Seals one observation. If any lookup missed, the report fails
    /// closed: `measured` names the missing series, `holds` is false,
    /// and `data_missing` is set so the scoreboard can count it apart
    /// from genuine mismatches.
    fn report(self, id: u8, claim: &str, measured: String, holds: bool) -> ObservationReport {
        let (measured, holds, data_missing) = if self.missing().is_empty() {
            (measured, holds, false)
        } else {
            (self.missing.join("; "), false, true)
        };
        ObservationReport {
            id,
            claim: claim.into(),
            measured,
            holds,
            data_missing,
        }
    }
}

/// Evaluates all 18 observations at the session's configured scale.
/// Expensive (regenerates most figures); run once and print.
pub fn check_observations(session: &Session) -> Vec<ObservationReport> {
    let probe = || SeriesProbe::recorded_by(session.recorder());
    let mut out = Vec::with_capacity(18);

    // Figs. 3/4: activation.
    let fig3 = fig3_activation_timing(session);
    {
        let mut p = probe();
        let best32 = p.get(&fig3, "t1=3 t2=3 mean", "N=32");
        out.push(p.report(
            1,
            "up to 32 rows activate simultaneously at very high success",
            format!("{best32:.2} % at N=32, best timing"),
            best32 > 99.0,
        ));
    }
    {
        let mut p = probe();
        let best32 = p.get(&fig3, "t1=3 t2=3 mean", "N=32");
        let weak32 = p.get(&fig3, "t1=1.5 t2=1.5 mean", "N=32");
        out.push(p.report(
            2,
            "t1 or t2 below 3 ns drastically lowers activation success",
            format!("{weak32:.2} % at t1=t2=1.5 ns vs {best32:.2} %"),
            best32 - weak32 > 10.0,
        ));
    }
    let fig4a = fig4a_activation_temperature(session);
    {
        let mut p = probe();
        let t50 = p.get(&fig4a, "50 C", "N=32");
        let t90 = p.get(&fig4a, "90 C", "N=32");
        out.push(p.report(
            3,
            "temperature up to 90 °C barely moves activation success",
            format!("{t50:.2} % → {t90:.2} %"),
            (t90 - t50).abs() < 1.0,
        ));
    }
    let fig4b = fig4b_activation_voltage(session);
    {
        let mut p = probe();
        let v25 = p.get(&fig4b, "2.5 V", "N=32");
        let v21 = p.get(&fig4b, "2.1 V", "N=32");
        out.push(p.report(
            4,
            "V_PP underscaling barely moves activation success",
            format!("{v25:.2} % → {v21:.2} %"),
            v25 - v21 >= 0.0 && v25 - v21 < 1.0,
        ));
    }

    // Fig. 5: power.
    let fig5 = fig5_power(session);
    {
        let mut p = probe();
        let p32 = p.get(&fig5, "32-row ACT", "pct_of_REF");
        out.push(p.report(
            5,
            "32-row activation draws less power than a refresh",
            format!("{p32:.1} % of REF"),
            p32 < 100.0,
        ));
    }

    // Figs. 6/7: MAJX.
    let fig6 = fig6_maj3_timing(session);
    {
        let mut p = probe();
        let maj3_32 = p.get(&fig6, "t1=1.5 t2=3 mean", "N=32");
        let maj3_4 = p.get(&fig6, "t1=1.5 t2=3 mean", "N=4");
        out.push(p.report(
            6,
            "input replication drastically raises MAJ3 success",
            format!("{maj3_32:.2} % @32 rows vs {maj3_4:.2} % @4 rows"),
            maj3_32 - maj3_4 > 10.0,
        ));
    }
    {
        let mut p = probe();
        let maj3_32 = p.get(&fig6, "t1=1.5 t2=3 mean", "N=32");
        let maj3_33 = p.get(&fig6, "t1=3 t2=3 mean", "N=32");
        out.push(p.report(
            7,
            "APA timing strongly moves MAJ3 ((1.5,3) best)",
            format!("{maj3_32:.2} % at (1.5,3) vs {maj3_33:.2} % at (3,3)"),
            maj3_32 - maj3_33 > 20.0,
        ));
    }
    let fig7 = fig7_majx_patterns(session);
    {
        let mut p = probe();
        let m5 = p.get(&fig7, "random", "MAJ5");
        let m7 = p.get(&fig7, "random", "MAJ7");
        let m9 = p.get(&fig7, "random", "MAJ9");
        out.push(p.report(
            8,
            "MAJ5, MAJ7, MAJ9 are all feasible",
            format!("{m5:.1} / {m7:.1} / {m9:.1} %"),
            m5 > 30.0 && m7 > 5.0 && m9 > 1.0,
        ));
    }
    {
        let mut p = probe();
        let m5 = p.get(&fig7, "random", "MAJ5");
        let solid5 = p.get(&fig7, "0x00/0xFF", "MAJ5");
        out.push(p.report(
            9,
            "data pattern matters: random is the worst for MAJX",
            format!("MAJ5 solid {solid5:.1} % vs random {m5:.1} %"),
            solid5 > m5,
        ));
    }
    {
        let mut p = probe();
        let m5 = p.get(&fig7, "random", "MAJ5");
        let m5_n8 = p.get(&fig7, "random N=8 MAJ5", "MAJ5");
        out.push(p.report(
            10,
            "replication helps MAJ5/7/9 too, not just MAJ3",
            format!("MAJ5: {m5_n8:.1} % @8 rows → {m5:.1} % @32 rows"),
            m5 > m5_n8,
        ));
    }

    // Figs. 8/9: MAJX environment.
    let fig8 = fig8_majx_temperature(session);
    {
        let mut p = probe();
        let maj5_t50 = p.get(&fig8, "MAJ5 N=32", "50C");
        let maj5_t90 = p.get(&fig8, "MAJ5 N=32", "90C");
        out.push(p.report(
            11,
            "temperature only slightly moves MAJX (warmer a bit better)",
            format!("MAJ5: {maj5_t50:.2} % → {maj5_t90:.2} %"),
            (maj5_t90 - maj5_t50).abs() < 10.0 && maj5_t90 >= maj5_t50,
        ));
    }
    {
        let mut p = probe();
        let maj3n4_t50 = p.get(&fig8, "MAJ3 N=4", "50C");
        let maj3n4_t90 = p.get(&fig8, "MAJ3 N=4", "90C");
        let maj3n32_t50 = p.get(&fig8, "MAJ3 N=32", "50C");
        let maj3n32_t90 = p.get(&fig8, "MAJ3 N=32", "90C");
        out.push(p.report(
            12,
            "replication damps MAJX's temperature sensitivity",
            format!(
                "MAJ3@4: {:.2} pp vs MAJ3@32: {:.2} pp",
                (maj3n4_t90 - maj3n4_t50).abs(),
                (maj3n32_t90 - maj3n32_t50).abs()
            ),
            (maj3n4_t90 - maj3n4_t50).abs() > (maj3n32_t90 - maj3n32_t50).abs(),
        ));
    }
    let fig9 = fig9_majx_voltage(session);
    {
        let mut p = probe();
        let maj5_v25 = p.get(&fig9, "MAJ5 N=32", "2.5V");
        let maj5_v21 = p.get(&fig9, "MAJ5 N=32", "2.1V");
        out.push(p.report(
            13,
            "V_PP only slightly moves MAJX",
            format!("MAJ5: {maj5_v25:.2} % → {maj5_v21:.2} %"),
            (maj5_v25 - maj5_v21).abs() < 5.0,
        ));
    }

    // Figs. 10–12: Multi-RowCopy.
    let fig10 = fig10_mrc_timing(session);
    {
        let mut p = probe();
        let mrc31 = p.get(&fig10, "t1=36 t2=3 mean", "dests=31");
        out.push(p.report(
            14,
            "one row copies to up to 31 rows at very high success",
            format!("{mrc31:.2} % at best timing"),
            mrc31 > 99.0,
        ));
    }
    {
        let mut p = probe();
        let mrc31 = p.get(&fig10, "t1=36 t2=3 mean", "dests=31");
        let mrc31_bad = p.get(&fig10, "t1=1.5 t2=3 mean", "dests=31");
        out.push(p.report(
            15,
            "t1 = 1.5 ns collapses Multi-RowCopy",
            format!("{mrc31_bad:.2} % vs {mrc31:.2} %"),
            mrc31 - mrc31_bad > 30.0,
        ));
    }
    let fig11 = fig11_mrc_patterns(session);
    {
        let mut p = probe();
        let ones31 = p.get(&fig11, "all-1s", "dests=31");
        let zeros31 = p.get(&fig11, "all-0s", "dests=31");
        out.push(p.report(
            16,
            "all-1s to 31 rows dips slightly below other patterns",
            format!("all-1s {ones31:.2} % vs all-0s {zeros31:.2} %"),
            zeros31 >= ones31 && zeros31 - ones31 < 5.0,
        ));
    }
    let fig12a = fig12a_mrc_temperature(session);
    {
        let mut p = probe();
        let mrc_t50 = p.get(&fig12a, "50 C", "dests=31");
        let mrc_t90 = p.get(&fig12a, "90 C", "dests=31");
        out.push(p.report(
            17,
            "temperature barely moves Multi-RowCopy",
            format!("{mrc_t50:.2} % → {mrc_t90:.2} %"),
            (mrc_t90 - mrc_t50).abs() < 1.0,
        ));
    }
    let fig12b = fig12b_mrc_voltage(session);
    {
        let mut p = probe();
        let mrc_v25 = p.get(&fig12b, "2.5 V", "dests=31");
        let mrc_v21 = p.get(&fig12b, "2.1 V", "dests=31");
        out.push(p.report(
            18,
            "V_PP underscaling barely moves Multi-RowCopy",
            format!("{mrc_v25:.2} % → {mrc_v21:.2} %"),
            mrc_v25 - mrc_v21 >= 0.0 && mrc_v25 - mrc_v21 < 2.0,
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn all_observations_hold_at_quick_scale() {
        let reports = check_observations(&Session::new(ExperimentConfig::quick()));
        assert_eq!(reports.len(), 18);
        let failing: Vec<&ObservationReport> = reports.iter().filter(|r| !r.holds).collect();
        assert!(
            failing.is_empty(),
            "observations not reproduced:\n{}",
            failing
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn quick_scale_has_no_missing_series() {
        let reports = check_observations(&Session::new(ExperimentConfig::quick()));
        assert!(reports.iter().all(|r| !r.data_missing));
    }

    #[test]
    fn report_display_carries_the_verdict() {
        let probe = SeriesProbe::default();
        let r = probe.report(1, "claim", "measured".into(), true);
        let s = r.to_string();
        assert!(s.contains("Obs.  1") && s.contains("[ok]"));
        let bad = SeriesProbe::default().report(2, "claim", "measured".into(), false);
        assert!(bad.to_string().contains("[XX]"));
    }

    #[test]
    fn missing_series_is_reported_not_nan() {
        let table = Table::new("Fig. T", "", vec!["N=32".into()]);
        let mut p = SeriesProbe::default();
        let v = p.get(&table, "t1=3 t2=3 mean", "N=32");
        assert!(v.is_nan());
        // Even a verdict that a NaN comparison would let pass is
        // overridden: the report fails closed and names the series.
        let r = p.report(1, "claim", format!("{v:.2} %"), true);
        assert!(!r.holds);
        assert!(r.data_missing);
        assert_eq!(r.measured, "series 't1=3 t2=3 mean'/'N=32' missing");
        assert!(r.to_string().contains("[??]"));
    }

    #[test]
    fn missing_series_ticks_the_data_missing_counter() {
        let recorder = simra_telemetry::global();
        recorder.enable();
        let counter = recorder.counter("observations", "data_missing");
        let before = counter.get();
        let table = Table::new("Fig. T", "", vec!["N=32".into()]);
        let mut p = SeriesProbe::default();
        assert!(p.get(&table, "nope", "N=32").is_nan());
        assert!(
            counter.get() > before,
            "a probe miss must tick observations/data_missing"
        );
        assert_eq!(p.missing().len(), 1);
    }

    #[test]
    fn probe_hit_preserves_the_verdict() {
        let mut table = Table::new("Fig. T", "", vec!["N=32".into()]);
        table.push_row("t1=3 t2=3 mean", vec![99.5]);
        let mut p = SeriesProbe::default();
        let v = p.get(&table, "t1=3 t2=3 mean", "N=32");
        let r = p.report(1, "claim", format!("{v:.2} %"), v > 99.0);
        assert!(r.holds);
        assert!(!r.data_missing);
        assert_eq!(r.measured, "99.50 %");
    }
}
