//! Experiment scale configuration.

use serde::{Deserialize, Serialize};

use simra_dram::vendor::{paper_fleet, VendorProfile};
use simra_exec::{BackendChoice, HybridParams};
use simra_faults::FaultPlan;

/// One module to mount in the (virtual) rig.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleUnderTest {
    /// Vendor profile of the module.
    pub profile: VendorProfile,
    /// Seed stamping its silicon (distinct seeds = distinct modules).
    pub seed: u64,
}

/// Scale knobs for every characterization runner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Modules to test.
    pub modules: Vec<ModuleUnderTest>,
    /// Banks tested per module (paper: 16).
    pub banks: u16,
    /// Randomly chosen subarrays per bank (paper: 3).
    pub subarrays_per_bank: u16,
    /// Random row groups per subarray per N (paper: 100).
    pub groups_per_subarray: usize,
    /// Experiment RNG seed.
    pub seed: u64,
    /// Optional fault-injection plan. `None` (the default) runs pristine
    /// silicon on the fault-free executor path — byte-identical to builds
    /// that predate fault injection.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultPlan>,
    /// Execution backend every figure runner dispatches trials through.
    /// [`BackendChoice::Analog`] (the default) is the reference path —
    /// byte-identical to builds that predate the backend layer;
    /// [`BackendChoice::Surrogate`] swaps in the calibrated fast model.
    #[serde(default)]
    pub backend: BackendChoice,
    /// Decision parameters of the hybrid backend. Only meaningful when
    /// `backend` is [`BackendChoice::Hybrid`]; serialized (and hence
    /// folded into sweep-manifest digests, so checkpoint journals refuse
    /// to resume across a parameter change) only when non-default, which
    /// keeps pre-hybrid manifests byte-identical.
    #[serde(default, skip_serializing_if = "HybridParams::is_default")]
    pub hybrid: HybridParams,
}

impl ExperimentConfig {
    /// The default scale: one module per vendor profile in Table 1 and a
    /// reduced group population — large enough for stable means, small
    /// enough that the full figure set regenerates in minutes.
    pub fn reduced() -> Self {
        let modules = paper_fleet()
            .into_iter()
            .enumerate()
            .map(|(i, e)| ModuleUnderTest {
                profile: e.profile,
                seed: 1000 + i as u64,
            })
            .collect();
        ExperimentConfig {
            modules,
            banks: 2,
            subarrays_per_bank: 2,
            groups_per_subarray: 4,
            seed: 0xD5A,
            faults: None,
            backend: BackendChoice::Analog,
            hybrid: HybridParams::default(),
        }
    }

    /// A minimal configuration for tests and benches: one Mfr. H module,
    /// one bank, a handful of groups.
    pub fn quick() -> Self {
        ExperimentConfig {
            modules: vec![ModuleUnderTest {
                profile: VendorProfile::mfr_h_m_die(),
                seed: 7,
            }],
            banks: 1,
            subarrays_per_bank: 1,
            groups_per_subarray: 3,
            seed: 0xD5A,
            faults: None,
            backend: BackendChoice::Analog,
            hybrid: HybridParams::default(),
        }
    }

    /// The paper's full population: every module of Table 2 (18 modules),
    /// 16 banks × 3 subarrays × 100 groups. Hours of runtime; use for
    /// overnight regeneration only.
    pub fn paper_scale() -> Self {
        let mut modules = Vec::new();
        let mut seed = 2000u64;
        for entry in paper_fleet() {
            for _ in 0..entry.modules {
                modules.push(ModuleUnderTest {
                    profile: entry.profile.clone(),
                    seed,
                });
                seed += 1;
            }
        }
        ExperimentConfig {
            modules,
            banks: 16,
            subarrays_per_bank: 3,
            groups_per_subarray: 100,
            seed: 0xD5A,
            faults: None,
            backend: BackendChoice::Analog,
            hybrid: HybridParams::default(),
        }
    }

    /// Groups tested per (module, N) point.
    pub fn groups_per_module(&self) -> usize {
        self.banks as usize * self.subarrays_per_bank as usize * self.groups_per_subarray
    }

    /// Human-readable scale statement, including the reduction relative to
    /// the paper's 16 × 3 × 100 population (no silent truncation).
    pub fn describe_scale(&self) -> String {
        let per_module = self.groups_per_module();
        let paper_per_module = 16 * 3 * 100;
        let mut s = format!(
            "{} module(s), {} groups per (module, N) point ({}x reduction vs the paper's {} groups over 18 modules)",
            self.modules.len(),
            per_module,
            paper_per_module / per_module.max(1),
            paper_per_module,
        );
        if let Some(plan) = self.faults.as_ref().filter(|p| !p.is_empty()) {
            s.push_str("; faults: ");
            s.push_str(&plan.describe());
        }
        s
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::reduced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_covers_all_vendor_profiles() {
        let c = ExperimentConfig::default();
        assert_eq!(c.modules.len(), 4);
        let mut labels: Vec<String> = c.modules.iter().map(|m| m.profile.label()).collect();
        labels.dedup();
        assert_eq!(labels.len(), 4, "one module per Table 1 profile");
    }

    #[test]
    fn paper_scale_has_18_modules() {
        let c = ExperimentConfig::paper_scale();
        assert_eq!(c.modules.len(), 18);
        assert_eq!(c.groups_per_module(), 4800);
    }

    #[test]
    fn scale_description_reports_reduction() {
        let c = ExperimentConfig::quick();
        let s = c.describe_scale();
        assert!(s.contains("reduction"), "{s}");
    }

    #[test]
    fn scale_description_mentions_faults_only_when_present() {
        let mut c = ExperimentConfig::quick();
        assert!(!c.describe_scale().contains("faults"));
        c.faults = Some(FaultPlan::default());
        assert!(
            !c.describe_scale().contains("faults"),
            "an empty plan is not worth announcing"
        );
        c.faults = FaultPlan::preset("quick", c.modules.len());
        assert!(c.describe_scale().contains("faults"));
    }

    #[test]
    fn distinct_module_seeds() {
        let c = ExperimentConfig::paper_scale();
        let mut seeds: Vec<u64> = c.modules.iter().map(|m| m.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 18);
    }
}
