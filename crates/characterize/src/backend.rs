//! Backend dispatch for the characterization layer.
//!
//! Every figure runner describes its trials as [`TrialSpec`] values and
//! submits them to the fleet as [`SweepPoint<TrialPoint>`]s; the fleet
//! executes each through the [`PudBackend`] named on the *point*. The
//! backend therefore rides the existing sweep machinery untouched — a
//! sweep can even mix backends across points (the `backend_compare`
//! bench does exactly that).
//!
//! Backends live in a process-wide [`BackendSet`] so the surrogate's
//! calibration cache stays warm across figures: `check_observations`
//! regenerates every figure and, past the first, runs on cache hits.

use std::sync::OnceLock;

use rand::rngs::StdRng;

use simra_bender::TestSetup;
use simra_core::rowgroup::GroupSpec;
use simra_exec::{
    AnalogBackend, BackendChoice, HybridBackend, HybridParams, PudBackend, SurrogateBackend,
    TrialSpec,
};

use crate::config::ExperimentConfig;
use crate::fleet::{sweep_group_samples, SweepPoint};

/// One of each backend, dispatched by [`BackendChoice`].
#[derive(Debug, Default)]
pub struct BackendSet {
    analog: AnalogBackend,
    surrogate: SurrogateBackend,
    hybrid: HybridBackend,
}

impl BackendSet {
    /// The process-wide set (keeps the surrogate and hybrid calibration
    /// warm).
    pub fn global() -> &'static BackendSet {
        static GLOBAL: OnceLock<BackendSet> = OnceLock::new();
        GLOBAL.get_or_init(BackendSet::default)
    }

    /// The backend a choice names.
    pub fn dispatch(&self, choice: BackendChoice) -> &dyn PudBackend {
        match choice {
            BackendChoice::Analog => &self.analog,
            BackendChoice::Surrogate => &self.surrogate,
            BackendChoice::Hybrid => &self.hybrid,
        }
    }

    /// Applies decision parameters to the hybrid backend (new slots
    /// pick them up; running slots keep their snapshot).
    pub fn set_hybrid_params(&self, params: HybridParams) {
        self.hybrid.set_params(params);
    }
}

/// Sweep-point parameters of every figure runner: what to run (the
/// spec) and how to run it (the backend). The activated row count N
/// lives on the enclosing [`SweepPoint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialPoint {
    /// The trial to execute per (module, group).
    pub spec: TrialSpec,
    /// Which backend executes it.
    pub backend: BackendChoice,
}

/// A sweep point that runs `spec` at `n` rows on `config`'s backend.
pub fn trial_point(config: &ExperimentConfig, n: u32, spec: TrialSpec) -> SweepPoint<TrialPoint> {
    SweepPoint::new(
        n,
        TrialPoint {
            spec,
            backend: config.backend,
        },
    )
}

/// The single fleet op of the figure runners: dispatch the point's spec
/// through the point's backend.
pub fn trial_op(
    point: &TrialPoint,
    setup: &mut TestSetup,
    group: &GroupSpec,
    rng: &mut StdRng,
) -> Option<f64> {
    BackendSet::global()
        .dispatch(point.backend)
        .run_trial(&point.spec, setup, group, rng)
}

/// [`sweep_group_samples`] over backend-dispatched trial points — the
/// one entry point every figure runner sweeps through.
pub fn sweep_trial_samples(
    config: &ExperimentConfig,
    points: &[SweepPoint<TrialPoint>],
) -> Vec<Vec<f64>> {
    sweep_group_samples(config, points, trial_op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simra_dram::ApaTiming;

    #[test]
    fn dispatch_names_match_choices() {
        let set = BackendSet::global();
        assert_eq!(set.dispatch(BackendChoice::Analog).name(), "analog");
        assert_eq!(set.dispatch(BackendChoice::Surrogate).name(), "surrogate");
        assert_eq!(set.dispatch(BackendChoice::Hybrid).name(), "hybrid");
    }

    #[test]
    fn trial_point_carries_the_config_backend() {
        let mut config = ExperimentConfig::quick();
        config.backend = BackendChoice::Surrogate;
        let p = trial_point(
            &config,
            8,
            TrialSpec::activation(ApaTiming::best_for_activation()),
        );
        assert_eq!(p.n, 8);
        assert_eq!(p.params.backend, BackendChoice::Surrogate);
    }
}
