//! Backend dispatch for the characterization layer.
//!
//! Every figure runner describes its trials as [`TrialSpec`] values and
//! submits them to the fleet as [`SweepPoint<TrialPoint>`]s; the fleet
//! executes each through the [`PudBackend`] named on the *point*. The
//! backend therefore rides the existing sweep machinery untouched — a
//! sweep can even mix backends across points (the `backend_compare`
//! bench does exactly that).
//!
//! Backends live in the [`Session`]'s [`BackendSet`] so the surrogate's
//! calibration cache stays warm across figures: `check_observations`
//! regenerates every figure and, past the first, runs on cache hits —
//! while two concurrent sessions keep fully separate caches.

use simra_exec::{BackendChoice, TrialSpec};

// The set itself lives in `simra_exec` now that backends are
// session-owned; re-exported here for the characterization callers.
pub use simra_exec::BackendSet;

use crate::config::ExperimentConfig;
use crate::fleet::{sweep_group_samples, SweepPoint};
use crate::session::Session;

#[cfg(doc)]
use simra_exec::PudBackend;

/// Sweep-point parameters of every figure runner: what to run (the
/// spec) and how to run it (the backend). The activated row count N
/// lives on the enclosing [`SweepPoint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialPoint {
    /// The trial to execute per (module, group).
    pub spec: TrialSpec,
    /// Which backend executes it.
    pub backend: BackendChoice,
}

/// A sweep point that runs `spec` at `n` rows on `config`'s backend.
pub fn trial_point(config: &ExperimentConfig, n: u32, spec: TrialSpec) -> SweepPoint<TrialPoint> {
    SweepPoint::new(
        n,
        TrialPoint {
            spec,
            backend: config.backend,
        },
    )
}

/// [`sweep_group_samples`] over backend-dispatched trial points — the
/// one entry point every figure runner sweeps through. Each point's
/// spec runs through the *session's* backend of the point's choice.
pub fn sweep_trial_samples(session: &Session, points: &[SweepPoint<TrialPoint>]) -> Vec<Vec<f64>> {
    sweep_group_samples(session, points, |point, setup, group, rng| {
        session
            .dispatch(point.backend)
            .run_trial(&point.spec, setup, group, rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simra_dram::ApaTiming;

    #[test]
    fn dispatch_names_match_choices() {
        let set = BackendSet::global();
        assert_eq!(set.dispatch(BackendChoice::Analog).name(), "analog");
        assert_eq!(set.dispatch(BackendChoice::Surrogate).name(), "surrogate");
        assert_eq!(set.dispatch(BackendChoice::Hybrid).name(), "hybrid");
    }

    #[test]
    fn trial_point_carries_the_config_backend() {
        let mut config = ExperimentConfig::quick();
        config.backend = BackendChoice::Surrogate;
        let p = trial_point(
            &config,
            8,
            TrialSpec::activation(ApaTiming::best_for_activation()),
        );
        assert_eq!(p.n, 8);
        assert_eq!(p.params.backend, BackendChoice::Surrogate);
    }
}
