//! Fig. 5: power consumption of simultaneous many-row activation vs
//! standard DRAM operations.
//!
//! This figure is purely analytic (a closed-form IDD model, no module
//! fleet and no RNG), so it stays off the sweep-grid scheduler: there is
//! no (module × point) grid to submit and nothing for the rig pool to
//! reuse.

use simra_bender::power::{PowerModel, StandardOp};

use crate::report::Table;
use crate::session::Session;

/// Fig. 5: average power (mW) of N-row activation and the four standard
/// operations (the paper's dashed lines).
pub fn fig5_power(session: &Session) -> Table {
    session.run_figure("fig5", |_session| {
        let model = PowerModel::ddr4();
        let mut table = Table::new(
            "Fig. 5: power of simultaneous many-row activation vs standard ops",
            "analytic IDD model (the paper measures one module)",
            vec!["power_mW".into(), "pct_of_REF".into()],
        );
        let reference = model.standard_mw(StandardOp::Refresh);
        for n in [2u32, 4, 8, 16, 32] {
            let p = model.many_row_activation_mw(n);
            table.push_row(format!("{n}-row ACT"), vec![p, 100.0 * p / reference]);
        }
        for op in [
            StandardOp::Read,
            StandardOp::Write,
            StandardOp::ActPre,
            StandardOp::Refresh,
        ] {
            let p = model.standard_mw(op);
            table.push_row(op.to_string(), vec![p, 100.0 * p / reference]);
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    fn quick_session() -> Session {
        Session::new(ExperimentConfig::quick())
    }

    #[test]
    fn obs5_32_row_below_ref() {
        let t = fig5_power(&quick_session());
        let mut p = crate::observations::SeriesProbe::default();
        let p32 = p.get(&t, "32-row ACT", "pct_of_REF");
        assert!(p.missing().is_empty(), "missing series: {:?}", p.missing());
        assert!(
            p32 < 100.0,
            "Obs. 5: 32-row activation below REF, got {p32}% of REF"
        );
        assert!(
            p32 > 60.0,
            "but in the same ballpark (paper: ~79 %), got {p32}"
        );
    }

    #[test]
    fn power_rows_are_monotone_in_n() {
        let t = fig5_power(&quick_session());
        let mut probe = crate::observations::SeriesProbe::default();
        let mut last = 0.0;
        for n in [2, 4, 8, 16, 32] {
            let p = probe.get(&t, &format!("{n}-row ACT"), "power_mW");
            assert!(
                probe.missing().is_empty(),
                "missing series: {:?}",
                probe.missing()
            );
            assert!(p > last);
            last = p;
        }
    }
}
