//! Fig. 15: the SPICE-equivalent Monte-Carlo study, rendered as tables.

use simra_analog::montecarlo::{run_fig15, MonteCarloConfig};
use simra_analog::CircuitParams;

use crate::report::Table;
use crate::session::Session;

/// Fig. 15 (a) and (b): bitline perturbation (mV, median) and MAJ3(1,1,0)
/// success rate per N-row activation (rows) and process-variation percent
/// (columns).
pub fn fig15_spice(session: &Session) -> (Table, Table) {
    session.run_figure("fig15", |session| {
        let mc = MonteCarloConfig {
            sets: 1000,
            seed: session.config().seed,
        };
        let points = run_fig15(&CircuitParams::calibrated(), mc);
        let variations = [10u32, 20, 30, 40];
        let columns: Vec<String> = variations.iter().map(|p| format!("var={p}%")).collect();
        let mut perturbation = Table::new(
            "Fig. 15a: bitline perturbation (median mV) before sensing, MAJ3(1,1,0)",
            format!("{} Monte-Carlo sets per point", mc.sets),
            columns.clone(),
        );
        let mut success = Table::new(
            "Fig. 15b: MAJ3(1,1,0) success rate vs process variation",
            format!("{} Monte-Carlo sets per point", mc.sets),
            columns,
        );
        for &n in &[1u32, 4, 8, 16, 32] {
            let med: Vec<f64> = variations
                .iter()
                .map(|&v| {
                    points
                        .iter()
                        .find(|p| p.n_rows == n && p.variation_pct == v)
                        .expect("grid covers all points")
                        .median_mv
                })
                .collect();
            perturbation.push_row(format!("N={n}"), med);
            if n > 1 {
                let rates: Vec<f64> = variations
                    .iter()
                    .map(|&v| {
                        100.0
                            * points
                                .iter()
                                .find(|p| p.n_rows == n && p.variation_pct == v)
                                .expect("grid covers all points")
                                .success_rate
                    })
                    .collect();
                success.push_row(format!("N={n}"), rates);
            }
        }
        (perturbation, success)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    fn quick_session() -> Session {
        Session::new(ExperimentConfig::quick())
    }

    #[test]
    fn perturbation_grows_with_n_at_every_variation() {
        let (pert, _) = fig15_spice(&quick_session());
        let mut p = crate::observations::SeriesProbe::default();
        for col in ["var=10%", "var=40%"] {
            let n4 = p.get(&pert, "N=4", col);
            let n32 = p.get(&pert, "N=32", col);
            assert!(p.missing().is_empty(), "missing series: {:?}", p.missing());
            assert!(n32 > n4 * 1.5, "{col}: N=32 {n32} vs N=4 {n4}");
        }
    }

    #[test]
    fn n32_success_immune_to_variation_n4_collapses() {
        let (_, success) = fig15_spice(&quick_session());
        let mut p = crate::observations::SeriesProbe::default();
        let n4_drop = p.get(&success, "N=4", "var=10%") - p.get(&success, "N=4", "var=40%");
        let n32_drop = p.get(&success, "N=32", "var=10%") - p.get(&success, "N=32", "var=40%");
        assert!(p.missing().is_empty(), "missing series: {:?}", p.missing());
        assert!(n4_drop > 10.0, "paper: −46.58 % for N=4, got −{n4_drop}");
        assert!(n32_drop < 2.0, "paper: −0.01 % for N=32, got −{n32_drop}");
    }

    #[test]
    fn single_row_baseline_is_present() {
        let (pert, success) = fig15_spice(&quick_session());
        assert!(pert.get("N=1", "var=20%").is_some());
        // N=1 has no MAJ success row.
        assert!(success.get("N=1", "var=20%").is_none());
    }
}
