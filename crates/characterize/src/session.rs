//! The characterization session: one campaign's execution context as
//! an owned value.
//!
//! Historically a campaign reached through process globals for its
//! telemetry recorder, backend set, engine counters, checkpoint
//! session, and coverage accounting — which pinned one campaign per
//! process. [`Session`] owns all of it: the [`ExperimentConfig`], a
//! [`simra_exec::ExecSession`] (recorder + backends + engine
//! counters + root seed), an optional armed [`CheckpointSession`], and
//! the fleet-coverage accumulator the `--faults` footer reports.
//!
//! Two sessions can therefore run concurrently in one process — even on
//! the shared [`crate::pool::FleetPool`] — with different seeds,
//! backends, and fault plans, and each produces output byte-identical
//! to running alone: telemetry and counters never touch an RNG stream,
//! each session's surrogate calibration cache and hybrid slot state are
//! instance-owned, and every (module, point) task seeds its own stream
//! from a pure function of the session's config
//! (`module_stream_seed`). `crates/characterize/tests/sessions.rs`
//! asserts exactly that.
//!
//! [`Session::new`] binds to the process-global recorder, which keeps
//! the single-campaign CLI byte- and telemetry-compatible with the
//! pre-session code path; [`Session::recorded_by`] takes a private
//! recorder for embedders running several campaigns side by side.

use std::fmt;
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use simra_analog::EngineCounters;
use simra_exec::{BackendChoice, BackendSet, ExecSession, HybridParams, PudBackend, ShardSpec};
use simra_telemetry::Recorder;

use crate::checkpoint::{CheckpointError, CheckpointSession};
use crate::config::ExperimentConfig;
use crate::fleet::{FleetCoverage, FleetOutcome, ModuleResult};

/// Cap on retained failure lines — coverage must not grow without bound
/// under a pathological fault plan.
const FAILURE_LINE_CAP: usize = 32;

/// Coverage accounting across every fleet run of one session.
#[derive(Default)]
struct CoverageState {
    coverage: FleetCoverage,
    failures: Vec<String>,
}

/// One characterization campaign's owned execution context. See the
/// module docs for the isolation and determinism contract.
pub struct Session {
    config: ExperimentConfig,
    exec: ExecSession,
    checkpoint: OnceLock<CheckpointSession>,
    coverage: Mutex<CoverageState>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("config", &self.config)
            .field("exec", &self.exec)
            .field("checkpointed", &self.checkpoint.get().is_some())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// A session reporting to the process-global recorder — what the
    /// `repro` CLI constructs; byte- and telemetry-compatible with the
    /// historical global code path.
    pub fn new(config: ExperimentConfig) -> Self {
        Session::recorded_by(config, simra_telemetry::global().clone())
    }

    /// A session with a private recorder (enable it with
    /// [`Recorder::enable`] if its snapshots should carry data). The
    /// config's hybrid decision parameters are applied to the session's
    /// own hybrid backend.
    pub fn recorded_by(config: ExperimentConfig, recorder: Recorder) -> Self {
        let exec = ExecSession::recorded_by(config.seed, recorder);
        exec.set_hybrid_params(config.hybrid);
        Session {
            config,
            exec,
            checkpoint: OnceLock::new(),
            coverage: Mutex::new(CoverageState::default()),
        }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The session's telemetry recorder.
    pub fn recorder(&self) -> &Recorder {
        self.exec.recorder()
    }

    /// The campaign's root seed (`config.seed`).
    pub fn seed(&self) -> u64 {
        self.exec.seed()
    }

    /// The session's backend set (instance-owned calibration cache and
    /// hybrid slot state).
    pub fn backends(&self) -> &BackendSet {
        self.exec.backends()
    }

    /// The backend a choice names, from this session's set.
    pub fn dispatch(&self, choice: BackendChoice) -> &dyn PudBackend {
        self.exec.dispatch(choice)
    }

    /// The engine op-counter handles this session's rigs report through.
    pub fn engine_counters(&self) -> &EngineCounters {
        self.exec.engine_counters()
    }

    /// Applies decision parameters to this session's hybrid backend.
    pub fn set_hybrid_params(&self, params: HybridParams) {
        self.exec.set_hybrid_params(params);
    }

    /// Runs one figure body under its telemetry span — the shared
    /// boilerplate of every `figNN_*` runner: open `figure/<name>`,
    /// run `f` against this session, close the span on the way out.
    pub fn run_figure<T>(&self, name: &str, f: impl FnOnce(&Session) -> T) -> T {
        let _span = self.recorder().span("figure", name);
        f(self)
    }

    /// Arms checkpointing for this session: every subsequent
    /// [`run_sweep`](crate::fleet::run_sweep) call on it journals into
    /// `dir` (see [`CheckpointSession::arm`] for the fresh/resume
    /// rules). Arming is once per session; a second call is
    /// [`CheckpointError::AlreadyArmed`].
    pub fn arm_checkpoints(&self, dir: &Path, resume: bool) -> Result<(), CheckpointError> {
        self.arm(dir, resume, None)
    }

    /// Arms a *shard-worker* checkpoint session: like
    /// [`Session::arm_checkpoints`], but every sweep runs through the
    /// sharded path, owning only the slots
    /// [`slot_shard`](crate::checkpoint::slot_shard) assigns to `shard`.
    pub fn arm_sharded_checkpoints(
        &self,
        dir: &Path,
        resume: bool,
        shard: ShardSpec,
    ) -> Result<(), CheckpointError> {
        self.arm(dir, resume, Some(shard))
    }

    fn arm(
        &self,
        dir: &Path,
        resume: bool,
        shard: Option<ShardSpec>,
    ) -> Result<(), CheckpointError> {
        let armed = CheckpointSession::arm(dir, &self.config, resume, shard)?;
        self.checkpoint
            .set(armed)
            .map_err(|_| CheckpointError::AlreadyArmed)
    }

    /// The armed checkpoint session, if any.
    pub fn checkpoint(&self) -> Option<&CheckpointSession> {
        self.checkpoint.get()
    }

    /// Records one fleet outcome into the session's coverage
    /// accounting. The checkpoint layer calls this for *merged*
    /// outcomes (journal-replayed slots plus freshly executed ones), so
    /// a resumed run's coverage footer counts every module task exactly
    /// once — byte-identical to an uninterrupted run.
    pub(crate) fn record_coverage(&self, outcome: &FleetOutcome) {
        let mut state = self.coverage.lock().expect("session coverage poisoned");
        for (index, slot) in outcome.slots.iter().enumerate() {
            state.coverage.tasks += 1;
            match slot {
                ModuleResult::Completed { attempts, .. } => {
                    state.coverage.completed += 1;
                    if *attempts > 1 {
                        state.coverage.retried += 1;
                    }
                }
                ModuleResult::Failed { attempts, cause } => {
                    state.coverage.failed += 1;
                    if state.failures.len() < FAILURE_LINE_CAP {
                        state.failures.push(format!(
                            "module {index}: {cause} after {attempts} attempt(s)"
                        ));
                    }
                }
            }
        }
    }

    /// Returns and resets this session's accumulated coverage counters
    /// plus the retained failure lines (capped at 32).
    pub fn take_coverage(&self) -> (FleetCoverage, Vec<String>) {
        let mut state = self.coverage.lock().expect("session coverage poisoned");
        let coverage = std::mem::take(&mut state.coverage);
        let failures = std::mem::take(&mut state.failures);
        (coverage, failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_figure_opens_exactly_one_span() {
        let recorder = Recorder::new();
        recorder.enable();
        let session = Session::recorded_by(ExperimentConfig::quick(), recorder.clone());
        let out = session.run_figure("figtest", |s| s.config().seed);
        assert_eq!(out, session.config().seed);
        let spans = recorder.snapshot().spans;
        let span = spans
            .iter()
            .find(|s| s.module == "figure" && s.name == "figtest")
            .expect("figure span recorded");
        assert_eq!(span.count, 1);
    }

    #[test]
    fn coverage_is_per_session_and_resets_on_take() {
        let session = Session::recorded_by(ExperimentConfig::quick(), Recorder::new());
        let other = Session::recorded_by(ExperimentConfig::quick(), Recorder::new());
        session.record_coverage(&FleetOutcome {
            slots: vec![
                ModuleResult::Completed {
                    samples: vec![1.0],
                    attempts: 2,
                },
                ModuleResult::Failed {
                    attempts: 3,
                    cause: crate::fleet::FailureCause::Dropout { at_group: 0 },
                },
            ],
        });
        let (coverage, failures) = session.take_coverage();
        assert_eq!(coverage.tasks, 2);
        assert_eq!(coverage.completed, 1);
        assert_eq!(coverage.retried, 1);
        assert_eq!(coverage.failed, 1);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("dropped out"), "{}", failures[0]);
        // Taking drained it; the sibling session never saw anything.
        assert_eq!(session.take_coverage().0, FleetCoverage::default());
        assert_eq!(other.take_coverage().0, FleetCoverage::default());
    }

    #[test]
    fn second_arm_is_a_typed_error() {
        let session = Session::recorded_by(ExperimentConfig::quick(), Recorder::new());
        let dir = std::env::temp_dir().join(format!("simra-session-arm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        session.arm_checkpoints(&dir, false).expect("first arm");
        assert!(session.checkpoint().is_some());
        match session.arm_checkpoints(&dir, true) {
            Err(CheckpointError::AlreadyArmed) => {}
            other => panic!("expected AlreadyArmed, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sessions_apply_their_configs_hybrid_params() {
        let mut config = ExperimentConfig::quick();
        config.hybrid = HybridParams {
            epsilon: 0.05,
            ..HybridParams::default()
        };
        let session = Session::recorded_by(config, Recorder::new());
        assert_eq!(session.backends().hybrid().params().epsilon, 0.05);
    }
}
